"""E6 — index construction cost across datasets and variants.

Shape: CIUR construction pays the clustering pass on top of IUR's bulk
load; OE additionally scans cohesion.  STR bulk loading beats one-by-one
insertion.
"""

import pytest

from repro.config import IndexConfig
from repro.index.ciurtree import CIURTree
from repro.index.iurtree import IURTree

from conftest import get_dataset


@pytest.mark.parametrize("name", ["gn", "cd", "shop"])
def test_e6_build_iur(bench_one, name):
    dataset = get_dataset(name, n=300)
    tree = bench_one(lambda: IURTree.build(dataset), rounds=2)
    assert tree.stats().objects == 300


@pytest.mark.parametrize("name", ["gn", "shop"])
def test_e6_build_ciur(bench_one, name):
    dataset = get_dataset(name, n=300)
    cfg = IndexConfig(num_clusters=8)
    tree = bench_one(lambda: CIURTree.build(dataset, cfg), rounds=2)
    assert tree.stats().clusters >= 2


def test_e6_build_ciur_oe(bench_one):
    dataset = get_dataset("shop", n=300)
    cfg = IndexConfig(num_clusters=8, outlier_threshold=0.35)
    tree = bench_one(lambda: CIURTree.build(dataset, cfg), rounds=2)
    assert tree.stats().outliers >= 0


def test_e6_build_by_insertion(bench_one):
    dataset = get_dataset("gn", n=300)
    tree = bench_one(lambda: IURTree.build(dataset, method="insert"), rounds=1)
    tree.check_invariants(enforce_min_fill=True)
