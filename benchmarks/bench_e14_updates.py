"""E14 — update throughput and cost-model overhead.

Shape: inserts and deletes touch a root-to-leaf path (plus occasional
splits/condensations), so per-update page writes stay near the tree
height; the cost-model estimate is orders cheaper than running the query.
"""

import random

import pytest

from repro.core.rstknn import RSTkNNSearcher
from repro.index.costmodel import estimate_rstknn_io
from repro.index.iurtree import IURTree
from repro.spatial import Point
from repro.workloads import gn_like, sample_queries

_state = {}


def setup():
    if not _state:
        _state["dataset"] = gn_like(n=400, seed=81)
        _state["tree"] = IURTree.build(_state["dataset"])
        _state["rng"] = random.Random(82)
    return _state


def test_e14_insert_throughput(bench_one):
    state = setup()
    dataset, tree, rng = state["dataset"], state["tree"], state["rng"]
    terms = dataset.vocabulary.terms()[:40]

    def run():
        obj = dataset.append_record(
            Point(rng.uniform(0, 100), rng.uniform(0, 100)),
            " ".join(rng.sample(terms, 3)),
        )
        tree.insert_object(obj)
        return obj.oid

    oid = bench_one(run, rounds=10)
    assert tree.delete_object(oid) or True  # keep the tree tidy


def test_e14_delete_throughput(bench_one):
    state = setup()
    dataset, tree, rng = state["dataset"], state["tree"], state["rng"]
    terms = dataset.vocabulary.terms()[:40]
    pending = []

    def prepare():
        obj = dataset.append_record(
            Point(rng.uniform(0, 100), rng.uniform(0, 100)),
            " ".join(rng.sample(terms, 3)),
        )
        tree.insert_object(obj)
        pending.append(obj.oid)

    for _ in range(12):
        prepare()

    def run():
        if pending:
            assert tree.delete_object(pending.pop())

    bench_one(run, rounds=10)


def test_e14_cost_model_speed(bench_one):
    state = setup()
    tree = state["tree"]
    query = sample_queries(state["dataset"], 1, seed=83)[0]

    def run():
        return estimate_rstknn_io(tree, query, 5)

    estimate = bench_one(run, rounds=3)
    assert estimate.page_ios > 0


@pytest.mark.parametrize("k", (1, 10))
def test_e14_query_after_updates(bench_one, k):
    state = setup()
    tree = state["tree"]
    searcher = RSTkNNSearcher(tree)
    query = sample_queries(state["dataset"], 1, seed=84)[0]

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, k)

    bench_one(run)
