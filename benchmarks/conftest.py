"""Shared benchmark fixtures: datasets and trees, built once per session.

Benchmarks time *queries*, not index construction (E6 times construction
explicitly), so trees are cached per (dataset-key, method).  Every
benchmark runs against cold-cache I/O accounting but warm Python state.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.bench.harness import build_tree
from repro.index.iurtree import IURTree
from repro.model.dataset import STDataset
from repro.workloads import cd_like, gn_like, sample_queries, shop_like

#: Scale of the benchmark suite; small enough to finish in minutes.
BENCH_N = 400

_datasets: Dict[Tuple[str, int], STDataset] = {}
_trees: Dict[Tuple[str, int, str], IURTree] = {}


def get_dataset(name: str = "gn", n: int = BENCH_N) -> STDataset:
    key = (name, n)
    if key not in _datasets:
        builder = {"gn": gn_like, "cd": cd_like, "shop": shop_like}[name]
        _datasets[key] = builder(n=n)
    return _datasets[key]


def get_tree(method: str, name: str = "gn", n: int = BENCH_N) -> IURTree:
    key = (name, n, method)
    if key not in _trees:
        _trees[key] = build_tree(get_dataset(name, n), method)
    return _trees[key]


def get_queries(name: str = "gn", n: int = BENCH_N, count: int = 3):
    return sample_queries(get_dataset(name, n), count, seed=99)


@pytest.fixture
def bench_one(benchmark):
    """Run a callable once per benchmark round (no inner iterations —
    a query mutates buffer state, so iterations must stay independent)."""

    def run(fn, rounds: int = 3):
        return benchmark.pedantic(fn, rounds=rounds, iterations=1, warmup_rounds=0)

    return run
