"""E9 — text measure ablation: extended Jaccard vs cosine vs overlap.

All measures run through identical machinery; the benchmark checks the
relative query cost and that each measure's searcher agrees with its own
brute force (results legitimately differ *between* measures).
"""

import pytest

from repro.config import SimilarityConfig
from repro.core.baseline import BruteForceRSTkNN
from repro.core.rstknn import RSTkNNSearcher
from repro.index.iurtree import IURTree
from repro.workloads import gn_like, sample_queries

MEASURES = ("extended_jaccard", "cosine", "overlap", "dice", "weighted_jaccard")
N = 300

_cache = {}


def setup(measure):
    if measure not in _cache:
        dataset = gn_like(n=N, config=SimilarityConfig(text_measure=measure))
        _cache[measure] = (dataset, IURTree.build(dataset))
    return _cache[measure]


@pytest.mark.parametrize("measure", MEASURES)
def test_e9_measure(bench_one, measure):
    dataset, tree = setup(measure)
    searcher = RSTkNNSearcher(tree)
    query = sample_queries(dataset, 1, seed=61)[0]

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, 5)

    result = bench_one(run)
    assert result.ids == BruteForceRSTkNN(dataset).search(query, 5)
