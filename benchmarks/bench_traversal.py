"""Traversal-engine benchmark: seed walk vs the columnar snapshot engine.

Runs an E3-style single-query workload (gn-like dataset, sampled
queries) through both traversal engines of
:class:`repro.core.rstknn.RSTkNNSearcher` and writes
``BENCH_traversal.json`` with queries/sec, speedups, and the snapshot's
memory footprint.  **Result parity is asserted per query** — the run
exits non-zero if the snapshot engine ever returns a different result
set than the seed walk.

Usage::

    PYTHONPATH=src python benchmarks/bench_traversal.py [--quick] [--n N] [--out F]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.bench.gates import ids_gate, median_qps, report_header
from repro.core.rstknn import RSTkNNSearcher
from repro.index.iurtree import IURTree
from repro.perf import kernels
from repro.workloads import gn_like, sample_queries


def bench_engines(tree, queries, k: int, rounds: int) -> Dict[str, object]:
    """Median QPS per engine over interleavable rounds, parity-checked."""
    seed = RSTkNNSearcher(tree, engine="seed")
    snap = RSTkNNSearcher(tree, engine="snapshot")

    # Parity gate first (also warms the snapshot + both searchers).
    ids_gate(
        [seed.search(q, k).ids for q in queries],
        [snap.search(q, k).ids for q in queries],
        "snapshot vs seed",
    )

    def seed_round() -> float:
        started = time.perf_counter()
        for q in queries:
            seed.search(q, k)
        return time.perf_counter() - started

    def snap_round() -> float:
        started = time.perf_counter()
        for q in queries:
            snap.search(q, k)
        return time.perf_counter() - started

    def snap_fresh_round() -> float:
        # A fresh searcher per query — the snapshot (and its pair memo)
        # lives on the tree, so even this seed-style usage pattern keeps
        # the columnar speedup.
        started = time.perf_counter()
        for q in queries:
            RSTkNNSearcher(tree, engine="snapshot").search(q, k)
        return time.perf_counter() - started

    def latency_ms(searcher) -> dict:
        # One instrumented pass: per-query wall clock -> nearest-rank
        # percentiles, the tail-latency companion to the QPS medians.
        from repro.obs import latency_percentiles

        samples = []
        for q in queries:
            started = time.perf_counter()
            searcher.search(q, k)
            samples.append(time.perf_counter() - started)
        return {
            point: seconds * 1000.0
            for point, seconds in latency_percentiles(samples).items()
        }

    n = len(queries)
    seed_qps = median_qps(seed_round, n, rounds)
    snap_qps = median_qps(snap_round, n, rounds)
    fresh_qps = median_qps(snap_fresh_round, n, rounds)
    return {
        "queries": n,
        "k": k,
        "parity": "ok",
        "seed_qps": seed_qps,
        "snapshot_qps": snap_qps,
        "snapshot_fresh_searcher_qps": fresh_qps,
        "speedup_snapshot_vs_seed": snap_qps / seed_qps,
        "speedup_fresh_vs_seed": fresh_qps / seed_qps,
        "seed_latency_ms": latency_ms(seed),
        "snapshot_latency_ms": latency_ms(snap),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--n", type=int, default=None, help="dataset size")
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--out", default="BENCH_traversal.json")
    parser.add_argument(
        "--backend",
        choices=kernels.KERNEL_BACKENDS,
        default="auto",
        help="kernel backend to bench (default: auto dispatch, the "
        "production path — numpy kernels above the size cutover)",
    )
    args = parser.parse_args(argv)
    kernels.set_backend(args.backend)

    n = args.n if args.n is not None else (150 if args.quick else 400)
    n_queries = 4 if args.quick else 12
    rounds = 1 if args.quick else 5

    from repro.obs import PhaseTimer

    timer = PhaseTimer()
    dataset = gn_like(n=n)
    with timer.phase("build"):
        tree = IURTree.build(dataset)
    with timer.phase("freeze"):
        tree.warm_kernels()
        snapshot = tree.snapshot()
    queries = sample_queries(dataset, n_queries, seed=99)
    with timer.phase("walk"):
        engines = bench_engines(tree, queries, args.k, rounds)

    report = report_header(n, args.quick, timer=timer, snapshot=snapshot)
    report["engines"] = engines

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    speedup = report["engines"]["speedup_snapshot_vs_seed"]
    print(f"snapshot engine speedup vs seed walk: {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
