"""E12 — batched top-k: the I/O benefit of a shared buffer pool.

Shape: per-query I/O collapses as the batch grows (later queries ride
pages faulted in by earlier ones); per-query CPU stays flat.
"""

import pytest

from repro.core.topk import TopKSearcher
from repro.workloads import sample_queries

from conftest import get_dataset, get_tree


@pytest.mark.parametrize("batch", (1, 10, 50))
def test_e12_batched_topk(bench_one, batch):
    tree = get_tree("iur")
    searcher = TopKSearcher(tree)
    queries = sample_queries(get_dataset(), batch, seed=70)

    def run():
        tree.reset_io(cold=True)
        return searcher.batch_topk(queries, 10)

    results = bench_one(run)
    assert len(results) == batch


def test_e12_io_saving_shape():
    tree = get_tree("iur")
    searcher = TopKSearcher(tree)
    queries = sample_queries(get_dataset(), 25, seed=71)
    cold = 0
    for q in queries:
        tree.reset_io(cold=True)
        searcher.top_k(q, 10)
        cold += tree.io.reads
    tree.reset_io(cold=True)
    searcher.batch_topk(queries, 10)
    shared = tree.io.reads
    assert shared < cold / 2, "batching should at least halve per-query I/O"
