"""E3 — scalability vs |D|.

Shape: group-level query cost grows sublinearly in |D| (pruning decides
whole subtrees), while the per-object baseline grows linearly — the
paper's headline separation.  The batch rows measure workload throughput
through :class:`repro.perf.BatchSearcher` (shared bound cache), vs the
fresh-searcher-per-query harness path.
"""

import pytest

from repro.core.baseline import ThresholdBaseline
from repro.core.rstknn import RSTkNNSearcher
from repro.perf import BatchSearcher

from conftest import get_queries, get_tree

SIZES = (200, 400, 800)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("method", ["iur", "ciur"])
def test_e3_query_vs_size(bench_one, method, n):
    tree = get_tree(method, n=n)
    searcher = RSTkNNSearcher(tree)
    query = get_queries(n=n, count=1)[0]

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, 5)

    bench_one(run)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("method", ["iur", "ciur"])
def test_e3_batch_vs_size(bench_one, method, n):
    """Workload throughput through the shared-cache batch engine."""
    tree = get_tree(method, n=n)
    queries = get_queries(n=n, count=8)
    engine = BatchSearcher(tree)

    def run():
        tree.reset_io(cold=True)
        return engine.run(queries, 5)

    bench_one(run)


@pytest.mark.parametrize("n", (100, 200, 400))
def test_e3_baseline_vs_size(bench_one, n):
    tree = get_tree("base", n=n)
    baseline = ThresholdBaseline(tree)
    query = get_queries(n=n, count=1)[0]

    def run():
        tree.reset_io(cold=True)
        return baseline.search(query, 5)

    bench_one(run, rounds=1)
