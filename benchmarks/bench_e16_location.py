"""E16 — location selection: shared-threshold influence vs naive RSTkNN.

Shape: the selector pays threshold preprocessing once, then each
candidate costs a cheap bound-pruned traversal; the naive approach pays
a full reverse search per candidate.  The crossover arrives after a
handful of candidates.
"""

import random

import pytest

from repro.core.location_selection import LocationSelector
from repro.core.rstknn import RSTkNNSearcher
from repro.spatial import Point

from conftest import get_dataset, get_tree

_state = {}


def setup():
    if not _state:
        dataset = get_dataset(n=300)
        tree = get_tree("iur", n=300)
        rng = random.Random(51)
        _state["dataset"] = dataset
        _state["tree"] = tree
        _state["selector"] = LocationSelector(tree, k=5)
        _state["text"] = " ".join(dataset.objects[0].keywords[:4])
        _state["candidates"] = [
            Point(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(8)
        ]
    return _state


def test_e16_selector_preprocess(bench_one):
    tree = get_tree("iur", n=300)

    def run():
        return LocationSelector(tree, k=5)

    selector = bench_one(run, rounds=2)
    assert selector.preprocess_seconds >= 0.0


def test_e16_influence_per_candidate(bench_one):
    state = setup()
    selector, text = state["selector"], state["text"]
    candidate = state["candidates"][0]

    def run():
        state["tree"].reset_io(cold=True)
        return selector.influence(candidate, text)

    result = bench_one(run)
    query = state["dataset"].make_query(candidate, text)
    assert list(result.influenced) == RSTkNNSearcher(state["tree"]).search(
        query, 5
    ).ids


def test_e16_naive_per_candidate(bench_one):
    state = setup()
    searcher = RSTkNNSearcher(state["tree"])
    candidate = state["candidates"][0]
    query = state["dataset"].make_query(candidate, state["text"])

    def run():
        state["tree"].reset_io(cold=True)
        return searcher.search(query, 5)

    bench_one(run)


@pytest.mark.parametrize("batch", (4, 8))
def test_e16_select_best(bench_one, batch):
    state = setup()

    def run():
        return state["selector"].select_best(
            state["candidates"][:batch], state["text"]
        )

    report = bench_one(run)
    assert len(report.all_results) == batch
