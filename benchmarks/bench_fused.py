"""Fused batch-traversal benchmark: per-query engines vs the fused walk.

Runs the E3-style batch workload (gn-like dataset, sampled queries)
through four execution strategies of
:class:`repro.perf.BatchSearcher` —

* ``per_query_seed`` — the seed object-graph walk, one query at a time;
* ``shared_cache`` — the seed walk with the shared pair-bound cache
  (PR 1's batch mode);
* ``snapshot`` — the columnar per-query snapshot engine (PR 2);
* ``fused`` — the fused group engine (``mode="fused"``): one snapshot
  walk per spatial-locality group, columnar text-bound matrices, and
  group-shared node work —

and writes ``BENCH_fused.json`` with the queries/sec of each and the
fused speedups.  **Per-query parity is a hard gate**: the run exits
non-zero unless every fused query returns identical result ids *and*
identical decision counters to the per-query snapshot engine.

Usage::

    PYTHONPATH=src python benchmarks/bench_fused.py [--quick] [--n N] [--out F]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.bench.gates import median_qps, report_header, results_gate
from repro.index.iurtree import IURTree
from repro.perf import kernels
from repro.perf.batch import BatchSearcher
from repro.workloads import gn_like, sample_queries


def parity_gate(snapshot_bs, fused_bs, queries, k: int) -> None:
    """Exit non-zero on any per-query divergence from the snapshot engine."""
    per = snapshot_bs.run(queries, k).results
    fused = fused_bs.run(queries, k).results
    results_gate(per, fused, "fused vs snapshot")


def bench_modes(
    tree, queries, k: int, rounds: int, group_size: int
) -> Dict[str, object]:
    """Median QPS of each batch strategy; fused parity-gated first."""
    per_seed = BatchSearcher(tree, engine="seed")
    shared = BatchSearcher(tree)  # auto -> seed walk + shared bound cache
    snapshot_bs = BatchSearcher(tree, engine="snapshot")
    fused_bs = BatchSearcher(
        tree, engine="snapshot", mode="fused", group_size=group_size
    )

    # Hard gate (also warms the snapshot, its engines, and every cache).
    parity_gate(snapshot_bs, fused_bs, queries, k)

    def round_for(bs, latency_sink):
        def run_round() -> float:
            started = time.perf_counter()
            run = bs.run(queries, k)
            latency_sink.clear()
            latency_sink.update(run.stats.latency_ms)
            return time.perf_counter() - started

        return run_round

    n = len(queries)
    seed_lat: Dict[str, float] = {}
    shared_lat: Dict[str, float] = {}
    snapshot_lat: Dict[str, float] = {}
    fused_lat: Dict[str, float] = {}
    seed_qps = median_qps(round_for(per_seed, seed_lat), n, rounds)
    shared_qps = median_qps(round_for(shared, shared_lat), n, rounds)
    snapshot_qps = median_qps(round_for(snapshot_bs, snapshot_lat), n, rounds)
    fused_qps = median_qps(round_for(fused_bs, fused_lat), n, rounds)
    return {
        "queries": n,
        "k": k,
        "group_size": group_size,
        "parity": "ok",
        "per_query_seed_qps": seed_qps,
        "shared_cache_qps": shared_qps,
        "snapshot_qps": snapshot_qps,
        "fused_qps": fused_qps,
        "per_query_seed_latency_ms": dict(seed_lat),
        "shared_cache_latency_ms": dict(shared_lat),
        "snapshot_latency_ms": dict(snapshot_lat),
        "fused_latency_ms": dict(fused_lat),
        "speedup_fused_vs_snapshot": fused_qps / snapshot_qps,
        "speedup_fused_vs_shared_cache": fused_qps / shared_qps,
        "speedup_fused_vs_seed": fused_qps / seed_qps,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--n", type=int, default=None, help="dataset size")
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--group-size", type=int, default=None)
    parser.add_argument("--out", default="BENCH_fused.json")
    parser.add_argument(
        "--backend",
        choices=kernels.KERNEL_BACKENDS,
        default="auto",
        help="kernel backend to bench (default: auto dispatch, the "
        "production path — numpy kernels above the size cutover)",
    )
    args = parser.parse_args(argv)
    kernels.set_backend(args.backend)

    n = args.n if args.n is not None else (150 if args.quick else 400)
    n_queries = 4 if args.quick else 12
    rounds = 1 if args.quick else 5
    group_size = (
        args.group_size
        if args.group_size is not None
        else (4 if args.quick else 8)
    )

    from repro.core.fused import make_groups
    from repro.obs import PhaseTimer

    timer = PhaseTimer()
    dataset = gn_like(n=n)
    with timer.phase("build"):
        tree = IURTree.build(dataset)
    with timer.phase("freeze"):
        tree.warm_kernels()
        snapshot = tree.snapshot()
    queries = sample_queries(dataset, n_queries, seed=99)
    with timer.phase("group"):
        make_groups(queries, group_size)
    with timer.phase("walk"):
        modes = bench_modes(tree, queries, args.k, rounds, group_size)

    report = report_header(n, args.quick, timer=timer, snapshot=snapshot)
    report["text_matrix"] = snapshot.text_matrix().describe()
    report["modes"] = modes

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    speedup = report["modes"]["speedup_fused_vs_snapshot"]
    print(f"fused batch speedup vs per-query snapshot engine: {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
