"""E5 — effect of the CIUR-tree's cluster count NC.

Shape: more clusters tighten textual bounds (cost falls, then levels
off) while index pages grow — the paper's NC tradeoff.
"""

import pytest

from repro.config import IndexConfig
from repro.core.rstknn import RSTkNNSearcher
from repro.index.ciurtree import CIURTree
from repro.index.iurtree import IURTree

from conftest import get_dataset, get_queries

NCS = (1, 4, 8, 16)

_trees = {}


def tree_for(nc):
    if nc not in _trees:
        dataset = get_dataset("shop")
        cfg = IndexConfig(num_clusters=max(nc, 1))
        if nc == 1:
            _trees[nc] = IURTree.build(dataset, cfg)
        else:
            _trees[nc] = CIURTree.build(dataset, cfg)
    return _trees[nc]


@pytest.mark.parametrize("nc", NCS)
def test_e5_query_vs_clusters(bench_one, nc):
    tree = tree_for(nc)
    searcher = RSTkNNSearcher(tree)
    query = get_queries("shop", count=1)[0]

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, 5)

    result = bench_one(run)
    assert result.ids == RSTkNNSearcher(tree_for(1)).search(query, 5).ids


def test_e5_index_grows_with_clusters():
    """Per-cluster summaries cost space: pages non-decreasing in NC."""
    assert tree_for(16).stats().pages >= tree_for(1).stats().pages
