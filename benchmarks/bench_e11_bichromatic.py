"""E11 — bichromatic BRSTkNN: group search vs per-user probing.

Shape: the group method's cost scales with the *decided frontier*, the
per-user method with |U| — the group method wins as the user population
grows.
"""

import pytest

from repro.core.bichromatic import BichromaticRSTkNN
from repro.index.iurtree import IURTree
from repro.model.dataset import STDataset
from repro.workloads import (
    WorkloadSpec,
    generate_corpus,
    generate_user_corpus,
    sample_queries,
)

_state = {}


def setup():
    if not _state:
        spec = WorkloadSpec(n_objects=300, seed=31)
        objects = STDataset.from_corpus(generate_corpus(spec))
        users = objects.derive(generate_user_corpus(spec, 120))
        _state["objects"] = objects
        _state["engine"] = BichromaticRSTkNN(
            IURTree.build(users), IURTree.build(objects)
        )
        _state["query"] = sample_queries(objects, 1, seed=32)[0]
    return _state


@pytest.mark.parametrize("k", (1, 5, 10))
def test_e11_group_search(bench_one, k):
    state = setup()
    engine, query = state["engine"], state["query"]

    def run():
        engine.object_tree.reset_io(cold=True)
        engine.user_tree.reset_io(cold=True)
        return engine.search(query, k)

    result = bench_one(run)
    assert result.user_ids == engine.search_per_user(query, k)


@pytest.mark.parametrize("k", (1, 10))
def test_e11_per_user_search(bench_one, k):
    state = setup()
    engine, query = state["engine"], state["query"]

    def run():
        engine.object_tree.reset_io(cold=True)
        return engine.search_per_user(query, k)

    bench_one(run, rounds=2)
