"""E13 — construction strategy ablation: STR vs text-aware STR vs insert.

Shape: STR builds fastest; text-str pays a per-cluster packing pass but
yields textually purer leaves; insertion is the slow path that exercises
the split machinery.
"""

import pytest

from repro.config import IndexConfig
from repro.core.rstknn import RSTkNNSearcher
from repro.index.ciurtree import CIURTree

from conftest import get_dataset, get_queries

_trees = {}


def tree_for(method):
    if method not in _trees:
        _trees[method] = CIURTree.build(
            get_dataset("shop", n=300), IndexConfig(num_clusters=8), method=method
        )
    return _trees[method]


@pytest.mark.parametrize("method", ["str", "text-str", "insert"])
def test_e13_build(bench_one, method):
    dataset = get_dataset("shop", n=300)

    def run():
        return CIURTree.build(dataset, IndexConfig(num_clusters=8), method=method)

    tree = bench_one(run, rounds=2)
    assert tree.stats().objects == 300


@pytest.mark.parametrize("method", ["str", "text-str"])
def test_e13_query_on_variant(bench_one, method):
    tree = tree_for(method)
    searcher = RSTkNNSearcher(tree)
    query = get_queries("shop", n=300, count=1)[0]

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, 5)

    result = bench_one(run)
    assert result.ids == RSTkNNSearcher(tree_for("str")).search(query, 5).ids
