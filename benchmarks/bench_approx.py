"""Approx-tier benchmark: frozen kNNL floors + the sketch-filter engine.

Runs the E3-style single-query workload (gn-like dataset, sampled
queries) through four tiers of
:class:`repro.core.rstknn.RSTkNNSearcher` over a ``k x alpha`` sweep —

* ``snapshot`` — the exact columnar engine (the parity reference);
* ``warm`` — the same engine seeded with frozen kNNL warm-start floors
  (``warm_floors=True``): **bit-identical ids by construction**, only
  pruning gets earlier;
* ``approx verified`` — ``engine="approx", verify=True``: the sketch
  filter generates a conservative candidate superset, every survivor is
  verified exactly (**byte-identical ids**);
* ``approx raw`` — ``engine="approx", verify=False``: the raw filter
  output, with recall/precision measured against the exact reference —

and writes ``BENCH_approx.json`` with QPS, speedups, recall/precision,
the sketch build cost (time and bytes, also under
``report["phases"]``), and the filter counters.

**Five hard gates** (the run exits non-zero on any failure):

1. warm floors and verified approx must return ids identical to the
   exact snapshot engine in every cell — always armed, ``--quick``
   included;
2. raw-filter recall must be exactly 1.0 in every cell — always armed
   (the conservative sketch guarantees it by construction, so any dip
   is a soundness bug, not a tuning miss);
3. warm-floor single-query QPS must be >= 1.2x the snapshot engine in
   the headline cell — armed at ``n >= 50_000`` (floors only matter
   once contribution lists dominate);
4. raw-filter precision must be >= 10x the pre-true-kNN baseline in
   every baselined cell — armed at ``n >= 50_000``; smaller runs
   (``--quick`` included) instead gate on an absolute small-n floor,
   so the smoke tier still catches precision regressions;
5. verified-mode QPS must be strictly above the pre-true-kNN baseline
   in every baselined cell — armed at ``n >= 50_000``.

Usage::

    PYTHONPATH=src python benchmarks/bench_approx.py [--quick] [--n N]
        [--k K [K ...]] [--alpha A [A ...]] [--out F] [--no-lsh]
        [--sample-frac F]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.bench.gates import ids_gate, median_qps, report_header, timed
from repro.config import SimilarityConfig
from repro.core.rstknn import RSTkNNSearcher
from repro.index.iurtree import IURTree
from repro.obs import MetricsRegistry
from repro.perf import kernels
from repro.workloads import gn_like, sample_queries

#: The warm-floor QPS gate only arms at scale — below this, walks are
#: too short for freeze-time floors to beat their own bookkeeping.
GATE_N = 50_000
WARM_SPEEDUP_GATE = 1.2

#: The conservative sketch guarantees recall 1.0 by construction, so
#: the gate is exact: anything below is a soundness bug.
RECALL_GATE = 1.0

#: Raw-filter precision of the layout-window-only sketch (the
#: pre-true-kNN build) at n=100_000 — the baseline the true-kNN curve
#: fits must beat by PRECISION_MULTIPLE_GATE.
_BASELINE_PRECISION = {
    (4, 0.3): 0.011241,
    (4, 0.6): 0.025641,
    (8, 0.3): 0.009395,
    (8, 0.6): 0.022358,
}

#: Verified-mode QPS of the same baseline build at n=100_000; the
#: tighter floors must strictly improve every baselined cell.
_BASELINE_VERIFIED_QPS = {
    (4, 0.3): 1.01185,
    (4, 0.6): 5.64065,
    (8, 0.3): 0.26303,
    (8, 0.6): 1.21472,
}

PRECISION_MULTIPLE_GATE = 10.0

#: Absolute raw-precision floor for sub-GATE_N runs (the CI smoke
#: tier): small corpora run far above this, so a trip means the curve
#: fits or the LSH stage regressed, not that the workload drifted.
QUICK_PRECISION_GATE = 0.05

#: Budgets swept by the budget-vs-tightness section of the report.
BUDGET_SWEEP = (64, 256, 1024)


def recall_precision(
    reference: List[List[int]], got: List[List[int]]
) -> Dict[str, float]:
    """Micro-averaged recall/precision of ``got`` against ``reference``."""
    hits = ref_total = got_total = 0
    for ref_ids, got_ids in zip(reference, got):
        ref_set = set(ref_ids)
        hits += sum(1 for i in got_ids if i in ref_set)
        ref_total += len(ref_ids)
        got_total += len(got_ids)
    return {
        "recall": hits / ref_total if ref_total else 1.0,
        "precision": hits / got_total if got_total else 1.0,
        "reference_results": ref_total,
        "returned_results": got_total,
    }


def bench_cell(
    tree,
    queries,
    k: int,
    alpha: float,
    rounds: int,
    metrics,
    lsh: bool = True,
    sample_frac=None,
) -> Dict[str, object]:
    """Gates + QPS for one ``(k, alpha)`` cell of the sweep."""
    config = SimilarityConfig(alpha=alpha)
    knobs = dict(sketch_sample_frac=sample_frac, approx_lsh=lsh)
    base = RSTkNNSearcher(tree, config=config, engine="snapshot")
    warm = RSTkNNSearcher(
        tree, config=config, engine="snapshot", warm_floors=True, **knobs
    )
    verified = RSTkNNSearcher(
        tree, config=config, engine="approx", approx_verify=True, **knobs
    )
    raw = RSTkNNSearcher(
        tree,
        config=config,
        engine="approx",
        approx_verify=False,
        metrics=metrics,
        **knobs,
    )
    label = f"k={k} alpha={alpha}"

    # Hard gates first (also warms every engine, sketch, and memo).
    reference = [base.search(q, k).ids for q in queries]
    ids_gate(
        reference,
        [warm.search(q, k).ids for q in queries],
        f"warm floors vs snapshot, {label}",
    )
    ids_gate(
        reference,
        [verified.search(q, k).ids for q in queries],
        f"approx verify=True vs snapshot, {label}",
    )

    # Per-cell candidate-flow counters: delta around the quality pass
    # (the engine's own counters are cumulative across cells).
    snap = tree.snapshot()
    raw_engine = snap.approx_engine_for(
        tree, raw.measure, raw.alpha, raw.te_weight, verify=False,
        sample_frac=sample_frac, lsh=lsh,
    )
    before = dict(raw_engine.counters)
    quality = recall_precision(
        reference, [raw.search(q, k).ids for q in queries]
    )
    flow = {
        key: raw_engine.counters[key] - before.get(key, 0)
        for key in ("candidates", "lsh_pruned", "answers")
    }
    if quality["recall"] < RECALL_GATE:
        raise SystemExit(
            f"recall gate FAILED ({label}): "
            f"{quality['recall']:.4f} < {RECALL_GATE}"
        )
    metrics.gauge("approx.recall").set(quality["recall"])

    n = len(queries)

    def sweep(searcher):
        def run() -> None:
            for q in queries:
                searcher.search(q, k)

        return median_qps(timed(run), n, rounds)

    snapshot_qps = sweep(base)
    warm_qps = sweep(warm)
    verified_qps = sweep(verified)
    raw_qps = sweep(raw)

    # The memoized filter engine exposes its cumulative counters.
    filter_counters = dict(raw_engine.counters)

    return {
        "k": k,
        "alpha": alpha,
        "queries": n,
        "parity": "ok",
        "recall": quality["recall"],
        "precision": quality["precision"],
        "reference_results": quality["reference_results"],
        "returned_results": quality["returned_results"],
        "candidates_per_query": flow["candidates"] / n,
        "lsh_pruned_per_query": flow["lsh_pruned"] / n,
        "answers_per_query": flow["answers"] / n,
        "candidate_precision": (
            flow["answers"] / flow["candidates"]
            if flow["candidates"]
            else 1.0
        ),
        "snapshot_qps": snapshot_qps,
        "warm_floors_qps": warm_qps,
        "approx_verified_qps": verified_qps,
        "approx_raw_qps": raw_qps,
        "speedup_warm_vs_snapshot": warm_qps / snapshot_qps,
        "speedup_verified_vs_snapshot": verified_qps / snapshot_qps,
        "speedup_raw_vs_snapshot": raw_qps / snapshot_qps,
        "filter_counters": filter_counters,
    }


def budget_sweep(
    tree, snapshot, queries, k: int, alpha: float
) -> List[Dict[str, object]]:
    """Budget-vs-tightness rows: per-budget frontier shape, row
    tightness, and raw-filter precision (window-only sketches, so the
    sweep isolates the node-floor lever from the curve fits)."""
    config = SimilarityConfig(alpha=alpha)
    s = RSTkNNSearcher(tree, config=config, engine="snapshot")
    base = RSTkNNSearcher(tree, config=config, engine="snapshot")
    reference = [base.search(q, k).ids for q in queries]
    rows = []
    for budget in BUDGET_SWEEP:
        engine = snapshot.approx_engine_for(
            tree, s.measure, s.alpha, s.te_weight,
            verify=False, budget=budget, sample_frac=0.0, lsh=False,
        )
        quality = recall_precision(
            reference, [engine.search(q, k).ids for q in queries]
        )
        desc = engine.sketch.describe()
        rows.append(
            {
                "budget": budget,
                "frontier_size": desc["frontier_size"],
                "row_objects_max": desc["row_objects_max"],
                "row_objects_mean": desc["row_objects_mean"],
                "build_seconds": desc["build_seconds"],
                "recall": quality["recall"],
                "precision": quality["precision"],
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--n", type=int, default=None, help="dataset size")
    parser.add_argument(
        "--k", type=int, nargs="+", default=None, help="k sweep values"
    )
    parser.add_argument(
        "--alpha",
        type=float,
        nargs="+",
        default=None,
        help="alpha sweep values",
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--out", default="BENCH_approx.json")
    parser.add_argument(
        "--no-lsh",
        action="store_true",
        help="disable the approx engine's LSH pre-filter stage",
    )
    parser.add_argument(
        "--sample-frac",
        type=float,
        default=None,
        help="true-kNN curve sampling fraction (default: the sketch "
        "default, 1.0)",
    )
    parser.add_argument(
        "--backend",
        choices=kernels.KERNEL_BACKENDS,
        default="auto",
        help="kernel backend to bench (default: auto dispatch, the "
        "production path)",
    )
    args = parser.parse_args(argv)
    kernels.set_backend(args.backend)

    n = args.n if args.n is not None else (400 if args.quick else 100_000)
    ks = args.k if args.k is not None else ([4] if args.quick else [4, 8])
    alphas = (
        args.alpha
        if args.alpha is not None
        else ([0.5] if args.quick else [0.3, 0.6])
    )
    n_queries = (
        args.queries if args.queries is not None else (4 if args.quick else 8)
    )
    rounds = 1 if args.quick else 3

    from repro.obs import PhaseTimer

    timer = PhaseTimer()
    dataset = gn_like(n=n)
    with timer.phase("build"):
        tree = IURTree.build(dataset)
    with timer.phase("freeze"):
        tree.warm_kernels()
        snapshot = tree.snapshot()
    queries = sample_queries(dataset, n_queries, seed=99)

    # Build the sketch for every sweep setting inside one timed phase so
    # the report separates freeze-time cost from per-query wins.
    sketches = []
    with timer.phase("sketch"):
        for alpha in alphas:
            config = SimilarityConfig(alpha=alpha)
            s = RSTkNNSearcher(tree, config=config, engine="snapshot")
            sketch = snapshot.sketch_for(
                snapshot.engine_for(tree, s.measure, s.alpha, s.te_weight),
                sample_frac=args.sample_frac,
            )
            sketches.append(dict(sketch.describe(), alpha=alpha))

    metrics = MetricsRegistry()
    lsh = not args.no_lsh
    with timer.phase("walk"):
        cells = [
            bench_cell(
                tree, queries, k, alpha, rounds, metrics,
                lsh=lsh, sample_frac=args.sample_frac,
            )
            for k in ks
            for alpha in alphas
        ]

    with timer.phase("budget_sweep"):
        budgets = budget_sweep(
            tree, snapshot, queries, ks[0], alphas[0]
        )

    headline = cells[0]
    gate_armed = n >= GATE_N
    if gate_armed and (
        headline["speedup_warm_vs_snapshot"] < WARM_SPEEDUP_GATE
    ):
        raise SystemExit(
            f"warm-floor QPS gate FAILED (k={headline['k']} "
            f"alpha={headline['alpha']}): "
            f"{headline['speedup_warm_vs_snapshot']:.3f}x < "
            f"{WARM_SPEEDUP_GATE}x at n={n}"
        )

    # Precision and verified-QPS gates: against the pre-true-kNN
    # baseline at scale, against the absolute smoke floor below it.
    for cell in cells:
        key = (cell["k"], cell["alpha"])
        label = f"k={key[0]} alpha={key[1]}"
        if gate_armed:
            baseline = _BASELINE_PRECISION.get(key)
            if baseline is not None and (
                cell["precision"] < PRECISION_MULTIPLE_GATE * baseline
            ):
                raise SystemExit(
                    f"precision gate FAILED ({label}): "
                    f"{cell['precision']:.4f} < "
                    f"{PRECISION_MULTIPLE_GATE}x baseline {baseline:.4f}"
                )
            qps_floor = _BASELINE_VERIFIED_QPS.get(key)
            if qps_floor is not None and (
                cell["approx_verified_qps"] <= qps_floor
            ):
                raise SystemExit(
                    f"verified-QPS gate FAILED ({label}): "
                    f"{cell['approx_verified_qps']:.3f} <= baseline "
                    f"{qps_floor:.3f}"
                )
        elif cell["precision"] < QUICK_PRECISION_GATE:
            raise SystemExit(
                f"small-n precision gate FAILED ({label}): "
                f"{cell['precision']:.4f} < {QUICK_PRECISION_GATE}"
            )

    report = report_header(n, args.quick, timer=timer, snapshot=snapshot)
    report["gates"] = {
        "parity": "ok",
        "recall_gate": RECALL_GATE,
        "warm_speedup_gate": WARM_SPEEDUP_GATE,
        "warm_speedup_gate_armed": gate_armed,
        "warm_speedup_gate_n": GATE_N,
        "precision_multiple_gate": PRECISION_MULTIPLE_GATE,
        "precision_baseline": {
            f"{k},{a}": v for (k, a), v in _BASELINE_PRECISION.items()
        },
        "verified_qps_baseline": {
            f"{k},{a}": v
            for (k, a), v in _BASELINE_VERIFIED_QPS.items()
        },
        "quick_precision_gate": QUICK_PRECISION_GATE,
        "lsh": lsh,
        "sample_frac": args.sample_frac,
    }
    report["sketches"] = sketches
    report["cells"] = cells
    report["budget_sweep"] = budgets
    report["approx_metrics"] = metrics.snapshot()

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    print(
        f"headline (k={headline['k']} alpha={headline['alpha']}): "
        f"warm floors {headline['speedup_warm_vs_snapshot']:.2f}x, "
        f"approx raw {headline['speedup_raw_vs_snapshot']:.2f}x vs "
        f"snapshot; recall {headline['recall']:.4f}, "
        f"precision {headline['precision']:.4f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
