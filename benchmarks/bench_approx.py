"""Approx-tier benchmark: frozen kNNL floors + the sketch-filter engine.

Runs the E3-style single-query workload (gn-like dataset, sampled
queries) through four tiers of
:class:`repro.core.rstknn.RSTkNNSearcher` over a ``k x alpha`` sweep —

* ``snapshot`` — the exact columnar engine (the parity reference);
* ``warm`` — the same engine seeded with frozen kNNL warm-start floors
  (``warm_floors=True``): **bit-identical ids by construction**, only
  pruning gets earlier;
* ``approx verified`` — ``engine="approx", verify=True``: the sketch
  filter generates a conservative candidate superset, every survivor is
  verified exactly (**byte-identical ids**);
* ``approx raw`` — ``engine="approx", verify=False``: the raw filter
  output, with recall/precision measured against the exact reference —

and writes ``BENCH_approx.json`` with QPS, speedups, recall/precision,
the sketch build cost (time and bytes, also under
``report["phases"]``), and the filter counters.

**Three hard gates** (the run exits non-zero on any failure):

1. warm floors and verified approx must return ids identical to the
   exact snapshot engine in every cell — always armed, ``--quick``
   included;
2. raw-filter recall must be >= 0.95 in every cell — always armed (the
   conservative sketch makes it 1.0 by construction, so any dip is a
   soundness bug, not a tuning miss);
3. warm-floor single-query QPS must be >= 1.2x the snapshot engine in
   the headline cell — armed at ``n >= 50_000`` (floors only matter
   once contribution lists dominate).

Usage::

    PYTHONPATH=src python benchmarks/bench_approx.py [--quick] [--n N]
        [--k K [K ...]] [--alpha A [A ...]] [--out F]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.bench.gates import ids_gate, median_qps, report_header, timed
from repro.config import SimilarityConfig
from repro.core.rstknn import RSTkNNSearcher
from repro.index.iurtree import IURTree
from repro.obs import MetricsRegistry
from repro.perf import kernels
from repro.workloads import gn_like, sample_queries

#: The warm-floor QPS gate only arms at scale — below this, walks are
#: too short for freeze-time floors to beat their own bookkeeping.
GATE_N = 50_000
WARM_SPEEDUP_GATE = 1.2
RECALL_GATE = 0.95


def recall_precision(
    reference: List[List[int]], got: List[List[int]]
) -> Dict[str, float]:
    """Micro-averaged recall/precision of ``got`` against ``reference``."""
    hits = ref_total = got_total = 0
    for ref_ids, got_ids in zip(reference, got):
        ref_set = set(ref_ids)
        hits += sum(1 for i in got_ids if i in ref_set)
        ref_total += len(ref_ids)
        got_total += len(got_ids)
    return {
        "recall": hits / ref_total if ref_total else 1.0,
        "precision": hits / got_total if got_total else 1.0,
        "reference_results": ref_total,
        "returned_results": got_total,
    }


def bench_cell(
    tree, queries, k: int, alpha: float, rounds: int, metrics
) -> Dict[str, object]:
    """Gates + QPS for one ``(k, alpha)`` cell of the sweep."""
    config = SimilarityConfig(alpha=alpha)
    base = RSTkNNSearcher(tree, config=config, engine="snapshot")
    warm = RSTkNNSearcher(
        tree, config=config, engine="snapshot", warm_floors=True
    )
    verified = RSTkNNSearcher(
        tree, config=config, engine="approx", approx_verify=True
    )
    raw = RSTkNNSearcher(
        tree,
        config=config,
        engine="approx",
        approx_verify=False,
        metrics=metrics,
    )
    label = f"k={k} alpha={alpha}"

    # Hard gates first (also warms every engine, sketch, and memo).
    reference = [base.search(q, k).ids for q in queries]
    ids_gate(
        reference,
        [warm.search(q, k).ids for q in queries],
        f"warm floors vs snapshot, {label}",
    )
    ids_gate(
        reference,
        [verified.search(q, k).ids for q in queries],
        f"approx verify=True vs snapshot, {label}",
    )
    quality = recall_precision(
        reference, [raw.search(q, k).ids for q in queries]
    )
    if quality["recall"] < RECALL_GATE:
        raise SystemExit(
            f"recall gate FAILED ({label}): "
            f"{quality['recall']:.4f} < {RECALL_GATE}"
        )
    metrics.gauge("approx.recall").set(quality["recall"])

    n = len(queries)

    def sweep(searcher):
        def run() -> None:
            for q in queries:
                searcher.search(q, k)

        return median_qps(timed(run), n, rounds)

    snapshot_qps = sweep(base)
    warm_qps = sweep(warm)
    verified_qps = sweep(verified)
    raw_qps = sweep(raw)

    # The memoized filter engine exposes its cumulative counters.
    snap = tree.snapshot()
    filter_counters = dict(
        snap.approx_engine_for(
            tree, raw.measure, raw.alpha, raw.te_weight, verify=False
        ).counters
    )

    return {
        "k": k,
        "alpha": alpha,
        "queries": n,
        "parity": "ok",
        "recall": quality["recall"],
        "precision": quality["precision"],
        "reference_results": quality["reference_results"],
        "returned_results": quality["returned_results"],
        "snapshot_qps": snapshot_qps,
        "warm_floors_qps": warm_qps,
        "approx_verified_qps": verified_qps,
        "approx_raw_qps": raw_qps,
        "speedup_warm_vs_snapshot": warm_qps / snapshot_qps,
        "speedup_verified_vs_snapshot": verified_qps / snapshot_qps,
        "speedup_raw_vs_snapshot": raw_qps / snapshot_qps,
        "filter_counters": filter_counters,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--n", type=int, default=None, help="dataset size")
    parser.add_argument(
        "--k", type=int, nargs="+", default=None, help="k sweep values"
    )
    parser.add_argument(
        "--alpha",
        type=float,
        nargs="+",
        default=None,
        help="alpha sweep values",
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--out", default="BENCH_approx.json")
    parser.add_argument(
        "--backend",
        choices=kernels.KERNEL_BACKENDS,
        default="auto",
        help="kernel backend to bench (default: auto dispatch, the "
        "production path)",
    )
    args = parser.parse_args(argv)
    kernels.set_backend(args.backend)

    n = args.n if args.n is not None else (400 if args.quick else 100_000)
    ks = args.k if args.k is not None else ([4] if args.quick else [4, 8])
    alphas = (
        args.alpha
        if args.alpha is not None
        else ([0.5] if args.quick else [0.3, 0.6])
    )
    n_queries = (
        args.queries if args.queries is not None else (4 if args.quick else 8)
    )
    rounds = 1 if args.quick else 3

    from repro.obs import PhaseTimer

    timer = PhaseTimer()
    dataset = gn_like(n=n)
    with timer.phase("build"):
        tree = IURTree.build(dataset)
    with timer.phase("freeze"):
        tree.warm_kernels()
        snapshot = tree.snapshot()
    queries = sample_queries(dataset, n_queries, seed=99)

    # Build the sketch for every sweep setting inside one timed phase so
    # the report separates freeze-time cost from per-query wins.
    sketches = []
    with timer.phase("sketch"):
        for alpha in alphas:
            config = SimilarityConfig(alpha=alpha)
            s = RSTkNNSearcher(tree, config=config, engine="snapshot")
            sketch = snapshot.sketch_for(
                snapshot.engine_for(tree, s.measure, s.alpha, s.te_weight)
            )
            sketches.append(dict(sketch.describe(), alpha=alpha))

    metrics = MetricsRegistry()
    with timer.phase("walk"):
        cells = [
            bench_cell(tree, queries, k, alpha, rounds, metrics)
            for k in ks
            for alpha in alphas
        ]

    headline = cells[0]
    gate_armed = n >= GATE_N
    if gate_armed and (
        headline["speedup_warm_vs_snapshot"] < WARM_SPEEDUP_GATE
    ):
        raise SystemExit(
            f"warm-floor QPS gate FAILED (k={headline['k']} "
            f"alpha={headline['alpha']}): "
            f"{headline['speedup_warm_vs_snapshot']:.3f}x < "
            f"{WARM_SPEEDUP_GATE}x at n={n}"
        )

    report = report_header(n, args.quick, timer=timer, snapshot=snapshot)
    report["gates"] = {
        "parity": "ok",
        "recall_gate": RECALL_GATE,
        "warm_speedup_gate": WARM_SPEEDUP_GATE,
        "warm_speedup_gate_armed": gate_armed,
        "warm_speedup_gate_n": GATE_N,
    }
    report["sketches"] = sketches
    report["cells"] = cells
    report["approx_metrics"] = metrics.snapshot()

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    print(
        f"headline (k={headline['k']} alpha={headline['alpha']}): "
        f"warm floors {headline['speedup_warm_vs_snapshot']:.2f}x, "
        f"approx raw {headline['speedup_raw_vs_snapshot']:.2f}x vs "
        f"snapshot; recall {headline['recall']:.4f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
