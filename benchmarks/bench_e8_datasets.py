"""E8 — dataset character: gazetteer vs long-document vs categorized POI.

Shape: the clustered tree's advantage is largest on the categorized
corpus (clean text clusters), smallest on the gazetteer whose short
random tags cluster poorly.
"""

import pytest

from repro.core.baseline import BruteForceRSTkNN
from repro.core.rstknn import RSTkNNSearcher

from conftest import get_dataset, get_queries, get_tree

DATASETS = ("gn", "cd", "shop")


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("method", ["iur", "ciur"])
def test_e8_dataset_character(bench_one, name, method):
    n = 300
    tree = get_tree(method, name=name, n=n)
    searcher = RSTkNNSearcher(tree)
    query = get_queries(name=name, n=n, count=1)[0]

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, 5)

    result = bench_one(run)
    assert result.ids == BruteForceRSTkNN(get_dataset(name, n)).search(query, 5)
