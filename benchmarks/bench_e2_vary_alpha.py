"""E2 — query cost vs alpha (spatial/textual blend).

Shape: with high alpha the R-tree's spatial grouping drives pruning and
cost falls; with low alpha textual bounds dominate and the clustered
tree closes the gap.
"""

import pytest

from repro.config import SimilarityConfig
from repro.core.baseline import BruteForceRSTkNN
from repro.core.rstknn import RSTkNNSearcher
from repro.bench.harness import build_tree
from repro.workloads import gn_like, sample_queries

ALPHAS = (0.1, 0.5, 0.9)
N = 300

_cache = {}


def setup(alpha, method):
    key = (alpha, method)
    if key not in _cache:
        dataset = gn_like(n=N, config=SimilarityConfig(alpha=alpha))
        tree = build_tree(dataset, method)
        query = sample_queries(dataset, 1, seed=50)[0]
        _cache[key] = (dataset, tree, query)
    return _cache[key]


@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("method", ["iur", "ciur"])
def test_e2_query_vs_alpha(bench_one, alpha, method):
    dataset, tree, query = setup(alpha, method)
    searcher = RSTkNNSearcher(tree)

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, 5)

    result = bench_one(run)
    assert result.ids == BruteForceRSTkNN(dataset).search(query, 5)
