"""LSM live-update benchmark: mixed read/write workload over a LiveIndex.

Runs an interleaved insert/delete/query workload through
:class:`repro.lsm.LiveIndex` — writes land in the delta overlay (deletes
as tombstones), reads run the merged walk while dirty and the frozen
fast paths when clean, and the overlay folds into a fresh frozen
generation whenever it reaches the freeze threshold (the deterministic
stand-in for the background freezer: ``freeze_step()`` is exactly what
the thread calls).  Writes ``BENCH_lsm.json``.

**Hard gates** (the run exits non-zero on any failure):

1. **Parity — always armed, ``--quick`` included.**  At a mid-churn
   dirty checkpoint AND after the final fold, the live index's answers
   must be byte-identical to a tree *freshly built* from the mutated
   dataset.  This is the subsystem's anchor: a fold literally is a
   fresh build, so the merged overlay/tombstone walk has an exact
   reference at every point in the workload.
2. **No per-write re-freeze — always armed.**  The fold count must be
   bounded by ``writes / freeze_threshold`` (+1 for the final explicit
   fold), i.e. maintenance is amortized across the threshold, never
   paid per write.
3. **Write cost << re-freeze cost — armed at ``n >= 50_000``.**  The
   mean per-write latency must be at least 10x cheaper than one fold
   (a full rebuild); below that the overlay would be pointless.

Usage::

    PYTHONPATH=src python benchmarks/bench_lsm.py [--quick] [--n N]
        [--writes W] [--threshold T] [--k K] [--out F]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List

from repro.bench.gates import ids_gate, latency_ms_of, report_header
from repro.core.rstknn import RSTkNNSearcher
from repro.index.iurtree import IURTree
from repro.lsm import LiveIndex
from repro.obs import MetricsRegistry, PhaseTimer
from repro.workloads import gn_like, sample_queries

#: Below this the rebuild is so fast that "write is 10x cheaper than a
#: fold" stops being a meaningful claim, so the cost gate stays off.
GATE_N = 50_000
WRITE_VS_FOLD_GATE = 10.0


def parity_checkpoint(
    live: LiveIndex, dataset, probes, k: int, label: str
) -> float:
    """Gate: live answers == a tree freshly built from the dataset.

    Returns the fresh build's wall time (the re-freeze cost reference).
    """
    started = time.perf_counter()
    fresh_tree = IURTree.build(dataset)
    build_seconds = time.perf_counter() - started
    fresh = RSTkNNSearcher(fresh_tree, engine="seed")
    searcher = RSTkNNSearcher(live)
    ids_gate(
        [fresh.search(q, k).ids for q in probes],
        [searcher.search(q, k).ids for q in probes],
        f"live vs fresh build, {label}",
    )
    return build_seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--n", type=int, default=None, help="dataset size")
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument(
        "--writes", type=int, default=None, help="mixed writes to apply"
    )
    parser.add_argument(
        "--threshold",
        type=int,
        default=None,
        help="freeze threshold (overlay size that triggers a fold)",
    )
    parser.add_argument(
        "--reads", type=int, default=None, help="reads interleaved with writes"
    )
    parser.add_argument("--out", default="BENCH_lsm.json")
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (400 if args.quick else 100_000)
    writes = args.writes if args.writes is not None else (
        40 if args.quick else 1000
    )
    threshold = args.threshold if args.threshold is not None else (
        16 if args.quick else 250
    )
    reads = args.reads if args.reads is not None else (8 if args.quick else 20)

    timer = PhaseTimer()
    registry = MetricsRegistry()
    dataset = gn_like(n=n)
    with timer.phase("build"):
        tree = IURTree.build(dataset)
        tree.warm_kernels()
    live = LiveIndex(tree, metrics=registry, freeze_threshold=threshold)
    probes = sample_queries(dataset, max(reads, 3), seed=99)
    searcher = RSTkNNSearcher(live)

    rng = random.Random(7)
    write_seconds: List[float] = []
    dirty_read_seconds: List[float] = []
    fold_seconds: List[float] = []
    inserted = deleted = 0
    read_every = max(1, writes // max(reads, 1))
    parity_builds: List[float] = []

    with timer.phase("mixed"):
        for i in range(writes):
            started = time.perf_counter()
            if rng.random() < 0.5 and len(dataset) > 2:
                victims = dataset.objects
                live.delete_object(victims[rng.randrange(len(victims))].oid)
                deleted += 1
            else:
                donor = dataset.objects[rng.randrange(len(dataset.objects))]
                live.insert(donor.point, " ".join(donor.keywords))
                inserted += 1
            write_seconds.append(time.perf_counter() - started)

            if (i + 1) % read_every == 0:
                probe = probes[((i + 1) // read_every - 1) % len(probes)]
                started = time.perf_counter()
                searcher.search(probe, args.k)
                dirty_read_seconds.append(time.perf_counter() - started)

            if i == writes // 2:
                if not live.overlay_dirty:  # make the checkpoint dirty
                    donor = dataset.objects[0]
                    live.insert(donor.point, " ".join(donor.keywords))
                    inserted += 1
                parity_builds.append(
                    parity_checkpoint(
                        live, dataset, probes[:3], args.k,
                        f"dirty mid-churn (pending={live.pending()})",
                    )
                )

            if live.pending() >= threshold:
                started = time.perf_counter()
                live.freeze_step()
                fold_seconds.append(time.perf_counter() - started)

    with timer.phase("fold"):
        if live.overlay_dirty:
            started = time.perf_counter()
            live.freeze_step()
            fold_seconds.append(time.perf_counter() - started)

    parity_builds.append(
        parity_checkpoint(live, dataset, probes[:3], args.k, "post-fold")
    )

    clean_read_seconds: List[float] = []
    with timer.phase("clean"):
        for probe in probes:
            started = time.perf_counter()
            searcher.search(probe, args.k)
            clean_read_seconds.append(time.perf_counter() - started)

    live.close()

    folds = len(fold_seconds)
    fold_budget = writes // threshold + 1  # +1: the final explicit fold
    if folds > fold_budget:
        raise SystemExit(
            f"re-freeze gate FAILED: {folds} folds for {writes} writes at "
            f"threshold {threshold} (budget {fold_budget}) — maintenance "
            "is not amortized"
        )
    write_mean = sum(write_seconds) / len(write_seconds)
    fold_mean = sum(fold_seconds) / folds if folds else 0.0
    cost_gate_armed = n >= GATE_N and folds > 0
    if cost_gate_armed and fold_mean < write_mean * WRITE_VS_FOLD_GATE:
        raise SystemExit(
            f"write-cost gate FAILED: mean write {write_mean * 1e3:.3f}ms "
            f"is not {WRITE_VS_FOLD_GATE}x cheaper than a fold "
            f"({fold_mean * 1e3:.1f}ms) at n={n}"
        )

    report = report_header(n, args.quick, timer=timer)
    report["workload"] = {
        "writes": writes,
        "inserts": inserted,
        "deletes": deleted,
        "dirty_reads": len(dirty_read_seconds),
        "clean_reads": len(clean_read_seconds),
        "k": args.k,
        "freeze_threshold": threshold,
    }
    report["gates"] = {
        "parity": "ok",
        "fold_budget": fold_budget,
        "folds": folds,
        "write_vs_fold_gate": WRITE_VS_FOLD_GATE,
        "write_vs_fold_gate_armed": cost_gate_armed,
        "write_vs_fold_gate_n": GATE_N,
    }
    report["writes"] = {
        "mean_ms": write_mean * 1000.0,
        "latency_ms": latency_ms_of(write_seconds),
        "throughput_per_second": (
            len(write_seconds) / sum(write_seconds) if write_seconds else 0.0
        ),
    }
    report["folds"] = {
        "count": folds,
        "total_seconds": sum(fold_seconds),
        "mean_seconds": fold_mean,
        "amortized_per_write_ms": (
            sum(fold_seconds) / writes * 1000.0 if writes else 0.0
        ),
        "fresh_build_seconds": parity_builds,
        "write_vs_fold_ratio": (
            fold_mean / write_mean if write_mean else 0.0
        ),
    }
    report["reads"] = {
        "dirty_latency_ms": latency_ms_of(dirty_read_seconds),
        "clean_latency_ms": latency_ms_of(clean_read_seconds),
        "dirty_qps": (
            len(dirty_read_seconds) / sum(dirty_read_seconds)
            if dirty_read_seconds
            else 0.0
        ),
        "clean_qps": (
            len(clean_read_seconds) / sum(clean_read_seconds)
            if clean_read_seconds
            else 0.0
        ),
    }
    report["lsm_metrics"] = registry.snapshot()

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    print(
        f"headline: {writes} writes absorbed in {folds} folds "
        f"(budget {fold_budget}); mean write {write_mean * 1e3:.3f}ms vs "
        f"fold {fold_mean * 1e3:.1f}ms "
        f"({report['folds']['write_vs_fold_ratio']:.0f}x); parity ok"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
