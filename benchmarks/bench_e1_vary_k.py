"""E1 — query cost vs k (paper analog: the k sweep of the evaluation).

Times one cold RSTkNN query per method per k and asserts result parity
between the tree methods; the expected shape is cost growing with k and
the group-level methods beating the per-object baseline by a widening
margin.
"""

import pytest

from repro.core.baseline import ThresholdBaseline
from repro.core.rstknn import RSTkNNSearcher

from conftest import get_dataset, get_queries, get_tree

KS = (1, 5, 10, 20)


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("method", ["iur", "ciur"])
def test_e1_rstknn_query(bench_one, method, k):
    tree = get_tree(method)
    searcher = RSTkNNSearcher(tree)
    query = get_queries(count=1)[0]

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, k)

    result = bench_one(run)
    assert result.ids == RSTkNNSearcher(get_tree("iur")).search(query, k).ids


@pytest.mark.parametrize("k", (1, 10))
def test_e1_baseline_query(bench_one, k):
    """The per-object top-k baseline, at a reduced scale (it is the slow
    method by design)."""
    tree = get_tree("base", n=200)
    baseline = ThresholdBaseline(tree)
    query = get_queries(n=200, count=1)[0]

    def run():
        tree.reset_io(cold=True)
        return baseline.search(query, k)

    ids = bench_one(run, rounds=1)
    assert ids == RSTkNNSearcher(get_tree("iur", n=200)).search(query, k).ids


def test_e1_io_grows_with_k():
    """Shape check: simulated I/O is non-decreasing in k (more of the
    dataset is undecided at coarse levels as k grows)."""
    tree = get_tree("iur")
    searcher = RSTkNNSearcher(tree)
    query = get_queries(count=1)[0]
    reads = []
    for k in KS:
        tree.reset_io(cold=True)
        searcher.search(query, k)
        reads.append(tree.io.reads)
    assert reads[-1] >= reads[0]
    dataset = get_dataset()
    assert all(r <= tree.stats().pages * 3 for r in reads), (
        f"I/O out of proportion for |D|={len(dataset)}"
    )
