"""Micro/throughput benchmark for the :mod:`repro.perf` subsystem.

Writes ``BENCH_kernels.json`` with ops/sec for:

* ``exact_similarity`` — extended-Jaccard similarity over sampled object
  vector pairs: the seed's sorted-tuple merge-join (reimplemented here
  verbatim as the reference) vs the frozen pure-Python kernel vs the
  numpy kernel (skipped when numpy is unavailable).
* ``interval_bounds`` — MinSimT/MaxSimT interval-vector bounds through
  the production measure.
* ``end_to_end_query`` — single RSTkNN queries per second.
* ``batch_throughput`` — an E3-style query workload through a fresh
  searcher per query (the seed pattern) vs ``BatchSearcher`` with the
  shared bound cache.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_kernels.py [--quick] [--out F]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Tuple

from repro.core.rstknn import RSTkNNSearcher
from repro.index.iurtree import IURTree
from repro.perf import BatchSearcher, kernels
from repro.text.similarity import make_measure
from repro.workloads import gn_like, sample_queries


# ----------------------------------------------------------------------
# Seed reference: the sorted-tuple merge-join SparseVector.dot/sum_min/
# sum_max used before the frozen kernels existed (copied from the seed).
# ----------------------------------------------------------------------

def _seed_dot(a_ids, a_w, b_ids, b_w) -> float:
    i = j = 0
    total = 0.0
    na, nb = len(a_ids), len(b_ids)
    while i < na and j < nb:
        ai, bj = a_ids[i], b_ids[j]
        if ai == bj:
            total += a_w[i] * b_w[j]
            i += 1
            j += 1
        elif ai < bj:
            i += 1
        else:
            j += 1
    return total


def _seed_exact_jaccard(a_ids, a_w, a_nsq, b_ids, b_w, b_nsq) -> float:
    dot = _seed_dot(a_ids, a_w, b_ids, b_w)
    denom = a_nsq + b_nsq - dot
    return dot / denom if denom > 0.0 else 0.0


def _frozen_exact_jaccard(fa, fb) -> float:
    return fa.ext_jaccard(fb)


def _time_ops(fn, pairs, min_seconds: float) -> float:
    """Run ``fn`` over every pair repeatedly; return ops/sec."""
    # Warm-up (freezing, cache effects) happens outside the timed window.
    for a, b in pairs[: len(pairs) // 4 + 1]:
        fn(a, b)
    ops = 0
    started = time.perf_counter()
    while True:
        for a, b in pairs:
            fn(a, b)
        ops += len(pairs)
        elapsed = time.perf_counter() - started
        if elapsed >= min_seconds:
            return ops / elapsed


def bench_exact_similarity(
    dataset, min_seconds: float
) -> Dict[str, float]:
    vectors = [obj.vector for obj in dataset]
    # Every (i, i+stride) pair — mixes near-duplicates and disjoint text.
    pairs_v: List[Tuple] = []
    n = len(vectors)
    for stride in (1, 7, 31):
        pairs_v.extend((vectors[i], vectors[(i + stride) % n]) for i in range(n))

    seed_pairs = [
        (
            (a.term_ids(), tuple(w for _, w in a.items()), a.norm_squared),
            (b.term_ids(), tuple(w for _, w in b.items()), b.norm_squared),
        )
        for a, b in pairs_v
    ]
    out: Dict[str, float] = {}
    out["seed_ops_per_sec"] = _time_ops(
        lambda a, b: _seed_exact_jaccard(*a, *b), seed_pairs, min_seconds
    )

    with kernels.use_backend("python"):
        frozen_pairs = [(a.frozen(), b.frozen()) for a, b in pairs_v]
        out["frozen_python_ops_per_sec"] = _time_ops(
            _frozen_exact_jaccard, frozen_pairs, min_seconds
        )
    out["speedup_frozen_python_vs_seed"] = (
        out["frozen_python_ops_per_sec"] / out["seed_ops_per_sec"]
    )

    if kernels.numpy_available():
        with kernels.use_backend("numpy"):
            frozen_np = [(a.frozen(), b.frozen()) for a, b in pairs_v]
            out["frozen_numpy_ops_per_sec"] = _time_ops(
                _frozen_exact_jaccard, frozen_np, min_seconds
            )
        out["speedup_frozen_numpy_vs_seed"] = (
            out["frozen_numpy_ops_per_sec"] / out["seed_ops_per_sec"]
        )
    else:
        out["frozen_numpy_ops_per_sec"] = None

    # ``auto`` picks a concrete form per vector length (python below the
    # measured crossover) — this row is what production sees by default.
    # Freeze directly: under ``auto`` the vectors' cached forms from the
    # sections above are still "current", so ``.frozen()`` would measure
    # whichever backend ran last instead of auto's own choice.
    with kernels.use_backend("auto"):
        frozen_auto = [
            (
                kernels.freeze(
                    a.term_ids(),
                    tuple(w for _, w in a.items()),
                    a.norm_squared,
                ),
                kernels.freeze(
                    b.term_ids(),
                    tuple(w for _, w in b.items()),
                    b.norm_squared,
                ),
            )
            for a, b in pairs_v
        ]
        out["frozen_auto_ops_per_sec"] = _time_ops(
            _frozen_exact_jaccard, frozen_auto, min_seconds
        )
    out["speedup_frozen_auto_vs_seed"] = (
        out["frozen_auto_ops_per_sec"] / out["seed_ops_per_sec"]
    )
    out["auto_crossover_terms"] = kernels.auto_crossover()
    # Leave the vectors frozen under the default backend again.
    for a, b in pairs_v:
        a.frozen(), b.frozen()
    return out


def bench_interval_bounds(tree, min_seconds: float) -> Dict[str, float]:
    measure = make_measure(tree.dataset.config.text_measure)
    ivs = [
        iv
        for node in tree.rtree.nodes.values()
        for entry in node.entries
        for iv in entry.clusters.values()
    ]
    n = len(ivs)
    pairs = [(ivs[i], ivs[(i + 3) % n]) for i in range(n)]

    def both_bounds(a, b):
        measure.min_similarity(a, b)
        measure.max_similarity(a, b)

    return {
        "pairs": len(pairs),
        "bound_pairs_per_sec": _time_ops(both_bounds, pairs, min_seconds),
    }


def bench_end_to_end(tree, queries, k: int, min_seconds: float) -> Dict[str, float]:
    searcher = RSTkNNSearcher(tree)
    qp = [(q, k) for q in queries]
    return {
        "queries_per_sec": _time_ops(
            lambda q, kk: searcher.search(q, kk), qp, min_seconds
        )
    }


def bench_batch(tree, queries, k: int, repeats: int) -> Dict[str, float]:
    n = len(queries)

    def per_query_round() -> float:
        # Seed pattern: a fresh seed-walk searcher per query, nothing
        # shared (pinned explicitly — under ``auto`` a fresh searcher
        # would silently pick the snapshot engine and stop being the
        # baseline this row claims to be).
        started = time.perf_counter()
        for q in queries:
            RSTkNNSearcher(tree, engine="seed").search(q, k)
        return n / (time.perf_counter() - started)

    engine = BatchSearcher(tree, workers=1)
    engine.run(queries, k)  # warm the shared cache once, untimed

    def batch_round() -> float:
        started = time.perf_counter()
        engine.run(queries, k)
        return n / (time.perf_counter() - started)

    snap_engine = BatchSearcher(tree, workers=1, engine="snapshot")
    snap_engine.run(queries, k)  # freeze the snapshot once, untimed

    def batch_snapshot_round() -> float:
        started = time.perf_counter()
        snap_engine.run(queries, k)
        return n / (time.perf_counter() - started)

    # Median of several interleaved rounds — queries are milliseconds
    # each, so single rounds are noisy.
    rounds = max(3, repeats)
    seed_rates = sorted(per_query_round() for _ in range(rounds))
    batch_rates = sorted(batch_round() for _ in range(rounds))
    snap_rates = sorted(batch_snapshot_round() for _ in range(rounds))
    seed_qps = seed_rates[rounds // 2]
    batch_qps = batch_rates[rounds // 2]
    snap_qps = snap_rates[rounds // 2]
    return {
        "queries": n,
        "k": k,
        "per_query_qps": seed_qps,
        "batch_shared_cache_qps": batch_qps,
        "batch_snapshot_engine_qps": snap_qps,
        "speedup_batch_vs_per_query": batch_qps / seed_qps,
        "speedup_batch_snapshot_vs_per_query": snap_qps / seed_qps,
        "cache": engine.bound_cache.stats().as_dict(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default="BENCH_kernels.json")
    parser.add_argument("--n", type=int, default=None, help="dataset size")
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (200 if args.quick else 400)
    min_seconds = 0.2 if args.quick else 1.0
    repeats = 1 if args.quick else 3
    n_queries = 6 if args.quick else 12

    dataset = gn_like(n=n)
    tree = IURTree.build(dataset)
    tree.warm_kernels()
    queries = sample_queries(dataset, n_queries, seed=99)

    from repro.bench.meta import bench_metadata

    report = {
        "meta": bench_metadata(),
        "n": n,
        "quick": args.quick,
        "backend_default": kernels.backend_name(),
        "numpy_available": kernels.numpy_available(),
        "exact_similarity": bench_exact_similarity(dataset, min_seconds),
        "interval_bounds": bench_interval_bounds(tree, min_seconds),
        "end_to_end_query": bench_end_to_end(tree, queries, 5, min_seconds),
        "batch_throughput": bench_batch(tree, queries, 5, repeats),
    }

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")

    kernel_x = report["exact_similarity"]["speedup_frozen_python_vs_seed"]
    batch_x = report["batch_throughput"]["speedup_batch_vs_per_query"]
    print(f"kernel speedup (frozen python vs seed): {kernel_x:.2f}x")
    print(f"batch speedup (shared cache vs per-query): {batch_x:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
