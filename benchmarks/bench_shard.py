"""Shard benchmark: scatter–gather scaling and shard-prune rates.

Builds the clustered gn-like workload at ``n = 10^5`` objects, freezes
one unsharded snapshot engine as the parity reference, then sweeps the
Morton shard count over ``{1, 2, 4, 8}``: per shard count the dataset
is re-partitioned (:func:`repro.shard.build_sharded_index`), admission
summaries are precomputed, and every query runs through
:class:`repro.shard.ScatterGatherSearcher` — in-process for the
intra-query work curve, plus an optional worker-pool leg (``--workers``)
where the shards are attached zero-copy via PR 6 segments.

Two similarity settings are measured (``--alphas``, default 0.5 and
0.9): prune rates rise with the spatial weight, because shard admission
compares the query's best-possible score against each shard's
within-shard competitor floor and spatially tight Morton shards have
high floors.

**Parity is a hard gate**: for every query, shard count, alpha, and
execution leg, the merged ids must be bit-identical to the unsharded
snapshot engine's answer or the run exits non-zero.  The acceptance
row additionally requires a nonzero measured shard-prune rate on this
clustered workload.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py [--quick]
        [--n N] [--k K] [--shards S [S ...]] [--alphas A [A ...]]
        [--workers W] [--queries Q] [--out F]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.bench.gates import ids_gate, report_header
from repro.config import SimilarityConfig
from repro.index.iurtree import IURTree
from repro.obs import latency_percentiles
from repro.perf import kernels
from repro.shard import ScatterGatherSearcher, build_sharded_index
from repro.text.similarity import make_measure
from repro.workloads import gn_like, sample_queries


def _run_leg(searcher, queries, k: int) -> Dict[str, object]:
    """One measured pass: ids for the gate plus timing/prune counters."""
    ids: List[List[int]] = []
    samples: List[float] = []
    searched = pruned = candidates = probes = 0
    started = time.perf_counter()
    for query in queries:
        result = searcher.search(query, k)
        ids.append(list(result.ids))
        samples.append(result.stats.elapsed_seconds)
        searched += result.stats.shards_searched
        pruned += result.stats.shards_pruned
        candidates += result.stats.candidates
        probes += result.stats.merge_probes
    elapsed = time.perf_counter() - started
    n = len(queries)
    considered = searched + pruned
    return {
        "ids": ids,
        "qps": n / elapsed if elapsed > 0 else 0.0,
        "mean_query_seconds": elapsed / n if n else 0.0,
        "latency_ms": {
            point: seconds * 1000.0
            for point, seconds in latency_percentiles(samples).items()
        },
        "prune_rate": pruned / considered if considered else 0.0,
        "shards_searched_mean": searched / n if n else 0.0,
        "candidates_mean": candidates / n if n else 0.0,
        "merge_probes_mean": probes / n if n else 0.0,
    }


def bench_alpha(
    dataset,
    tree,
    alpha: float,
    queries,
    k: int,
    shard_counts: List[int],
    shard_indexes: Dict[int, object],
    workers: int,
) -> Dict[str, object]:
    """The shard-count sweep for one similarity setting."""
    measure = make_measure(dataset.config.text_measure)
    engine = tree.snapshot().engine_for(tree, measure, alpha, 0.0)

    reference: List[List[int]] = []
    started = time.perf_counter()
    for query in queries:
        reference.append(list(engine.search(query, k).ids))
    unsharded_seconds = (time.perf_counter() - started) / len(queries)

    config = SimilarityConfig(
        alpha=alpha, text_measure=dataset.config.text_measure
    )
    rows: List[Dict[str, object]] = []
    for s in shard_counts:
        index = shard_indexes[s]
        started = time.perf_counter()
        searcher = ScatterGatherSearcher(index, config)
        summary_seconds = time.perf_counter() - started

        leg = _run_leg(searcher, queries, k)
        ids_gate(reference, leg.pop("ids"), f"alpha={alpha} shards={s}")
        row: Dict[str, object] = {
            "shards": s,
            "summary_seconds": summary_seconds,
            "inprocess": leg,
            "speedup_vs_unsharded": (
                unsharded_seconds / leg["mean_query_seconds"]
                if leg["mean_query_seconds"]
                else 0.0
            ),
        }
        if workers > 1 and s > 1:
            with ScatterGatherSearcher(
                index, config, workers=workers, share="auto"
            ) as parallel:
                pleg = _run_leg(parallel, queries, k)
                ids_gate(
                    reference,
                    pleg.pop("ids"),
                    f"alpha={alpha} shards={s} workers={workers}",
                )
                pleg["share"] = (
                    "pickle" if parallel.fallback_reason else "shm"
                )
                pleg["fallback_reason"] = parallel.fallback_reason
                row["parallel"] = pleg
                row["speedup_parallel_vs_unsharded"] = (
                    unsharded_seconds / pleg["mean_query_seconds"]
                    if pleg["mean_query_seconds"]
                    else 0.0
                )
        rows.append(row)
    return {
        "alpha": alpha,
        "k": k,
        "queries": len(queries),
        "unsharded_mean_query_seconds": unsharded_seconds,
        "unsharded_qps": 1.0 / unsharded_seconds if unsharded_seconds else 0.0,
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--n", type=int, default=None, help="dataset size")
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=None, help="shard counts"
    )
    parser.add_argument(
        "--alphas", type=float, nargs="+", default=[0.5, 0.9],
        help="similarity blends to sweep",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker-pool fan-out for the parallel leg (0/1 disables)",
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--out", default="BENCH_shard.json")
    parser.add_argument(
        "--backend",
        choices=kernels.KERNEL_BACKENDS,
        default="auto",
        help="kernel backend (default: auto dispatch, the production path)",
    )
    args = parser.parse_args(argv)
    kernels.set_backend(args.backend)

    n = args.n if args.n is not None else (1_500 if args.quick else 100_000)
    shard_counts = (
        args.shards
        if args.shards is not None
        else ([1, 2, 4] if args.quick else [1, 2, 4, 8])
    )
    n_queries = (
        args.queries if args.queries is not None else (6 if args.quick else 12)
    )

    from repro.obs import PhaseTimer

    timer = PhaseTimer()
    with timer.phase("generate"):
        dataset = gn_like(n=n)
    with timer.phase("build"):
        tree = IURTree.build(dataset)
    with timer.phase("freeze"):
        tree.warm_kernels()
        tree.snapshot()
    queries = sample_queries(dataset, n_queries, seed=99)

    shard_indexes: Dict[int, object] = {}
    shard_build_seconds: Dict[str, float] = {}
    with timer.phase("shard_build"):
        for s in shard_counts:
            started = time.perf_counter()
            shard_indexes[s] = build_sharded_index(dataset, s)
            shard_build_seconds[str(s)] = time.perf_counter() - started

    settings = [
        bench_alpha(
            dataset, tree, alpha, queries, args.k,
            shard_counts, shard_indexes, args.workers,
        )
        for alpha in args.alphas
    ]

    max_prune = max(
        row["inprocess"]["prune_rate"]
        for setting in settings
        for row in setting["rows"]
    )
    if max_prune <= 0.0:
        raise SystemExit(
            "shard-prune acceptance FAILED: no setting measured a nonzero "
            "prune rate on the clustered workload"
        )

    report = report_header(n, args.quick, timer=timer)
    report.update(
        {
            "parity": "ok",
            "k": args.k,
            "shard_counts": shard_counts,
            "shard_build_seconds": shard_build_seconds,
            "max_prune_rate": max_prune,
            "settings": settings,
        }
    )

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    for setting in settings:
        curve = ", ".join(
            f"S={row['shards']}: {row['speedup_vs_unsharded']:.2f}x "
            f"(prune {row['inprocess']['prune_rate']:.0%})"
            for row in setting["rows"]
        )
        print(f"alpha={setting['alpha']}: {curve}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
