"""E4 — pruning power: fraction of the dataset decided at group level.

This is a measurement experiment more than a timing one: the benchmark
wraps the search, and the assertions pin the paper's qualitative claim —
the overwhelming majority of objects are pruned or accepted in bulk,
never individually verified.
"""

import pytest

from repro.core.rstknn import RSTkNNSearcher

from conftest import get_dataset, get_queries, get_tree

METHODS = ("iur", "ciur", "ciur-oe", "ciur-te", "ciur-oe-te")


@pytest.mark.parametrize("method", METHODS)
def test_e4_group_decision_fraction(bench_one, method):
    tree = get_tree(method)
    searcher = RSTkNNSearcher(tree)
    query = get_queries(count=1)[0]
    n = len(get_dataset())

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, 5)

    result = bench_one(run)
    group = result.stats.group_decided_objects()
    verified = result.stats.verified_objects
    assert group + verified == n
    assert group / n > 0.8, f"{method}: group pruning collapsed ({group}/{n})"
