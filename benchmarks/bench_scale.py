"""Scale benchmark: zero-copy shm worker sharing vs pickled-index fan-out.

Builds the Zipf/clustered gn-like workload at ``n = 10^5`` objects
(``10^6`` behind ``--huge``), freezes the snapshot once, and sweeps
``n x k x workers`` over three execution strategies of
:class:`repro.perf.BatchSearcher`:

* ``sequential`` — one process, per-query snapshot engine (the parity
  reference);
* ``parallel/shm`` — worker processes attach the parent's shared-memory
  snapshot segment (:mod:`repro.perf.shm`); the pool payload is a
  segment *name*, attach is O(1), and touched vectors materialize
  lazily;
* ``parallel/pickle`` — workers unpickle a full private copy of the
  tree and rebuild their own snapshot (the pre-shm transport).

Per ``n`` the report records snapshot freeze time, segment export and
attach times against ``pickle.dumps``/``loads`` of the tree, payload
sizes, per-worker peak RSS, and the QPS of every cell.  **Parity is a
hard gate** in every mode, ``--quick`` included: the run exits non-zero
unless all three strategies return identical result ids *and* identical
decision counters for every query.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py [--quick] [--huge]
        [--n N [N ...]] [--k K [K ...]] [--workers W] [--queries Q]
        [--out F]
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import time
from typing import Dict, List, Optional

from repro.bench.gates import report_header, results_gate
from repro.index.iurtree import IURTree
from repro.perf import kernels
from repro.perf.batch import BatchSearcher
from repro.workloads import gn_like, sample_queries


def parity_gate(reference, candidate, label: str) -> None:
    """Exit non-zero on any per-query divergence from the reference."""
    results_gate(
        reference.results, candidate.results, f"scale {label}"
    )


def _parent_rss_bytes() -> Optional[int]:
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return None


def bench_transports(tree, n: int) -> Dict[str, object]:
    """One-time per-``n`` transport costs: freeze vs export vs pickle."""
    from repro.perf.shm import SharedSnapshotSegment, attach, shm_available

    out: Dict[str, object] = {}

    started = time.perf_counter()
    snap = tree.snapshot()
    snap.text_matrix()
    out["freeze_seconds"] = time.perf_counter() - started  # memoized: ~0
    out["snapshot_nbytes"] = snap.nbytes()

    started = time.perf_counter()
    payload = pickle.dumps(tree)
    out["pickle_dumps_seconds"] = time.perf_counter() - started
    out["pickle_bytes"] = len(payload)
    started = time.perf_counter()
    pickle.loads(payload)
    out["pickle_loads_seconds"] = time.perf_counter() - started
    del payload

    ok, why = shm_available()
    out["shm_available"] = ok
    if not ok:
        out["shm_unavailable_reason"] = why
        return out
    started = time.perf_counter()
    seg = SharedSnapshotSegment.create(tree)
    out["shm_export_seconds"] = time.perf_counter() - started
    out["segment_bytes"] = seg.nbytes
    started = time.perf_counter()
    attached = attach(seg.name)
    out["shm_attach_seconds"] = time.perf_counter() - started
    attached.close()
    seg.release()
    return out


def bench_cell(
    tree, queries, k: int, workers: int, reference
) -> Dict[str, object]:
    """QPS/RSS of one ``(k, workers)`` cell for both parallel transports."""
    cell: Dict[str, object] = {"k": k, "workers": workers}
    for share in ("shm", "pickle"):
        bs = BatchSearcher(
            tree, workers=workers, engine="snapshot", share=share, warm=False
        )
        run = bs.run(queries, k)
        parity_gate(reference, run, f"k={k} workers={workers} share={share}")
        stats = run.stats
        cell[share] = {
            "qps": stats.queries_per_second,
            "latency_ms": stats.latency_ms,
            "elapsed_seconds": stats.elapsed_seconds,
            "share_used": stats.share,
            "worker_rss_bytes": stats.worker_rss_bytes,
            "fallback_reason": stats.fallback_reason,
            "phases": stats.phases,
        }
    shm_qps = cell["shm"]["qps"]
    pickle_qps = cell["pickle"]["qps"]
    cell["speedup_shm_vs_pickle"] = (
        shm_qps / pickle_qps if pickle_qps else 0.0
    )
    shm_rss = cell["shm"]["worker_rss_bytes"]
    pickle_rss = cell["pickle"]["worker_rss_bytes"]
    if shm_rss and pickle_rss:
        cell["worker_rss_saved_bytes"] = pickle_rss - shm_rss
    return cell


def bench_scale(
    n: int, ks: List[int], workers_list: List[int], n_queries: int
) -> Dict[str, object]:
    """All cells for one dataset size, parity-gated against sequential."""
    from repro.obs import PhaseTimer

    timer = PhaseTimer()
    with timer.phase("generate"):
        dataset = gn_like(n=n)
    with timer.phase("build"):
        tree = IURTree.build(dataset)
    with timer.phase("freeze"):
        tree.warm_kernels()
        tree.snapshot().text_matrix()
    queries = sample_queries(dataset, n_queries, seed=99)

    transports = bench_transports(tree, n)
    row: Dict[str, object] = {
        "n": n,
        "queries": n_queries,
        "phases": timer.as_dict(),
        "parent_rss_bytes": _parent_rss_bytes(),
        "transports": transports,
        "cells": [],
    }

    sequential = BatchSearcher(tree, workers=1, engine="snapshot", warm=False)
    for k in ks:
        reference = sequential.run(queries, k)
        row["cells"].append(
            {
                "k": k,
                "workers": 1,
                "sequential_qps": reference.stats.queries_per_second,
                "sequential_latency_ms": reference.stats.latency_ms,
            }
        )
        for workers in workers_list:
            if workers < 2:
                continue
            row["cells"].append(
                bench_cell(tree, queries, k, workers, reference)
            )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized run (n~5000)"
    )
    parser.add_argument(
        "--huge", action="store_true", help="also run the 10^6-object row"
    )
    parser.add_argument(
        "--n", type=int, nargs="+", default=None, help="dataset sizes"
    )
    parser.add_argument("--k", type=int, nargs="+", default=None)
    parser.add_argument(
        "--workers", type=int, default=4, help="parallel fan-out per cell"
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--out", default="BENCH_scale.json")
    parser.add_argument(
        "--backend",
        choices=kernels.KERNEL_BACKENDS,
        default="auto",
        help="kernel backend (default: auto dispatch, the production path)",
    )
    args = parser.parse_args(argv)
    kernels.set_backend(args.backend)

    if args.n is not None:
        ns = list(args.n)
    elif args.quick:
        ns = [5_000]
    else:
        ns = [100_000]
        if args.huge:
            ns.append(1_000_000)
    ks = args.k if args.k is not None else ([5] if args.quick else [5, 10])
    n_queries = (
        args.queries
        if args.queries is not None
        else (6 if args.quick else 8)
    )
    workers_list = [1, args.workers]

    rows = [bench_scale(n, ks, workers_list, n_queries) for n in ns]

    # Headline acceptance cell: largest n, first k, full fan-out.
    headline = None
    for cell in rows[-1]["cells"]:
        if cell.get("workers") == args.workers and cell["k"] == ks[0]:
            headline = cell
            break

    report = report_header(ns[-1], args.quick)
    report.update({"parity": "ok", "rows": rows, "headline": headline})

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    if headline is not None:
        print(
            f"n={rows[-1]['n']} k={headline['k']} "
            f"workers={headline['workers']}: "
            f"shm {headline['shm']['qps']:.3f} q/s vs "
            f"pickle {headline['pickle']['qps']:.3f} q/s "
            f"({headline['speedup_shm_vs_pickle']:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
