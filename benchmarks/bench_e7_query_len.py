"""E7 — query cost vs number of query keywords.

Shape: more query terms raise textual similarity everywhere, weakening
pruning and increasing cost — until the terms saturate the vocabulary.
"""

import pytest

from repro.core.rstknn import RSTkNNSearcher
from repro.workloads import sample_queries

from conftest import get_dataset, get_tree

TERM_COUNTS = (1, 4, 16)


@pytest.mark.parametrize("terms", TERM_COUNTS)
@pytest.mark.parametrize("method", ["iur", "ciur"])
def test_e7_query_length(bench_one, method, terms):
    tree = get_tree(method)
    searcher = RSTkNNSearcher(tree)
    query = sample_queries(get_dataset(), 1, seed=60, query_terms=terms)[0]

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, 5)

    bench_one(run)
