"""E15 — intersection-vector ablation benchmark (IUR vs plain IR).

Shape: in the text-dominant marker regime the full IUR-tree needs fewer
node reads and expansions than the stripped (IR-tree) variant; in the
default blended regime the two coincide (intersections empty).
"""

import pytest

from repro.config import IndexConfig, SimilarityConfig
from repro.core.rstknn import RSTkNNSearcher
from repro.index.ciurtree import CIURTree
from repro.model.dataset import STDataset
from repro.workloads import WorkloadSpec, generate_corpus, sample_queries

_state = {}


def setup():
    if not _state:
        spec = WorkloadSpec(
            n_objects=300,
            n_topics=4,
            topic_marker=True,
            topic_affinity=0.95,
            doc_len_mean=2.0,
            vocab_size=60,
            seed=7,
        )
        dataset = STDataset.from_corpus(
            generate_corpus(spec),
            SimilarityConfig(alpha=0.0, weighting="tf", text_measure="overlap"),
        )
        _state["dataset"] = dataset
        _state["queries"] = sample_queries(dataset, 2, seed=2)
        for label, store in (("iur", True), ("ir", False)):
            _state[label] = CIURTree.build(
                dataset,
                IndexConfig(num_clusters=4, store_intersections=store),
                method="text-str",
            )
    return _state


@pytest.mark.parametrize("label", ["iur", "ir"])
def test_e15_query(bench_one, label):
    state = setup()
    tree = state[label]
    searcher = RSTkNNSearcher(tree)
    query = state["queries"][0]

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, 3)

    result = bench_one(run)
    reference = RSTkNNSearcher(state["iur"]).search(query, 3).ids
    assert result.ids == reference


def test_e15_intersections_reduce_expansions():
    state = setup()
    totals = {}
    for label in ("iur", "ir"):
        tree = state[label]
        searcher = RSTkNNSearcher(tree)
        expansions = 0
        for query in state["queries"]:
            tree.reset_io(cold=True)
            expansions += searcher.search(query, 3).stats.expansions
        totals[label] = expansions
    assert totals["iur"] <= totals["ir"]
