"""E10 — ablations: OE threshold and buffer-pool size.

Shape: a starved buffer re-reads hot nodes (I/O inflates at equal CPU);
OE trades tree I/O for outlier scanning as the threshold grows.
"""

import pytest

from repro.config import IndexConfig
from repro.core.rstknn import RSTkNNSearcher
from repro.index.ciurtree import CIURTree

from conftest import get_dataset, get_queries

VARIANTS = {
    "oe-off": IndexConfig(num_clusters=8),
    "oe-0.05": IndexConfig(num_clusters=8, outlier_threshold=0.05),
    "oe-0.2": IndexConfig(num_clusters=8, outlier_threshold=0.2),
    "buffer-8": IndexConfig(num_clusters=8, buffer_pages=8),
    "buffer-512": IndexConfig(num_clusters=8, buffer_pages=512),
}

_trees = {}


def tree_for(label):
    if label not in _trees:
        _trees[label] = CIURTree.build(get_dataset("shop"), VARIANTS[label])
    return _trees[label]


@pytest.mark.parametrize("label", sorted(VARIANTS))
def test_e10_ablation(bench_one, label):
    tree = tree_for(label)
    searcher = RSTkNNSearcher(tree)
    query = get_queries("shop", count=1)[0]

    def run():
        tree.reset_io(cold=True)
        return searcher.search(query, 5)

    result = bench_one(run)
    assert result.ids == RSTkNNSearcher(tree_for("oe-off")).search(query, 5).ids


def test_e10_starved_buffer_costs_io():
    query = get_queries("shop", count=1)[0]
    reads = {}
    for label in ("buffer-8", "buffer-512"):
        tree = tree_for(label)
        tree.reset_io(cold=True)
        RSTkNNSearcher(tree).search(query, 5)
        reads[label] = tree.io.reads
    assert reads["buffer-8"] >= reads["buffer-512"]
