"""Node codec: format pinning and round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PageFormatError
from repro.storage.serialize import (
    NodeCodec,
    SerializedCluster,
    SerializedEntry,
    SerializedNode,
)


def roundtrip(node: SerializedNode) -> SerializedNode:
    return NodeCodec.decode(NodeCodec.encode(node))


class TestNodeCodec:
    def test_empty_node(self):
        node = SerializedNode(is_leaf=True)
        out = roundtrip(node)
        assert out.is_leaf is True
        assert out.entries == []

    def test_single_entry(self):
        node = SerializedNode(
            is_leaf=False,
            entries=[
                SerializedEntry(
                    ref=7,
                    mbr=(0.0, 1.0, 2.0, 3.0),
                    doc_count=5,
                    clusters=[
                        SerializedCluster(0, 5, {1: 0.5}, {1: 2.0, 3: 1.0})
                    ],
                )
            ],
        )
        out = roundtrip(node)
        entry = out.entries[0]
        assert entry.ref == 7
        assert entry.mbr == (0.0, 1.0, 2.0, 3.0)
        assert entry.doc_count == 5
        cluster = entry.clusters[0]
        assert cluster.cluster_id == 0
        assert cluster.count == 5
        assert cluster.intersection == pytest.approx({1: 0.5})
        assert set(cluster.union) == {1, 3}

    def test_negative_refs_supported(self):
        node = SerializedNode(
            is_leaf=True,
            entries=[SerializedEntry(ref=-3, mbr=(0, 0, 0, 0), doc_count=1)],
        )
        assert roundtrip(node).entries[0].ref == -3

    def test_truncated_record_rejected(self):
        data = NodeCodec.encode(
            SerializedNode(
                is_leaf=True,
                entries=[SerializedEntry(ref=1, mbr=(0, 0, 1, 1), doc_count=1)],
            )
        )
        with pytest.raises(PageFormatError):
            NodeCodec.decode(data[:-4])

    def test_trailing_garbage_rejected(self):
        data = NodeCodec.encode(SerializedNode(is_leaf=True))
        with pytest.raises(PageFormatError):
            NodeCodec.decode(data + b"\x00")

    def test_size_grows_with_terms(self):
        small = SerializedNode(
            is_leaf=True,
            entries=[
                SerializedEntry(
                    ref=1,
                    mbr=(0, 0, 1, 1),
                    doc_count=1,
                    clusters=[SerializedCluster(0, 1, {}, {1: 1.0})],
                )
            ],
        )
        big = SerializedNode(
            is_leaf=True,
            entries=[
                SerializedEntry(
                    ref=1,
                    mbr=(0, 0, 1, 1),
                    doc_count=1,
                    clusters=[
                        SerializedCluster(
                            0, 1, {}, {t: 1.0 for t in range(50)}
                        )
                    ],
                )
            ],
        )
        assert len(NodeCodec.encode(big)) > len(NodeCodec.encode(small))


vec = st.dictionaries(
    st.integers(min_value=0, max_value=1000),
    st.floats(min_value=0.0, max_value=100, allow_nan=False, width=32),
    max_size=8,
)


@st.composite
def nodes(draw):
    entries = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        x1, x2 = sorted((draw(st.floats(-100, 100)), draw(st.floats(-100, 100))))
        y1, y2 = sorted((draw(st.floats(-100, 100)), draw(st.floats(-100, 100))))
        clusters = [
            SerializedCluster(
                cluster_id=draw(st.integers(min_value=0, max_value=30)),
                count=draw(st.integers(min_value=1, max_value=100)),
                intersection=draw(vec),
                union=draw(vec),
            )
            for _ in range(draw(st.integers(min_value=0, max_value=3)))
        ]
        entries.append(
            SerializedEntry(
                ref=draw(st.integers(min_value=-(2**40), max_value=2**40)),
                mbr=(x1, y1, x2, y2),
                doc_count=draw(st.integers(min_value=0, max_value=10**6)),
                clusters=clusters,
            )
        )
    return SerializedNode(is_leaf=draw(st.booleans()), entries=entries)


@given(nodes())
@settings(max_examples=150, deadline=None)
def test_roundtrip_preserves_structure(node):
    out = roundtrip(node)
    assert out.is_leaf == node.is_leaf
    assert len(out.entries) == len(node.entries)
    for before, after in zip(node.entries, out.entries):
        assert after.ref == before.ref
        assert after.doc_count == before.doc_count
        assert after.mbr == pytest.approx(before.mbr)
        assert len(after.clusters) == len(before.clusters)
        for cb, ca in zip(before.clusters, after.clusters):
            assert ca.cluster_id == cb.cluster_id
            assert ca.count == cb.count
            # f32 quantization: compare with float32 tolerance.
            for t, w in cb.union.items():
                assert ca.union[t] == pytest.approx(w, rel=1e-6, abs=1e-6)
