"""Property-based headline test: the searcher equals brute force on
randomly generated datasets, queries, and parameters.

This is the invariant the whole reproduction stands on (DESIGN.md §7.1).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BruteForceRSTkNN,
    CIURTree,
    IndexConfig,
    IURTree,
    RSTkNNSearcher,
    SimilarityConfig,
    STDataset,
)
from repro.spatial import Point

TERMS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


@st.composite
def corpora(draw):
    n = draw(st.integers(min_value=2, max_value=28))
    records = []
    for _ in range(n):
        x = draw(st.floats(min_value=0, max_value=10, allow_nan=False))
        y = draw(st.floats(min_value=0, max_value=10, allow_nan=False))
        count = draw(st.integers(min_value=0, max_value=4))
        words = [draw(st.sampled_from(TERMS)) for _ in range(count)]
        records.append((Point(x, y), " ".join(words)))
    return records


@st.composite
def query_specs(draw):
    x = draw(st.floats(min_value=-2, max_value=12, allow_nan=False))
    y = draw(st.floats(min_value=-2, max_value=12, allow_nan=False))
    count = draw(st.integers(min_value=0, max_value=4))
    words = " ".join(draw(st.sampled_from(TERMS)) for _ in range(count))
    return x, y, words


@given(
    corpora(),
    query_specs(),
    st.integers(min_value=1, max_value=6),
    st.sampled_from([0.0, 0.3, 0.7, 1.0]),
)
@settings(max_examples=60, deadline=None)
def test_iur_search_equals_brute_force(records, qspec, k, alpha):
    config = SimilarityConfig(alpha=alpha)
    dataset = STDataset.from_corpus(records, config)
    tree = IURTree.build(dataset, IndexConfig(max_entries=4, min_entries=2))
    qx, qy, qwords = qspec
    query = dataset.make_query(Point(qx, qy), qwords)
    expected = BruteForceRSTkNN(dataset).search(query, k)
    assert RSTkNNSearcher(tree).search(query, k).ids == expected


@given(
    corpora(),
    query_specs(),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=2, max_value=5),
    st.sampled_from([None, 0.5]),
)
@settings(max_examples=40, deadline=None)
def test_ciur_search_equals_brute_force(records, qspec, k, nc, oe):
    dataset = STDataset.from_corpus(records)
    tree = CIURTree.build(
        dataset,
        IndexConfig(
            max_entries=4, min_entries=2, num_clusters=nc, outlier_threshold=oe
        ),
    )
    qx, qy, qwords = qspec
    query = dataset.make_query(Point(qx, qy), qwords)
    expected = BruteForceRSTkNN(dataset).search(query, k)
    assert RSTkNNSearcher(tree).search(query, k).ids == expected
