"""Workload generators and query samplers."""

import pytest

from repro import ConfigError, QueryError
from repro.workloads import (
    WorkloadSpec,
    cd_like,
    generate_corpus,
    generate_user_corpus,
    gn_like,
    make_dataset,
    sample_queries,
    shop_like,
)


class TestWorkloadSpec:
    def test_defaults_valid(self):
        spec = WorkloadSpec()
        assert spec.n_objects >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_objects": 0},
            {"vocab_size": 0},
            {"doc_len_min": 0},
            {"uniform_fraction": 1.5},
            {"topic_affinity": -0.1},
            {"n_topics": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            WorkloadSpec(**kwargs)


class TestGenerateCorpus:
    def test_size_and_region(self):
        spec = WorkloadSpec(n_objects=50, region_size=10.0, seed=1)
        records = generate_corpus(spec)
        assert len(records) == 50
        for point, text in records:
            assert 0.0 <= point.x <= 10.0
            assert 0.0 <= point.y <= 10.0
            assert text  # every document non-empty (doc_len_min >= 1)

    def test_deterministic_in_seed(self):
        spec = WorkloadSpec(n_objects=30, seed=5)
        assert generate_corpus(spec) == generate_corpus(spec)

    def test_different_seeds_differ(self):
        a = generate_corpus(WorkloadSpec(n_objects=30, seed=5))
        b = generate_corpus(WorkloadSpec(n_objects=30, seed=6))
        assert a != b

    def test_doc_len_min_respected(self):
        spec = WorkloadSpec(n_objects=40, doc_len_min=3, doc_len_mean=3.0, seed=2)
        for _, text in generate_corpus(spec):
            assert len(text.split()) >= 3

    def test_vocabulary_bounded(self):
        spec = WorkloadSpec(n_objects=60, vocab_size=20, seed=3)
        terms = {
            t for _, text in generate_corpus(spec) for t in text.split()
        }
        assert len(terms) <= 20

    def test_zipf_skew_concentrates_mass(self):
        spec = WorkloadSpec(
            n_objects=300, vocab_size=100, zipf_s=1.3, topic_affinity=0.0, seed=4
        )
        counts = {}
        for _, text in generate_corpus(spec):
            for t in text.split():
                counts[t] = counts.get(t, 0) + 1
        total = sum(counts.values())
        top5 = sum(sorted(counts.values(), reverse=True)[:5])
        assert top5 / total > 0.2  # the head carries real mass

    def test_user_corpus_same_region(self):
        spec = WorkloadSpec(n_objects=40, region_size=50.0, seed=7)
        users = generate_user_corpus(spec, 25)
        assert len(users) == 25
        for point, _ in users:
            assert 0.0 <= point.x <= 50.0


class TestNamedDatasets:
    def test_gn_like(self):
        ds = gn_like(n=120)
        assert len(ds) == 120
        assert ds.stats()["avg_terms_per_object"] < 10

    def test_cd_like_has_long_documents(self):
        short = gn_like(n=100)
        long_ = cd_like(n=100)
        assert (
            long_.stats()["avg_terms_per_object"]
            > short.stats()["avg_terms_per_object"]
        )

    def test_shop_like(self):
        ds = shop_like(n=80)
        assert len(ds) == 80

    def test_make_dataset_respects_config(self):
        from repro import SimilarityConfig

        cfg = SimilarityConfig(alpha=0.9)
        ds = make_dataset(WorkloadSpec(n_objects=20, seed=1), cfg)
        assert ds.config.alpha == 0.9


class TestSampleQueries:
    def test_count_and_ids(self, small_dataset):
        queries = sample_queries(small_dataset, 7, seed=1)
        assert len(queries) == 7
        assert [q.oid for q in queries] == [-1, -2, -3, -4, -5, -6, -7]

    def test_queries_inside_region(self, small_dataset):
        for q in sample_queries(small_dataset, 20, seed=2):
            assert small_dataset.region.contains_point(q.point)

    def test_query_terms_parameter(self, small_dataset):
        for q in sample_queries(small_dataset, 5, seed=3, query_terms=2):
            assert 1 <= len(q.keywords) <= 2

    def test_deterministic(self, small_dataset):
        a = sample_queries(small_dataset, 4, seed=9)
        b = sample_queries(small_dataset, 4, seed=9)
        assert [(q.point, q.keywords) for q in a] == [
            (q.point, q.keywords) for q in b
        ]

    def test_invalid_params(self, small_dataset):
        with pytest.raises(QueryError):
            sample_queries(small_dataset, 0)
        with pytest.raises(QueryError):
            sample_queries(small_dataset, 1, query_terms=0)
