"""File persistence: datasets and indexes round-trip exactly."""

import json

import pytest

from repro import (
    CIURTree,
    DatasetError,
    IndexConfig,
    IndexCorruptionError,
    IURTree,
    RSTkNNSearcher,
    STScorer,
    load_dataset,
    load_index,
    save_dataset,
    save_index,
)
from repro.workloads import sample_queries, shop_like


@pytest.fixture()
def saved_pair(tmp_path):
    dataset = shop_like(n=90, seed=21)
    tree = CIURTree.build(
        dataset, IndexConfig(num_clusters=4, outlier_threshold=0.3)
    )
    ds_path = tmp_path / "ds.json"
    idx_path = tmp_path / "idx.json"
    save_dataset(dataset, ds_path)
    save_index(tree, idx_path)
    return dataset, tree, ds_path, idx_path


class TestDatasetRoundtrip:
    def test_objects_identical(self, saved_pair):
        dataset, _, ds_path, _ = saved_pair
        loaded = load_dataset(ds_path)
        assert len(loaded) == len(dataset)
        for a, b in zip(dataset.objects, loaded.objects):
            assert a.oid == b.oid
            assert a.point == b.point
            assert a.vector == b.vector
            assert a.keywords == b.keywords

    def test_scores_identical(self, saved_pair):
        dataset, _, ds_path, _ = saved_pair
        loaded = load_dataset(ds_path)
        s1 = STScorer.for_dataset(dataset)
        s2 = STScorer.for_dataset(loaded)
        a, b = dataset.get(0), dataset.get(7)
        assert s1.score(a, b) == s2.score(loaded.get(0), loaded.get(7))

    def test_vocabulary_statistics_survive(self, saved_pair):
        dataset, _, ds_path, _ = saved_pair
        loaded = load_dataset(ds_path)
        v1, v2 = dataset.vocabulary, loaded.vocabulary
        assert len(v1) == len(v2)
        assert v1.doc_count == v2.doc_count
        assert v1.total_term_count == v2.total_term_count
        for tid in range(len(v1)):
            assert v1.doc_frequency(tid) == v2.doc_frequency(tid)

    def test_queries_weight_identically(self, saved_pair):
        dataset, _, ds_path, _ = saved_pair
        loaded = load_dataset(ds_path)
        q1 = dataset.make_query(dataset.get(0).point, "t0001 t0005")
        q2 = loaded.make_query(loaded.get(0).point, "t0001 t0005")
        assert q1.vector == q2.vector

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            load_dataset(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(DatasetError):
            load_dataset(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path / "nope.json")


class TestIndexRoundtrip:
    def test_query_results_identical(self, saved_pair):
        dataset, tree, ds_path, idx_path = saved_pair
        loaded_ds = load_dataset(ds_path)
        loaded = load_index(idx_path, loaded_ds)
        for q_orig, q_new in zip(
            sample_queries(dataset, 3, seed=22), sample_queries(loaded_ds, 3, seed=22)
        ):
            for k in (1, 4):
                assert (
                    RSTkNNSearcher(loaded).search(q_new, k).ids
                    == RSTkNNSearcher(tree).search(q_orig, k).ids
                )

    def test_structure_preserved(self, saved_pair):
        dataset, tree, ds_path, idx_path = saved_pair
        loaded = load_index(idx_path, load_dataset(ds_path))
        assert loaded.kind == tree.kind
        s1, s2 = tree.stats(), loaded.stats()
        assert s1.nodes == s2.nodes
        assert s1.height == s2.height
        assert s1.outliers == s2.outliers
        loaded.check_invariants()

    def test_loaded_tree_accepts_inserts(self, saved_pair):
        dataset, _, ds_path, idx_path = saved_pair
        loaded_ds = load_dataset(ds_path)
        loaded = load_index(idx_path, loaded_ds)
        obj = loaded_ds.append_record(loaded_ds.get(0).point, "t0003 t0004")
        loaded.insert_object(obj)
        loaded.check_invariants()

    def test_wrong_dataset_rejected(self, saved_pair):
        _, _, _, idx_path = saved_pair
        other = shop_like(n=30, seed=99)
        with pytest.raises(IndexCorruptionError):
            load_index(idx_path, other)

    def test_wrong_format_rejected(self, tmp_path, saved_pair):
        dataset, _, _, _ = saved_pair
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "not-an-index"}))
        with pytest.raises(IndexCorruptionError):
            load_index(path, dataset)

    def test_plain_iur_roundtrip(self, tmp_path):
        dataset = shop_like(n=60, seed=23)
        tree = IURTree.build(dataset)
        ds_path = tmp_path / "d.json"
        idx_path = tmp_path / "i.json"
        save_dataset(dataset, ds_path)
        save_index(tree, idx_path)
        loaded = load_index(idx_path, load_dataset(ds_path))
        assert loaded.kind == "iur"
        assert loaded.num_clusters() == 1
