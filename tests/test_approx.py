"""The approx tier: kNNL sketch soundness, warm-floor parity, recall.

The sketch (:mod:`repro.approx.sketch`) is only allowed to influence
the exact engines because every floor it stores is a *provably
conservative* lower bound on each object's true k-th competitor
similarity ``s_k``.  These tests pin that contract from below and
above:

* **floor conservativeness** (hypothesis) — every object's
  ``obj_floor``/``node_floor``/``global_floor`` is bounded by a brute
  force ``s_k`` computed from pairwise exact similarities, across
  alphas and ``k``; ``k > kmax`` always reads 0.0 (never prunes);
* **warm-floor parity** (hypothesis) — the snapshot engine with
  ``warm_floors=True`` returns ids bit-identical to the plain engine
  for every query/alpha/``k``, including ``k`` beyond the sketch;
* **verified-mode byte-identity** (hypothesis) — ``engine="approx",
  verify=True`` matches the exact engine exactly; ``verify=False``
  returns a sorted superset (recall 1.0 by construction);
* **plumbing** — filter counters, env knobs (``REPRO_ENGINE=approx``,
  ``REPRO_WARM_FLOORS``), fused+approx rejection, and the shm segment
  round-trip of the sketch arrays.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimilarityConfig
from repro.approx import KnnlSketch, build_sketch
from repro.approx.sketch import DEFAULT_SKETCH_KMAX
from repro.core.rstknn import RSTkNNSearcher
from repro.errors import QueryError
from repro.index.iurtree import IURTree
from repro.perf.batch import BatchSearcher
from repro.text.similarity import make_measure
from repro.workloads import gn_like, sample_queries

_ALPHAS = (0.0, 0.4, 1.0)
_STATE = {}


def _env():
    if not _STATE:
        dataset = gn_like(n=120)
        tree = IURTree.build(dataset)
        tree.snapshot()
        queries = sample_queries(dataset, 6, seed=17)
        _STATE.update(dataset=dataset, tree=tree, queries=queries, cells={})
    return _STATE


def _cell(alpha: float):
    """Engine + sketch + brute-force ``s_k`` table for one alpha."""
    env = _env()
    cell = env["cells"].get(alpha)
    if cell is None:
        tree = env["tree"]
        measure = make_measure(env["dataset"].config.text_measure)
        snap = tree.snapshot()
        engine = snap.engine_for(tree, measure, alpha, 0.0)
        sketch = snap.sketch_for(engine)
        objs = [s for s in range(snap.n_slots) if snap.is_obj[s]]
        ref = snap.ref
        exact = engine._exact
        # Brute-force k-th competitor similarity per object slot: the
        # sorted (descending) exact similarities to every other object.
        brute = {}
        for a in objs:
            sims = sorted(
                (exact(a, b) for b in objs if ref[b] != ref[a]),
                reverse=True,
            )
            brute[a] = sims
        cell = {"snap": snap, "sketch": sketch, "objs": objs, "brute": brute}
        env["cells"][alpha] = cell
    return cell


def _searcher(alpha: float, **kwargs) -> RSTkNNSearcher:
    env = _env()
    config = SimilarityConfig(
        alpha=alpha, text_measure=env["dataset"].config.text_measure
    )
    return RSTkNNSearcher(env["tree"], config=config, **kwargs)


# ----------------------------------------------------------------------
# Floor conservativeness vs brute force (hypothesis)
# ----------------------------------------------------------------------


class TestFloorConservativeness:
    @settings(deadline=None, max_examples=25)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        k=st.integers(min_value=1, max_value=DEFAULT_SKETCH_KMAX),
    )
    def test_every_floor_bounded_by_brute_force_sk(self, alpha, k):
        cell = _cell(alpha)
        sketch = cell["sketch"]
        for slot in cell["objs"]:
            sims = cell["brute"][slot]
            s_k = sims[k - 1] if len(sims) >= k else 0.0
            assert sketch.obj_floor(slot, k) <= s_k + 1e-12
            assert sketch.node_floor(slot, k) <= s_k + 1e-12
            assert sketch.global_floor(k) <= s_k + 1e-12

    @settings(deadline=None, max_examples=10)
    @given(alpha=st.sampled_from(_ALPHAS), extra=st.integers(1, 50))
    def test_beyond_kmax_floors_read_zero(self, alpha, extra):
        cell = _cell(alpha)
        sketch = cell["sketch"]
        k = sketch.kmax + extra
        assert sketch.global_floor(k) == 0.0
        for slot in cell["objs"][:5]:
            assert sketch.obj_floor(slot, k) == 0.0
            assert sketch.node_floor(slot, k) == 0.0

    def test_node_floor_monotone_in_k(self):
        # s_1 >= s_2 >= ... so a sound floor table must be non-increasing.
        sketch = _cell(0.4)["sketch"]
        for slot in _cell(0.4)["objs"][:10]:
            floors = [
                sketch.node_floor(slot, k)
                for k in range(1, sketch.kmax + 1)
            ]
            assert floors == sorted(floors, reverse=True)

    def test_describe_and_nbytes(self):
        sketch = _cell(0.4)["sketch"]
        desc = sketch.describe()
        assert desc["kmax"] == DEFAULT_SKETCH_KMAX
        assert desc["nbytes"] == sketch.nbytes() > 0
        assert desc["frontier_size"] == len(sketch.frontier)


# ----------------------------------------------------------------------
# Warm-floor bit-parity on the exact engines (hypothesis)
# ----------------------------------------------------------------------


class TestWarmFloorParity:
    @settings(deadline=None, max_examples=30)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        k=st.integers(min_value=1, max_value=DEFAULT_SKETCH_KMAX + 4),
        qi=st.integers(min_value=0, max_value=5),
    )
    def test_warm_floors_ids_bit_identical(self, alpha, k, qi):
        env = _env()
        query = env["queries"][qi]
        plain = _searcher(alpha, engine="snapshot")
        warm = _searcher(alpha, engine="snapshot", warm_floors=True)
        assert warm.search(query, k).ids == plain.search(query, k).ids

    def test_warm_fused_batch_parity(self):
        env = _env()
        plain = BatchSearcher(env["tree"], engine="snapshot", mode="fused")
        warm = BatchSearcher(
            env["tree"], engine="snapshot", mode="fused", warm_floors=True
        )
        ref = [r.ids for r in plain.run(env["queries"], 4).results]
        got = [r.ids for r in warm.run(env["queries"], 4).results]
        assert got == ref

    def test_env_knob_arms_warm_floors(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARM_FLOORS", "1")
        assert _searcher(0.4, engine="snapshot").warm_floors
        monkeypatch.setenv("REPRO_WARM_FLOORS", "off")
        assert not _searcher(0.4, engine="snapshot").warm_floors
        # An explicit argument beats the environment.
        assert not _searcher(
            0.4, engine="snapshot", warm_floors=False
        ).warm_floors


# ----------------------------------------------------------------------
# The approx engine: byte-identity, recall, counters
# ----------------------------------------------------------------------


class TestApproxEngine:
    @settings(deadline=None, max_examples=30)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        k=st.integers(min_value=1, max_value=DEFAULT_SKETCH_KMAX + 4),
        qi=st.integers(min_value=0, max_value=5),
    )
    def test_verified_mode_byte_identical(self, alpha, k, qi):
        env = _env()
        query = env["queries"][qi]
        exact = _searcher(alpha, engine="snapshot")
        approx = _searcher(alpha, engine="approx", approx_verify=True)
        assert approx.search(query, k).ids == exact.search(query, k).ids

    @settings(deadline=None, max_examples=30)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        k=st.integers(min_value=1, max_value=DEFAULT_SKETCH_KMAX + 4),
        qi=st.integers(min_value=0, max_value=5),
    )
    def test_raw_mode_is_sorted_superset(self, alpha, k, qi):
        env = _env()
        query = env["queries"][qi]
        exact_ids = _searcher(alpha, engine="snapshot").search(query, k).ids
        raw_ids = _searcher(
            alpha, engine="approx", approx_verify=False
        ).search(query, k).ids
        assert raw_ids == sorted(raw_ids)
        assert set(exact_ids) <= set(raw_ids)  # recall 1.0 by construction

    def test_filter_counters_and_last_filter(self):
        env = _env()
        searcher = _searcher(0.4, engine="approx", approx_verify=False)
        searcher.search(env["queries"][0], 4)
        snap = env["tree"].snapshot()
        engine = snap.approx_engine_for(
            env["tree"], searcher.measure, searcher.alpha,
            searcher.te_weight, verify=False,
        )
        assert engine.counters["searches"] >= 1
        assert engine.counters["verified"] == 0
        assert set(engine.last_filter) == {
            "nodes_pruned", "objects_pruned", "spatial_shortcuts",
            "lsh_pruned", "candidates", "verified", "answers",
        }
        assert engine.last_filter["candidates"] >= 0
        # Raw mode returns every surviving candidate, so the answer
        # count is the candidate count minus the LSH-refuted ones.
        assert engine.last_filter["answers"] == (
            engine.last_filter["candidates"]
            - engine.last_filter["lsh_pruned"]
        )

    def test_env_knob_selects_approx_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "approx")
        searcher = _searcher(0.4)
        assert searcher.engine == "approx"
        env = _env()
        exact = _searcher(0.4, engine="snapshot")
        q = env["queries"][1]
        assert searcher.search(q, 3).ids == exact.search(q, 3).ids

    def test_fused_batch_rejects_approx(self):
        env = _env()
        with pytest.raises(QueryError):
            BatchSearcher(env["tree"], engine="approx", mode="fused")

    def test_approx_batch_matches_exact(self):
        env = _env()
        exact = BatchSearcher(env["tree"], engine="snapshot")
        approx = BatchSearcher(env["tree"], engine="approx")
        ref = [r.ids for r in exact.run(env["queries"], 4).results]
        got = [r.ids for r in approx.run(env["queries"], 4).results]
        assert got == ref


# ----------------------------------------------------------------------
# Shared-memory round-trip of the sketch arrays
# ----------------------------------------------------------------------


class TestShmSketchRoundTrip:
    def test_attached_snapshot_serves_frozen_sketch(self):
        from repro.perf.shm import (
            SharedSnapshotSegment,
            attach,
            shm_available,
        )

        ok, why = shm_available()
        if not ok:
            pytest.skip(f"shm unavailable: {why}")
        env = _env()
        tree = env["tree"]
        measure = make_measure(env["dataset"].config.text_measure)
        snap = tree.snapshot()
        parent = snap.sketch_for(snap.engine_for(tree, measure, 0.5, 0.0))

        seg = SharedSnapshotSegment.create(tree)
        attached = attach(seg.name)
        try:
            asnap = attached.snapshot
            # The attached snapshot reconstructed the sketch from the
            # segment — identical arrays, no rebuild.
            assert len(asnap._sketches) == len(snap._sketches)
            twin = asnap.sketch_for(
                asnap.engine_for(attached.tree, measure, 0.5, 0.0)
            )
            assert isinstance(twin, KnnlSketch)
            assert list(twin.floor_table) == list(parent.floor_table)
            assert list(twin.floor_idx) == list(parent.floor_idx)
            assert list(twin.curve_c) == list(parent.curve_c)
            assert list(twin.curve_b) == list(parent.curve_b)
            assert list(twin.obj_profile) == list(parent.obj_profile)
            assert list(twin.row_objects) == list(parent.row_objects)
            assert list(twin.lsh_sig) == list(parent.lsh_sig)
            assert twin.sample_frac == parent.sample_frac
            assert twin.curves_true == parent.curves_true
            assert twin.frontier == parent.frontier
            # And the attached searcher answers identically in approx
            # mode against the parent's exact engine.
            remote = attached.searcher(
                engine="approx", approx_verify=True
            )
            local = _searcher(0.5, engine="snapshot")
            q = env["queries"][2]
            assert remote.search(q, 3).ids == local.search(q, 3).ids
        finally:
            attached.close()
            seg.release()

    def test_stale_layout_version_raises_stale_segment_error(self):
        from repro.errors import SnapshotSegmentError, StaleSegmentError
        from repro.perf.shm import (
            SEGMENT_MAGIC,
            SharedSnapshotSegment,
            attach,
            shm_available,
        )

        ok, why = shm_available()
        if not ok:
            pytest.skip(f"shm unavailable: {why}")
        env = _env()
        seg = SharedSnapshotSegment.create(env["tree"])
        try:
            # A segment written by a previous layout version (same
            # RSTSHM family, older version byte pair) is *stale*, not
            # foreign: the remedy is re-exporting with this build.
            seg.shm.buf[: len(SEGMENT_MAGIC)] = b"RSTSHM02"
            with pytest.raises(StaleSegmentError):
                attach(seg.name)
            # Arbitrary bytes are a foreign (non-snapshot) segment.
            seg.shm.buf[: len(SEGMENT_MAGIC)] = b"NOTMAGIC"
            with pytest.raises(SnapshotSegmentError):
                attach(seg.name)
        finally:
            seg.shm.buf[: len(SEGMENT_MAGIC)] = SEGMENT_MAGIC
            seg.release()


# ----------------------------------------------------------------------
# Build-path edges
# ----------------------------------------------------------------------


class TestBuildEdges:
    def test_tiny_corpus_sketch_never_overclaims(self):
        # Two objects: s_1 exists, s_2 does not (no second competitor)
        # so every k >= 2 floor must read 0.0.
        dataset = gn_like(n=2)
        tree = IURTree.build(dataset)
        snap = tree.snapshot()
        measure = make_measure(dataset.config.text_measure)
        engine = snap.engine_for(tree, measure, 0.5, 0.0)
        sketch = build_sketch(engine)
        objs = [s for s in range(snap.n_slots) if snap.is_obj[s]]
        for slot in objs:
            for k in range(2, sketch.kmax + 1):
                assert sketch.obj_floor(slot, k) == 0.0

    def test_sketch_knob_override_plumbs_through(self):
        env = _env()
        searcher = _searcher(
            0.4,
            engine="approx",
            sketch_kmax=4,
            sketch_budget=16,
            sketch_pool=8,
        )
        searcher.search(env["queries"][0], 2)
        snap = env["tree"].snapshot()
        engine = snap.approx_engine_for(
            env["tree"], searcher.measure, searcher.alpha,
            searcher.te_weight, verify=True, kmax=4, budget=16, pool=8,
        )
        assert engine.sketch.kmax == 4
        assert engine.sketch.budget == 16
        assert engine.sketch.pool == 8


# ----------------------------------------------------------------------
# Adaptive frontier peel (empty-node and budget-overflow regressions)
# ----------------------------------------------------------------------


class _StubSnap:
    """Minimal snapshot shape shared by both frontier peels.

    Slot 0 is the root directory; slot 1 is a *degenerate empty*
    directory node (no children) given an inflated count so the
    largest-count-first heap pops it while refinable nodes are still
    queued; slot 2 is an object at root level; slot 3 is a directory
    holding objects 4 and 5.
    """

    root_slots = (0,)
    is_obj = [0, 0, 1, 0, 1, 1]
    cnt = [3, 5, 1, 2, 1, 1]
    first_child = [1, 0, 0, 4, 0, 0]
    last_child = [4, 0, 0, 6, 0, 0]


class TestAdaptivePeel:
    def _check(self, peel):
        # The empty node pops first (cnt 5).  The regression: appending
        # it must not abort the peel — slot 3 (still in the heap) must
        # go on to be refined into its object children 4 and 5.
        frontier = peel(_StubSnap(), 16)
        assert sorted(frontier) == [1, 2, 4, 5]

    def test_sketch_peel_continues_past_empty_node(self):
        from repro.approx.sketch import _peel_frontier

        self._check(_peel_frontier)

    def test_shard_peel_continues_past_empty_node(self):
        from repro.shard.summaries import _peel_frontier

        self._check(_peel_frontier)

    def test_overflowing_node_is_kept_while_smaller_nodes_refine(self):
        from repro.approx.sketch import _peel_frontier

        # Budget 4: expanding root yields [2] + heap {1, 3}.  Slot 1
        # (empty) becomes a row; slot 3's expansion fits (2 + 0 + 2 =
        # 4), so the peel still refines it instead of stopping.
        frontier = _peel_frontier(_StubSnap(), 4)
        assert sorted(frontier) == [1, 2, 4, 5]
        # Budget 3 cannot hold slot 3's two children next to the two
        # existing rows, so slot 3 itself is the row — never dropped.
        frontier = _peel_frontier(_StubSnap(), 3)
        assert sorted(frontier) == [1, 2, 3]


# ----------------------------------------------------------------------
# Curve sampling: symmetric window, true-kNN pass, budget monotonicity
# ----------------------------------------------------------------------


class TestCurveSampling:
    def test_edge_objects_get_curves_at_interior_rate(self):
        # sample_frac=0.0 forces the layout-window fallback for every
        # object.  The window is circular, so the first and last
        # objects in layout order see exactly as many samples as
        # interior ones; with pool >= 2*kmax every object has enough
        # samples for a fit wherever similarities are nonzero.
        env = _env()
        tree = env["tree"]
        snap = tree.snapshot()
        measure = make_measure(env["dataset"].config.text_measure)
        engine = snap.engine_for(tree, measure, 0.4, 0.0)
        sketch = build_sketch(engine, sample_frac=0.0)
        assert sketch.curves_true == 0
        objs = [s for s in range(snap.n_slots) if snap.is_obj[s]]
        kmax = sketch.kmax
        edge = objs[:kmax] + objs[-kmax:]
        interior = objs[kmax:-kmax]
        edge_rate = sum(
            1 for s in edge if sketch.curve_c[s] > 0.0
        ) / len(edge)
        interior_rate = sum(
            1 for s in interior if sketch.curve_c[s] > 0.0
        ) / len(interior)
        # A forward-only window starves trailing objects entirely; the
        # symmetric window keeps both populations at the same rate.
        assert edge_rate >= interior_rate - 1e-9

    @settings(deadline=None, max_examples=10)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        frac=st.sampled_from((0.0, 0.5, 1.0)),
    )
    def test_floors_conservative_across_sample_fracs(self, alpha, frac):
        cell = _cell(alpha)
        env = _env()
        tree = env["tree"]
        snap = tree.snapshot()
        measure = make_measure(env["dataset"].config.text_measure)
        engine = snap.engine_for(tree, measure, alpha, 0.0)
        sketch = build_sketch(engine, sample_frac=frac)
        for slot in cell["objs"]:
            sims = cell["brute"][slot]
            for k in (1, 2, sketch.kmax):
                s_k = sims[k - 1] if len(sims) >= k else 0.0
                assert sketch.obj_floor(slot, k) <= s_k + 1e-12

    def test_floors_conservative_under_other_measures(self):
        env = _env()
        tree = env["tree"]
        snap = tree.snapshot()
        for name in ("cosine", "dice"):
            measure = make_measure(name)
            engine = snap.engine_for(tree, measure, 0.4, 0.0)
            sketch = build_sketch(engine, sample_frac=1.0)
            exact = engine._exact
            ref = snap.ref
            objs = [s for s in range(snap.n_slots) if snap.is_obj[s]]
            for a in objs:
                sims = sorted(
                    (exact(a, b) for b in objs if ref[b] != ref[a]),
                    reverse=True,
                )
                for k in (1, 2, sketch.kmax):
                    s_k = sims[k - 1] if len(sims) >= k else 0.0
                    assert sketch.obj_floor(a, k) <= s_k + 1e-12

    def test_true_pass_fits_curves_over_exact_profiles(self):
        env = _env()
        tree = env["tree"]
        snap = tree.snapshot()
        measure = make_measure(env["dataset"].config.text_measure)
        engine = snap.engine_for(tree, measure, 0.4, 0.0)
        sketch = build_sketch(engine, sample_frac=1.0)
        objs = [s for s in range(snap.n_slots) if snap.is_obj[s]]
        assert sketch.curves_true == len(objs)
        # The true pass collects each object's exact top-kmax, so the
        # fitted curve is bounded by the brute-force profile pointwise.
        cell = _cell(0.4)
        kmax = sketch.kmax
        for slot in objs:
            sims = cell["brute"][slot]
            for k in range(1, kmax + 1):
                s_k = sims[k - 1] if len(sims) >= k else 0.0
                c = sketch.curve_c[slot]
                if c > 0.0:
                    curve = c * k ** -sketch.curve_b[slot]
                    assert curve <= s_k + 1e-12
                    # The stored profile equals the exact sampled s_k
                    # and dominates the curve fitted under it.
                    prof = sketch.obj_profile[slot * kmax + (k - 1)]
                    assert prof == pytest.approx(s_k, abs=1e-12)
                    assert prof >= curve - 1e-12
                    assert sketch.obj_floor(slot, k) >= prof - 1e-12

    def test_floors_monotone_in_budget(self):
        env = _env()
        tree = env["tree"]
        snap = tree.snapshot()
        measure = make_measure(env["dataset"].config.text_measure)
        engine = snap.engine_for(tree, measure, 0.4, 0.0)
        sketches = [
            build_sketch(engine, budget=budget, sample_frac=0.0)
            for budget in (16, 32, 64, 128)
        ]
        objs = [s for s in range(snap.n_slots) if snap.is_obj[s]]
        for lo, hi in zip(sketches, sketches[1:]):
            assert len(lo.frontier) <= len(hi.frontier)
            for k in range(1, lo.kmax + 1):
                assert lo.global_floor(k) <= hi.global_floor(k) + 1e-12
                for slot in objs:
                    assert (
                        lo.node_floor(slot, k)
                        <= hi.node_floor(slot, k) + 1e-12
                    )


# ----------------------------------------------------------------------
# LSH pre-filter: recall, byte-identity, counters, knobs
# ----------------------------------------------------------------------


class TestLshPreFilter:
    def _engines(self, alpha):
        env = _env()
        tree = env["tree"]
        measure = make_measure(env["dataset"].config.text_measure)
        snap = tree.snapshot()
        on = snap.approx_engine_for(
            tree, measure, alpha, 0.0, verify=False, lsh=True
        )
        off = snap.approx_engine_for(
            tree, measure, alpha, 0.0, verify=False, lsh=False
        )
        return env, on, off

    @settings(deadline=None, max_examples=20)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        k=st.integers(min_value=1, max_value=DEFAULT_SKETCH_KMAX),
        qi=st.integers(min_value=0, max_value=5),
    )
    def test_lsh_raw_set_nested_between_exact_and_unfiltered(
        self, alpha, k, qi
    ):
        env, on, off = self._engines(alpha)
        query = env["queries"][qi]
        exact_ids = _searcher(alpha, engine="snapshot").search(query, k).ids
        on_ids = on.search(query, k).ids
        off_ids = off.search(query, k).ids
        # The pre-filter only ever *removes* refuted candidates, and
        # never a true answer: exact ⊆ lsh-on ⊆ lsh-off (recall 1.0).
        assert set(exact_ids) <= set(on_ids) <= set(off_ids)

    @settings(deadline=None, max_examples=20)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        k=st.integers(min_value=1, max_value=DEFAULT_SKETCH_KMAX),
        qi=st.integers(min_value=0, max_value=5),
    )
    def test_verified_mode_identical_with_and_without_lsh(
        self, alpha, k, qi
    ):
        env = _env()
        query = env["queries"][qi]
        exact_ids = _searcher(alpha, engine="snapshot").search(query, k).ids
        for lsh in (True, False):
            searcher = _searcher(
                alpha, engine="approx", approx_verify=True, approx_lsh=lsh
            )
            assert searcher.search(query, k).ids == exact_ids

    def test_lsh_counter_published(self):
        env, on, _off = self._engines(0.4)
        on.search(env["queries"][0], 4)
        assert "lsh_pruned" in on.counters
        assert on.last_filter["lsh_pruned"] >= 0
        assert (
            on.last_filter["answers"]
            == on.last_filter["candidates"] - on.last_filter["lsh_pruned"]
        )

    def test_env_knob_disarms_lsh(self, monkeypatch):
        monkeypatch.setenv("REPRO_APPROX_LSH", "0")
        assert not _searcher(0.4, engine="approx").approx_lsh
        monkeypatch.delenv("REPRO_APPROX_LSH")
        assert _searcher(0.4, engine="approx").approx_lsh
        monkeypatch.setenv("REPRO_APPROX_LSH", "off")
        # An explicit argument beats the environment.
        assert _searcher(
            0.4, engine="approx", approx_lsh=True
        ).approx_lsh

    def test_spatial_shortcuts_counted_at_pure_spatial_alpha(self):
        # At alpha == 1.0 the stage-1 bound IS the full bound (text is
        # skipped by construction), so every node prune there must be
        # counted as a spatial shortcut — the counter used to read 0.
        env = _env()
        tree = env["tree"]
        measure = make_measure(env["dataset"].config.text_measure)
        snap = tree.snapshot()
        engine = snap.approx_engine_for(
            tree, measure, 1.0, 0.0, verify=False, lsh=False
        )
        pruned = shortcuts = 0
        for query in env["queries"]:
            engine.search(query, 2)
            pruned += engine.last_filter["nodes_pruned"]
            shortcuts += engine.last_filter["spatial_shortcuts"]
            assert (
                engine.last_filter["spatial_shortcuts"]
                == engine.last_filter["nodes_pruned"]
            )
        assert pruned > 0 and shortcuts == pruned


# ----------------------------------------------------------------------
# Knob validation and plumbing
# ----------------------------------------------------------------------


class TestSketchKnobs:
    def test_perf_config_validates_sample_frac(self):
        from repro.config import PerfConfig
        from repro.errors import ConfigError

        assert PerfConfig(sketch_sample_frac=0.5).sketch_sample_frac == 0.5
        with pytest.raises(ConfigError):
            PerfConfig(sketch_sample_frac=-0.1)
        with pytest.raises(ConfigError):
            PerfConfig(sketch_sample_frac=1.5)
        with pytest.raises(ConfigError):
            PerfConfig(approx_lsh="yes")

    def test_sample_frac_memoizes_distinct_sketches(self):
        env = _env()
        tree = env["tree"]
        measure = make_measure(env["dataset"].config.text_measure)
        snap = tree.snapshot()
        engine = snap.engine_for(tree, measure, 0.4, 0.0)
        full = snap.sketch_for(engine, sample_frac=1.0)
        window = snap.sketch_for(engine, sample_frac=0.0)
        assert full is not window
        assert full.curves_true > 0 and window.curves_true == 0
        assert snap.sketch_for(engine, sample_frac=1.0) is full
