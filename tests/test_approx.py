"""The approx tier: kNNL sketch soundness, warm-floor parity, recall.

The sketch (:mod:`repro.approx.sketch`) is only allowed to influence
the exact engines because every floor it stores is a *provably
conservative* lower bound on each object's true k-th competitor
similarity ``s_k``.  These tests pin that contract from below and
above:

* **floor conservativeness** (hypothesis) — every object's
  ``obj_floor``/``node_floor``/``global_floor`` is bounded by a brute
  force ``s_k`` computed from pairwise exact similarities, across
  alphas and ``k``; ``k > kmax`` always reads 0.0 (never prunes);
* **warm-floor parity** (hypothesis) — the snapshot engine with
  ``warm_floors=True`` returns ids bit-identical to the plain engine
  for every query/alpha/``k``, including ``k`` beyond the sketch;
* **verified-mode byte-identity** (hypothesis) — ``engine="approx",
  verify=True`` matches the exact engine exactly; ``verify=False``
  returns a sorted superset (recall 1.0 by construction);
* **plumbing** — filter counters, env knobs (``REPRO_ENGINE=approx``,
  ``REPRO_WARM_FLOORS``), fused+approx rejection, and the shm segment
  round-trip of the sketch arrays.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimilarityConfig
from repro.approx import KnnlSketch, build_sketch
from repro.approx.sketch import DEFAULT_SKETCH_KMAX
from repro.core.rstknn import RSTkNNSearcher
from repro.errors import QueryError
from repro.index.iurtree import IURTree
from repro.perf.batch import BatchSearcher
from repro.text.similarity import make_measure
from repro.workloads import gn_like, sample_queries

_ALPHAS = (0.0, 0.4, 1.0)
_STATE = {}


def _env():
    if not _STATE:
        dataset = gn_like(n=120)
        tree = IURTree.build(dataset)
        tree.snapshot()
        queries = sample_queries(dataset, 6, seed=17)
        _STATE.update(dataset=dataset, tree=tree, queries=queries, cells={})
    return _STATE


def _cell(alpha: float):
    """Engine + sketch + brute-force ``s_k`` table for one alpha."""
    env = _env()
    cell = env["cells"].get(alpha)
    if cell is None:
        tree = env["tree"]
        measure = make_measure(env["dataset"].config.text_measure)
        snap = tree.snapshot()
        engine = snap.engine_for(tree, measure, alpha, 0.0)
        sketch = snap.sketch_for(engine)
        objs = [s for s in range(snap.n_slots) if snap.is_obj[s]]
        ref = snap.ref
        exact = engine._exact
        # Brute-force k-th competitor similarity per object slot: the
        # sorted (descending) exact similarities to every other object.
        brute = {}
        for a in objs:
            sims = sorted(
                (exact(a, b) for b in objs if ref[b] != ref[a]),
                reverse=True,
            )
            brute[a] = sims
        cell = {"snap": snap, "sketch": sketch, "objs": objs, "brute": brute}
        env["cells"][alpha] = cell
    return cell


def _searcher(alpha: float, **kwargs) -> RSTkNNSearcher:
    env = _env()
    config = SimilarityConfig(
        alpha=alpha, text_measure=env["dataset"].config.text_measure
    )
    return RSTkNNSearcher(env["tree"], config=config, **kwargs)


# ----------------------------------------------------------------------
# Floor conservativeness vs brute force (hypothesis)
# ----------------------------------------------------------------------


class TestFloorConservativeness:
    @settings(deadline=None, max_examples=25)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        k=st.integers(min_value=1, max_value=DEFAULT_SKETCH_KMAX),
    )
    def test_every_floor_bounded_by_brute_force_sk(self, alpha, k):
        cell = _cell(alpha)
        sketch = cell["sketch"]
        for slot in cell["objs"]:
            sims = cell["brute"][slot]
            s_k = sims[k - 1] if len(sims) >= k else 0.0
            assert sketch.obj_floor(slot, k) <= s_k + 1e-12
            assert sketch.node_floor(slot, k) <= s_k + 1e-12
            assert sketch.global_floor(k) <= s_k + 1e-12

    @settings(deadline=None, max_examples=10)
    @given(alpha=st.sampled_from(_ALPHAS), extra=st.integers(1, 50))
    def test_beyond_kmax_floors_read_zero(self, alpha, extra):
        cell = _cell(alpha)
        sketch = cell["sketch"]
        k = sketch.kmax + extra
        assert sketch.global_floor(k) == 0.0
        for slot in cell["objs"][:5]:
            assert sketch.obj_floor(slot, k) == 0.0
            assert sketch.node_floor(slot, k) == 0.0

    def test_node_floor_monotone_in_k(self):
        # s_1 >= s_2 >= ... so a sound floor table must be non-increasing.
        sketch = _cell(0.4)["sketch"]
        for slot in _cell(0.4)["objs"][:10]:
            floors = [
                sketch.node_floor(slot, k)
                for k in range(1, sketch.kmax + 1)
            ]
            assert floors == sorted(floors, reverse=True)

    def test_describe_and_nbytes(self):
        sketch = _cell(0.4)["sketch"]
        desc = sketch.describe()
        assert desc["kmax"] == DEFAULT_SKETCH_KMAX
        assert desc["nbytes"] == sketch.nbytes() > 0
        assert desc["frontier_size"] == len(sketch.frontier)


# ----------------------------------------------------------------------
# Warm-floor bit-parity on the exact engines (hypothesis)
# ----------------------------------------------------------------------


class TestWarmFloorParity:
    @settings(deadline=None, max_examples=30)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        k=st.integers(min_value=1, max_value=DEFAULT_SKETCH_KMAX + 4),
        qi=st.integers(min_value=0, max_value=5),
    )
    def test_warm_floors_ids_bit_identical(self, alpha, k, qi):
        env = _env()
        query = env["queries"][qi]
        plain = _searcher(alpha, engine="snapshot")
        warm = _searcher(alpha, engine="snapshot", warm_floors=True)
        assert warm.search(query, k).ids == plain.search(query, k).ids

    def test_warm_fused_batch_parity(self):
        env = _env()
        plain = BatchSearcher(env["tree"], engine="snapshot", mode="fused")
        warm = BatchSearcher(
            env["tree"], engine="snapshot", mode="fused", warm_floors=True
        )
        ref = [r.ids for r in plain.run(env["queries"], 4).results]
        got = [r.ids for r in warm.run(env["queries"], 4).results]
        assert got == ref

    def test_env_knob_arms_warm_floors(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARM_FLOORS", "1")
        assert _searcher(0.4, engine="snapshot").warm_floors
        monkeypatch.setenv("REPRO_WARM_FLOORS", "off")
        assert not _searcher(0.4, engine="snapshot").warm_floors
        # An explicit argument beats the environment.
        assert not _searcher(
            0.4, engine="snapshot", warm_floors=False
        ).warm_floors


# ----------------------------------------------------------------------
# The approx engine: byte-identity, recall, counters
# ----------------------------------------------------------------------


class TestApproxEngine:
    @settings(deadline=None, max_examples=30)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        k=st.integers(min_value=1, max_value=DEFAULT_SKETCH_KMAX + 4),
        qi=st.integers(min_value=0, max_value=5),
    )
    def test_verified_mode_byte_identical(self, alpha, k, qi):
        env = _env()
        query = env["queries"][qi]
        exact = _searcher(alpha, engine="snapshot")
        approx = _searcher(alpha, engine="approx", approx_verify=True)
        assert approx.search(query, k).ids == exact.search(query, k).ids

    @settings(deadline=None, max_examples=30)
    @given(
        alpha=st.sampled_from(_ALPHAS),
        k=st.integers(min_value=1, max_value=DEFAULT_SKETCH_KMAX + 4),
        qi=st.integers(min_value=0, max_value=5),
    )
    def test_raw_mode_is_sorted_superset(self, alpha, k, qi):
        env = _env()
        query = env["queries"][qi]
        exact_ids = _searcher(alpha, engine="snapshot").search(query, k).ids
        raw_ids = _searcher(
            alpha, engine="approx", approx_verify=False
        ).search(query, k).ids
        assert raw_ids == sorted(raw_ids)
        assert set(exact_ids) <= set(raw_ids)  # recall 1.0 by construction

    def test_filter_counters_and_last_filter(self):
        env = _env()
        searcher = _searcher(0.4, engine="approx", approx_verify=False)
        searcher.search(env["queries"][0], 4)
        snap = env["tree"].snapshot()
        engine = snap.approx_engine_for(
            env["tree"], searcher.measure, searcher.alpha,
            searcher.te_weight, verify=False,
        )
        assert engine.counters["searches"] >= 1
        assert engine.counters["verified"] == 0
        assert set(engine.last_filter) == {
            "nodes_pruned", "objects_pruned", "spatial_shortcuts",
            "candidates", "verified",
        }
        assert engine.last_filter["candidates"] >= 0

    def test_env_knob_selects_approx_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "approx")
        searcher = _searcher(0.4)
        assert searcher.engine == "approx"
        env = _env()
        exact = _searcher(0.4, engine="snapshot")
        q = env["queries"][1]
        assert searcher.search(q, 3).ids == exact.search(q, 3).ids

    def test_fused_batch_rejects_approx(self):
        env = _env()
        with pytest.raises(QueryError):
            BatchSearcher(env["tree"], engine="approx", mode="fused")

    def test_approx_batch_matches_exact(self):
        env = _env()
        exact = BatchSearcher(env["tree"], engine="snapshot")
        approx = BatchSearcher(env["tree"], engine="approx")
        ref = [r.ids for r in exact.run(env["queries"], 4).results]
        got = [r.ids for r in approx.run(env["queries"], 4).results]
        assert got == ref


# ----------------------------------------------------------------------
# Shared-memory round-trip of the sketch arrays
# ----------------------------------------------------------------------


class TestShmSketchRoundTrip:
    def test_attached_snapshot_serves_frozen_sketch(self):
        from repro.perf.shm import (
            SharedSnapshotSegment,
            attach,
            shm_available,
        )

        ok, why = shm_available()
        if not ok:
            pytest.skip(f"shm unavailable: {why}")
        env = _env()
        tree = env["tree"]
        measure = make_measure(env["dataset"].config.text_measure)
        snap = tree.snapshot()
        parent = snap.sketch_for(snap.engine_for(tree, measure, 0.5, 0.0))

        seg = SharedSnapshotSegment.create(tree)
        attached = attach(seg.name)
        try:
            asnap = attached.snapshot
            # The attached snapshot reconstructed the sketch from the
            # segment — identical arrays, no rebuild.
            assert len(asnap._sketches) == len(snap._sketches)
            twin = asnap.sketch_for(
                asnap.engine_for(attached.tree, measure, 0.5, 0.0)
            )
            assert isinstance(twin, KnnlSketch)
            assert list(twin.floor_table) == list(parent.floor_table)
            assert list(twin.floor_idx) == list(parent.floor_idx)
            assert list(twin.curve_c) == list(parent.curve_c)
            assert list(twin.curve_b) == list(parent.curve_b)
            assert twin.frontier == parent.frontier
            # And the attached searcher answers identically in approx
            # mode against the parent's exact engine.
            remote = attached.searcher(
                engine="approx", approx_verify=True
            )
            local = _searcher(0.5, engine="snapshot")
            q = env["queries"][2]
            assert remote.search(q, 3).ids == local.search(q, 3).ids
        finally:
            attached.close()
            seg.release()


# ----------------------------------------------------------------------
# Build-path edges
# ----------------------------------------------------------------------


class TestBuildEdges:
    def test_tiny_corpus_sketch_never_overclaims(self):
        # Two objects: s_1 exists, s_2 does not (no second competitor)
        # so every k >= 2 floor must read 0.0.
        dataset = gn_like(n=2)
        tree = IURTree.build(dataset)
        snap = tree.snapshot()
        measure = make_measure(dataset.config.text_measure)
        engine = snap.engine_for(tree, measure, 0.5, 0.0)
        sketch = build_sketch(engine)
        objs = [s for s in range(snap.n_slots) if snap.is_obj[s]]
        for slot in objs:
            for k in range(2, sketch.kmax + 1):
                assert sketch.obj_floor(slot, k) == 0.0

    def test_sketch_knob_override_plumbs_through(self):
        env = _env()
        searcher = _searcher(
            0.4,
            engine="approx",
            sketch_kmax=4,
            sketch_budget=16,
            sketch_pool=8,
        )
        searcher.search(env["queries"][0], 2)
        snap = env["tree"].snapshot()
        engine = snap.approx_engine_for(
            env["tree"], searcher.measure, searcher.alpha,
            searcher.te_weight, verify=True, kmax=4, budget=16, pool=8,
        )
        assert engine.sketch.kmax == 4
        assert engine.sketch.budget == 16
        assert engine.sketch.pool == 8
