"""Fault-tolerant query service: deadlines, retries, degradation, shedding.

The reliability claims are all *deterministic*, so they are pinned
exactly: a fake clock that advances one tick per cancellation poll
turns a deadline into an exact node-expansion budget; an armed
:class:`~repro.service.faults.FaultPlan` forces each hop of the
degradation chain; a crashed pool worker's slice must come back
byte-identical after retry.
"""

import pytest

from repro import (
    ConfigError,
    IURTree,
    QueryError,
    RSTkNNSearcher,
    STDataset,
)
from repro.errors import (
    DeadlineExceeded,
    FaultInjected,
    QueueFull,
    ServiceError,
)
from repro.obs import MetricsRegistry
from repro.perf.batch import BatchSearcher
from repro.service import (
    DEGRADATION_CHAIN,
    AdmissionQueue,
    CancelToken,
    Deadline,
    QueryService,
    RetryPolicy,
)
from repro.service.deadline import token_for
from repro.service.faults import (
    FaultPlan,
    SlowToken,
    current_plan,
    set_plan,
    wrap_token,
)
from repro.service.retry import DEFAULT_RETRY_POLICY
from repro.workloads import sample_queries

from tests.conftest import random_corpus


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    """Isolate every test from ambient REPRO_FAULTS (the CI fault leg
    arms it suite-wide) and from plans left by other tests."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    set_plan(None, clear=True)
    yield
    set_plan(None, clear=True)


@pytest.fixture(scope="module")
def env():
    ds = STDataset.from_corpus(random_corpus(150, seed=61))
    tree = IURTree.build(ds)
    return {
        "ds": ds,
        "tree": tree,
        "queries": sample_queries(ds, 6, seed=3),
    }


class _TickClock:
    """Monotonic clock advancing one second per reading: with it, a
    ``Deadline(S)`` is an exact budget of S cancellation polls."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


# ----------------------------------------------------------------------
# Tokens and deadlines
# ----------------------------------------------------------------------


class TestDeadline:
    def test_cancel_token_is_single_use(self):
        token = CancelToken()
        assert not token.expired()
        token.cancel()
        assert token.cancelled and token.expired()
        token.cancel()  # idempotent
        assert token.expired()

    def test_deadline_requires_positive_seconds(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ConfigError):
                Deadline(bad)

    def test_deadline_expires_on_fake_clock(self):
        clock = _TickClock()
        deadline = Deadline(3.0, clock=clock)  # created at t=1, at=4
        assert not deadline.expired()  # t=2
        assert not deadline.expired()  # t=3
        assert deadline.expired()  # t=4
        assert deadline.remaining() < 0  # t=5

    def test_cancel_beats_the_clock(self):
        deadline = Deadline(1e9)
        assert not deadline.expired()
        deadline.cancel()
        assert deadline.expired()
        assert deadline.describe() == "query cancelled"

    def test_describe_names_the_budget(self):
        assert "0.5" in Deadline(0.5).describe()

    def test_token_for_prefers_deadline(self):
        token = CancelToken()
        assert token_for(None, token) is token
        assert token_for(None, None) is None
        built = token_for(2.0, token)
        assert isinstance(built, Deadline) and built.seconds == 2.0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=3.0, max_delay=1.0)
        with pytest.raises(ConfigError):
            DEFAULT_RETRY_POLICY.delay(0)

    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            max_attempts=8,
            base_delay=0.1,
            multiplier=2.0,
            max_delay=0.5,
            jitter=0.0,
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(7) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(jitter=0.25)
        for attempt in (1, 2, 3):
            for salt in (0, 7, 99):
                d1 = policy.delay(attempt, salt)
                d2 = policy.delay(attempt, salt)
                assert d1 == d2  # reproducible run-to-run
                base = min(
                    policy.base_delay * policy.multiplier ** (attempt - 1),
                    policy.max_delay,
                )
                assert 0.75 * base <= d1 <= base
        # Distinct salts de-synchronize retry streams.
        assert policy.delay(1, 0) != policy.delay(1, 1)

    def test_with_no_delay(self):
        assert RetryPolicy().with_no_delay().delay(3) == 0.0


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "worker_crash=0+2, worker_error=1, freeze_fail=2, slow_node=0.01"
        )
        assert plan.worker_crash == frozenset({0, 2})
        assert plan.worker_error == frozenset({1})
        assert plan.freeze_failures_left == 2
        assert plan.slow_node == pytest.approx(0.01)

    def test_parse_rejects_garbage(self):
        for bad in ("nonsense=1", "worker_crash", "freeze_fail=x",
                    "freeze_fail=-1", "slow_node=-0.5"):
            with pytest.raises(ConfigError):
                FaultPlan.parse(bad)

    def test_freeze_budget_counts_down(self):
        plan = FaultPlan(freeze_fail=2)
        assert plan.take_freeze_failure()
        assert plan.take_freeze_failure()
        assert not plan.take_freeze_failure()

    def test_env_resolution_and_override(self, monkeypatch):
        assert current_plan() is None
        monkeypatch.setenv("REPRO_FAULTS", "freeze_fail=1")
        plan = current_plan()
        assert plan is not None and plan.freeze_failures_left == 1
        assert current_plan() is plan  # memoized on the raw string
        override = FaultPlan(slow_node=0.5)
        set_plan(override)
        assert current_plan() is override  # override beats env
        set_plan(None)
        assert current_plan() is None  # explicit "no faults"
        set_plan(None, clear=True)
        assert current_plan().freeze_failures_left == 1  # env again

    def test_slow_token_wraps_and_counts(self):
        inner = CancelToken()
        token = wrap_token(FaultPlan(slow_node=0.0001), inner)
        assert isinstance(token, SlowToken)
        assert not token.expired()
        token.cancel()
        assert inner.cancelled and token.expired()
        assert token.polls == 2
        assert wrap_token(None, inner) is inner
        assert wrap_token(FaultPlan(), inner) is inner


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------


class TestAdmissionQueue:
    def test_fifo_and_depth_gauge(self):
        metrics = MetricsRegistry()
        queue = AdmissionQueue(4, metrics=metrics)
        queue.offer("a")
        queue.offer("b")
        assert metrics.gauge("service.queue_depth").value == 2
        assert queue.take() == "a"
        assert queue.take() == "b"
        assert metrics.gauge("service.queue_depth").value == 0
        with pytest.raises(LookupError):
            queue.take()

    def test_sheds_past_capacity(self):
        metrics = MetricsRegistry()
        queue = AdmissionQueue(2, metrics=metrics)
        queue.offer(1)
        queue.offer(2)
        with pytest.raises(QueueFull):
            queue.offer(3)
        assert metrics.counter("service.shed").value == 1
        assert queue.drain() == [1, 2]

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(0)


# ----------------------------------------------------------------------
# Engine-level cooperative cancellation
# ----------------------------------------------------------------------


def _expansion_budget_check(env, engine, run):
    """A deadline of E ticks stops the walk after exactly E-2 expansions.

    With the tick clock, poll i of a search happens at t=i+1 (the
    Deadline construction consumes t=1): the engine's initial poll at
    t=2, then one poll per node expansion.  Expansion poll j fails when
    j+2 >= E+1, so exactly E-2 expansions complete — the within-one-
    expansion granularity claim, pinned bit-exactly.
    """
    query = env["queries"][0]
    full = run(env["tree"], query, None)
    expansions = full.stats.expansions
    assert expansions >= 3, "fixture must require several expansions"
    deadline = Deadline(float(expansions), clock=_TickClock())
    with pytest.raises(DeadlineExceeded) as exc:
        run(env["tree"], query, deadline)
    assert exc.value.stats is not None
    assert exc.value.stats.expansions == expansions - 2
    assert "deadline" in str(exc.value)


class TestEngineCancellation:
    def test_seed_budget(self, env):
        _expansion_budget_check(
            env,
            "seed",
            lambda tree, q, c: RSTkNNSearcher(tree, engine="seed").search(
                q, 3, cancel=c
            ),
        )

    def test_snapshot_budget(self, env):
        _expansion_budget_check(
            env,
            "snapshot",
            lambda tree, q, c: RSTkNNSearcher(tree, engine="snapshot").search(
                q, 3, cancel=c
            ),
        )

    def test_fused_budget(self, env):
        def run(tree, q, c):
            snap = tree.snapshot()
            seed = RSTkNNSearcher(tree, engine="seed")
            engine = snap.fused_engine_for(
                tree, seed.measure, seed.alpha, seed.te_weight
            )
            return engine.run_group([q], 3, cancel=c)[0]

        _expansion_budget_check(env, "fused", run)

    def test_expired_before_start_raises_with_empty_stats(self, env):
        token = CancelToken()
        token.cancel()
        for engine in ("seed", "snapshot"):
            searcher = RSTkNNSearcher(env["tree"], engine=engine)
            with pytest.raises(DeadlineExceeded) as exc:
                searcher.search(env["queries"][0], 3, cancel=token)
            assert exc.value.stats is not None
            assert exc.value.stats.expansions == 0
            assert "cancelled" in str(exc.value)

    def test_inert_token_changes_nothing(self, env):
        # A token that never expires must not perturb the walk: same
        # ids, same decision counters as the no-token run.
        for engine in ("seed", "snapshot"):
            searcher = RSTkNNSearcher(env["tree"], engine=engine)
            for query in env["queries"][:3]:
                bare = searcher.search(query, 3)
                polled = searcher.search(query, 3, cancel=CancelToken())
                assert polled.ids == bare.ids
                assert polled.stats.expansions == bare.stats.expansions
                assert polled.stats.pruned_entries == bare.stats.pruned_entries


# ----------------------------------------------------------------------
# The query service
# ----------------------------------------------------------------------


class TestQueryService:
    def test_happy_path_serves_fused(self, env):
        service = QueryService(env["tree"])
        result = service.serve(env["queries"][0], 3)
        assert result.engine == "fused"
        assert result.degraded_path == () and not result.degraded
        assert result.ids == RSTkNNSearcher(env["tree"]).search(
            env["queries"][0], 3
        ).ids

    def test_validation(self, env):
        with pytest.raises(ConfigError):
            QueryService(env["tree"], chain=())
        with pytest.raises(ConfigError):
            QueryService(env["tree"], chain=("warp",))
        with pytest.raises(ConfigError):
            QueryService(env["tree"], deadline_seconds=0.0)
        with pytest.raises(QueryError):
            QueryService(env["tree"]).serve(env["queries"][0], 0)

    def test_freeze_failure_degrades_hop_by_hop(self, env):
        clean = QueryService(env["tree"]).serve(env["queries"][0], 3)

        metrics = MetricsRegistry()
        service = QueryService(env["tree"], metrics=metrics)
        set_plan(FaultPlan(freeze_fail=1))
        one_hop = service.serve(env["queries"][0], 3)
        assert one_hop.engine == "snapshot"
        assert one_hop.degraded_path == ("fused",)
        assert one_hop.ids == clean.ids  # parity survives degradation

        set_plan(FaultPlan(freeze_fail=2))
        two_hops = service.serve(env["queries"][0], 3)
        assert two_hops.engine == "seed"
        assert two_hops.degraded_path == ("fused", "snapshot")
        assert two_hops.ids == clean.ids
        assert ("fused", "FaultInjected: injected snapshot-freeze failure") in (
            two_hops.failures
        )
        counters = metrics.snapshot()["counters"]
        assert counters["service.degraded"] == 3
        assert counters["service.served"] == 2

    def test_exhausted_chain_raises_service_error(self, env):
        service = QueryService(env["tree"], chain=("fused", "snapshot"))
        set_plan(FaultPlan(freeze_fail=2))
        with pytest.raises(ServiceError) as exc:
            service.serve(env["queries"][0], 3)
        assert isinstance(exc.value.__cause__, FaultInjected)

    def test_deadline_is_never_degraded_away(self, env):
        metrics = MetricsRegistry()
        service = QueryService(env["tree"], metrics=metrics, clock=_TickClock())
        with pytest.raises(DeadlineExceeded) as exc:
            service.serve(env["queries"][0], 3, deadline_seconds=3.0)
        assert exc.value.stats is not None
        counters = metrics.snapshot()["counters"]
        assert counters["service.deadline_exceeded"] == 1
        assert counters["service.degraded"] == 0
        assert metrics.histogram("service.latency_seconds").count == 1

    def test_caller_token_cancels(self, env):
        service = QueryService(env["tree"])
        token = CancelToken()
        token.cancel()
        with pytest.raises(DeadlineExceeded):
            service.serve(env["queries"][0], 3, cancel=token)

    def test_slow_node_fault_burns_real_deadlines(self, env):
        # 5ms per expansion poll against a 15ms budget: the wall-clock
        # deadline fires long before the walk finishes.
        set_plan(FaultPlan(slow_node=0.005))
        service = QueryService(env["tree"], deadline_seconds=0.015)
        with pytest.raises(DeadlineExceeded):
            service.serve(env["queries"][0], 3)

    def test_submit_drain_and_shedding(self, env):
        metrics = MetricsRegistry()
        service = QueryService(env["tree"], max_pending=3, metrics=metrics)
        for query in env["queries"][:3]:
            service.submit(query, 3)
        with pytest.raises(QueueFull):
            service.submit(env["queries"][3], 3)
        assert metrics.snapshot()["counters"]["service.shed"] == 1
        batch = service.drain()
        assert len(batch.results) == 3
        assert batch.degraded_count == 0
        assert service.queue.depth == 0
        per_query = [
            RSTkNNSearcher(env["tree"]).search(q, 3).ids
            for q in env["queries"][:3]
        ]
        assert batch.id_lists == per_query

    def test_drain_skips_expired_requests(self, env):
        service = QueryService(env["tree"], clock=_TickClock())
        service.submit(env["queries"][0], 3)
        service.submit(env["queries"][1], 3, deadline_seconds=2.0)
        service.submit(env["queries"][2], 3)
        batch = service.drain()  # the middle request dies, others serve
        assert len(batch.results) == 2

    def test_from_perf_config(self, env):
        from repro import PerfConfig

        perf = PerfConfig(service_max_pending=2, service_deadline_seconds=9.0)
        service = QueryService.from_perf_config(env["tree"], perf)
        assert service.queue.max_pending == 2
        assert service.deadline_seconds == 9.0
        with pytest.raises(ConfigError):
            PerfConfig(service_max_pending=0)
        with pytest.raises(ConfigError):
            PerfConfig(service_deadline_seconds=-1.0)
        with pytest.raises(ConfigError):
            PerfConfig(retry_attempts=0)


# ----------------------------------------------------------------------
# Batch-engine retries (worker crash / soft error / exhausted budget)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def batch_env():
    ds = STDataset.from_corpus(random_corpus(150, seed=67))
    tree = IURTree.build(ds)
    queries = sample_queries(ds, 10, seed=5)
    clean = BatchSearcher(tree, workers=2).run(queries, 3)
    return {"tree": tree, "queries": queries, "clean": clean}


_FAST_RETRY = RetryPolicy(base_delay=0.0, multiplier=1.0, max_delay=0.0, jitter=0.0)


class TestBatchRetries:
    def test_worker_crash_slice_is_retried_byte_identical(
        self, batch_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash=4")
        metrics = MetricsRegistry()
        searcher = BatchSearcher(
            batch_env["tree"], workers=2, metrics=metrics,
            retry_policy=_FAST_RETRY,
        )
        batch = searcher.run(batch_env["queries"], 3)
        assert batch.id_lists() == batch_env["clean"].id_lists()
        assert batch.stats.retries >= 1
        assert batch.stats.fallback_reason is None
        assert metrics.snapshot()["counters"]["service.retries"] >= 1

    def test_worker_error_slice_is_retried_in_surviving_pool(
        self, batch_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "worker_error=0+7")
        searcher = BatchSearcher(
            batch_env["tree"], workers=2, retry_policy=_FAST_RETRY
        )
        batch = searcher.run(batch_env["queries"], 3)
        assert batch.id_lists() == batch_env["clean"].id_lists()
        assert batch.stats.retries == 2  # two independent failed chunks

    def test_exhausted_budget_completes_sequentially(
        self, batch_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "worker_error=2")
        metrics = MetricsRegistry()
        searcher = BatchSearcher(
            batch_env["tree"], workers=2, metrics=metrics,
            retry_policy=RetryPolicy(max_attempts=1),
        )
        with pytest.warns(RuntimeWarning, match="retry budget"):
            batch = searcher.run(batch_env["queries"], 3)
        assert batch.id_lists() == batch_env["clean"].id_lists()
        assert "retry budget exhausted" in batch.stats.fallback_reason
        counters = metrics.snapshot()["counters"]
        assert counters["batch.fallback.retry_exhausted"] == 1

    def test_unpicklable_fallback_is_counted(self, batch_env, monkeypatch):
        import repro.perf.batch as batch_mod

        def explode(*_a, **_k):
            raise batch_mod.pickle.PicklingError("nope")

        monkeypatch.setattr(batch_mod.pickle, "dumps", explode)
        metrics = MetricsRegistry()
        searcher = BatchSearcher(
            batch_env["tree"], workers=2, metrics=metrics
        )
        with pytest.warns(RuntimeWarning, match="sequential"):
            batch = searcher.run(batch_env["queries"], 3)
        assert batch.id_lists() == batch_env["clean"].id_lists()
        assert batch.stats.fallback_reason is not None
        counters = metrics.snapshot()["counters"]
        assert counters["batch.fallback.unpicklable"] == 1

    def test_retry_knobs_flow_from_perf_config(self, batch_env):
        from repro import PerfConfig

        searcher = BatchSearcher.from_perf_config(
            batch_env["tree"],
            PerfConfig(retry_attempts=5, retry_base_delay=0.01),
        )
        assert searcher.retry_policy.max_attempts == 5
        assert searcher.retry_policy.base_delay == 0.01


# ----------------------------------------------------------------------
# Harness and CLI integration
# ----------------------------------------------------------------------


class TestIntegration:
    def test_run_service_queries(self, env):
        from repro.bench.harness import run_service_queries

        metrics = MetricsRegistry()
        run = run_service_queries(
            env["tree"], env["queries"], 3, metrics=metrics
        )
        assert run.method == "iur-service"
        assert run.queries == len(env["queries"])
        assert run.extra["served"] == len(env["queries"])
        assert run.extra["shed"] == 0
        assert metrics.snapshot()["counters"]["service.served"] == len(
            env["queries"]
        )

    def test_cli_serve_batch(self, capsys):
        from repro.cli import main

        assert main(["serve-batch", "--n", "200", "--queries", "4"]) == 0
        out = capsys.readouterr().out
        assert "serve-batch" in out and "served" in out

    def test_cli_serve_batch_with_faults(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_FAULTS", "freeze_fail=1")
        assert main(["serve-batch", "--n", "200", "--queries", "3"]) == 0
        out = capsys.readouterr().out
        assert "fault plan armed" in out
        assert "fused -> snapshot" in out
