"""Exception hierarchy and remaining edge-case coverage."""

import pytest

from repro import (
    BufferPoolError,
    ConfigError,
    DatasetError,
    IndexConfig,
    IndexCorruptionError,
    IURTree,
    PageFormatError,
    QueryError,
    ReproError,
    RSTkNNSearcher,
    SimilarityConfig,
    STDataset,
    StorageError,
)
from repro.spatial import Point


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigError,
            DatasetError,
            IndexCorruptionError,
            StorageError,
            PageFormatError,
            BufferPoolError,
            QueryError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_page_format_is_storage_error(self):
        assert issubclass(PageFormatError, StorageError)
        assert issubclass(BufferPoolError, StorageError)

    def test_catching_library_errors_does_not_mask_bugs(self):
        """TypeError must escape a ReproError handler."""
        with pytest.raises(TypeError):
            try:
                raise TypeError("a genuine bug")
            except ReproError:  # pragma: no cover - must not trigger
                pass


class TestTinyDatasets:
    def test_two_identical_objects(self):
        records = [(Point(1, 1), "same words"), (Point(1, 1), "same words")]
        dataset = STDataset.from_corpus(records, SimilarityConfig(weighting="tf"))
        tree = IURTree.build(dataset)
        q = dataset.make_query(Point(1, 1), "same words")
        # Both objects tie perfectly; both must be reverse neighbors.
        assert RSTkNNSearcher(tree).search(q, 1).ids == [0, 1]

    def test_all_objects_colocated(self):
        records = [(Point(5, 5), f"term{i}") for i in range(6)]
        dataset = STDataset.from_corpus(records, SimilarityConfig(weighting="tf"))
        tree = IURTree.build(dataset)
        from repro import BruteForceRSTkNN

        q = dataset.make_query(Point(5, 5), "term0 term3")
        assert RSTkNNSearcher(tree).search(q, 2).ids == BruteForceRSTkNN(
            dataset
        ).search(q, 2)

    def test_objects_with_empty_text(self):
        # Stopword-only descriptions weight to empty vectors.
        records = [
            (Point(0, 0), "the of and"),
            (Point(1, 1), "sushi bar"),
            (Point(2, 2), "the a an"),
        ]
        dataset = STDataset.from_corpus(records)
        tree = IURTree.build(dataset)
        from repro import BruteForceRSTkNN

        q = dataset.make_query(Point(0.5, 0.5), "sushi")
        assert RSTkNNSearcher(tree).search(q, 1).ids == BruteForceRSTkNN(
            dataset
        ).search(q, 1)

    def test_extreme_fanout_two(self):
        from repro.workloads import shop_like

        dataset = shop_like(n=60, seed=99)
        tree = IURTree.build(dataset, IndexConfig(max_entries=2, min_entries=1))
        tree.check_invariants()
        from repro import BruteForceRSTkNN
        from repro.workloads import sample_queries

        q = sample_queries(dataset, 1, seed=1)[0]
        assert RSTkNNSearcher(tree).search(q, 3).ids == BruteForceRSTkNN(
            dataset
        ).search(q, 3)


class TestConfigSurface:
    def test_index_config_rejects_bad_combination(self):
        with pytest.raises(ConfigError):
            IndexConfig(max_entries=4, min_entries=3)

    def test_similarity_config_is_hashable_and_frozen(self):
        cfg = SimilarityConfig()
        assert hash(cfg) == hash(SimilarityConfig())
        with pytest.raises(Exception):
            cfg.alpha = 0.9  # type: ignore[misc]
