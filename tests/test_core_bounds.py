"""Entry-level SimST bounds: validity against brute-forced object pairs."""

import pytest

from repro import SimilarityConfig, STScorer, make_measure
from repro.core.bounds import BoundComputer
from repro.index import Entry, IURTree


def all_node_entries(tree):
    """Every directory entry in the tree, as synthesized entries."""
    out = []
    for nid, node in tree.rtree.nodes.items():
        out.append(Entry.for_subtree(nid, node.mbr(), node.entries))
    return out


def objects_under(tree, entry):
    if entry.is_object:
        return [entry.ref]
    out, stack = [], [entry]
    while stack:
        e = stack.pop()
        if e.is_object:
            out.append(e.ref)
        else:
            stack.extend(tree.rtree.node(e.ref).entries)
    return out


@pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0])
@pytest.mark.parametrize("measure", ["extended_jaccard", "cosine", "overlap"])
def test_entry_bounds_contain_all_pairs(medium_dataset, alpha, measure):
    cfg = SimilarityConfig(alpha=alpha, text_measure=measure)
    tree = IURTree.build(medium_dataset)
    scorer = STScorer.for_dataset(medium_dataset, cfg)
    bc = BoundComputer(medium_dataset.proximity, make_measure(measure), alpha)
    nodes = all_node_entries(tree)[:6]
    for a in nodes:
        for b in nodes:
            lo, hi = bc.st_bounds(a, b)
            ids_a = objects_under(tree, a)[:8]
            ids_b = objects_under(tree, b)[:8]
            for ia in ids_a:
                for ib in ids_b:
                    sim = scorer.score(
                        medium_dataset.get(ia), medium_dataset.get(ib)
                    )
                    assert lo - 1e-9 <= sim <= hi + 1e-9


def test_object_pair_bounds_are_exact(small_dataset):
    cfg = small_dataset.config
    scorer = STScorer.for_dataset(small_dataset)
    bc = BoundComputer(
        small_dataset.proximity, make_measure(cfg.text_measure), cfg.alpha
    )
    objs = small_dataset.objects[:12]
    for a in objs:
        for b in objs:
            ea = Entry.for_object(a.oid, a.mbr(), a.vector)
            eb = Entry.for_object(b.oid, b.mbr(), b.vector)
            lo, hi = bc.st_bounds(ea, eb)
            assert lo == hi == pytest.approx(scorer.score(a, b))


def test_self_bounds_contain_internal_pairs(medium_dataset):
    cfg = medium_dataset.config
    scorer = STScorer.for_dataset(medium_dataset)
    tree = IURTree.build(medium_dataset)
    bc = BoundComputer(
        medium_dataset.proximity, make_measure(cfg.text_measure), cfg.alpha
    )
    for entry in all_node_entries(tree)[:8]:
        lo, hi = bc.self_bounds(entry)
        ids = objects_under(tree, entry)[:10]
        for i in ids:
            for j in ids:
                if i == j:
                    continue
                sim = scorer.score(medium_dataset.get(i), medium_dataset.get(j))
                assert lo - 1e-9 <= sim <= hi + 1e-9


def test_cache_consistency(small_dataset):
    cfg = small_dataset.config
    bc = BoundComputer(
        small_dataset.proximity, make_measure(cfg.text_measure), cfg.alpha
    )
    a = small_dataset.get(0)
    b = small_dataset.get(1)
    ea = Entry.for_object(a.oid, a.mbr(), a.vector)
    eb = Entry.for_object(b.oid, b.mbr(), b.vector)
    first = bc.st_bounds(ea, eb)
    assert bc.st_bounds(ea, eb) == first
    assert bc.st_bounds(eb, ea) == first  # symmetric cache entry
    bc.clear_cache()
    assert bc.st_bounds(ea, eb) == first


def test_disabled_cache_still_correct(small_dataset):
    cfg = small_dataset.config
    cached = BoundComputer(
        small_dataset.proximity, make_measure(cfg.text_measure), cfg.alpha
    )
    uncached = BoundComputer(
        small_dataset.proximity,
        make_measure(cfg.text_measure),
        cfg.alpha,
        enable_cache=False,
    )
    a = small_dataset.get(2)
    b = small_dataset.get(7)
    ea = Entry.for_object(a.oid, a.mbr(), a.vector)
    eb = Entry.for_object(b.oid, b.mbr(), b.vector)
    assert cached.st_bounds(ea, eb) == uncached.st_bounds(ea, eb)
