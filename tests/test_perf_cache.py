"""Shared pair-bound caching: LRU mechanics and searcher integration."""

import pytest

from repro.config import SimilarityConfig
from repro.core.bounds import BoundComputer
from repro.core.rstknn import RSTkNNSearcher
from repro.errors import ConfigError
from repro.index.iurtree import IURTree
from repro.perf.cache import BoundCache, LRUCache
from repro.text.similarity import make_measure
from repro.workloads import gn_like, sample_queries


# ----------------------------------------------------------------------
# LRUCache
# ----------------------------------------------------------------------

def test_lru_basic_get_put_counters():
    cache = LRUCache(4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 0)
    assert len(cache) == 1
    assert "a" in cache


def test_lru_evicts_least_recently_used():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a" (cache is full)
    cache.put("c", 3)  # evicts "b"
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1


def test_lru_put_refreshes_existing_key():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh, not insert
    cache.put("c", 3)  # evicts "b"
    assert cache.get("a") == 10
    assert cache.get("b") is None


def test_lru_clear_keeps_lifetime_counters():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("zzz")
    cache.clear()
    assert len(cache) == 0
    stats = cache.stats()
    assert stats.hits == 1 and stats.misses == 1 and stats.entries == 0
    assert 0.0 < stats.hit_rate < 1.0


def test_lru_rejects_nonpositive_capacity():
    with pytest.raises(ConfigError):
        LRUCache(0)


def test_cache_stats_as_dict_keys():
    stats = LRUCache(8).stats()
    assert set(stats.as_dict()) == {
        "hits", "misses", "evictions", "entries", "capacity", "hit_rate",
    }
    assert stats.hit_rate == 0.0  # never consulted


# ----------------------------------------------------------------------
# BoundCache
# ----------------------------------------------------------------------

def test_bound_cache_splits_capacity_and_merges_stats():
    cache = BoundCache(1024)
    assert cache.capacity == (
        cache.pairs.capacity + cache.text.capacity + cache.exact.capacity
    )
    cache.pairs.put(("p",), (0.0, 1.0))
    cache.text.put(("t",), (0.25, 0.75))
    cache.exact.put(("e",), 0.5)
    assert cache.stats().entries == 3
    cache.clear()
    assert cache.stats().entries == 0


def test_bound_cache_rejects_tiny_capacity():
    with pytest.raises(ConfigError):
        BoundCache(1)


# ----------------------------------------------------------------------
# BoundComputer accessors
# ----------------------------------------------------------------------

def _computer(dataset, shared=None, enable=True):
    return BoundComputer(
        dataset.proximity,
        make_measure(SimilarityConfig().text_measure),
        alpha=0.5,
        enable_cache=enable,
        shared_cache=shared,
    )


def test_bound_computer_cache_stats_and_clear(tiny_dataset):
    tree = IURTree.build(tiny_dataset)
    entries = tree.rtree.nodes[tree.rtree.root_id].entries
    comp = _computer(tiny_dataset)
    comp.text_bounds(entries[0], entries[0])
    comp.text_bounds(entries[0], entries[0])
    stats = comp.cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["text_entries"] == 1
    comp.clear()
    assert comp.cache_stats()["text_entries"] == 0
    # Lifetime counters survive the clear.
    assert comp.cache_stats()["hits"] == 1
    comp.clear_cache()  # the seed API alias still works


def test_bound_computer_shared_cache_reports_shared_keys(tiny_dataset):
    tree = IURTree.build(tiny_dataset)
    entries = tree.rtree.nodes[tree.rtree.root_id].entries
    shared = BoundCache(64)
    comp = _computer(tiny_dataset, shared=shared)
    comp.st_bounds(entries[0], entries[0])
    stats = comp.cache_stats()
    assert "shared_hits" in stats and "shared_entries" in stats
    assert stats["shared_entries"] >= 1

    # A second computer on the same shared cache hits immediately.
    other = _computer(tiny_dataset, shared=shared)
    before = shared.stats().hits
    other.st_bounds(entries[0], entries[0])
    assert shared.stats().hits == before + 1
    assert other.hits == 1


def test_symmetric_pair_key_canonical(tiny_dataset):
    tree = IURTree.build(tiny_dataset)
    entries = tree.rtree.nodes[tree.rtree.root_id].entries
    if len(entries) < 2:
        pytest.skip("need two sibling entries")
    a, b = entries[0], entries[1]
    assert BoundComputer._pair_key(a, b) == BoundComputer._pair_key(b, a)


# ----------------------------------------------------------------------
# Searcher integration
# ----------------------------------------------------------------------

def test_shared_cache_preserves_results_and_counts_hits(small_dataset):
    tree = IURTree.build(small_dataset)
    queries = sample_queries(small_dataset, 3, seed=5)

    plain = RSTkNNSearcher(tree)
    expected = [plain.search(q, 3).ids for q in queries]

    cache = BoundCache(65536)
    shared = RSTkNNSearcher(tree, bound_cache=cache)
    results = [shared.search(q, 3) for q in queries]
    assert [r.ids for r in results] == expected

    # The first query seeds the cache; later ones must hit it.
    assert results[0].stats.cache_misses > 0
    assert results[-1].stats.cache_hits > 0
    assert cache.stats().hits > 0

    as_dict = results[-1].stats.as_dict()
    for key in ("cache_hits", "cache_misses", "cache_evictions"):
        assert key in as_dict


def test_search_result_contains_uses_lazy_set(small_dataset):
    tree = IURTree.build(small_dataset)
    query = sample_queries(small_dataset, 1, seed=5)[0]
    result = RSTkNNSearcher(tree).search(query, 3)
    for oid in result.ids:
        assert oid in result
    assert -12345 not in result
    # The memoized set is built once and reused.
    assert result._id_set == set(result.ids)


def test_eviction_counter_reaches_search_stats(small_dataset):
    tree = IURTree.build(small_dataset)
    queries = sample_queries(small_dataset, 2, seed=5)
    cache = BoundCache(8)  # absurdly small: every query thrashes it
    searcher = RSTkNNSearcher(tree, bound_cache=cache)
    searcher.search(queries[0], 3)
    stats = searcher.search(queries[1], 3).stats
    assert stats.cache_evictions > 0
    assert cache.stats().evictions >= stats.cache_evictions
