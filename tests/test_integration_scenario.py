"""End-to-end integration scenario exercising every subsystem together.

One continuous story: ingest a CSV, build and tune an index, answer the
full query suite, persist everything, reload, apply live updates, and
verify that every feature stays consistent with every other at each
step.  This is the "does the whole product hang together" test.
"""

import pytest

from repro import (
    BruteForceRSTkNN,
    CIURTree,
    IndexConfig,
    LocationSelector,
    RSTkNNSearcher,
    SearchTrace,
    SimilarityConfig,
    TopKSearcher,
    estimate_rstknn_io,
    load_dataset,
    load_index,
    save_dataset,
    save_index,
)
from repro.analysis import measure_index_quality, profile_bounds, render_tree
from repro.core.spatial_keyword import SpatialKeywordSearcher
from repro.data import load_csv_dataset, sample_dataset, write_csv
from repro.spatial import Point, Rect


@pytest.fixture(scope="module")
def story(tmp_path_factory):
    """Ingest → build → return the shared fixtures of the scenario."""
    tmp = tmp_path_factory.mktemp("scenario")
    # 1. Export the bundled city and ingest it back through the CSV path,
    #    like a user arriving with a POI file.
    csv_path = tmp / "city.csv"
    write_csv(sample_dataset(), csv_path)
    dataset, report = load_csv_dataset(
        csv_path, config=SimilarityConfig(alpha=0.4, weighting="tf")
    )
    assert report.rows_skipped == 0
    # 2. Build a tuned clustered index.
    tree = CIURTree.build(
        dataset,
        IndexConfig(num_clusters=5, outlier_threshold=0.05, buffer_pages=64),
        method="text-str",
    )
    return tmp, dataset, tree


class TestScenario:
    def test_index_is_sound(self, story):
        _, dataset, tree = story
        tree.check_invariants()
        quality = measure_index_quality(tree)
        assert quality.objects == len(dataset)
        profiles = profile_bounds(tree, sample_pairs=10)  # asserts soundness
        assert profiles
        assert "node#" in render_tree(tree, max_depth=1) or "leaf#" in render_tree(tree)

    def test_query_suite_is_mutually_consistent(self, story):
        _, dataset, tree = story
        query = dataset.make_query(Point(5.0, 5.0), "wine restaurant italian")
        k = 3

        searcher = RSTkNNSearcher(tree)
        brute = BruteForceRSTkNN(dataset)
        trace = SearchTrace()
        reverse = searcher.search(query, k, trace=trace)
        assert reverse.ids == brute.search(query, k)
        assert trace.counts()  # the trace observed the same run

        # Ranked output agrees with the plain result set.
        ranked = searcher.search_ranked(query, k)
        assert sorted(oid for oid, _, _ in ranked) == reverse.ids

        # Influence counting agrees with reverse search.
        selector = LocationSelector(tree, k)
        influence = selector.influence(query.point, "wine restaurant italian")
        assert list(influence.influenced) == reverse.ids

        # Top-k and reverse search cross-check: every reverse neighbor
        # must have the query within its own top-k.
        topk = TopKSearcher(tree)
        from repro import STScorer

        scorer = STScorer.for_dataset(dataset)
        for oid in reverse.ids:
            obj = dataset.get(oid)
            threshold = topk.kth_score(obj, k, exclude_oid=oid)
            assert scorer.score(query, obj) >= threshold - 1e-12

        # The cost model stays within sane limits of the measured I/O.
        estimate = estimate_rstknn_io(tree, query, k)
        tree.reset_io(cold=True)
        searcher.search(query, k)
        assert 0 < estimate.page_ios <= tree.stats().pages

    def test_spatial_keyword_consistency(self, story):
        _, dataset, tree = story
        sk = SpatialKeywordSearcher(tree)
        region = Rect(0, 0, 10, 10)
        conj = sk.boolean_range(region, ["japanese"])
        knn_all = sk.boolean_knn(Point(5, 5), len(dataset), ["japanese"])
        assert conj == sorted(oid for oid, _ in knn_all)

    def test_persist_reload_update(self, story):
        tmp, dataset, tree = story
        ds_path, idx_path = tmp / "city.ds.json", tmp / "city.idx.json"
        save_dataset(dataset, ds_path)
        save_index(tree, idx_path)

        loaded_ds = load_dataset(ds_path)
        loaded = load_index(idx_path, loaded_ds)
        query = loaded_ds.make_query(Point(8.0, 8.0), "coffee study books")
        before = RSTkNNSearcher(loaded).search(query, 2)
        reference = RSTkNNSearcher(tree).search(
            dataset.make_query(Point(8.0, 8.0), "coffee study books"), 2
        )
        assert before.ids == reference.ids

        # Live update on the reloaded tree, then re-verify vs brute force.
        newcomer = loaded_ds.append_record(Point(8.0, 8.0), "coffee study books")
        loaded.insert_object(newcomer)
        after = RSTkNNSearcher(loaded).search(query, 2)
        assert after.ids == BruteForceRSTkNN(loaded_ds).search(query, 2)
        assert newcomer.oid in after.ids  # a co-located clone must appear

        assert loaded.delete_object(newcomer.oid)
        restored = RSTkNNSearcher(loaded).search(query, 2)
        assert restored.ids == before.ids
