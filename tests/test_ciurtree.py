"""CIUR-tree: clustering, per-cluster summaries, outlier extraction."""

import pytest

from repro import IndexConfig
from repro.index import CIURTree
from repro.index.outliers import split_outliers
from repro.errors import ConfigError
from repro.text.clustering import SphericalKMeans


class TestCIURTree:
    def test_build_with_clusters(self, medium_dataset):
        tree = CIURTree.build(medium_dataset, IndexConfig(num_clusters=4))
        assert tree.kind == "ciur"
        assert 1 <= tree.num_clusters() <= 4
        tree.check_invariants()

    def test_labels_cover_dataset(self, medium_dataset):
        tree = CIURTree.build(medium_dataset, IndexConfig(num_clusters=4))
        assert len(tree.labels) == len(medium_dataset)
        assert sum(tree.cluster_sizes()) == len(medium_dataset)

    def test_nodes_store_per_cluster_summaries(self, medium_dataset):
        tree = CIURTree.build(medium_dataset, IndexConfig(num_clusters=4))
        root = tree.root_entry()
        assert root is not None
        assert len(root.clusters) >= 2  # mixed corpus spans clusters
        assert sum(iv.doc_count for iv in root.clusters.values()) == root.count

    def test_outlier_extraction(self, medium_dataset):
        tree = CIURTree.build(
            medium_dataset, IndexConfig(num_clusters=4, outlier_threshold=0.6)
        )
        stats = tree.stats()
        assert stats.outliers == len(tree.outliers)
        assert stats.outliers + (
            tree.root_entry().count if tree.root_entry() else 0
        ) == len(medium_dataset)
        assert len(tree.outlier_entries()) == stats.outliers

    def test_outlier_entries_are_exact(self, medium_dataset):
        tree = CIURTree.build(
            medium_dataset, IndexConfig(num_clusters=4, outlier_threshold=0.6)
        )
        for entry in tree.outlier_entries():
            assert entry.is_object
            obj = medium_dataset.get(entry.ref)
            assert entry.exact_vector() == obj.vector

    def test_threshold_zero_extracts_nothing(self, small_dataset):
        tree = CIURTree.build(
            small_dataset, IndexConfig(num_clusters=4, outlier_threshold=0.0)
        )
        assert tree.stats().outliers == 0

    def test_shared_clustering_reused(self, small_dataset):
        kmeans = SphericalKMeans(4, seed=3)
        fitted = kmeans.fit(small_dataset.vectors())
        t1 = CIURTree.build(small_dataset, IndexConfig(num_clusters=4), clustering=fitted)
        t2 = CIURTree.build(small_dataset, IndexConfig(num_clusters=4), clustering=fitted)
        assert t1.labels == t2.labels

    def test_deterministic_given_seed(self, small_dataset):
        t1 = CIURTree.build(small_dataset, IndexConfig(num_clusters=4), seed=9)
        t2 = CIURTree.build(small_dataset, IndexConfig(num_clusters=4), seed=9)
        assert t1.labels == t2.labels


class TestSplitOutliers:
    def _clustering(self, cohesions):
        from repro.text.clustering import ClusteringResult
        from repro.text.vector import SparseVector

        return ClusteringResult(
            labels=[0] * len(cohesions),
            centroids=[SparseVector({0: 1.0})],
            cohesion=list(cohesions),
        )

    def test_partition(self):
        clustering = self._clustering([0.9, 0.1, 0.5, 0.4])
        core, outliers = split_outliers(clustering, 0.45)
        assert core == [0, 2]
        assert outliers == [1, 3]

    def test_threshold_bounds(self):
        clustering = self._clustering([0.5])
        with pytest.raises(ConfigError):
            split_outliers(clustering, 1.5)

    def test_all_core_at_zero(self):
        clustering = self._clustering([0.0, 0.3])
        core, outliers = split_outliers(clustering, 0.0)
        assert core == [0, 1]
        assert outliers == []
