"""Unit tests for point and rectangle geometry."""

import math

import pytest

from repro import ConfigError, Point, Rect


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_squared_distance(self):
        assert Point(1, 1).squared_distance_to(Point(4, 5)) == 25.0

    def test_manhattan(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, -4)) == 7.0

    def test_translated(self):
        assert Point(1, 2).translated(2, -1) == Point(3, 1)

    def test_midpoint(self):
        assert Point.midpoint(Point(0, 0), Point(4, 2)) == Point(2, 1)

    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)

    def test_iter_and_tuple(self):
        assert tuple(Point(3, 7)) == (3, 7)
        assert Point(3, 7).as_tuple() == (3, 7)


class TestRectConstruction:
    def test_malformed_rejected(self):
        with pytest.raises(ConfigError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ConfigError):
            Rect(0, 1, 1, 0)

    def test_from_point_is_degenerate(self):
        r = Rect.from_point(Point(2, 3))
        assert r.is_point()
        assert r.area() == 0.0

    def test_from_points(self):
        r = Rect.from_points([Point(1, 5), Point(3, 2), Point(2, 4)])
        assert r.as_tuple() == (1, 2, 3, 5)

    def test_from_points_empty_rejected(self):
        with pytest.raises(ConfigError):
            Rect.from_points([])

    def test_union_all(self):
        r = Rect.union_all([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
        assert r.as_tuple() == (0, -1, 3, 1)

    def test_union_all_empty_rejected(self):
        with pytest.raises(ConfigError):
            Rect.union_all([])


class TestRectMeasures:
    def test_area_margin_diagonal(self):
        r = Rect(0, 0, 3, 4)
        assert r.area() == 12.0
        assert r.margin() == 7.0
        assert r.diagonal() == 5.0

    def test_center_and_corners(self):
        r = Rect(0, 0, 2, 4)
        assert r.center() == Point(1, 2)
        assert len(r.corners()) == 4

    def test_containment(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_point(Point(5, 5))
        assert outer.contains_point(Point(0, 0))  # boundary inclusive
        assert not outer.contains_point(Point(11, 5))
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert not outer.contains_rect(Rect(1, 1, 11, 9))

    def test_intersection(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        assert a.intersects(b)
        assert a.intersection_area(b) == 1.0
        c = Rect(5, 5, 6, 6)
        assert not a.intersects(c)
        assert a.intersection_area(c) == 0.0

    def test_touching_rects_intersect(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_enlargement(self):
        a = Rect(0, 0, 2, 2)
        assert a.enlargement(Rect(1, 1, 2, 2)) == 0.0
        assert a.enlargement(Rect(0, 0, 4, 2)) == 4.0


class TestRectDistances:
    def test_min_dist_point_inside_is_zero(self):
        assert Rect(0, 0, 4, 4).min_dist_point(Point(2, 2)) == 0.0

    def test_min_dist_point_outside(self):
        assert Rect(0, 0, 1, 1).min_dist_point(Point(4, 5)) == 5.0

    def test_max_dist_point(self):
        assert Rect(0, 0, 1, 1).max_dist_point(Point(2, 2)) == math.hypot(2, 2)

    def test_min_dist_overlapping_rects_is_zero(self):
        assert Rect(0, 0, 2, 2).min_dist(Rect(1, 1, 3, 3)) == 0.0

    def test_min_dist_disjoint(self):
        assert Rect(0, 0, 1, 1).min_dist(Rect(4, 1, 5, 2)) == 3.0
        assert Rect(0, 0, 1, 1).min_dist(Rect(4, 5, 6, 7)) == 5.0

    def test_max_dist_same_rect_is_diagonal(self):
        r = Rect(0, 0, 3, 4)
        assert r.max_dist(r) == 5.0

    def test_max_dist_disjoint(self):
        assert Rect(0, 0, 1, 1).max_dist(Rect(4, 0, 5, 1)) == math.hypot(5, 1)

    def test_distances_symmetric(self):
        a = Rect(0, 0, 2, 3)
        b = Rect(5, 1, 7, 9)
        assert a.min_dist(b) == b.min_dist(a)
        assert a.max_dist(b) == b.max_dist(a)

    def test_min_max_dist_bounds_center_reach(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(5, 5, 7, 7)
        mm = a.min_max_dist(b)
        # From the center of a, every point of b is within mm.
        center = a.center()
        for corner in b.corners():
            assert center.distance_to(corner) <= mm + 1e-12
