"""CLI and experiment drivers (smoke-scale)."""

import pytest

from repro.bench.experiments import EXPERIMENTS, run_e4, run_e12, run_experiment
from repro.cli import build_parser, main
from repro.errors import ConfigError


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        assert {f"E{i}" for i in range(1, 17)} == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("E99")

    def test_dispatch_case_insensitive(self):
        headers, rows = run_experiment("e12", n=150, batch_sizes=(1, 5), k=3)
        assert headers[0] == "batch"
        assert len(rows) == 2


class TestExperimentDrivers:
    def test_e4_pruning_power_smoke(self):
        headers, rows = run_e4(n=150, num_queries=2, k=3)
        assert headers[0] == "method"
        assert len(rows) == 5
        for row in rows:
            assert row[1].endswith("%")

    def test_e12_batching_saves_io(self):
        _, rows = run_e12(n=200, batch_sizes=(1, 20), k=3)
        cold_single = float(rows[0][1])
        shared_batch = float(rows[1][2])
        assert shared_batch < cold_single


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E1", "--scale", "100"])
        assert args.experiment == "E1"
        assert args.scale == 100

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E12" in out

    def test_demo_command(self, capsys):
        assert main(["demo", "--n", "100", "--k", "2", "--queries", "1"]) == 0
        out = capsys.readouterr().out
        assert "dataset:" in out
        assert "query 0:" in out

    def test_run_command(self, capsys):
        assert main(["run", "E12", "--scale", "150"]) == 0
        out = capsys.readouterr().out
        assert "E12" in out
        assert "batch" in out

    def test_engine_flag_parsed(self):
        parser = build_parser()
        for command in ("demo", "batch"):
            args = parser.parse_args([command, "--engine", "snapshot"])
            assert args.engine == "snapshot"
            assert parser.parse_args([command]).engine is None

    def test_engine_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--engine", "warp"])

    def test_demo_command_with_engine(self, capsys):
        for engine in ("seed", "snapshot"):
            assert (
                main(
                    ["demo", "--n", "100", "--k", "2", "--queries", "1",
                     "--engine", engine]
                )
                == 0
            )
            assert "query 0:" in capsys.readouterr().out

    def test_batch_command_with_engine(self, capsys):
        assert (
            main(
                ["batch", "--n", "120", "--k", "2", "--queries", "3",
                 "--engine", "snapshot"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "throughput (q/s)" in out
