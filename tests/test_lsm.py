"""The LSM live-update path: overlay, tombstones, epochs, freezing.

Every parity assertion here leans on the subsystem's anchor: a fold
builds a *brand new* tree over the mutated dataset, so "byte-identical
to a fresh build" is checkable at any point — while dirty (merged walk
over overlay + tombstone-masked frozen tree) and after folds.  The
suite also pins the operational surface: the engine resolver forcing
the merged seed walk while dirty (warm floors, snapshots, and shard
admission all carry frozen-side state that deletes invalidate), the
``freeze_fail`` fault point leaving the old generation serving, epoch
pins keeping shm segments alive across a swap, and the ``lsm.*``
metrics.
"""

import time

import pytest

from repro import (
    BruteForceRSTkNN,
    ConfigError,
    IndexConfig,
    IURTree,
    OverlayPendingError,
    PerfConfig,
    QueryService,
    RSTkNNSearcher,
    STDataset,
)
from repro.errors import FaultInjected
from repro.lsm import (
    DEFAULT_FREEZE_THRESHOLD,
    LiveIndex,
    LiveScatterGather,
    default_live_updates,
    maybe_wrap_live,
)
from repro.obs import MetricsRegistry
from repro.perf import BatchSearcher
from repro.service.faults import FaultPlan, set_plan
from repro.spatial import Point
from repro.workloads import sample_queries

from tests.conftest import random_corpus


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_LIVE_UPDATES", raising=False)
    set_plan(None, clear=True)
    yield
    set_plan(None, clear=True)


def make_live(n=120, seed=17, **kwargs):
    ds = STDataset.from_corpus(random_corpus(n, seed=seed))
    return ds, LiveIndex(IURTree.build(ds), **kwargs)


def assert_parity(live, ds, k=4, queries=3, seed=5):
    """Live answers == fresh-build seed walk == brute force."""
    fresh = RSTkNNSearcher(IURTree.build(ds), engine="seed")
    searcher = RSTkNNSearcher(live)
    for query in sample_queries(ds, queries, seed=seed):
        expected = BruteForceRSTkNN(ds).search(query, k)
        assert searcher.search(query, k).ids == expected
        assert fresh.search(query, k).ids == expected


def churn(live, ds, inserts=6, deletes=6, seed=99):
    import random

    rng = random.Random(seed)
    for _ in range(inserts):
        donor = ds.objects[rng.randrange(len(ds.objects))]
        live.insert(donor.point, " ".join(donor.keywords))
    for _ in range(deletes):
        victim = ds.objects[rng.randrange(len(ds.objects))].oid
        assert live.delete_object(victim)


class TestLiveParity:
    def test_clean_live_index_is_transparent(self):
        ds, live = make_live()
        try:
            assert not live.overlay_dirty
            assert_parity(live, ds)
        finally:
            live.close()

    def test_inserts_visible_before_any_fold(self):
        ds, live = make_live()
        try:
            churn(live, ds, inserts=8, deletes=0)
            assert live.overlay_dirty and live.pending() == 8
            assert_parity(live, ds)
        finally:
            live.close()

    def test_tombstoned_deletes_masked_everywhere(self):
        ds, live = make_live()
        try:
            churn(live, ds, inserts=0, deletes=10)
            assert live.overlay_dirty
            assert_parity(live, ds)
        finally:
            live.close()

    def test_mixed_churn_then_fold_restores_clean_paths(self):
        ds, live = make_live()
        try:
            churn(live, ds)
            assert_parity(live, ds)
            epoch = live.epoch
            assert live.freeze_step()
            assert live.epoch == epoch + 1
            assert live.pending() == 0 and not live.overlay_dirty
            assert not live.freeze_step()  # already clean
            assert_parity(live, ds)
        finally:
            live.close()

    def test_delete_of_overlay_resident_object(self):
        ds, live = make_live(n=60)
        try:
            obj = live.insert(Point(3.0, 4.0), "alpha beta")
            assert live.delete_object(obj.oid)
            assert live.delete_object(obj.oid) is False  # already gone
            assert_parity(live, ds)
        finally:
            live.close()

    def test_dirty_search_forces_seed_engine(self):
        registry = MetricsRegistry()
        ds, live = make_live(n=60)
        try:
            churn(live, ds, inserts=1, deletes=1)
            searcher = RSTkNNSearcher(live, engine="snapshot", metrics=registry)
            query = sample_queries(ds, 1, seed=2)[0]
            result = searcher.search(query, 3)
            assert result.ids == BruteForceRSTkNN(ds).search(query, 3)
            counters = registry.snapshot()["counters"]
            assert counters["search.queries.seed"] == 1
            assert "search.queries.snapshot" not in counters
            live.freeze_step()
            searcher.search(query, 3)
            counters = registry.snapshot()["counters"]
            assert counters["search.queries.snapshot"] == 1
        finally:
            live.close()

    def test_wrapping_a_live_tree_is_rejected(self):
        _, live = make_live(n=40)
        try:
            with pytest.raises(ConfigError):
                LiveIndex(live)
            with pytest.raises(ConfigError):
                LiveIndex(live.frozen_tree, freeze_threshold=0)
        finally:
            live.close()


class TestWarmFloorHazard:
    def test_stale_warm_floors_never_touch_dirty_answers(self):
        """Deletes make frozen kNNL floors overstate the neighborhood:
        a floored snapshot walk would over-prune.  The resolver must
        route warm searchers through the merged seed walk while dirty,
        and the post-fold floors are rebuilt from the new snapshot."""
        ds, live = make_live(n=150, seed=23)
        try:
            warm = RSTkNNSearcher(live, warm_floors=True)
            churn(live, ds, inserts=0, deletes=20, seed=7)
            for query in sample_queries(ds, 4, seed=11):
                assert warm.search(query, 4).ids == BruteForceRSTkNN(
                    ds
                ).search(query, 4)
            live.freeze_step()
            for query in sample_queries(ds, 4, seed=11):
                assert warm.search(query, 4).ids == BruteForceRSTkNN(
                    ds
                ).search(query, 4)
        finally:
            live.close()


class TestLiveScatterGather:
    def test_dirty_epoch_bypasses_shard_admission(self):
        ds, live = make_live(n=150, seed=31)
        registry = MetricsRegistry()
        scatter = LiveScatterGather(live, 3, metrics=registry)
        try:
            churn(live, ds, seed=13)
            query = sample_queries(ds, 1, seed=4)[0]
            result = scatter.search(query, 4)
            assert result.stats.shards_searched == 0
            assert list(result.ids) == BruteForceRSTkNN(ds).search(query, 4)
            counters = registry.snapshot()["counters"]
            assert counters["lsm.scatter.merged"] == 1
        finally:
            scatter.close()
            live.close()

    def test_clean_epoch_reshards_once(self):
        ds, live = make_live(n=150, seed=31)
        registry = MetricsRegistry()
        scatter = LiveScatterGather(live, 3, metrics=registry)
        try:
            churn(live, ds, seed=13)
            assert scatter.freeze_step()
            queries = sample_queries(ds, 3, seed=4)
            for query in queries:
                result = scatter.search(query, 4)
                assert result.stats.shards_total == 3
                assert list(result.ids) == BruteForceRSTkNN(ds).search(
                    query, 4
                )
            counters = registry.snapshot()["counters"]
            assert counters["lsm.scatter.rebuilds"] == 1  # one per epoch
        finally:
            scatter.close()
            live.close()


class TestFreezeFailure:
    def test_failed_swap_leaves_old_generation_serving(self):
        ds, live = make_live(n=100, metrics=(registry := MetricsRegistry()))
        try:
            churn(live, ds)
            epoch, pending = live.epoch, live.pending()
            set_plan(FaultPlan(freeze_fail=1))
            with pytest.raises(FaultInjected):
                live.freeze_step()
            # No visible state change: old epoch serving, overlay intact.
            assert live.epoch == epoch
            assert live.pending() == pending and live.overlay_dirty
            assert_parity(live, ds)
            counters = registry.snapshot()["counters"]
            assert counters["lsm.freeze.failures"] == 1
            assert counters["lsm.swaps"] == 0
            # The plan is exhausted; the retried fold succeeds.
            assert live.freeze_step()
            assert live.epoch == epoch + 1 and not live.overlay_dirty
            assert_parity(live, ds)
        finally:
            live.close()

    def test_background_freezer_retries_after_fault(self):
        ds, live = make_live(n=60, freeze_threshold=4)
        try:
            set_plan(FaultPlan(freeze_fail=1))
            churn(live, ds, inserts=4, deletes=2)
            live.start_freezer(interval=0.01)
            deadline = time.monotonic() + 5.0
            while live.pending() > 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert live.pending() == 0, "freezer never recovered"
            assert_parity(live, ds)
        finally:
            live.close()


class TestEpochRetirement:
    def test_pinned_epoch_survives_a_swap(self):
        ds, live = make_live(n=80)
        try:
            with live.pin() as view:
                churn(live, ds, inserts=3, deletes=0)
                assert live.freeze_step()
                # The pre-swap view is retired but pinned: still usable.
                assert live._retired == [view]
                assert view is not live._view
            assert live._retired == []  # unpin drained it
        finally:
            live.close()

    def test_snapshot_refused_while_dirty(self):
        ds, live = make_live(n=60)
        try:
            churn(live, ds, inserts=1, deletes=0)
            with live.pin() as view:
                with pytest.raises(OverlayPendingError):
                    view.snapshot()
            with pytest.raises(OverlayPendingError):
                live.export_segment()
            live.freeze_step()
            with live.pin() as view:
                assert view.snapshot() is not None
        finally:
            live.close()

    def test_export_segment_is_memoized_per_epoch(self):
        from repro.perf.shm import shm_available

        ok, why = shm_available()
        if not ok:
            pytest.skip(f"shm transport unavailable: {why}")
        ds, live = make_live(n=60)
        try:
            first = live.export_segment()
            assert live.export_segment() is first
            churn(live, ds, inserts=1, deletes=0)
            live.freeze_step()
            second = live.export_segment()
            assert second is not first  # new epoch, new segment
        finally:
            live.close()


class TestServiceDegradation:
    def test_dirty_live_tree_degrades_to_merged_seed_walk(self):
        ds, live = make_live(n=100, seed=41)
        registry = MetricsRegistry()
        try:
            churn(live, ds, seed=3)
            service = QueryService(live, metrics=registry)
            queries = sample_queries(ds, 4, seed=9)
            for query in queries:
                service.submit(query, 4)
            batch = service.drain()
            assert len(batch.results) == len(queries)
            for query, result in zip(queries, batch.results):
                assert result.degraded
                assert result.engine == "seed"
                assert result.ids == BruteForceRSTkNN(ds).search(query, 4)
            live.freeze_step()
            for query in queries:
                service.submit(query, 4)
            for result in service.drain().results:
                assert not result.degraded
        finally:
            live.close()


class TestBatchLive:
    def test_dirty_fused_falls_back_to_merged_walk(self):
        ds, live = make_live(n=100, seed=51)
        engine = BatchSearcher(live, mode="fused", group_size=4)
        try:
            churn(live, ds, seed=21)
            queries = sample_queries(ds, 5, seed=6)
            batch = engine.run(queries, 4)
            assert batch.stats.fallback_reason.startswith(
                "live_overlay_dirty"
            )
            for query, ids in zip(queries, batch.id_lists()):
                assert ids == BruteForceRSTkNN(ds).search(query, 4)
            live.freeze_step()
            assert engine.run(queries, 4).stats.fallback_reason is None
        finally:
            live.close()

    def test_dirty_parallel_falls_back_sequential(self):
        ds, live = make_live(n=100, seed=51)
        engine = BatchSearcher(live, workers=2)
        try:
            churn(live, ds, seed=21)
            queries = sample_queries(ds, 4, seed=6)
            batch = engine.run(queries, 4)
            assert batch.stats.workers == 1
            assert batch.stats.fallback_reason.startswith(
                "live_overlay_dirty"
            )
            for query, ids in zip(queries, batch.id_lists()):
                assert ids == BruteForceRSTkNN(ds).search(query, 4)
        finally:
            live.close()

    def test_clean_parallel_reuses_the_epoch_segment(self):
        from repro.perf.shm import shm_available

        ok, why = shm_available()
        if not ok:
            pytest.skip(f"shm transport unavailable: {why}")
        ds, live = make_live(n=100, seed=51)
        engine = BatchSearcher(live, workers=2, share="shm")
        try:
            queries = sample_queries(ds, 4, seed=6)
            expected = [BruteForceRSTkNN(ds).search(q, 4) for q in queries]
            assert engine.run(queries, 4).id_lists() == expected
            assert len(live._view._segments) == 1
            assert engine.run(queries, 4).id_lists() == expected
            assert len(live._view._segments) == 1  # reused, not recreated
        finally:
            live.close()


class TestKnobs:
    def test_perf_config_validation(self):
        assert PerfConfig().live_updates is False
        assert PerfConfig().lsm_freeze_threshold == DEFAULT_FREEZE_THRESHOLD
        with pytest.raises(ConfigError):
            PerfConfig(live_updates="yes")
        with pytest.raises(ConfigError):
            PerfConfig(lsm_freeze_threshold=0)

    def test_env_default(self, monkeypatch):
        assert default_live_updates() is False
        monkeypatch.setenv("REPRO_LIVE_UPDATES", "1")
        assert default_live_updates() is True
        monkeypatch.setenv("REPRO_LIVE_UPDATES", "off")
        assert default_live_updates() is False

    def test_maybe_wrap_live(self, monkeypatch):
        ds = STDataset.from_corpus(random_corpus(40, seed=8))
        tree = IURTree.build(ds)
        assert maybe_wrap_live(tree) is tree
        live = maybe_wrap_live(tree, PerfConfig(live_updates=True))
        assert isinstance(live, LiveIndex)
        assert maybe_wrap_live(live) is live  # idempotent
        live.close()
        monkeypatch.setenv("REPRO_LIVE_UPDATES", "1")
        env_live = maybe_wrap_live(tree)
        assert isinstance(env_live, LiveIndex)
        env_live.close()

    def test_from_perf_config_wraps_batch_and_service(self):
        ds = STDataset.from_corpus(random_corpus(40, seed=8))
        tree = IURTree.build(ds)
        perf = PerfConfig(live_updates=True, lsm_freeze_threshold=7)
        engine = BatchSearcher.from_perf_config(tree, perf)
        try:
            assert isinstance(engine.tree, LiveIndex)
            assert engine.tree.freeze_threshold == 7
        finally:
            engine.tree.close()
        service = QueryService.from_perf_config(tree, perf)
        assert isinstance(service.tree, LiveIndex)
        service.tree.close()


class TestMetrics:
    def test_gauges_counters_and_histogram(self):
        registry = MetricsRegistry()
        ds, live = make_live(n=80, metrics=registry)
        try:
            churn(live, ds, inserts=5, deletes=3)
            snap = registry.snapshot()
            assert snap["gauges"]["lsm.overlay.objects"] == 5.0
            assert snap["gauges"]["lsm.tombstones"] == 3.0
            RSTkNNSearcher(live).search(sample_queries(ds, 1, seed=1)[0], 3)
            live.freeze_step()
            snap = registry.snapshot()
            assert snap["counters"]["lsm.reads.merged"] == 1
            assert snap["counters"]["lsm.swaps"] == 1
            assert snap["gauges"]["lsm.overlay.objects"] == 0.0
            assert snap["gauges"]["lsm.tombstones"] == 0.0
            assert registry.histogram("lsm.freeze.seconds").count == 1
        finally:
            live.close()
