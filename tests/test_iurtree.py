"""IUR-tree: construction, persistence, and I/O accounting."""

import pytest

from repro import IndexConfig, IndexCorruptionError, QueryError
from repro.index import IURTree


class TestBuild:
    def test_str_build(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        assert tree.stats().objects == len(medium_dataset)
        tree.check_invariants()

    def test_insert_build(self, small_dataset):
        tree = IURTree.build(small_dataset, method="insert")
        tree.check_invariants(enforce_min_fill=True)
        assert tree.stats().objects == len(small_dataset)

    def test_unknown_method_rejected(self, small_dataset):
        with pytest.raises(QueryError):
            IURTree.build(small_dataset, method="foo")

    def test_single_cluster(self, small_dataset):
        tree = IURTree.build(small_dataset)
        assert tree.num_clusters() == 1

    def test_stats_shape(self, medium_dataset):
        st = IURTree.build(medium_dataset).stats()
        assert st.kind == "iur"
        assert st.nodes >= st.leaves >= 1
        assert st.height >= 2
        assert st.pages >= st.nodes  # every node occupies >= 1 page
        assert st.bytes > 0
        assert st.build_seconds >= 0.0


class TestTraversal:
    def test_root_entry_covers_everything(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        root = tree.root_entry()
        assert root is not None
        assert root.count == len(medium_dataset)
        for obj in medium_dataset.objects:
            assert root.mbr.contains_point(obj.point)

    def test_children_charges_io(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        root = tree.root_entry()
        tree.reset_io()
        tree.children(root)
        assert tree.io.reads >= 1

    def test_children_hits_buffer_second_time(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        root = tree.root_entry()
        tree.reset_io()
        tree.children(root)
        reads = tree.io.reads
        tree.children(root)
        assert tree.io.reads == reads
        assert tree.io.buffer_hits >= 1

    def test_children_of_object_rejected(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        entry = tree.root_entry()
        while not entry.is_object:
            entry = tree.children(entry)[0]
        with pytest.raises(IndexCorruptionError):
            tree.children(entry)

    def test_reachable_leaf_entries_are_objects(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        seen = []
        stack = [tree.root_entry()]
        while stack:
            entry = stack.pop()
            if entry.is_object:
                seen.append(entry.ref)
            else:
                stack.extend(tree.children(entry))
        assert sorted(seen) == [o.oid for o in medium_dataset.objects]

    def test_reset_io_cold_clears_buffer(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        root = tree.root_entry()
        tree.children(root)
        tree.reset_io(cold=True)
        tree.children(root)
        assert tree.io.reads >= 1  # re-read after the cold reset

    def test_reset_io_warm_keeps_buffer(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        root = tree.root_entry()
        tree.children(root)
        tree.reset_io(cold=False)
        tree.children(root)
        assert tree.io.reads == 0
        assert tree.io.buffer_hits >= 1

    def test_tag_accounting(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        tree.reset_io()
        tree.children(tree.root_entry(), tag="probe")
        assert tree.io.by_tag.get("probe", 0) >= 1


class TestConfigInteraction:
    def test_small_page_size_means_more_pages(self, medium_dataset):
        small = IURTree.build(medium_dataset, IndexConfig(page_size=256))
        large = IURTree.build(medium_dataset, IndexConfig(page_size=8192))
        assert small.stats().pages > large.stats().pages

    def test_fanout_affects_height(self, medium_dataset):
        slim = IURTree.build(medium_dataset, IndexConfig(max_entries=4, min_entries=2))
        wide = IURTree.build(medium_dataset, IndexConfig(max_entries=32, min_entries=8))
        assert slim.stats().height >= wide.stats().height

    def test_object_lookup(self, small_dataset):
        tree = IURTree.build(small_dataset)
        assert tree.object(3).oid == 3
