"""The headline textual invariant: interval bounds contain every pair.

For random sets of documents A and B, summarized into interval vectors,
every measure must satisfy

    min_similarity(A, B) <= similarity(a, b) <= max_similarity(A, B)

for every document pair, and the bounds must be *exact* on degenerate
single-document summaries (the searcher relies on that to treat
object-object bounds as exact scores).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IntervalVector, SparseVector
from repro.text.similarity import (
    CosineMeasure,
    DiceMeasure,
    ExtendedJaccard,
    OverlapMeasure,
    WeightedJaccard,
)

MEASURES = [
    ExtendedJaccard(),
    CosineMeasure(),
    OverlapMeasure(),
    DiceMeasure(),
    WeightedJaccard(),
]

doc = st.dictionaries(
    st.integers(min_value=0, max_value=12),
    st.floats(min_value=1e-3, max_value=10, allow_nan=False),
    max_size=6,
)
doc_set = st.lists(doc, min_size=1, max_size=5)


def summarize(weight_maps):
    vectors = [SparseVector(w) for w in weight_maps]
    iv = IntervalVector.merge([IntervalVector.from_document(v) for v in vectors])
    return vectors, iv


@pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
@given(doc_set, doc_set)
@settings(max_examples=200, deadline=None)
def test_bounds_contain_all_pairs(measure, set_a, set_b):
    docs_a, iv_a = summarize(set_a)
    docs_b, iv_b = summarize(set_b)
    lo = measure.min_similarity(iv_a, iv_b)
    hi = measure.max_similarity(iv_a, iv_b)
    assert lo <= hi + 1e-9
    for da in docs_a:
        for db in docs_b:
            sim = measure.similarity(da, db)
            assert lo <= sim + 1e-9, f"{measure.name}: lower bound violated"
            assert sim <= hi + 1e-9, f"{measure.name}: upper bound violated"


@pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
@given(doc, doc)
@settings(max_examples=200, deadline=None)
def test_bounds_exact_on_degenerate_summaries(measure, wa, wb):
    a, b = SparseVector(wa), SparseVector(wb)
    iv_a, iv_b = IntervalVector.from_document(a), IntervalVector.from_document(b)
    sim = measure.similarity(a, b)
    assert measure.min_similarity(iv_a, iv_b) == pytest.approx(sim, abs=1e-12)
    assert measure.max_similarity(iv_a, iv_b) == pytest.approx(sim, abs=1e-12)


@pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
@given(doc_set, doc_set)
@settings(max_examples=100, deadline=None)
def test_bounds_stay_in_unit_interval(measure, set_a, set_b):
    _, iv_a = summarize(set_a)
    _, iv_b = summarize(set_b)
    assert 0.0 <= measure.min_similarity(iv_a, iv_b) <= 1.0 + 1e-12
    assert 0.0 <= measure.max_similarity(iv_a, iv_b) <= 1.0 + 1e-12


@pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
@given(doc_set, doc_set, doc_set)
@settings(max_examples=100, deadline=None)
def test_merging_only_loosens_bounds(measure, set_a, set_b, set_c):
    """A coarser summary (A ∪ C) must bracket the finer summary's range."""
    _, iv_a = summarize(set_a)
    _, iv_b = summarize(set_b)
    _, iv_c = summarize(set_c)
    coarse = IntervalVector.merge([iv_a, iv_c])
    assert measure.min_similarity(coarse, iv_b) <= (
        measure.min_similarity(iv_a, iv_b) + 1e-9
    )
    assert measure.max_similarity(coarse, iv_b) >= (
        measure.max_similarity(iv_a, iv_b) - 1e-9
    )
