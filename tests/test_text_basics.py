"""Tokenizer, vocabulary, and weighting schemes."""

import math

import pytest

from repro import ConfigError, DatasetError, Vocabulary
from repro.text import make_weighting, tokenize
from repro.text.weighting import (
    LanguageModelWeighting,
    TfIdfWeighting,
    TfWeighting,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Sushi, RAMEN!") == ["sushi", "ramen"]

    def test_drops_stopwords(self):
        assert tokenize("the sushi and the wine") == ["sushi", "wine"]

    def test_keeps_duplicates(self):
        assert tokenize("fish fish fish") == ["fish", "fish", "fish"]

    def test_min_length(self):
        assert tokenize("a bb ccc", min_length=3, stopwords=frozenset()) == ["ccc"]

    def test_numbers_kept(self):
        assert tokenize("route 66") == ["route", "66"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("  ,;! ") == []


class TestVocabulary:
    def test_intern_is_idempotent(self):
        v = Vocabulary()
        assert v.intern("sushi") == v.intern("sushi")
        assert len(v) == 1

    def test_add_document_counts(self):
        v = Vocabulary()
        tf = v.add_document(["a", "b", "a"])
        assert tf == {v.id_of("a"): 2, v.id_of("b"): 1}
        assert v.doc_count == 1
        assert v.total_term_count == 3
        assert v.doc_frequency(v.id_of("a")) == 1
        assert v.collection_frequency(v.id_of("a")) == 2

    def test_document_frequency_across_documents(self):
        v = Vocabulary()
        v.add_document(["a", "b"])
        v.add_document(["a", "c"])
        assert v.doc_frequency(v.id_of("a")) == 2
        assert v.doc_frequency(v.id_of("b")) == 1

    def test_term_roundtrip(self):
        v = Vocabulary()
        tid = v.intern("grill")
        assert v.term_of(tid) == "grill"
        assert "grill" in v
        assert "oven" not in v

    def test_unknown_id_raises(self):
        v = Vocabulary()
        with pytest.raises(DatasetError):
            v.term_of(5)
        with pytest.raises(DatasetError):
            v.doc_frequency(5)


class TestWeighting:
    def _vocab(self):
        v = Vocabulary()
        maps = [
            v.add_document(["a", "a", "b"]),
            v.add_document(["a", "c"]),
            v.add_document(["b", "c", "c"]),
        ]
        return v, maps

    def test_tf_weights_are_counts(self):
        v, maps = self._vocab()
        vec = TfWeighting().vector(maps[0], v)
        assert vec.get(v.id_of("a")) == 2.0
        assert vec.get(v.id_of("b")) == 1.0

    def test_tfidf_rare_term_outweighs_common(self):
        v, maps = self._vocab()
        vec = TfIdfWeighting().vector({v.id_of("a"): 1, v.id_of("b"): 1}, v)
        # 'a' occurs in 2 docs, 'b' in 2 docs here; craft rarer term:
        v2 = Vocabulary()
        m1 = v2.add_document(["common", "rare"])
        v2.add_document(["common"])
        v2.add_document(["common"])
        vec2 = TfIdfWeighting().vector(m1, v2)
        assert vec2.get(v2.id_of("rare")) > vec2.get(v2.id_of("common"))
        assert vec is not None

    def test_tfidf_everywhere_term_drops_out(self):
        v = Vocabulary()
        m = v.add_document(["x"])
        v.add_document(["x"])
        vec = TfIdfWeighting().vector(m, v)
        assert vec.get(v.id_of("x")) == 0.0  # idf == 0 -> absent

    def test_tfidf_matches_formula(self):
        v = Vocabulary()
        m1 = v.add_document(["t", "t", "u"])
        v.add_document(["u"])
        vec = TfIdfWeighting().vector(m1, v)
        expected = 2 * math.log(2 / 1)
        assert vec.get(v.id_of("t")) == pytest.approx(expected)

    def test_lm_weights_sum_close_to_doc_mass(self):
        v, maps = self._vocab()
        lm = LanguageModelWeighting(lam=0.2)
        vec = lm.vector(maps[0], v)
        # (1-lam) * (tf/|d|) summed over present terms == (1-lam).
        ml_mass = sum(
            0.8 * tf / 3 for tf in maps[0].values()
        )
        assert ml_mass == pytest.approx(0.8)
        assert sum(w for _, w in vec.items()) >= ml_mass

    def test_lm_lambda_validated(self):
        with pytest.raises(ConfigError):
            LanguageModelWeighting(lam=2.0)

    def test_factory(self):
        assert make_weighting("tf").name == "tf"
        assert make_weighting("tfidf").name == "tfidf"
        assert make_weighting("lm", 0.3).name == "lm"
        assert make_weighting("bm25").name == "bm25"
        with pytest.raises(ConfigError):
            make_weighting("pivoted-length")

    def test_empty_document(self):
        v, _ = self._vocab()
        for scheme in (TfWeighting(), TfIdfWeighting(), LanguageModelWeighting()):
            assert len(scheme.vector({}, v)) == 0
