"""Bench harness: method registry, runners, and table formatting."""

import pytest

from repro import ConfigError, IndexConfig
from repro.bench import (
    METHODS,
    build_tree,
    format_table,
    run_baseline_queries,
    run_queries,
)
from repro.workloads import sample_queries, shop_like


@pytest.fixture(scope="module")
def bench_dataset():
    return shop_like(n=120)


class TestBuildTree:
    def test_every_method_builds(self, bench_dataset):
        for method in METHODS:
            tree = build_tree(bench_dataset, method)
            assert tree.stats().objects == len(bench_dataset)

    def test_iur_has_single_cluster(self, bench_dataset):
        assert build_tree(bench_dataset, "iur").num_clusters() == 1
        assert build_tree(bench_dataset, "base").num_clusters() == 1

    def test_ciur_clusters(self, bench_dataset):
        tree = build_tree(bench_dataset, "ciur", IndexConfig(num_clusters=4))
        assert tree.num_clusters() >= 2

    def test_oe_extracts_outliers(self, bench_dataset):
        tree = build_tree(bench_dataset, "ciur-oe")
        assert tree.stats().outliers > 0

    def test_te_flag_propagates(self, bench_dataset):
        assert build_tree(bench_dataset, "ciur-te").config.use_entropy_priority
        assert not build_tree(bench_dataset, "ciur").config.use_entropy_priority

    def test_unknown_method_rejected(self, bench_dataset):
        with pytest.raises(ConfigError):
            build_tree(bench_dataset, "btree")


class TestRunners:
    def test_run_queries_aggregates(self, bench_dataset):
        tree = build_tree(bench_dataset, "iur")
        queries = sample_queries(bench_dataset, 3, seed=40)
        run = run_queries(tree, queries, k=3, method="iur")
        assert run.queries == 3
        assert run.mean_ms > 0
        assert run.mean_reads > 0
        assert 0.0 <= run.group_decided_fraction <= 1.0
        assert len(run.as_row()) == len(run.HEADERS)

    def test_run_baseline(self, bench_dataset):
        tree = build_tree(bench_dataset, "base")
        queries = sample_queries(bench_dataset, 2, seed=41)
        run = run_baseline_queries(tree, queries, k=3)
        assert run.method == "base"
        assert run.mean_reads > 0

    def test_baseline_and_searcher_agree(self, bench_dataset):
        from repro import RSTkNNSearcher, ThresholdBaseline

        tree = build_tree(bench_dataset, "iur")
        query = sample_queries(bench_dataset, 1, seed=42)[0]
        assert (
            RSTkNNSearcher(tree).search(query, 4).ids
            == ThresholdBaseline(tree).search(query, 4)
        )


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert lines[0].startswith("a  ")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_non_string_cells_coerced(self):
        out = format_table(["n"], [[42]])
        assert "42" in out
