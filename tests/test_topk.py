"""Best-first top-k search: parity with brute force, ties, exclusion."""

import pytest

from repro import (
    BruteForceRSTkNN,
    CIURTree,
    IndexConfig,
    IURTree,
    QueryError,
    TopKSearcher,
)
from repro.workloads import sample_queries


class TestTopK:
    def test_matches_brute_force(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        searcher = TopKSearcher(tree)
        brute = BruteForceRSTkNN(medium_dataset)
        for q in sample_queries(medium_dataset, 5, seed=20):
            mine = searcher.top_k(q, 10)
            theirs = brute.top_k(q, 10)
            assert [oid for oid, _ in mine] == [oid for oid, _ in theirs]
            for (_, s1), (_, s2) in zip(mine, theirs):
                assert s1 == pytest.approx(s2)

    def test_matches_brute_force_on_ciur(self, medium_dataset):
        tree = CIURTree.build(medium_dataset, IndexConfig(num_clusters=4))
        searcher = TopKSearcher(tree)
        brute = BruteForceRSTkNN(medium_dataset)
        q = sample_queries(medium_dataset, 1, seed=21)[0]
        assert [o for o, _ in searcher.top_k(q, 8)] == [
            o for o, _ in brute.top_k(q, 8)
        ]

    def test_scores_descending(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        q = sample_queries(medium_dataset, 1, seed=22)[0]
        scores = [s for _, s in TopKSearcher(tree).top_k(q, 20)]
        assert scores == sorted(scores, reverse=True)

    def test_k_larger_than_dataset(self, small_dataset):
        tree = IURTree.build(small_dataset)
        q = sample_queries(small_dataset, 1, seed=23)[0]
        result = TopKSearcher(tree).top_k(q, len(small_dataset) + 10)
        assert len(result) == len(small_dataset)

    def test_k_must_be_positive(self, small_dataset):
        tree = IURTree.build(small_dataset)
        with pytest.raises(QueryError):
            TopKSearcher(tree).top_k(small_dataset.get(0), 0)

    def test_exclude_oid(self, small_dataset):
        tree = IURTree.build(small_dataset)
        obj = small_dataset.get(0)
        with_self = TopKSearcher(tree).top_k(obj, 3)
        without = TopKSearcher(tree).top_k(obj, 3, exclude_oid=0)
        assert with_self[0][0] == 0  # self similarity 1.0 ranks first
        assert all(oid != 0 for oid, _ in without)

    def test_kth_score(self, small_dataset):
        tree = IURTree.build(small_dataset)
        brute = BruteForceRSTkNN(small_dataset)
        obj = small_dataset.get(3)
        mine = TopKSearcher(tree).kth_score(obj, 4, exclude_oid=3)
        theirs = brute.kth_neighbor_score(obj, 4)
        assert mine == pytest.approx(theirs)

    def test_kth_score_insufficient_neighbors(self, small_dataset):
        tree = IURTree.build(small_dataset)
        obj = small_dataset.get(0)
        assert TopKSearcher(tree).kth_score(obj, 10_000) == 0.0

    def test_io_charged_and_bounded(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        q = sample_queries(medium_dataset, 1, seed=24)[0]
        tree.reset_io()
        TopKSearcher(tree).top_k(q, 5)
        assert 0 < tree.io.reads <= tree.stats().pages

    def test_batch_shares_buffer(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        searcher = TopKSearcher(tree)
        queries = sample_queries(medium_dataset, 10, seed=25)
        cold = 0
        for q in queries:
            tree.reset_io(cold=True)
            searcher.top_k(q, 5)
            cold += tree.io.reads
        tree.reset_io(cold=True)
        results = searcher.batch_topk(queries, 5)
        assert len(results) == 10
        assert tree.io.reads < cold
