"""Dynamic maintenance: inserts, deletes, and persistence flushing."""

import random

import pytest

from repro import (
    BruteForceRSTkNN,
    CIURTree,
    IndexConfig,
    IndexCorruptionError,
    IURTree,
    RSTkNNSearcher,
)
from repro.spatial import Point, Rect
from repro.workloads import sample_queries, shop_like


def fresh_dataset(n=120, seed=1):
    return shop_like(n=n, seed=seed)


class TestRTreeDelete:
    def test_delete_removes_object(self):
        ds = fresh_dataset()
        tree = IURTree.build(ds)
        victim = ds.objects[10]
        assert tree.rtree.delete(victim.oid, victim.mbr())
        found = tree.rtree.range_search(Rect(0, 0, 1000, 1000))
        assert victim.oid not in found
        assert len(found) == 119

    def test_delete_unknown_returns_false(self):
        ds = fresh_dataset()
        tree = IURTree.build(ds)
        assert not tree.rtree.delete(9999, Rect(1, 1, 1, 1))

    def test_delete_everything(self):
        ds = fresh_dataset(n=40)
        tree = IURTree.build(ds, IndexConfig(max_entries=4, min_entries=2))
        for obj in list(ds.objects):
            assert tree.rtree.delete(obj.oid, obj.mbr())
        assert tree.rtree.root_id is None
        assert tree.rtree.range_search(Rect(0, 0, 1000, 1000)) == []

    def test_invariants_after_heavy_deletion(self):
        ds = fresh_dataset(n=200, seed=3)
        tree = IURTree.build(ds, IndexConfig(max_entries=8, min_entries=3))
        rng = random.Random(5)
        victims = rng.sample(list(ds.objects), 150)
        for obj in victims:
            assert tree.rtree.delete(obj.oid, obj.mbr())
        tree.rtree.check_invariants(enforce_min_fill=False)
        remaining = tree.rtree.range_search(Rect(0, 0, 1000, 1000))
        assert len(remaining) == 50


class TestIURTreeUpdates:
    def test_insert_then_query(self):
        ds = fresh_dataset()
        tree = IURTree.build(ds)
        obj = ds.append_record(Point(50, 50), "t0001 t0002 t0003")
        tree.insert_object(obj)
        tree.check_invariants()
        brute = BruteForceRSTkNN(ds)
        searcher = RSTkNNSearcher(tree)
        for q in sample_queries(ds, 2, seed=4):
            assert searcher.search(q, 3).ids == brute.search(q, 3)

    def test_insert_requires_dataset_membership(self):
        ds = fresh_dataset()
        other = fresh_dataset(seed=2)
        tree = IURTree.build(ds)
        with pytest.raises(IndexCorruptionError):
            tree.insert_object(other.objects[0])

    def test_delete_then_query(self):
        ds = fresh_dataset()
        tree = IURTree.build(ds)
        assert tree.delete_object(ds.objects[5].oid)
        brute = BruteForceRSTkNN(ds)
        searcher = RSTkNNSearcher(tree)
        for q in sample_queries(ds, 2, seed=5):
            assert searcher.search(q, 3).ids == brute.search(q, 3)

    def test_delete_unknown(self):
        ds = fresh_dataset()
        tree = IURTree.build(ds)
        assert not tree.delete_object(98765)

    def test_interleaved_updates_stay_correct(self):
        ds = fresh_dataset(n=100, seed=7)
        tree = IURTree.build(ds)
        rng = random.Random(11)
        terms = ds.vocabulary.terms()[:30]
        for _ in range(30):
            if rng.random() < 0.5 and len(ds) > 40:
                victim = ds.objects[rng.randrange(len(ds))].oid
                assert tree.delete_object(victim)
            else:
                obj = ds.append_record(
                    Point(rng.uniform(0, 100), rng.uniform(0, 100)),
                    " ".join(rng.sample(terms, 3)),
                )
                tree.insert_object(obj)
        tree.check_invariants()
        brute = BruteForceRSTkNN(ds)
        searcher = RSTkNNSearcher(tree)
        for q in sample_queries(ds, 3, seed=8):
            for k in (1, 4):
                assert searcher.search(q, k).ids == brute.search(q, k)

    def test_updates_re_persist_nodes(self):
        ds = fresh_dataset()
        tree = IURTree.build(ds)
        writes_before = tree.io.writes
        obj = ds.append_record(Point(10, 10), "t0001")
        tree.insert_object(obj)
        assert tree.io.writes > writes_before  # flush rewrote node pages

    def test_children_reflect_updates(self):
        ds = fresh_dataset()
        tree = IURTree.build(ds)
        obj = ds.append_record(Point(1, 1), "t0002")
        tree.insert_object(obj)
        seen = []
        stack = [tree.root_entry()]
        while stack:
            entry = stack.pop()
            if entry.is_object:
                seen.append(entry.ref)
            else:
                stack.extend(tree.children(entry))
        assert obj.oid in seen


class TestClusteredUpdates:
    def test_insert_assigns_nearest_cluster(self):
        ds = fresh_dataset(n=100, seed=9)
        tree = CIURTree.build(ds, IndexConfig(num_clusters=4))
        anchor = ds.objects[0]
        clone = ds.append_record(anchor.point, " ".join(anchor.keywords))
        tree.insert_object(clone)
        labels = dict(zip([o.oid for o in ds.objects], tree.labels))
        assert labels[clone.oid] == labels[anchor.oid]

    def test_oe_insert_routes_outliers_aside(self):
        ds = fresh_dataset(n=100, seed=10)
        tree = CIURTree.build(
            ds, IndexConfig(num_clusters=4, outlier_threshold=0.9)
        )
        before = len(tree.outliers)
        # An all-new vocabulary item has ~zero cohesion to any centroid.
        obj = ds.append_record(Point(3, 3), "zzunseen zzalien")
        tree.insert_object(obj)
        assert len(tree.outliers) == before + 1

    def test_delete_outlier(self):
        ds = fresh_dataset(n=100, seed=12)
        tree = CIURTree.build(
            ds, IndexConfig(num_clusters=4, outlier_threshold=0.5)
        )
        assert tree.outliers, "fixture needs at least one outlier"
        victim = tree.outliers[0]
        assert tree.delete_object(victim.oid)
        assert all(o.oid != victim.oid for o in tree.outliers)
        brute = BruteForceRSTkNN(ds)
        searcher = RSTkNNSearcher(tree)
        q = sample_queries(ds, 1, seed=13)[0]
        assert searcher.search(q, 3).ids == brute.search(q, 3)


class TestDeleteInvalidation:
    """Label-map and generation hygiene of ``delete_object``.

    Snapshot/cache invalidation is keyed by ``tree.generation``, and the
    ``labels`` view is keyed by ``_label_by_oid`` — a delete that leaves
    either out of step silently corrupts downstream engines.
    """

    def test_unknown_but_cached_oid_drops_stale_label(self):
        ds = fresh_dataset()
        tree = IURTree.build(ds)
        victim = ds.objects[7]
        # Remove from the dataset behind the index's back: the oid is
        # now unknown to delete_object but still cached in the label map.
        ds.remove_object(victim.oid)
        assert not tree.delete_object(victim.oid)
        assert victim.oid not in tree._label_by_oid
        assert len(tree.labels) == len(ds)

    def test_failed_delete_leaves_generation_unchanged(self):
        ds = fresh_dataset()
        tree = IURTree.build(ds)
        generation = tree.generation
        assert not tree.delete_object(98765)
        assert tree.generation == generation

    def test_tree_path_delete_bumps_generation_exactly_once(self):
        ds = fresh_dataset()
        tree = IURTree.build(ds)
        generation = tree.generation
        assert tree.delete_object(ds.objects[5].oid)
        assert tree.generation == generation + 1

    def test_outlier_path_delete_bumps_generation_exactly_once(self):
        ds = fresh_dataset(n=100, seed=12)
        tree = CIURTree.build(
            ds, IndexConfig(num_clusters=4, outlier_threshold=0.5)
        )
        assert tree.outliers, "fixture needs at least one outlier"
        victim = tree.outliers[0]
        generation = tree.generation
        assert tree.delete_object(victim.oid)
        assert tree.generation == generation + 1
        assert victim.oid not in tree._label_by_oid
