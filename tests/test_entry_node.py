"""Entries and nodes: summaries, counts, entropy, serialization."""

import math

import pytest

from repro import IndexCorruptionError, Point, Rect, SparseVector
from repro.index import Entry
from repro.index.node import Node
from repro.storage.serialize import NodeCodec


def obj(oid, x, y, weights, cluster=0):
    return Entry.for_object(
        oid, Rect.from_point(Point(x, y)), SparseVector(weights), cluster
    )


class TestEntry:
    def test_object_entry_basics(self):
        e = obj(3, 1, 2, {1: 2.0})
        assert e.is_object
        assert e.count == 1
        assert e.exact_vector() == SparseVector({1: 2.0})

    def test_object_entry_with_empty_vector(self):
        e = obj(0, 0, 0, {})
        assert e.count == 1
        assert len(e.exact_vector()) == 0

    def test_subtree_summary_counts(self):
        children = [obj(0, 0, 0, {1: 1.0}), obj(1, 2, 2, {1: 3.0, 2: 1.0})]
        parent = Entry.for_subtree(9, Rect(0, 0, 2, 2), children)
        assert not parent.is_object
        assert parent.count == 2

    def test_subtree_merges_same_cluster(self):
        children = [obj(0, 0, 0, {1: 1.0}), obj(1, 2, 2, {1: 3.0})]
        parent = Entry.for_subtree(9, Rect(0, 0, 2, 2), children)
        iv = parent.clusters[0]
        assert iv.union.get(1) == 3.0
        assert iv.intersection.get(1) == 1.0

    def test_subtree_keeps_clusters_separate(self):
        children = [
            obj(0, 0, 0, {1: 1.0}, cluster=0),
            obj(1, 2, 2, {2: 1.0}, cluster=1),
        ]
        parent = Entry.for_subtree(9, Rect(0, 0, 2, 2), children)
        assert set(parent.clusters) == {0, 1}
        assert parent.clusters[0].doc_count == 1
        assert parent.clusters[1].doc_count == 1

    def test_subtree_empty_rejected(self):
        with pytest.raises(IndexCorruptionError):
            Entry.for_subtree(1, Rect(0, 0, 1, 1), [])

    def test_exact_vector_on_directory_rejected(self):
        parent = Entry.for_subtree(9, Rect(0, 0, 2, 2), [obj(0, 0, 0, {1: 1.0})])
        with pytest.raises(IndexCorruptionError):
            parent.exact_vector()

    def test_merged_interval_blends_clusters(self):
        children = [
            obj(0, 0, 0, {1: 2.0}, cluster=0),
            obj(1, 2, 2, {1: 5.0}, cluster=1),
        ]
        parent = Entry.for_subtree(9, Rect(0, 0, 2, 2), children)
        merged = parent.merged_interval()
        assert merged.union.get(1) == 5.0
        assert merged.doc_count == 2

    def test_entropy(self):
        uniform = Entry.for_subtree(
            9,
            Rect(0, 0, 2, 2),
            [obj(0, 0, 0, {1: 1.0}, 0), obj(1, 1, 1, {1: 1.0}, 1)],
        )
        pure = Entry.for_subtree(
            8,
            Rect(0, 0, 2, 2),
            [obj(2, 0, 0, {1: 1.0}, 0), obj(3, 1, 1, {1: 1.0}, 0)],
        )
        assert uniform.entropy() == pytest.approx(math.log(2))
        assert pure.entropy() == 0.0

    def test_equality_by_identity_fields(self):
        a = obj(1, 0, 0, {1: 1.0})
        b = obj(1, 0, 0, {1: 999.0})  # same ref/mbr, different text
        assert a == b  # identity is (ref, is_object, mbr)
        assert hash(a) == hash(b)


class TestNode:
    def test_mbr_and_counts(self):
        node = Node(node_id=0, is_leaf=True)
        node.entries = [obj(0, 0, 0, {1: 1.0}), obj(1, 4, 3, {2: 1.0})]
        assert node.mbr() == Rect(0, 0, 4, 3)
        assert node.object_count() == 2
        assert node.fanout == 2

    def test_empty_node_mbr_rejected(self):
        with pytest.raises(IndexCorruptionError):
            Node(node_id=0, is_leaf=True).mbr()

    def test_encode_decode_roundtrip(self):
        node = Node(node_id=0, is_leaf=True)
        node.entries = [obj(0, 0, 0, {1: 1.5}), obj(1, 4, 3, {2: 2.0, 5: 0.5})]
        decoded = NodeCodec.decode(node.encode())
        assert decoded.is_leaf
        assert [e.ref for e in decoded.entries] == [0, 1]
        assert decoded.entries[0].doc_count == 1
        cluster = decoded.entries[0].clusters[0]
        assert cluster.union[1] == pytest.approx(1.5)
