"""BM25 weighting and the intersection-vector (IR-tree) ablation flag."""

import pytest

from repro import (
    BruteForceRSTkNN,
    CIURTree,
    ConfigError,
    IndexConfig,
    IURTree,
    RSTkNNSearcher,
    SimilarityConfig,
    STDataset,
)
from repro.text import Vocabulary, make_weighting
from repro.text.weighting import BM25Weighting
from repro.workloads import (
    WorkloadSpec,
    generate_corpus,
    gn_like,
    sample_queries,
)


class TestBM25:
    def _vocab(self):
        v = Vocabulary()
        maps = [
            v.add_document(["common", "rare", "rare"]),
            v.add_document(["common"]),
            v.add_document(["common", "other"]),
        ]
        return v, maps

    def test_weights_positive(self):
        v, maps = self._vocab()
        vec = BM25Weighting().vector(maps[0], v)
        assert all(w > 0 for _, w in vec.items())

    def test_rare_term_outweighs_common(self):
        v, maps = self._vocab()
        vec = BM25Weighting().vector(maps[0], v)
        assert vec.get(v.id_of("rare")) > vec.get(v.id_of("common"))

    def test_tf_saturates(self):
        """BM25's defining property: doubling tf less than doubles weight."""
        v, _ = self._vocab()
        bm = BM25Weighting()
        tid = v.id_of("rare")
        w1 = bm.vector({tid: 1}, v).get(tid)
        w2 = bm.vector({tid: 2}, v).get(tid)
        w4 = bm.vector({tid: 4}, v).get(tid)
        assert w1 < w2 < w4
        assert (w4 - w2) < (w2 - w1)

    def test_param_validation(self):
        with pytest.raises(ConfigError):
            BM25Weighting(k1=-1)
        with pytest.raises(ConfigError):
            BM25Weighting(b=2.0)

    def test_factory_and_config(self):
        assert make_weighting("bm25").name == "bm25"
        cfg = SimilarityConfig(weighting="bm25")
        assert cfg.weighting == "bm25"

    def test_end_to_end_search_parity(self):
        dataset = gn_like(n=80, config=SimilarityConfig(weighting="bm25"))
        tree = IURTree.build(dataset)
        brute = BruteForceRSTkNN(dataset)
        q = sample_queries(dataset, 1, seed=51)[0]
        assert RSTkNNSearcher(tree).search(q, 4).ids == brute.search(q, 4)

    def test_empty_document(self):
        v, _ = self._vocab()
        assert len(BM25Weighting().vector({}, v)) == 0


class TestIntersectionAblation:
    @pytest.fixture(scope="class")
    def marker_dataset(self):
        spec = WorkloadSpec(
            n_objects=200,
            n_topics=4,
            topic_marker=True,
            topic_affinity=0.95,
            doc_len_mean=2.0,
            vocab_size=60,
            seed=7,
        )
        return STDataset.from_corpus(
            generate_corpus(spec),
            SimilarityConfig(alpha=0.0, weighting="tf", text_measure="overlap"),
        )

    def test_stripped_directory_entries_have_no_intersections(self, marker_dataset):
        tree = CIURTree.build(
            marker_dataset,
            IndexConfig(num_clusters=4, store_intersections=False),
        )
        for node in tree.rtree.nodes.values():
            if node.is_leaf:
                continue
            for entry in node.entries:
                for iv in entry.clusters.values():
                    assert len(iv.intersection) == 0

    def test_leaf_objects_stay_exact(self, marker_dataset):
        tree = CIURTree.build(
            marker_dataset,
            IndexConfig(num_clusters=4, store_intersections=False),
        )
        for node in tree.rtree.nodes.values():
            if not node.is_leaf:
                continue
            for entry in node.entries:
                obj = marker_dataset.get(entry.ref)
                assert entry.exact_vector() == obj.vector

    def test_results_identical_with_and_without(self, marker_dataset):
        brute = BruteForceRSTkNN(marker_dataset)
        for store in (True, False):
            tree = CIURTree.build(
                marker_dataset,
                IndexConfig(num_clusters=4, store_intersections=store),
                method="text-str",
            )
            searcher = RSTkNNSearcher(tree)
            for q in sample_queries(marker_dataset, 2, seed=52):
                assert searcher.search(q, 3).ids == brute.search(q, 3)

    def test_intersections_never_hurt(self, marker_dataset):
        stats = {}
        for store in (True, False):
            tree = CIURTree.build(
                marker_dataset,
                IndexConfig(num_clusters=4, store_intersections=store),
                method="text-str",
            )
            searcher = RSTkNNSearcher(tree)
            expansions = 0
            for q in sample_queries(marker_dataset, 3, seed=53):
                tree.reset_io(cold=True)
                expansions += searcher.search(q, 3).stats.expansions
            stats[store] = expansions
        assert stats[True] <= stats[False]

    def test_updates_keep_stripping(self, marker_dataset):
        from repro.spatial import Point

        tree = CIURTree.build(
            marker_dataset,
            IndexConfig(num_clusters=4, store_intersections=False),
        )
        obj = marker_dataset.append_record(Point(50, 50), "topic00 t0001")
        tree.insert_object(obj)
        for node in tree.rtree.nodes.values():
            if node.is_leaf:
                continue
            for entry in node.entries:
                for iv in entry.clusters.values():
                    assert len(iv.intersection) == 0
        assert tree.delete_object(obj.oid)


class TestTopicMarkerWorkload:
    def test_marker_on_every_document(self):
        spec = WorkloadSpec(n_objects=50, n_topics=3, topic_marker=True, seed=3)
        for _, text in generate_corpus(spec):
            assert any(t.startswith("topic") for t in text.split())

    def test_no_marker_by_default(self):
        spec = WorkloadSpec(n_objects=50, n_topics=3, seed=3)
        for _, text in generate_corpus(spec):
            assert not any(t.startswith("topic") for t in text.split())
