"""The observability layer: metrics, trace sinks, timers, exporters.

Three contracts pinned here:

1. **Cross-engine trace parity** — the seed walk, the snapshot engine,
   and the fused batch engine emit the *same multiset* of decision
   events for one query (same actions, refs, counts, and bounds).
2. **Zero-cost off-switch** — the null registry returns the shared
   no-op instruments for every name, stores nothing, exports nothing.
3. **Exporter fidelity** — the JSON snapshot round-trips and the
   Prometheus text matches the instruments' state.
"""

import json
import subprocess
import sys
from collections import Counter as TallyCounter
from dataclasses import astuple
from pathlib import Path

import pytest

from repro import IURTree, RSTkNNSearcher, STDataset
from repro.core.explain import SearchTrace
from repro.errors import ConfigError
from repro.obs import (
    BOUND_GAP_BUCKETS,
    CountingSink,
    MetricsRegistry,
    MetricsSink,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    NULL_REGISTRY,
    NullRegistry,
    PhaseTimer,
    TeeSink,
    registry_or_null,
)
from repro.obs.metrics import (
    Histogram,
    latency_percentiles,
    record_approx,
    record_search,
)
from repro.perf.batch import BatchSearcher
from repro.workloads import sample_queries

from tests.conftest import random_corpus

REPO = Path(__file__).resolve().parents[1]

_STATE = {}


def _env():
    """Shared dataset/tree/queries for the parity sweep (built once)."""
    if not _STATE:
        dataset = STDataset.from_corpus(random_corpus(120, seed=19))
        _STATE.update(
            dataset=dataset,
            tree=IURTree.build(dataset),
            queries=sample_queries(dataset, 4, seed=7),
        )
    return _STATE


def _multiset(trace):
    """The order-independent decision multiset of one trace."""
    return TallyCounter(astuple(event) for event in trace.events)


def _trace_all_engines(tree, query, k):
    """One SearchTrace per engine for the same query."""
    seed = SearchTrace()
    RSTkNNSearcher(tree, engine="seed").search(query, k, trace=seed)

    snap_trace = SearchTrace()
    snap_searcher = RSTkNNSearcher(tree, engine="snapshot")
    snap_searcher.search(query, k, trace=snap_trace)

    fused_trace = SearchTrace()
    engine = tree.snapshot().fused_engine_for(
        tree,
        snap_searcher.measure,
        snap_searcher.alpha,
        snap_searcher.te_weight,
    )
    engine.run_group([query], k, traces=[fused_trace])
    return seed, snap_trace, fused_trace


class TestCrossEngineTraceParity:
    def test_decision_multisets_identical(self):
        env = _env()
        for query in env["queries"]:
            seed, snap, fused = _trace_all_engines(env["tree"], query, k=3)
            assert seed.events, "seed walk emitted no events"
            assert _multiset(seed) == _multiset(snap)
            assert _multiset(seed) == _multiset(fused)

    def test_counts_match_search_stats(self):
        env = _env()
        query = env["queries"][0]
        trace = SearchTrace()
        searcher = RSTkNNSearcher(env["tree"], engine="snapshot")
        result = searcher.search(query, 3, trace=trace)
        counts = trace.counts()
        stats = result.stats
        assert counts.get("prune", 0) == stats.pruned_entries
        assert counts.get("accept", 0) == stats.accepted_entries
        assert counts.get("expand", 0) == stats.expansions
        verifies = counts.get("verify-in", 0) + counts.get("verify-out", 0)
        assert verifies == stats.verified_objects

    def test_auto_keeps_snapshot_for_traced_requests(self):
        env = _env()
        searcher = RSTkNNSearcher(env["tree"], engine="auto")
        assert searcher._resolve_engine(SearchTrace()) == "snapshot"

    def test_counting_sink_matches_reference_trace(self):
        env = _env()
        query = env["queries"][1]
        full = SearchTrace()
        cheap = CountingSink()
        searcher = RSTkNNSearcher(env["tree"], engine="snapshot")
        searcher.search(query, 3, trace=full)
        searcher.search(query, 3, trace=cheap)
        assert cheap.counts == full.counts()

    def test_tee_sink_fans_out(self):
        env = _env()
        query = env["queries"][2]
        full = SearchTrace()
        cheap = CountingSink()
        searcher = RSTkNNSearcher(env["tree"], engine="snapshot")
        searcher.search(query, 3, trace=TeeSink([full, cheap]))
        assert full.events
        assert cheap.counts == full.counts()


class TestNullRegistry:
    def test_shared_noop_instruments_for_every_name(self):
        null = NullRegistry()
        for name in ("a", "b", "search.queries.seed"):
            assert null.counter(name) is NOOP_COUNTER
            assert null.gauge(name) is NOOP_GAUGE
            assert null.histogram(name) is NOOP_HISTOGRAM
        assert NULL_REGISTRY.counter("x") is NOOP_COUNTER

    def test_noops_discard_and_store_nothing(self):
        NOOP_COUNTER.inc(5)
        NOOP_GAUGE.set(3.0)
        NOOP_GAUGE.add(2.0)
        NOOP_HISTOGRAM.observe(0.5)
        assert NOOP_COUNTER.value == 0
        assert NOOP_GAUGE.value == 0.0
        assert NOOP_HISTOGRAM.count == 0
        snap = NULL_REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
        assert NULL_REGISTRY.to_prometheus() == ""
        assert not NULL_REGISTRY.enabled

    def test_registry_or_null(self):
        assert registry_or_null(None) is NULL_REGISTRY
        real = MetricsRegistry()
        assert registry_or_null(real) is real

    def test_record_search_noop_on_null(self):
        class FakeStats:  # record_search must not even read the stats
            pass

        record_search(None, "seed", FakeStats())
        record_search(NULL_REGISTRY, "seed", FakeStats())


class TestMetricsRegistry:
    def test_instruments_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("metric.name")
        with pytest.raises(ConfigError):
            reg.gauge("metric.name")
        with pytest.raises(ConfigError):
            reg.histogram("metric.name")

    def test_histogram_buckets_validated(self):
        with pytest.raises(ConfigError):
            Histogram(())
        with pytest.raises(ConfigError):
            Histogram((0.5, 0.1))

    def test_histogram_placement_and_overflow(self):
        hist = Histogram((0.1, 0.5, 1.0))
        for value in (0.05, 0.1, 0.3, 2.0):
            hist.observe(value)
        # bisect_left: 0.1 lands in its own bucket (le=0.1), 2.0 overflows.
        assert hist.counts == [2, 1, 0, 1]
        assert hist.count == 4
        assert hist.mean() == pytest.approx((0.05 + 0.1 + 0.3 + 2.0) / 4)

    def test_json_snapshot_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", (0.1, 1.0)).observe(0.2)
        payload = json.loads(json.dumps(reg.snapshot()))
        assert payload["counters"]["c"] == 3
        assert payload["gauges"]["g"] == 1.5
        assert payload["histograms"]["h"] == {
            "buckets": [0.1, 1.0],
            "counts": [0, 1, 0],
            "sum": 0.2,
            "count": 1,
        }

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("search.queries.seed").inc(2)
        reg.gauge("phase.build.seconds").set(0.5)
        hist = reg.histogram("lat", (0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = reg.to_prometheus()
        assert "repro_search_queries_seed_total 2" in text
        assert "repro_phase_build_seconds 0.5" in text
        # Histogram buckets are cumulative, with the conventional +Inf.
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_count 2" in text


class TestSearchMetrics:
    def test_searcher_records_per_engine_counters(self):
        env = _env()
        reg = MetricsRegistry()
        searcher = RSTkNNSearcher(env["tree"], engine="snapshot", metrics=reg)
        result = searcher.search(env["queries"][0], 3)
        snap = reg.snapshot()
        assert snap["counters"]["search.queries.snapshot"] == 1
        assert (
            snap["counters"]["search.decisions.prune"]
            == result.stats.pruned_entries
        )
        assert (
            snap["counters"]["search.objects.results"]
            == result.stats.result_count
        )
        assert (
            snap["histograms"]["search.latency_seconds.snapshot"]["count"] == 1
        )

    def test_seed_and_snapshot_record_same_decision_totals(self):
        env = _env()
        query = env["queries"][0]
        totals = {}
        for engine in ("seed", "snapshot"):
            reg = MetricsRegistry()
            RSTkNNSearcher(env["tree"], engine=engine, metrics=reg).search(
                query, 3
            )
            counters = reg.snapshot()["counters"]
            totals[engine] = {
                name: value
                for name, value in counters.items()
                if name.startswith("search.decisions.")
            }
        assert totals["seed"] == totals["snapshot"]

    def test_metrics_sink_bridges_trace_events(self):
        env = _env()
        query = env["queries"][0]
        reference = SearchTrace()
        reg = MetricsRegistry()
        searcher = RSTkNNSearcher(env["tree"], engine="snapshot")
        searcher.search(query, 3, trace=reference)
        searcher.search(query, 3, trace=MetricsSink(reg))
        snap = reg.snapshot()
        for action, count in reference.counts().items():
            assert snap["counters"][f"trace.events.{action}"] == count
        total = len(reference.events)
        for hist_name in ("trace.knn_gap", "trace.query_gap"):
            hist = snap["histograms"][hist_name]
            assert hist["count"] == total
            assert hist["buckets"] == list(BOUND_GAP_BUCKETS)

    def test_batch_searcher_records_metrics_and_phases(self):
        env = _env()
        reg = MetricsRegistry()
        batch = BatchSearcher(env["tree"], metrics=reg)
        out = batch.run(env["queries"], k=3)
        assert len(out.results) == len(env["queries"])
        assert out.stats.phases  # walk phase stamped
        snap = reg.snapshot()
        queries_recorded = sum(
            value
            for name, value in snap["counters"].items()
            if name.startswith("search.queries.")
        )
        assert queries_recorded == len(env["queries"])
        assert "phase.walk.seconds" in snap["gauges"]


class TestPerfConfigObservability:
    def test_flag_attaches_live_registry(self):
        from repro.config import PerfConfig

        env = _env()
        batch = BatchSearcher.from_perf_config(
            env["tree"], PerfConfig(observability=True, engine="snapshot")
        )
        assert isinstance(batch.metrics, MetricsRegistry)
        assert batch.metrics.enabled
        batch.run(env["queries"][:2], k=3)
        counters = batch.metrics.snapshot()["counters"]
        assert counters["search.queries.snapshot"] == 2

    def test_flag_off_records_nothing(self):
        from repro.config import PerfConfig

        env = _env()
        batch = BatchSearcher.from_perf_config(env["tree"], PerfConfig())
        assert batch.metrics is None

    def test_explicit_registry_wins(self):
        from repro.config import PerfConfig

        env = _env()
        mine = MetricsRegistry()
        batch = BatchSearcher.from_perf_config(
            env["tree"], PerfConfig(observability=True), metrics=mine
        )
        assert batch.metrics is mine


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("walk"):
            pass
        timer.add("walk", 1.0)
        timer.add("build", 0.25)
        assert timer.seconds("walk") >= 1.0
        assert timer.as_dict()["build"] == 0.25
        assert timer.seconds("never") == 0.0

    def test_publish_sets_gauges_idempotently(self):
        timer = PhaseTimer()
        timer.add("build", 0.5)
        reg = MetricsRegistry()
        timer.publish(reg)
        timer.publish(reg)  # set, not add: publishing twice is stable
        assert reg.snapshot()["gauges"]["phase.build.seconds"] == 0.5
        timer.publish(None)  # None registry is a no-op


class TestCliObs:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "obs", *args],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )

    def test_json_output(self):
        result = self._run("--n", "120", "--queries", "3", "--format", "json")
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["counters"]["search.queries.snapshot"] == 3
        assert "phase.build.seconds" in payload["gauges"]
        assert "trace.knn_gap" in payload["histograms"]

    def test_prometheus_output(self):
        result = self._run(
            "--n", "120", "--queries", "2", "--engine", "seed",
            "--format", "prom",
        )
        assert result.returncode == 0, result.stderr
        assert "repro_search_queries_seed_total 2" in result.stdout
        assert 'le="+Inf"' in result.stdout


class TestLatencyPercentiles:
    """The edge contract spelled out in the function's docstring."""

    def test_empty_input_yields_empty_dict(self):
        assert latency_percentiles([]) == {}

    def test_single_sample_repeats_for_every_point(self):
        out = latency_percentiles([0.25])
        assert out == {"p50": 0.25, "p95": 0.25, "p99": 0.25}

    def test_nearest_rank_never_interpolates(self):
        samples = [0.1, 0.2, 0.3, 0.4]
        out = latency_percentiles(samples)
        assert set(out.values()) <= set(samples)
        assert out["p50"] == 0.2
        assert out["p99"] == 0.4

    def test_out_of_range_points_raise(self):
        with pytest.raises(ConfigError):
            latency_percentiles([0.1], points=[0])
        with pytest.raises(ConfigError):
            latency_percentiles([0.1], points=[101])
        # Validation happens before the empty-input check.
        with pytest.raises(ConfigError):
            latency_percentiles([], points=[0])

    def test_custom_points(self):
        out = latency_percentiles([0.1, 0.2], points=[1, 100])
        assert out == {"p1": 0.1, "p100": 0.2}


class TestRecordApprox:
    def test_counters_accumulate_per_key(self):
        reg = MetricsRegistry()
        record_approx(reg, {"candidates": 3, "nodes_pruned": 2})
        record_approx(reg, {"candidates": 1})
        counters = reg.snapshot()["counters"]
        assert counters["approx.candidates"] == 4
        assert counters["approx.nodes_pruned"] == 2

    def test_noop_on_null_none_and_empty(self):
        record_approx(None, {"candidates": 3})
        record_approx(NULL_REGISTRY, {"candidates": 3})
        reg = MetricsRegistry()
        record_approx(reg, {})
        assert reg.snapshot()["counters"] == {}

    def test_approx_searcher_records_metrics(self):
        env = _env()
        reg = MetricsRegistry()
        searcher = RSTkNNSearcher(
            env["tree"], engine="approx", approx_verify=False, metrics=reg
        )
        searcher.search(env["queries"][0], 3)
        snap = reg.snapshot()
        assert snap["counters"]["search.queries.approx"] == 1
        assert "approx.candidates" in snap["counters"]
