"""Experiment result journaling and the CLI run/show integration."""

import json

import pytest

from repro.bench.results import ResultLog
from repro.cli import main
from repro.errors import ConfigError


class TestResultLog:
    def test_append_and_read(self, tmp_path):
        log = ResultLog(tmp_path / "runs.jsonl")
        log.append("E4", ["a", "b"], [["1", "2"]], params={"n": 100}, stamp="t0")
        log.append("E4", ["a", "b"], [["3", "4"]], stamp="t1")
        records = list(log.records())
        assert len(records) == 2
        assert records[0]["params"] == {"n": 100}
        assert records[1]["rows"] == [["3", "4"]]

    def test_latest_picks_newest(self, tmp_path):
        log = ResultLog(tmp_path / "runs.jsonl")
        log.append("E4", ["a"], [["old"]])
        log.append("E5", ["a"], [["other"]])
        log.append("E4", ["a"], [["new"]])
        assert log.latest("E4")["rows"] == [["new"]]
        assert log.latest("E9") is None

    def test_experiments_listing(self, tmp_path):
        log = ResultLog(tmp_path / "runs.jsonl")
        log.append("E2", ["a"], [["x"]])
        log.append("E1", ["a"], [["y"]])
        assert log.experiments() == ["E1", "E2"]

    def test_missing_file_is_empty(self, tmp_path):
        log = ResultLog(tmp_path / "absent.jsonl")
        assert list(log.records()) == []
        assert log.experiments() == []

    def test_corrupt_line_rejected(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"experiment": "E1"}\n{broken\n')
        with pytest.raises(ConfigError):
            list(ResultLog(path).records())

    def test_render(self, tmp_path):
        log = ResultLog(tmp_path / "runs.jsonl")
        log.append("E4", ["metric", "value"], [["io", "42"]])
        out = log.render("E4")
        assert "E4 (stored)" in out
        assert "42" in out
        with pytest.raises(ConfigError):
            log.render("E9")

    def test_non_string_cells_coerced(self, tmp_path):
        log = ResultLog(tmp_path / "runs.jsonl")
        log.append("E1", ["n"], [[42]])
        assert list(log.records())[0]["rows"] == [["42"]]


class TestCliIntegration:
    def test_run_with_out_then_show(self, tmp_path, capsys):
        log_path = str(tmp_path / "runs.jsonl")
        assert main(["run", "E12", "--scale", "150", "--out", log_path]) == 0
        capsys.readouterr()
        assert main(["show", log_path]) == 0
        assert "E12" in capsys.readouterr().out
        assert main(["show", log_path, "E12"]) == 0
        assert "(stored)" in capsys.readouterr().out
        # The JSONL on disk is well-formed.
        with open(log_path) as fh:
            record = json.loads(fh.readline())
        assert record["experiment"] == "E12"
        assert record["stamp"]

    def test_show_empty_log(self, tmp_path, capsys):
        assert main(["show", str(tmp_path / "nothing.jsonl")]) == 0
        assert "no runs stored" in capsys.readouterr().out
