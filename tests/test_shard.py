"""Sharded scatter–gather engine: parity, pruning soundness, planning.

The sharded engine is only allowed to exist because it is bit-identical
to the unsharded snapshot engine — shard-local answers are a candidate
*superset* (fewer within-shard competitors can only shrink counts) and
the merge re-verifies every candidate against all shards.  These tests
pin that contract:

* **merge determinism** (hypothesis) — the gathered id list is
  byte-identical to the unsharded engine across shard counts, alphas,
  and ``k``, including corpora built entirely of duplicated objects so
  similarity ties are everywhere;
* **pruned shards stay exact** — on the clustered workload with a
  spatial-heavy alpha, admission genuinely prunes shards (empty partial
  results) and the merged answer still matches the unsharded engine;
* **count soundness** — ``ShardProbe.count_better`` agrees with a
  brute-force competitor count via ``exact_similarity``, and the
  admission upper bound dominates every object's exact similarity;
* **planning** — Morton partitions are balanced, disjoint, complete,
  and deterministic; config knobs validate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import STDataset, SimilarityConfig
from repro.config import PerfConfig
from repro.errors import ConfigError
from repro.index.iurtree import IURTree
from repro.shard import (
    ScatterGatherSearcher,
    ShardPlanner,
    ShardProbe,
    build_sharded_index,
    build_summary,
    exact_similarity,
    query_upper,
)
from repro.spatial import Point
from repro.text.similarity import make_measure
from repro.workloads import gn_like, sample_queries

_STATE = {}


def _env():
    if not _STATE:
        dataset = gn_like(n=240)
        tree = IURTree.build(dataset)
        tree.snapshot()
        queries = sample_queries(dataset, 8, seed=41)
        indexes = {s: build_sharded_index(dataset, s) for s in (1, 2, 3, 4)}
        _STATE.update(
            dataset=dataset, tree=tree, queries=queries, indexes=indexes
        )
    return _STATE


def _unsharded_ids(env, alpha: float, query, k: int):
    measure = make_measure(env["dataset"].config.text_measure)
    engine = env["tree"].snapshot().engine_for(
        env["tree"], measure, alpha, 0.0
    )
    return list(engine.search(query, k).ids)


def _searcher(env, shard_count: int, alpha: float) -> ScatterGatherSearcher:
    config = SimilarityConfig(
        alpha=alpha, text_measure=env["dataset"].config.text_measure
    )
    return ScatterGatherSearcher(env["indexes"][shard_count], config)


# ----------------------------------------------------------------------
# Merge determinism (hypothesis)
# ----------------------------------------------------------------------


class TestMergeDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(
        shard_count=st.sampled_from([1, 2, 3, 4]),
        alpha=st.sampled_from([0.2, 0.5, 0.9]),
        k=st.integers(min_value=1, max_value=8),
        query_index=st.integers(min_value=0, max_value=7),
    )
    def test_gather_matches_unsharded_engine(
        self, shard_count, alpha, k, query_index
    ):
        env = _env()
        query = env["queries"][query_index]
        reference = _unsharded_ids(env, alpha, query, k)
        result = _searcher(env, shard_count, alpha).search(query, k)
        assert list(result.ids) == reference
        stats = result.stats
        assert stats.shards_total == shard_count
        assert stats.shards_searched + stats.shards_pruned == shard_count

    @settings(max_examples=15, deadline=None)
    @given(
        shard_count=st.sampled_from([1, 2, 4]),
        k=st.integers(min_value=1, max_value=6),
    )
    def test_tie_heavy_corpus_is_deterministic(self, shard_count, k):
        # Every object duplicated at identical coordinates with identical
        # text: similarity ties everywhere, so any nondeterminism in the
        # merge ordering would surface as a flipped id list.
        records = []
        for i in range(12):
            point = Point(float(i % 4) * 10.0, float(i // 4) * 10.0)
            text = ["sushi ramen", "pizza pasta", "tacos wine"][i % 3]
            records.append((point, text))
            records.append((point, text))
        dataset = STDataset.from_corpus(records)
        tree = IURTree.build(dataset)
        measure = make_measure(dataset.config.text_measure)
        engine = tree.snapshot().engine_for(
            tree, measure, dataset.config.alpha, 0.0
        )
        index = build_sharded_index(dataset, shard_count)
        searcher = ScatterGatherSearcher(index)
        for query in sample_queries(dataset, 4, seed=7):
            reference = list(engine.search(query, k).ids)
            assert list(searcher.search(query, k).ids) == reference


# ----------------------------------------------------------------------
# Admission pruning
# ----------------------------------------------------------------------


class TestPruning:
    def test_pruned_shards_preserve_parity(self):
        # Spatial-only similarity on the clustered workload: shards far
        # from the query's cluster fall below the local competitor floor
        # and are admission-pruned (their partial result is empty), yet
        # the merged answer must not move.
        dataset = gn_like(n=600)
        tree = IURTree.build(dataset)
        config = SimilarityConfig(
            alpha=1.0, text_measure=dataset.config.text_measure
        )
        measure = make_measure(config.text_measure)
        engine = tree.snapshot().engine_for(tree, measure, 1.0, 0.0)
        index = build_sharded_index(dataset, 6)
        searcher = ScatterGatherSearcher(index, config)
        pruned_total = 0
        for query in sample_queries(dataset, 10, seed=13):
            for k in (1, 3, 5):
                result = searcher.search(query, k)
                pruned_total += result.stats.shards_pruned
                assert list(result.ids) == list(engine.search(query, k).ids)
        assert pruned_total > 0, (
            "expected nonzero shard pruning on the clustered workload "
            "with spatial-only similarity"
        )

    def test_admission_split_is_exhaustive(self):
        env = _env()
        searcher = _searcher(env, 4, 0.9)
        admitted, pruned = searcher._admit(env["queries"][0], 3)
        assert sorted(admitted + pruned) == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# Bound / count soundness
# ----------------------------------------------------------------------


class TestSoundness:
    def test_query_upper_dominates_exact_similarity(self):
        env = _env()
        dataset = env["dataset"]
        maxD = dataset.proximity.max_distance
        for alpha in (0.2, 0.5, 0.9):
            searcher = _searcher(env, 3, alpha)
            for query in env["queries"][:4]:
                for sid, shard in enumerate(searcher.index.shards):
                    snap = shard.snapshot()
                    probe = ShardProbe(
                        snap, searcher.measure, alpha, query
                    )
                    upper = query_upper(probe, searcher._summaries[sid])
                    for obj in shard.dataset:
                        exact = exact_similarity(
                            query, obj, alpha, searcher.measure, maxD
                        )
                        assert upper >= exact - 1e-12

    def test_count_better_matches_brute_force(self):
        env = _env()
        dataset = env["dataset"]
        maxD = dataset.proximity.max_distance
        searcher = _searcher(env, 3, 0.5)
        budget = 10
        for query in env["queries"][:4]:
            q_sim = exact_similarity(
                query,
                next(iter(dataset)),
                0.5,
                searcher.measure,
                maxD,
            )
            for shard in searcher.index.shards:
                probe = ShardProbe(
                    shard.snapshot(), searcher.measure, 0.5, query
                )
                got = probe.count_better(shard.tree, q_sim, budget)
                truth = sum(
                    1
                    for obj in shard.dataset
                    if obj.oid != query.oid
                    and exact_similarity(
                        query, obj, 0.5, searcher.measure, maxD
                    )
                    > q_sim
                )
                if got < budget:
                    assert got == truth
                else:
                    assert truth >= budget

    def test_summary_knnl_is_non_increasing(self):
        env = _env()
        searcher = _searcher(env, 3, 0.5)
        for sid, shard in enumerate(searcher.index.shards):
            summary = build_summary(sid, searcher._engines[sid])
            assert summary.n_objects == len(shard.dataset)
            assert list(summary.knnl) == sorted(summary.knnl, reverse=True)
            assert all(value >= 0.0 for value in summary.knnl)


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------


class TestPlanner:
    def test_partition_is_balanced_disjoint_complete(self):
        env = _env()
        dataset = env["dataset"]
        for s in (1, 2, 3, 4, 7):
            plan = ShardPlanner(dataset, s).plan()
            sizes = [len(oids) for oids in plan.assignments]
            assert len(sizes) == s
            assert max(sizes) - min(sizes) <= 1
            flat = [oid for oids in plan.assignments for oid in oids]
            assert sorted(flat) == sorted(obj.oid for obj in dataset)

    def test_plan_is_deterministic(self):
        env = _env()
        a = ShardPlanner(env["dataset"], 4).plan()
        b = ShardPlanner(env["dataset"], 4).plan()
        assert a.assignments == b.assignments
        assert a.method == "morton"

    def test_shard_datasets_share_parent_geometry(self):
        env = _env()
        index = env["indexes"][3]
        parent = env["dataset"]
        for shard in index.shards:
            assert (
                shard.dataset.proximity.max_distance
                == parent.proximity.max_distance
            )
            assert shard.dataset.vocabulary is parent.vocabulary

    def test_shard_count_validation(self):
        env = _env()
        with pytest.raises(ConfigError):
            ShardPlanner(env["dataset"], 0)
        with pytest.raises(ConfigError):
            ShardPlanner(env["dataset"], len(env["dataset"]) + 1)


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------


class TestConfig:
    def test_perf_config_validates_shard_knobs(self):
        with pytest.raises(ConfigError):
            PerfConfig(shard_count=0)
        with pytest.raises(ConfigError):
            PerfConfig(shard_kmax=0)
        perf = PerfConfig()
        assert perf.shard_count == 1
        assert perf.shard_kmax == 16

    def test_from_perf_config_honors_knobs(self):
        env = _env()
        perf = PerfConfig(shard_kmax=4, batch_workers=1)
        searcher = ScatterGatherSearcher.from_perf_config(
            env["indexes"][2], perf
        )
        assert searcher.kmax == 4
        assert searcher.workers == 0  # batch_workers=1 -> in-process
        query = env["queries"][0]
        reference = _unsharded_ids(
            env, env["dataset"].config.alpha, query, 3
        )
        assert list(searcher.search(query, 3).ids) == reference

    def test_searcher_validation(self):
        env = _env()
        with pytest.raises(ConfigError):
            ScatterGatherSearcher(env["indexes"][2], workers=-1)
        with pytest.raises(ConfigError):
            ScatterGatherSearcher(env["indexes"][2], share="smoke-signal")


# ----------------------------------------------------------------------
# Parallel scatter
# ----------------------------------------------------------------------


class TestParallel:
    def test_worker_pool_parity_pickle_transport(self):
        env = _env()
        query = env["queries"][0]
        config = SimilarityConfig(
            alpha=0.5, text_measure=env["dataset"].config.text_measure
        )
        reference = _unsharded_ids(env, 0.5, query, 4)
        with ScatterGatherSearcher(
            env["indexes"][4], config, workers=2, share="pickle"
        ) as searcher:
            result = searcher.search(query, 4)
        assert list(result.ids) == reference


# ----------------------------------------------------------------------
# Degenerate shards and sketch-tightened admission
# ----------------------------------------------------------------------


class TestSingleObjectShards:
    """A shard holding one object has zero within-shard competitors, so
    admission must never prune it — pinned explicitly rather than left
    to the 0.0 rows ``_kth_largest`` happens to produce."""

    def _tiny(self):
        dataset = gn_like(n=6)
        index = build_sharded_index(dataset, 6)
        return dataset, index

    def test_can_prune_never_true(self):
        _dataset, index = self._tiny()
        searcher = ScatterGatherSearcher(index)
        for summary in searcher._summaries:
            assert summary.n_objects == 1
            for k in range(1, 10):
                # Even an impossible query bound below every table value
                # must not prune a competitor-free shard.
                assert not summary.can_prune(-1.0, k)

    def test_parity_with_unsharded_engine(self):
        dataset, index = self._tiny()
        tree = IURTree.build(dataset)
        measure = make_measure(dataset.config.text_measure)
        searcher = ScatterGatherSearcher(index)
        engine = tree.snapshot().engine_for(
            tree, measure, dataset.config.alpha, 0.0
        )
        for query in sample_queries(dataset, 3, seed=5):
            for k in (1, 3, 8):
                assert searcher.search(query, k).ids == list(
                    engine.search(query, k).ids
                )


class TestSketchTightenedSummaries:
    def test_warm_floors_dominate_and_preserve_parity(self):
        env = _env()
        alpha = 0.5
        plain = _searcher(env, 3, alpha)
        config = SimilarityConfig(
            alpha=alpha, text_measure=env["dataset"].config.text_measure
        )
        warm = ScatterGatherSearcher(
            env["indexes"][3], config, warm_floors=True
        )
        for cold, hot in zip(plain._summaries, warm._summaries):
            assert len(hot.knnl) == len(cold.knnl)
            for a, b in zip(cold.knnl, hot.knnl):
                assert b >= a  # tightened floors only ever rise
            assert list(hot.knnl) == sorted(hot.knnl, reverse=True)
        for query in env["queries"][:4]:
            for k in (1, 3):
                assert warm.search(query, k).ids == plain.search(
                    query, k
                ).ids
