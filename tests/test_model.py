"""Datasets, objects, and the SimST scorer."""

import pytest

from repro import (
    DatasetError,
    Point,
    Rect,
    SimilarityConfig,
    STDataset,
    STScorer,
)


class TestSTDataset:
    def test_from_corpus_assigns_sequential_ids(self, tiny_dataset):
        assert [o.oid for o in tiny_dataset.objects] == list(range(8))

    def test_empty_corpus_rejected(self):
        with pytest.raises(DatasetError):
            STDataset.from_corpus([])

    def test_region_covers_points(self, tiny_dataset):
        for obj in tiny_dataset.objects:
            assert tiny_dataset.region.contains_point(obj.point)

    def test_get_unknown_id(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.get(999)

    def test_keywords_sorted_unique(self, tiny_dataset):
        obj = tiny_dataset.get(0)
        assert list(obj.keywords) == sorted(set(obj.keywords))

    def test_stats(self, tiny_dataset):
        stats = tiny_dataset.stats()
        assert stats["objects"] == 8
        assert stats["vocabulary"] > 0
        assert stats["avg_terms_per_object"] > 0

    def test_from_keyword_records(self):
        ds = STDataset.from_keyword_records(
            [(Point(0, 0), ["a", "b"]), (Point(1, 1), ["b"])]
        )
        assert len(ds) == 2
        assert "b" in ds.vocabulary

    def test_explicit_region(self):
        region = Rect(0, 0, 10, 10)
        ds = STDataset.from_corpus([(Point(1, 1), "x")], region=region)
        assert ds.region == region

    def test_make_query_weights_against_corpus(self, tiny_dataset):
        q = tiny_dataset.make_query(Point(1, 1), "sushi pizza")
        assert q.oid == -1
        assert len(q.vector) >= 1
        assert set(q.keywords) == {"pizza", "sushi"}

    def test_make_query_with_unseen_terms(self, tiny_dataset):
        q = tiny_dataset.make_query(Point(1, 1), "zebra quantum")
        assert set(q.keywords) == {"quantum", "zebra"}

    def test_derive_shares_vocabulary_and_region(self, tiny_dataset):
        users = tiny_dataset.derive([(Point(2, 2), "sushi wine")])
        assert users.vocabulary is tiny_dataset.vocabulary
        assert users.region == tiny_dataset.region
        assert users.objects[0].oid == 0

    def test_derive_empty_rejected(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.derive([])

    def test_duplicate_ids_rejected(self, tiny_dataset):
        objs = [tiny_dataset.get(0), tiny_dataset.get(0)]
        with pytest.raises(DatasetError):
            STDataset(
                objs, tiny_dataset.vocabulary, tiny_dataset.region, tiny_dataset.config
            )


class TestSTObject:
    def test_mbr_is_point(self, tiny_dataset):
        obj = tiny_dataset.get(0)
        assert obj.mbr().is_point()
        assert obj.mbr().contains_point(obj.point)

    def test_interval_is_degenerate(self, tiny_dataset):
        obj = tiny_dataset.get(0)
        iv = obj.interval()
        assert iv.union == obj.vector
        assert iv.intersection == obj.vector


class TestSTScorer:
    def test_score_range(self, tiny_dataset):
        scorer = STScorer.for_dataset(tiny_dataset)
        for a in tiny_dataset.objects:
            for b in tiny_dataset.objects:
                assert 0.0 <= scorer.score(a, b) <= 1.0 + 1e-12

    def test_self_similarity_is_max(self, tiny_dataset):
        scorer = STScorer.for_dataset(tiny_dataset)
        a = tiny_dataset.get(0)
        assert scorer.score(a, a) == pytest.approx(1.0)

    def test_symmetry(self, tiny_dataset):
        scorer = STScorer.for_dataset(tiny_dataset)
        a, b = tiny_dataset.get(0), tiny_dataset.get(5)
        assert scorer.score(a, b) == pytest.approx(scorer.score(b, a))

    def test_alpha_one_is_pure_spatial(self, tiny_dataset):
        scorer = STScorer.for_dataset(tiny_dataset, SimilarityConfig(alpha=1.0))
        a, b = tiny_dataset.get(0), tiny_dataset.get(1)
        assert scorer.score(a, b) == pytest.approx(scorer.spatial(a, b))

    def test_alpha_zero_is_pure_textual(self, tiny_dataset):
        scorer = STScorer.for_dataset(tiny_dataset, SimilarityConfig(alpha=0.0))
        a, b = tiny_dataset.get(0), tiny_dataset.get(6)
        assert scorer.score(a, b) == pytest.approx(scorer.textual(a, b))

    def test_blend(self, tiny_dataset):
        cfg = SimilarityConfig(alpha=0.3)
        scorer = STScorer.for_dataset(tiny_dataset, cfg)
        a, b = tiny_dataset.get(0), tiny_dataset.get(6)
        expected = 0.3 * scorer.spatial(a, b) + 0.7 * scorer.textual(a, b)
        assert scorer.score(a, b) == pytest.approx(expected)
