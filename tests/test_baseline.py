"""Baselines: brute force self-consistency and threshold-baseline parity."""

import pytest

from repro import (
    BruteForceRSTkNN,
    IURTree,
    QueryError,
    ThresholdBaseline,
)
from repro.workloads import sample_queries


class TestBruteForce:
    def test_membership_definition(self, tiny_dataset):
        brute = BruteForceRSTkNN(tiny_dataset)
        q = tiny_dataset.make_query_from_object(tiny_dataset.get(0))
        result = brute.search(q, 1)
        # The query equals object 0, so object 0's top-1 is the query
        # itself (or a tie) — 0 must be a member.
        assert 0 in result

    def test_k_grows_result_monotonically(self, small_dataset):
        brute = BruteForceRSTkNN(small_dataset)
        q = sample_queries(small_dataset, 1, seed=30)[0]
        previous = set()
        for k in (1, 2, 4, 8, 16):
            current = set(brute.search(q, k))
            assert previous <= current
            previous = current

    def test_huge_k_returns_all(self, small_dataset):
        brute = BruteForceRSTkNN(small_dataset)
        q = sample_queries(small_dataset, 1, seed=31)[0]
        assert brute.search(q, len(small_dataset) + 1) == [
            o.oid for o in small_dataset.objects
        ]

    def test_kth_neighbor_score_monotone(self, small_dataset):
        brute = BruteForceRSTkNN(small_dataset)
        obj = small_dataset.get(5)
        scores = [brute.kth_neighbor_score(obj, k) for k in (1, 3, 9, 27)]
        assert scores == sorted(scores, reverse=True)

    def test_kth_neighbor_insufficient(self, small_dataset):
        brute = BruteForceRSTkNN(small_dataset)
        assert brute.kth_neighbor_score(small_dataset.get(0), 10_000) == 0.0

    def test_invalid_k(self, small_dataset):
        brute = BruteForceRSTkNN(small_dataset)
        with pytest.raises(QueryError):
            brute.search(small_dataset.get(0), 0)
        with pytest.raises(QueryError):
            brute.kth_neighbor_score(small_dataset.get(0), 0)


class TestThresholdBaseline:
    def test_matches_brute_force(self, small_dataset):
        tree = IURTree.build(small_dataset)
        baseline = ThresholdBaseline(tree)
        brute = BruteForceRSTkNN(small_dataset)
        for q in sample_queries(small_dataset, 3, seed=32):
            for k in (1, 4):
                assert baseline.search(q, k) == brute.search(q, k)

    def test_thresholds_match_brute(self, small_dataset):
        tree = IURTree.build(small_dataset)
        baseline = ThresholdBaseline(tree)
        brute = BruteForceRSTkNN(small_dataset)
        thresholds = baseline.thresholds(3)
        assert set(thresholds) == {o.oid for o in small_dataset.objects}
        for oid, value in list(thresholds.items())[:10]:
            assert value == pytest.approx(
                brute.kth_neighbor_score(small_dataset.get(oid), 3)
            )

    def test_invalid_k(self, small_dataset):
        tree = IURTree.build(small_dataset)
        with pytest.raises(QueryError):
            ThresholdBaseline(tree).search(small_dataset.get(0), 0)

    def test_io_is_heavy(self, medium_dataset):
        """The baseline's defining property: per-object probing costs
        far more I/O than a single group search."""
        from repro import RSTkNNSearcher

        tree = IURTree.build(medium_dataset)
        q = sample_queries(medium_dataset, 1, seed=33)[0]
        tree.reset_io(cold=True)
        RSTkNNSearcher(tree).search(q, 3)
        group_io = tree.io.reads + tree.io.buffer_hits
        tree.reset_io(cold=True)
        ThresholdBaseline(tree).search(q, 3)
        baseline_io = tree.io.reads + tree.io.buffer_hits
        assert baseline_io > group_io
