"""The repo's tooling: API doc generation and the docstring gate."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


class TestGenApiDocs:
    def test_generates_markdown(self, tmp_path):
        out = tmp_path / "API.md"
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_api_docs.py"), str(out)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, result.stderr
        text = out.read_text()
        assert "# API reference" in text
        # Spot-check a few load-bearing entries.
        assert "## `repro.core.rstknn`" in text
        assert "RSTkNNSearcher" in text
        assert "IntervalVector" in text

    def test_committed_api_docs_exist(self):
        committed = REPO / "docs" / "API.md"
        assert committed.exists()
        assert "RSTkNNSearcher" in committed.read_text()


class TestDocstringGate:
    def test_full_coverage(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_docstrings.py")],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, (
            "public items lost their docstrings:\n" + result.stdout
        )
        assert "complete" in result.stdout

    def test_checker_detects_gaps(self):
        """The gate must actually bite: a module with an undocumented
        public function is reported."""
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import check_docstrings

            import types

            fake = types.ModuleType("repro.fake_for_test")
            fake.__doc__ = "Documented module."

            def documented():
                """Has a docstring."""

            def undocumented():
                pass

            documented.__module__ = fake.__name__
            undocumented.__module__ = fake.__name__
            fake.documented = documented
            fake.undocumented = undocumented
            missing = check_docstrings.missing_in_module(fake)
            assert missing == ["repro.fake_for_test.undocumented"]
        finally:
            sys.path.pop(0)
