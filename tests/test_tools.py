"""The repo's tooling: API doc generation, docstring and link gates."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


class TestGenApiDocs:
    def test_generates_markdown(self, tmp_path):
        out = tmp_path / "API.md"
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_api_docs.py"), str(out)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, result.stderr
        text = out.read_text()
        assert "# API reference" in text
        # Spot-check a few load-bearing entries.
        assert "## `repro.core.rstknn`" in text
        assert "RSTkNNSearcher" in text
        assert "IntervalVector" in text

    def test_committed_api_docs_exist(self):
        committed = REPO / "docs" / "API.md"
        assert committed.exists()
        assert "RSTkNNSearcher" in committed.read_text()

    def test_check_mode_passes_on_fresh_output(self, tmp_path):
        out = tmp_path / "API.md"
        gen = [sys.executable, str(REPO / "tools" / "gen_api_docs.py")]
        subprocess.run(gen + [str(out)], check=True, cwd=REPO)
        result = subprocess.run(
            gen + ["--check", str(out)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, result.stderr
        assert "up to date" in result.stdout

    def test_check_mode_fails_on_drift(self, tmp_path):
        out = tmp_path / "API.md"
        out.write_text("# API reference\n\nstale\n")
        result = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "gen_api_docs.py"),
                "--check",
                str(out),
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 1
        assert "stale" in result.stderr

    def test_committed_api_docs_are_current(self):
        """The CI drift gate, run in-process: docs/API.md matches code."""
        result = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "gen_api_docs.py"),
                "--check",
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, (
            "docs/API.md is stale — regenerate with "
            "`python tools/gen_api_docs.py`\n" + result.stderr
        )


class TestLinkChecker:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_links.py"), *args],
            capture_output=True,
            text=True,
            cwd=REPO,
        )

    def test_repo_docs_links_resolve(self):
        result = self._run()
        assert result.returncode == 0, result.stderr
        assert "all links ok" in result.stdout

    def test_detects_broken_file_link(self, tmp_path):
        doc = tmp_path / "page.md"
        doc.write_text("see [missing](./no_such_file.md)\n")
        result = self._run(str(doc))
        assert result.returncode == 1
        assert "broken link" in result.stderr

    def test_detects_missing_anchor(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Real heading\n")
        doc = tmp_path / "page.md"
        doc.write_text("see [anchor](other.md#not-a-heading)\n")
        result = self._run(str(doc))
        assert result.returncode == 1
        assert "missing anchor" in result.stderr

    def test_accepts_valid_anchor_and_external(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Real Heading\n")
        doc = tmp_path / "page.md"
        doc.write_text(
            "ok [anchor](other.md#real-heading) and "
            "[ext](https://example.com/x)\n"
        )
        result = self._run(str(doc))
        assert result.returncode == 0, result.stderr


class TestDocstringGate:
    def test_full_coverage(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_docstrings.py")],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, (
            "public items lost their docstrings:\n" + result.stdout
        )
        assert "complete" in result.stdout

    def test_checker_detects_gaps(self):
        """The gate must actually bite: a module with an undocumented
        public function is reported."""
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import check_docstrings

            import types

            fake = types.ModuleType("repro.fake_for_test")
            fake.__doc__ = "Documented module."

            def documented():
                """Has a docstring."""

            def undocumented():
                pass

            documented.__module__ = fake.__name__
            undocumented.__module__ = fake.__name__
            fake.documented = documented
            fake.undocumented = undocumented
            missing = check_docstrings.missing_in_module(fake)
            assert missing == ["repro.fake_for_test.undocumented"]
        finally:
            sys.path.pop(0)
