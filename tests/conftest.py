"""Shared fixtures: small deterministic datasets and helpers."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro import SimilarityConfig, STDataset
from repro.spatial import Point

VOCAB = [
    "sushi", "ramen", "pizza", "pasta", "tacos", "burger", "coffee",
    "seafood", "noodles", "wine", "grill", "bakery", "curry", "salad",
]


def random_corpus(
    n: int, seed: int, max_terms: int = 5
) -> List[Tuple[Point, str]]:
    """A reproducible random (location, description) corpus."""
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        point = Point(rng.uniform(0, 100), rng.uniform(0, 100))
        count = rng.randint(1, max_terms)
        terms = [VOCAB[rng.randrange(len(VOCAB))] for _ in range(count)]
        records.append((point, " ".join(terms)))
    return records


@pytest.fixture(scope="session")
def tiny_dataset() -> STDataset:
    """8 hand-placed objects; used where exact geometry matters."""
    records = [
        (Point(1.0, 1.0), "sushi seafood"),
        (Point(1.2, 0.8), "ramen noodles"),
        (Point(4.5, 4.0), "pizza pasta"),
        (Point(4.8, 4.4), "pizza wine"),
        (Point(0.7, 4.6), "tacos"),
        (Point(4.2, 0.6), "burger"),
        (Point(2.5, 2.5), "seafood grill wine"),
        (Point(2.8, 2.2), "noodles curry"),
    ]
    return STDataset.from_corpus(records)


@pytest.fixture(scope="session")
def small_dataset() -> STDataset:
    """80 random objects with the default configuration."""
    return STDataset.from_corpus(random_corpus(80, seed=3))


@pytest.fixture(scope="session")
def medium_dataset() -> STDataset:
    """300 random objects; big enough for a three-level tree."""
    return STDataset.from_corpus(random_corpus(300, seed=5))


@pytest.fixture
def text_config() -> SimilarityConfig:
    return SimilarityConfig(alpha=0.3, text_measure="extended_jaccard")
