"""Boolean spatial-keyword queries vs brute force."""

import pytest

from repro import CIURTree, IndexConfig, IURTree, QueryError, SimilarityConfig
from repro.core.spatial_keyword import SpatialKeywordSearcher
from repro.spatial import Point, Rect
from repro.workloads import shop_like


@pytest.fixture(scope="module")
def setup():
    # tf weighting keeps every keyword searchable (no idf zeroing).
    dataset = shop_like(n=250, seed=61, config=SimilarityConfig(weighting="tf"))
    tree = IURTree.build(dataset)
    return dataset, tree, SpatialKeywordSearcher(tree)


def brute_all(dataset, region, term_ids):
    out = []
    for obj in dataset.objects:
        if not region.contains_point(obj.point):
            continue
        if all(tid in obj.vector for tid in term_ids):
            out.append(obj.oid)
    return sorted(out)


def brute_any(dataset, region, term_ids):
    out = []
    for obj in dataset.objects:
        if region.contains_point(obj.point):
            if any(tid in obj.vector for tid in term_ids):
                out.append(obj.oid)
    return sorted(out)


def common_terms(dataset, count=2):
    vocab = dataset.vocabulary
    by_df = sorted(
        range(len(vocab)), key=lambda tid: -vocab.doc_frequency(tid)
    )
    return [vocab.term_of(t) for t in by_df[:count]]


class TestBooleanRange:
    def test_matches_brute_force(self, setup):
        dataset, _, searcher = setup
        terms = common_terms(dataset, 1)
        term_ids = [dataset.vocabulary.id_of(t) for t in terms]
        region = Rect(10, 10, 80, 80)
        assert searcher.boolean_range(region, terms) == brute_all(
            dataset, region, term_ids
        )

    def test_conjunction_of_two_terms(self, setup):
        dataset, _, searcher = setup
        terms = common_terms(dataset, 2)
        term_ids = [dataset.vocabulary.id_of(t) for t in terms]
        region = Rect(0, 0, 100, 100)
        got = searcher.boolean_range(region, terms)
        assert got == brute_all(dataset, region, term_ids)
        # Conjunction is a subset of each single-term result.
        single = searcher.boolean_range(region, terms[:1])
        assert set(got) <= set(single)

    def test_no_terms_is_spatial_range(self, setup):
        dataset, _, searcher = setup
        region = Rect(20, 20, 60, 60)
        expected = sorted(
            o.oid for o in dataset.objects if region.contains_point(o.point)
        )
        assert searcher.boolean_range(region, []) == expected

    def test_unknown_term_matches_nothing(self, setup):
        _, _, searcher = setup
        assert searcher.boolean_range(Rect(0, 0, 100, 100), ["zzznope"]) == []

    def test_empty_region(self, setup):
        dataset, _, searcher = setup
        terms = common_terms(dataset, 1)
        assert searcher.boolean_range(Rect(500, 500, 600, 600), terms) == []

    def test_charges_io(self, setup):
        dataset, tree, searcher = setup
        tree.reset_io()
        searcher.boolean_range(Rect(0, 0, 100, 100), common_terms(dataset, 1))
        assert tree.io.reads > 0


class TestAnyTermRange:
    def test_matches_brute_force(self, setup):
        dataset, _, searcher = setup
        terms = common_terms(dataset, 3)
        term_ids = [dataset.vocabulary.id_of(t) for t in terms]
        region = Rect(10, 10, 90, 90)
        assert searcher.any_term_range(region, terms) == brute_any(
            dataset, region, term_ids
        )

    def test_superset_of_conjunction(self, setup):
        dataset, _, searcher = setup
        terms = common_terms(dataset, 2)
        region = Rect(0, 0, 100, 100)
        assert set(searcher.boolean_range(region, terms)) <= set(
            searcher.any_term_range(region, terms)
        )

    def test_all_unknown_terms(self, setup):
        _, _, searcher = setup
        assert searcher.any_term_range(Rect(0, 0, 100, 100), ["zzz", "yyy"]) == []


class TestBooleanKnn:
    def test_matches_brute_force(self, setup):
        dataset, _, searcher = setup
        terms = common_terms(dataset, 1)
        tid = dataset.vocabulary.id_of(terms[0])
        q = Point(50, 50)
        got = searcher.boolean_knn(q, 5, terms)
        brute = sorted(
            (
                (obj.point.distance_to(q), obj.oid)
                for obj in dataset.objects
                if tid in obj.vector
            ),
        )[:5]
        assert [oid for oid, _ in got] == [oid for _, oid in brute]
        for (_, d_got), (d_want, _) in zip(got, brute):
            assert d_got == pytest.approx(d_want)

    def test_k_exceeds_matches(self, setup):
        dataset, _, searcher = setup
        terms = common_terms(dataset, 2)
        tids = [dataset.vocabulary.id_of(t) for t in terms]
        matching = sum(
            1 for o in dataset.objects if all(t in o.vector for t in tids)
        )
        got = searcher.boolean_knn(Point(0, 0), matching + 50, terms)
        assert len(got) == matching

    def test_invalid_k(self, setup):
        _, _, searcher = setup
        with pytest.raises(QueryError):
            searcher.boolean_knn(Point(0, 0), 0, [])

    def test_unknown_term(self, setup):
        _, _, searcher = setup
        assert searcher.boolean_knn(Point(0, 0), 3, ["zzznope"]) == []

    def test_distances_ascending(self, setup):
        dataset, _, searcher = setup
        got = searcher.boolean_knn(Point(30, 70), 10, common_terms(dataset, 1))
        dists = [d for _, d in got]
        assert dists == sorted(dists)


class TestOnClusteredTreeWithOutliers:
    def test_results_independent_of_index_variant(self, setup):
        dataset, _, searcher = setup
        ciur = CIURTree.build(
            dataset, IndexConfig(num_clusters=4, outlier_threshold=0.3)
        )
        other = SpatialKeywordSearcher(ciur)
        terms = common_terms(dataset, 2)
        region = Rect(5, 5, 95, 95)
        assert other.boolean_range(region, terms) == searcher.boolean_range(
            region, terms
        )
        assert [o for o, _ in other.boolean_knn(Point(40, 40), 7, terms)] == [
            o for o, _ in searcher.boolean_knn(Point(40, 40), 7, terms)
        ]
