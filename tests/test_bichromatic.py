"""Bichromatic BRSTkNN: group search vs per-user probing vs brute force."""

import pytest

from repro import (
    BichromaticRSTkNN,
    IndexConfig,
    IURTree,
    CIURTree,
    QueryError,
    STDataset,
    STScorer,
)
from repro.spatial import Point
from repro.workloads import (
    WorkloadSpec,
    generate_corpus,
    generate_user_corpus,
    sample_queries,
)


@pytest.fixture(scope="module")
def bichromatic_setup():
    spec = WorkloadSpec(n_objects=150, vocab_size=60, seed=77)
    objects = STDataset.from_corpus(generate_corpus(spec))
    users = objects.derive(generate_user_corpus(spec, 60))
    object_tree = IURTree.build(objects)
    user_tree = IURTree.build(users)
    return objects, users, object_tree, user_tree


def brute_brstknn(objects, users, query, k):
    """Oracle: count objects strictly more similar to each user than q."""
    scorer = STScorer.for_dataset(objects)
    out = []
    for user in users.objects:
        q_sim = scorer.score(query, user)
        stronger = sum(
            1 for obj in objects.objects if scorer.score(obj, user) > q_sim
        )
        if stronger <= k - 1:
            out.append(user.oid)
    return out


class TestBichromatic:
    def test_group_matches_brute(self, bichromatic_setup):
        objects, users, object_tree, user_tree = bichromatic_setup
        engine = BichromaticRSTkNN(user_tree, object_tree)
        for seed, k in ((1, 1), (2, 3), (3, 8)):
            query = sample_queries(objects, 1, seed=seed)[0]
            expected = brute_brstknn(objects, users, query, k)
            assert engine.search(query, k).user_ids == expected

    def test_group_matches_per_user(self, bichromatic_setup):
        objects, _, object_tree, user_tree = bichromatic_setup
        engine = BichromaticRSTkNN(user_tree, object_tree)
        for seed in (4, 5):
            query = sample_queries(objects, 1, seed=seed)[0]
            for k in (1, 5):
                assert engine.search(query, k).user_ids == engine.search_per_user(
                    query, k
                )

    def test_clustered_object_tree(self, bichromatic_setup):
        objects, users, _, user_tree = bichromatic_setup
        ciur = CIURTree.build(objects, IndexConfig(num_clusters=4))
        engine = BichromaticRSTkNN(user_tree, ciur)
        query = sample_queries(objects, 1, seed=6)[0]
        assert engine.search(query, 3).user_ids == brute_brstknn(
            objects, users, query, 3
        )

    def test_k_covers_all_objects(self, bichromatic_setup):
        objects, users, object_tree, user_tree = bichromatic_setup
        engine = BichromaticRSTkNN(user_tree, object_tree)
        query = sample_queries(objects, 1, seed=7)[0]
        result = engine.search(query, len(objects) + 1)
        assert result.user_ids == [u.oid for u in users.objects]

    def test_reach_monotone_in_k(self, bichromatic_setup):
        objects, _, object_tree, user_tree = bichromatic_setup
        engine = BichromaticRSTkNN(user_tree, object_tree)
        query = sample_queries(objects, 1, seed=8)[0]
        previous = set()
        for k in (1, 2, 4, 8):
            current = set(engine.search(query, k).user_ids)
            assert previous <= current
            previous = current

    def test_invalid_k(self, bichromatic_setup):
        objects, _, object_tree, user_tree = bichromatic_setup
        engine = BichromaticRSTkNN(user_tree, object_tree)
        with pytest.raises(QueryError):
            engine.search(objects.get(0), 0)
        with pytest.raises(QueryError):
            engine.search_per_user(objects.get(0), 0)

    def test_result_statistics(self, bichromatic_setup):
        objects, _, object_tree, user_tree = bichromatic_setup
        engine = BichromaticRSTkNN(user_tree, object_tree)
        query = sample_queries(objects, 1, seed=9)[0]
        result = engine.search(query, 3)
        assert result.elapsed_seconds > 0
        assert len(result) == len(result.user_ids)
        assert "reads" in result.io
        assert any(key.startswith("user.") for key in result.io)

    def test_colliding_ids_handled(self):
        """Users and objects share the 0-based id namespace by design;
        this is the regression test for the bound-cache collision."""
        spec = WorkloadSpec(n_objects=80, vocab_size=40, seed=13)
        objects = STDataset.from_corpus(generate_corpus(spec))
        # Users literally reuse object locations/descriptions: ids and
        # contents collide maximally.
        users = objects.derive(
            [(o.point, " ".join(o.keywords)) for o in objects.objects[:40]]
        )
        engine = BichromaticRSTkNN(IURTree.build(users), IURTree.build(objects))
        query = sample_queries(objects, 1, seed=14)[0]
        for k in (1, 3):
            assert engine.search(query, k).user_ids == brute_brstknn(
                objects, users, query, k
            )
