"""Spherical k-means and cluster entropy."""

import math
import random

import pytest

from repro import ConfigError, SparseVector
from repro.text.clustering import SphericalKMeans
from repro.text.entropy import cluster_entropy, normalized_cluster_entropy


def topical_vectors(n_per_topic=20, topics=3, seed=1):
    """Vectors drawn from disjoint vocabulary blocks — trivially separable."""
    rng = random.Random(seed)
    vectors = []
    for t in range(topics):
        base = t * 10
        for _ in range(n_per_topic):
            terms = {base + rng.randrange(5): 1.0 + rng.random() for _ in range(3)}
            vectors.append(SparseVector(terms))
    return vectors


class TestSphericalKMeans:
    def test_separable_topics_recovered(self):
        vectors = topical_vectors()
        result = SphericalKMeans(3, seed=5).fit(vectors)
        # All members of a block must share a label (blocks are disjoint).
        for t in range(3):
            block = result.labels[t * 20 : (t + 1) * 20]
            assert len(set(block)) == 1
        assert len({result.labels[0], result.labels[20], result.labels[40]}) == 3

    def test_k_one(self):
        result = SphericalKMeans(1).fit(topical_vectors())
        assert result.num_clusters == 1
        assert set(result.labels) == {0}

    def test_k_capped_at_n(self):
        vectors = [SparseVector({1: 1.0}), SparseVector({2: 1.0})]
        result = SphericalKMeans(10).fit(vectors)
        assert result.num_clusters <= 2
        assert len(result.labels) == 2

    def test_empty_input(self):
        result = SphericalKMeans(3).fit([])
        assert result.labels == []
        assert result.centroids == []

    def test_cohesion_in_unit_range(self):
        result = SphericalKMeans(3, seed=2).fit(topical_vectors())
        assert all(-1e-9 <= c <= 1.0 + 1e-9 for c in result.cohesion)

    def test_empty_documents_get_cohesion_one(self):
        vectors = [SparseVector.empty(), SparseVector({1: 1.0})]
        result = SphericalKMeans(2).fit(vectors)
        assert result.cohesion[0] == 1.0

    def test_members(self):
        result = SphericalKMeans(3, seed=5).fit(topical_vectors())
        all_members = sorted(
            i for c in range(result.num_clusters) for i in result.members(c)
        )
        assert all_members == list(range(60))

    def test_deterministic_in_seed(self):
        vectors = topical_vectors()
        a = SphericalKMeans(3, seed=11).fit(vectors)
        b = SphericalKMeans(3, seed=11).fit(vectors)
        assert a.labels == b.labels

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            SphericalKMeans(0)
        with pytest.raises(ConfigError):
            SphericalKMeans(2, max_iter=0)


class TestEntropy:
    def test_empty(self):
        assert cluster_entropy({}) == 0.0
        assert cluster_entropy({0: 0}) == 0.0

    def test_single_cluster_zero(self):
        assert cluster_entropy({0: 100}) == 0.0

    def test_uniform_is_log_k(self):
        assert cluster_entropy({0: 5, 1: 5, 2: 5}) == pytest.approx(math.log(3))

    def test_skew_lowers_entropy(self):
        assert cluster_entropy({0: 9, 1: 1}) < cluster_entropy({0: 5, 1: 5})

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            cluster_entropy({0: -1})

    def test_normalized_range(self):
        assert normalized_cluster_entropy({0: 5, 1: 5}, 2) == pytest.approx(1.0)
        assert normalized_cluster_entropy({0: 10}, 2) == 0.0
        assert normalized_cluster_entropy({0: 10}, 1) == 0.0
