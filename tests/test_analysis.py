"""Analysis utilities: index quality, bound profiling, tree rendering."""

import pytest

from repro import CIURTree, IndexConfig, IURTree
from repro.analysis import (
    measure_index_quality,
    profile_bounds,
    render_tree,
)
from repro.bench import format_table
from repro.workloads import shop_like


@pytest.fixture(scope="module")
def quality_setup():
    dataset = shop_like(n=250, seed=71)
    tree = CIURTree.build(dataset, IndexConfig(num_clusters=6))
    return dataset, tree


class TestIndexQuality:
    def test_levels_cover_tree(self, quality_setup):
        _, tree = quality_setup
        quality = measure_index_quality(tree)
        assert quality.height == tree.stats().height
        assert sum(lq.nodes for lq in quality.levels) == quality.nodes
        assert quality.objects == 250

    def test_area_shrinks_with_depth(self, quality_setup):
        _, tree = quality_setup
        quality = measure_index_quality(tree)
        fractions = [lq.mean_area_fraction for lq in quality.levels]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] == pytest.approx(1.0)  # the root covers all

    def test_metrics_in_range(self, quality_setup):
        _, tree = quality_setup
        for lq in measure_index_quality(tree).levels:
            assert 0.0 <= lq.mean_sibling_overlap <= 1.0
            assert 0.0 <= lq.mean_entropy <= 1.0 + 1e-9
            assert 0.0 <= lq.intersection_occupancy <= 1.0
            assert lq.mean_fanout >= 1.0

    def test_rows_render(self, quality_setup):
        _, tree = quality_setup
        quality = measure_index_quality(tree)
        table = format_table(quality.HEADERS, quality.as_rows())
        assert "level" in table

    def test_single_cluster_tree_has_zero_entropy(self):
        tree = IURTree.build(shop_like(n=80, seed=72))
        for lq in measure_index_quality(tree).levels:
            assert lq.mean_entropy == 0.0
            assert lq.mean_clusters_per_node == 1.0


class TestBoundProfile:
    def test_bounds_sound_and_slack_nonnegative(self, quality_setup):
        _, tree = quality_setup
        profiles = profile_bounds(tree, sample_pairs=15)
        assert profiles
        for profile in profiles:
            assert profile.mean_band_width >= 0.0
            assert profile.mean_lower_slack >= -1e-9
            assert profile.mean_upper_slack >= -1e-9

    def test_bands_tighten_with_depth(self, quality_setup):
        _, tree = quality_setup
        profiles = profile_bounds(tree, sample_pairs=30, seed=5)
        widths = [p.mean_band_width for p in profiles]
        assert widths[-1] <= widths[0]  # leaf-level bands narrower than root

    def test_deterministic_in_seed(self, quality_setup):
        _, tree = quality_setup
        a = profile_bounds(tree, sample_pairs=10, seed=3)
        b = profile_bounds(tree, sample_pairs=10, seed=3)
        assert a == b


class TestTreeViz:
    def test_renders_all_levels(self, quality_setup):
        _, tree = quality_setup
        text = render_tree(tree, max_depth=5)
        assert f"node#{tree.rtree.root_id}" in text or "leaf#" in text
        assert "objs" in text

    def test_depth_limit_elides(self):
        tree = IURTree.build(
            shop_like(n=300, seed=73), IndexConfig(max_entries=4, min_entries=2)
        )
        text = render_tree(tree, max_depth=1)
        assert "elided" in text

    def test_show_objects_lists_keywords(self):
        tree = IURTree.build(shop_like(n=20, seed=74), IndexConfig(max_entries=4, min_entries=1))
        text = render_tree(tree, max_depth=6, show_objects=True)
        assert "obj#" in text

    def test_outliers_footer(self):
        tree = CIURTree.build(
            shop_like(n=100, seed=75),
            IndexConfig(num_clusters=4, outlier_threshold=0.5),
        )
        assert tree.outliers
        assert "OE outliers" in render_tree(tree)

    def test_empty_tree(self):
        tree = CIURTree.build(
            shop_like(n=10, seed=76),
            IndexConfig(num_clusters=2, outlier_threshold=1.0),
        )
        # Threshold 1.0 extracts (nearly) everything; the render must not
        # crash either way.
        text = render_tree(tree)
        assert text
