"""Workload statistics and the run-all-experiments driver."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import measure_workload
from repro.bench import format_table
from repro.data import sample_dataset
from repro.model.dataset import STDataset
from repro.spatial import Point
from repro.workloads import WorkloadSpec, gn_like, make_dataset

REPO = Path(__file__).resolve().parents[1]


class TestWorkloadStats:
    def test_basic_shape(self):
        stats = measure_workload(gn_like(n=300))
        assert stats.objects == 300
        assert stats.vocabulary > 0
        assert stats.max_doc_terms >= stats.mean_doc_terms
        assert 0.0 <= stats.top10_term_mass <= 1.0
        assert stats.spatial_clustering > 0.0

    def test_zipf_fit_tracks_generator_skew(self):
        flat = make_dataset(
            WorkloadSpec(n_objects=400, zipf_s=0.2, topic_affinity=0.0, seed=1)
        )
        skewed = make_dataset(
            WorkloadSpec(n_objects=400, zipf_s=1.4, topic_affinity=0.0, seed=1)
        )
        assert (
            measure_workload(skewed).zipf_exponent
            > measure_workload(flat).zipf_exponent
        )

    def test_clustering_detects_structure(self):
        clustered = make_dataset(
            WorkloadSpec(
                n_objects=300,
                n_spatial_clusters=4,
                cluster_std=0.01,
                uniform_fraction=0.0,
                seed=2,
            )
        )
        uniform = make_dataset(
            WorkloadSpec(n_objects=300, uniform_fraction=1.0, seed=2)
        )
        r_clustered = measure_workload(clustered).spatial_clustering
        r_uniform = measure_workload(uniform).spatial_clustering
        assert r_clustered < r_uniform
        assert r_uniform > 0.6  # near-random placement is near 1

    def test_tiny_dataset(self):
        dataset = STDataset.from_corpus([(Point(0, 0), "only one")])
        stats = measure_workload(dataset)
        assert stats.objects == 1
        assert stats.spatial_clustering == 1.0

    def test_rows_render(self):
        stats = measure_workload(sample_dataset())
        table = format_table(stats.HEADERS, stats.as_rows())
        assert "zipf" in table


class TestRunAllExperimentsTool:
    def test_subset_run(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "run_all_experiments.py"),
                str(tmp_path),
                "--only",
                "E12",
                "--scale",
                "150",
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, result.stderr
        raw = (tmp_path / "EXPERIMENTS_RAW.md").read_text()
        assert "## E12" in raw
        assert (tmp_path / "runs.jsonl").exists()

    def test_unknown_experiment_counts_as_failure(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "run_all_experiments.py"),
                str(tmp_path),
                "--only",
                "E99",
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 1
        assert "FAILED" in result.stdout
