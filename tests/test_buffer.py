"""LRU buffer pool: hits, eviction, pinning, page-budget accounting."""

import pytest

from repro import BufferPoolError
from repro.storage import BufferPool, DiskManager


def make_pool(capacity_pages=4, page_size=64):
    disk = DiskManager(page_size=page_size)
    return disk, BufferPool(disk, capacity_pages)


class TestBufferPool:
    def test_miss_then_hit(self):
        disk, pool = make_pool()
        rid = disk.allocate(b"a")
        disk.stats.reset()
        pool.get(rid)
        assert disk.stats.reads == 1
        pool.get(rid)
        assert disk.stats.reads == 1  # served from cache
        assert disk.stats.buffer_hits == 1

    def test_lru_eviction_order(self):
        disk, pool = make_pool(capacity_pages=2)
        a = disk.allocate(b"a")
        b = disk.allocate(b"b")
        c = disk.allocate(b"c")
        pool.get(a)
        pool.get(b)
        pool.get(a)  # refresh a; b is now LRU
        pool.get(c)  # evicts b
        assert pool.contains(a)
        assert not pool.contains(b)
        assert pool.contains(c)

    def test_capacity_in_pages_not_records(self):
        disk, pool = make_pool(capacity_pages=4)
        fat = disk.allocate(b"x" * 200)  # 4 pages
        thin = disk.allocate(b"y")
        pool.get(thin)
        pool.get(fat)  # needs all 4 pages -> evicts thin
        assert not pool.contains(thin)
        assert pool.pages_used == 4

    def test_oversized_record_served_uncached(self):
        disk, pool = make_pool(capacity_pages=2)
        huge = disk.allocate(b"z" * 300)  # 5 pages > capacity
        data = pool.get(huge)
        assert data == b"z" * 300
        assert not pool.contains(huge)
        assert pool.pages_used == 0

    def test_pinned_records_survive_eviction(self):
        disk, pool = make_pool(capacity_pages=2)
        a = disk.allocate(b"a")
        b = disk.allocate(b"b")
        c = disk.allocate(b"c")
        pool.pin(a)
        pool.get(b)
        pool.get(c)  # must evict b, not pinned a
        assert pool.contains(a)
        assert not pool.contains(b)
        pool.unpin(a)

    def test_unpin_without_pin_rejected(self):
        disk, pool = make_pool()
        rid = disk.allocate(b"a")
        pool.get(rid)
        with pytest.raises(BufferPoolError):
            pool.unpin(rid)

    def test_nested_pins(self):
        disk, pool = make_pool()
        rid = disk.allocate(b"a")
        pool.pin(rid)
        pool.pin(rid)
        pool.unpin(rid)
        pool.unpin(rid)
        with pytest.raises(BufferPoolError):
            pool.unpin(rid)

    def test_overcommitted_pins_raise(self):
        disk, pool = make_pool(capacity_pages=2)
        a = disk.allocate(b"a")
        b = disk.allocate(b"b")
        c = disk.allocate(b"c")
        pool.pin(a)
        pool.pin(b)
        with pytest.raises(BufferPoolError):
            pool.get(c)

    def test_clear(self):
        disk, pool = make_pool()
        rid = disk.allocate(b"a")
        pool.get(rid)
        pool.clear()
        assert pool.resident_records == 0
        assert pool.pages_used == 0
        disk.stats.reset()
        pool.get(rid)
        assert disk.stats.reads == 1  # cold again

    def test_clear_with_pins_rejected(self):
        disk, pool = make_pool()
        rid = disk.allocate(b"a")
        pool.pin(rid)
        with pytest.raises(BufferPoolError):
            pool.clear()

    def test_invalidate(self):
        disk, pool = make_pool()
        rid = disk.allocate(b"a")
        pool.get(rid)
        disk.rewrite(rid, b"bb")
        pool.invalidate(rid)
        assert pool.get(rid) == b"bb"

    def test_invalidate_pinned_rejected(self):
        disk, pool = make_pool()
        rid = disk.allocate(b"a")
        pool.pin(rid)
        with pytest.raises(BufferPoolError):
            pool.invalidate(rid)

    def test_zero_capacity_rejected(self):
        disk = DiskManager(page_size=64)
        with pytest.raises(BufferPoolError):
            BufferPool(disk, 0)
