"""IntervalVector: merge semantics and document admission."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DatasetError, IntervalVector, SparseVector

docs = st.dictionaries(
    st.integers(min_value=0, max_value=15),
    st.floats(min_value=1e-3, max_value=10, allow_nan=False),
    max_size=6,
)


class TestIntervalVector:
    def test_from_document_is_degenerate(self):
        v = SparseVector({1: 2.0, 3: 1.0})
        iv = IntervalVector.from_document(v)
        assert iv.intersection == v
        assert iv.union == v
        assert iv.doc_count == 1

    def test_doc_count_must_be_positive(self):
        with pytest.raises(DatasetError):
            IntervalVector(SparseVector.empty(), SparseVector.empty(), 0)

    def test_intersection_cannot_exceed_union(self):
        with pytest.raises(DatasetError):
            IntervalVector(SparseVector({1: 5.0}), SparseVector({1: 2.0}), 1)

    def test_merge_union_takes_max(self):
        a = IntervalVector.from_document(SparseVector({1: 1.0, 2: 3.0}))
        b = IntervalVector.from_document(SparseVector({1: 4.0}))
        merged = IntervalVector.merge([a, b])
        assert merged.union.get(1) == 4.0
        assert merged.union.get(2) == 3.0
        assert merged.doc_count == 2

    def test_merge_intersection_requires_presence_in_all(self):
        a = IntervalVector.from_document(SparseVector({1: 1.0, 2: 3.0}))
        b = IntervalVector.from_document(SparseVector({1: 4.0}))
        merged = IntervalVector.merge([a, b])
        assert merged.intersection.get(1) == 1.0  # min of 1 and 4
        assert merged.intersection.get(2) == 0.0  # absent from b

    def test_merge_empty_rejected(self):
        with pytest.raises(DatasetError):
            IntervalVector.merge([])

    def test_merge_single_is_identity(self):
        iv = IntervalVector.from_document(SparseVector({1: 1.0}))
        assert IntervalVector.merge([iv]) == iv

    def test_admits(self):
        docs_ = [SparseVector({1: 2.0, 2: 1.0}), SparseVector({1: 3.0})]
        merged = IntervalVector.merge(
            [IntervalVector.from_document(d) for d in docs_]
        )
        for d in docs_:
            assert merged.admits(d)
        # Missing the intersection term 1:
        assert not merged.admits(SparseVector({2: 1.0}))
        # Exceeding the union weight of term 1:
        assert not merged.admits(SparseVector({1: 9.0}))

    def test_size_in_terms(self):
        iv = IntervalVector.merge(
            [
                IntervalVector.from_document(SparseVector({1: 1.0, 2: 1.0})),
                IntervalVector.from_document(SparseVector({1: 1.0})),
            ]
        )
        assert iv.size_in_terms() == 2 + 1


class TestIntervalProperties:
    @given(st.lists(docs, min_size=1, max_size=6))
    @settings(max_examples=150)
    def test_merge_admits_every_member(self, weight_maps):
        vectors = [SparseVector(w) for w in weight_maps]
        merged = IntervalVector.merge(
            [IntervalVector.from_document(v) for v in vectors]
        )
        assert merged.doc_count == len(vectors)
        for v in vectors:
            assert merged.admits(v)

    @given(st.lists(docs, min_size=2, max_size=6))
    @settings(max_examples=150)
    def test_merge_associative_ish(self, weight_maps):
        """Merging all at once equals merging incrementally."""
        ivs = [IntervalVector.from_document(SparseVector(w)) for w in weight_maps]
        all_at_once = IntervalVector.merge(ivs)
        left = ivs[0]
        for iv in ivs[1:]:
            left = IntervalVector.merge([left, iv])
        assert left == all_at_once
