"""Property-based tests: the rectangle distance algebra is exact.

``min_dist`` / ``max_dist`` claim to bound the distance between *any*
point pair of two rectangles — here hypothesis samples interior points
and checks the claim, plus tightness at the extremes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Point, Rect

coords = st.floats(
    min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


@st.composite
def rect_with_point(draw):
    r = draw(rects())
    fx = draw(st.floats(min_value=0, max_value=1))
    fy = draw(st.floats(min_value=0, max_value=1))
    # Clamp: float rounding of lo + f*width can land a hair outside.
    px = min(max(r.xlo + fx * r.width, r.xlo), r.xhi)
    py = min(max(r.ylo + fy * r.height, r.ylo), r.yhi)
    return r, Point(px, py)


@given(rect_with_point(), rect_with_point())
@settings(max_examples=200)
def test_point_pair_distance_within_bounds(ap, bp):
    ra, pa = ap
    rb, pb = bp
    d = pa.distance_to(pb)
    assert ra.min_dist(rb) <= d + 1e-9
    assert d <= ra.max_dist(rb) + 1e-9


@given(rects(), rects())
@settings(max_examples=200)
def test_min_dist_le_max_dist(a, b):
    assert a.min_dist(b) <= a.max_dist(b) + 1e-9


@given(rects(), rects())
@settings(max_examples=200)
def test_min_dist_tight_at_corners_or_zero(a, b):
    """min_dist is realized by some pair of boundary points."""
    md = a.min_dist(b)
    if a.intersects(b):
        assert md == 0.0
    else:
        # min_dist must be realized: project a point of a onto b's span,
        # then clamp into b — the resulting pair attains the bound.
        px = min(max(a.xlo, b.xlo), a.xhi)
        py = min(max(a.ylo, b.ylo), a.yhi)
        qx = min(max(b.xlo, px), b.xhi)
        qy = min(max(b.ylo, py), b.yhi)
        assert abs(Point(px, py).distance_to(Point(qx, qy)) - md) <= 1e-6


@given(rects(), rects())
@settings(max_examples=200)
def test_max_dist_realized_by_corners(a, b):
    best = max(
        ca.distance_to(cb) for ca in a.corners() for cb in b.corners()
    )
    assert abs(best - a.max_dist(b)) <= 1e-9


@given(rects())
@settings(max_examples=100)
def test_self_max_dist_is_diagonal(r):
    assert abs(r.max_dist(r) - r.diagonal()) <= 1e-9


@given(rects(), rects())
@settings(max_examples=200)
def test_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains_rect(a)
    assert u.contains_rect(b)


@given(rects(), rects())
@settings(max_examples=200)
def test_enlargement_non_negative(a, b):
    assert a.enlargement(b) >= -1e-9


@given(rect_with_point())
@settings(max_examples=200)
def test_contained_point_distances(rp):
    r, p = rp
    assert r.min_dist_point(p) == 0.0
    assert r.max_dist_point(p) <= r.diagonal() + 1e-9
