"""Spatial proximity normalization."""

import pytest

from repro import ConfigError, Point, Rect, SpatialProximity


class TestSpatialProximity:
    def test_zero_distance_is_one(self):
        prox = SpatialProximity(10.0)
        assert prox.from_distance(0.0) == 1.0

    def test_max_distance_is_zero(self):
        prox = SpatialProximity(10.0)
        assert prox.from_distance(10.0) == 0.0

    def test_linear_in_between(self):
        prox = SpatialProximity(10.0)
        assert prox.from_distance(2.5) == pytest.approx(0.75)

    def test_clamps_beyond_max(self):
        prox = SpatialProximity(10.0)
        assert prox.from_distance(15.0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigError):
            SpatialProximity(10.0).from_distance(-1.0)

    def test_non_positive_diameter_rejected(self):
        with pytest.raises(ConfigError):
            SpatialProximity(0.0)
        with pytest.raises(ConfigError):
            SpatialProximity(-2.0)

    def test_for_region_uses_diagonal(self):
        prox = SpatialProximity.for_region(Rect(0, 0, 3, 4))
        assert prox.max_distance == 5.0

    def test_for_degenerate_region_falls_back_to_unit(self):
        prox = SpatialProximity.for_region(Rect(2, 2, 2, 2))
        assert prox.max_distance == 1.0

    def test_between_points(self):
        prox = SpatialProximity(10.0)
        assert prox.between(Point(0, 0), Point(3, 4)) == pytest.approx(0.5)

    def test_bounds_order(self):
        prox = SpatialProximity(100.0)
        a = Rect(0, 0, 2, 2)
        b = Rect(5, 5, 8, 9)
        assert prox.lower_bound(a, b) <= prox.upper_bound(a, b)

    def test_upper_bound_of_overlapping_is_one(self):
        prox = SpatialProximity(100.0)
        a = Rect(0, 0, 5, 5)
        assert prox.upper_bound(a, Rect(1, 1, 2, 2)) == 1.0
