"""Asyncio HTTP front door: routing, parity, shedding, error mapping.

The front door is a thin shell around :class:`ShardQueryService`; what
matters is that the JSON boundary never changes an answer.  The parity
test therefore compares an HTTP ``/search`` response against a direct
``service.serve`` call built from the *same JSON inputs* via
``make_query`` — re-tokenized text must go through the identical path
on both sides.  The rest pins the operational surface: health and
metrics routes, 400/404/405 mappings for malformed traffic, 503
shedding when the admission semaphore is exhausted, and the CLI
self-test (the same gate CI runs).
"""

from __future__ import annotations

import asyncio
import json

from repro.cli import main as cli_main
from repro.index.iurtree import IURTree
from repro.obs import MetricsRegistry
from repro.shard import ScatterGatherSearcher, build_sharded_index
from repro.shard.http import ShardHttpServer, ShardQueryService, fetch_json
from repro.text.similarity import make_measure
from repro.workloads import gn_like, sample_queries

_STATE = {}


def _env():
    if not _STATE:
        dataset = gn_like(n=160)
        tree = IURTree.build(dataset)
        tree.snapshot()
        index = build_sharded_index(dataset, 2)
        registry = MetricsRegistry()
        searcher = ScatterGatherSearcher(index, metrics=registry)
        service = ShardQueryService(searcher, metrics=registry)
        queries = sample_queries(dataset, 3, seed=17)
        _STATE.update(
            dataset=dataset,
            tree=tree,
            service=service,
            registry=registry,
            queries=queries,
        )
    return _STATE


async def _with_server(env, fn, **server_kwargs):
    """Start an ephemeral-port server, run ``fn(server)``, stop it."""
    server = ShardHttpServer(
        env["service"], port=0, metrics=env["registry"], **server_kwargs
    )
    await server.start()
    try:
        return await fn(server)
    finally:
        await server.stop()


def _run(env, fn, **server_kwargs):
    return asyncio.run(_with_server(env, fn, **server_kwargs))


class TestRoutes:
    def test_healthz(self):
        env = _env()

        async def go(server):
            return await fetch_json("127.0.0.1", server.port, "/healthz")

        status, body = _run(env, go)
        assert status == 200
        assert body == {"status": "ok", "shards": 2}

    def test_metrics_snapshot_includes_request_counter(self):
        env = _env()

        async def go(server):
            await fetch_json("127.0.0.1", server.port, "/healthz")
            return await fetch_json("127.0.0.1", server.port, "/metrics")

        status, body = _run(env, go)
        assert status == 200
        assert body["counters"]["shard.http.requests"] >= 2

    def test_unknown_route_is_404(self):
        env = _env()

        async def go(server):
            return await fetch_json("127.0.0.1", server.port, "/nope")

        status, body = _run(env, go)
        assert status == 404
        assert "no route" in body["error"]

    def test_wrong_method_is_405(self):
        env = _env()

        async def go(server):
            # GET on the POST-only /search route.
            return await fetch_json("127.0.0.1", server.port, "/search")

        status, _ = _run(env, go)
        assert status == 405

    def test_malformed_body_is_400(self):
        env = _env()

        async def go(server):
            return await fetch_json(
                "127.0.0.1", server.port, "/search", payload={"k": 3}
            )

        status, body = _run(env, go)
        assert status == 400
        assert "bad search request" in body["error"]


class TestSearchParity:
    def test_http_answer_matches_direct_service(self):
        env = _env()
        service = env["service"]
        sampled = env["queries"][0]
        center = sampled.mbr().center()
        x, y = center.x, center.y
        text = " ".join(sampled.keywords)
        k = 4

        async def go(server):
            return await fetch_json(
                "127.0.0.1",
                server.port,
                "/search",
                payload={"x": x, "y": y, "text": text, "k": k},
            )

        status, body = _run(env, go)
        assert status == 200
        # The direct reference must be built from the same JSON inputs:
        # re-tokenized text yields a different vector than the sampled
        # query object, so comparing against that would be a false gate.
        query = service.make_query(x, y, text)
        result, degraded = service.serve(query, k)
        assert body["ids"] == list(result.ids)
        assert body["k"] == k
        assert set(body["degraded"]) == {"shards", "engines"}
        assert body["stats"]["shards_total"] == 2

    def test_unsharded_engine_agrees_through_http(self):
        env = _env()
        service = env["service"]
        sampled = env["queries"][1]
        center = sampled.mbr().center()
        x, y = center.x, center.y
        text = " ".join(sampled.keywords)

        async def go(server):
            return await fetch_json(
                "127.0.0.1",
                server.port,
                "/search",
                payload={"x": x, "y": y, "text": text, "k": 3},
            )

        status, body = _run(env, go)
        assert status == 200
        dataset = env["dataset"]
        measure = make_measure(dataset.config.text_measure)
        engine = env["tree"].snapshot().engine_for(
            env["tree"], measure, dataset.config.alpha, 0.0
        )
        query = service.make_query(x, y, text)
        assert body["ids"] == list(engine.search(query, 3).ids)


class TestShedding:
    def test_exhausted_semaphore_sheds_503(self):
        env = _env()

        async def go(server):
            await server._sem.acquire()  # saturate admission
            try:
                return await fetch_json(
                    "127.0.0.1",
                    server.port,
                    "/search",
                    payload={"x": 1.0, "y": 1.0, "text": "sushi", "k": 2},
                )
            finally:
                server._sem.release()

        shed_before = env["registry"].counter("shard.http.shed").value
        status, body = _run(env, go, max_pending=1)
        assert status == 503
        assert body == {"error": "shed"}
        assert env["registry"].counter("shard.http.shed").value == (
            shed_before + 1
        )


class TestMalformedTransport:
    def test_garbage_request_line_is_400(self):
        env = _env()

        async def go(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"\r\n\r\n")
            await writer.drain()
            status_line = await reader.readline()
            writer.close()
            return int(status_line.split()[1])

        assert _run(env, go) == 400

    def test_non_json_search_body_is_400(self):
        env = _env()

        async def go(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            body = b"this is not json"
            head = (
                b"POST /search HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: %d\r\n\r\n" % len(body)
            )
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            raw = await reader.readexactly(length)
            writer.close()
            return int(status_line.split()[1]), json.loads(raw)

        status, body = _run(env, go)
        assert status == 400
        assert "bad search request" in body["error"]


class TestCliSelfTest:
    def test_serve_http_self_test_passes(self, capsys):
        # The same gate CI runs: build a sharded service, bind an
        # ephemeral port, and require HTTP == direct == unsharded ids.
        rc = cli_main(
            [
                "serve-http",
                "--n",
                "200",
                "--shards",
                "2",
                "--queries",
                "2",
                "--self-test",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out
