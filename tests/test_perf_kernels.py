"""Kernel-equivalence properties: frozen backends match the merge-join.

The frozen kernels (python dict/frozenset form, numpy array form) must
agree with the seed's sorted-tuple merge-join reference to within 1e-12
on every reduction — they replaced it on the hot path, so any drift is a
correctness bug, not a tolerance question.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.perf import kernels
from repro.text.vector import SparseVector

doc = st.dictionaries(
    st.integers(min_value=0, max_value=200),
    st.floats(min_value=1e-3, max_value=10, allow_nan=False),
    max_size=12,
)


# ----------------------------------------------------------------------
# Reference: the seed's sorted-merge reductions over parallel tuples.
# ----------------------------------------------------------------------

def _merge_reference(a: SparseVector, b: SparseVector):
    a_items = list(a.items())
    b_items = list(b.items())
    i = j = 0
    dot = s_min = s_max = 0.0
    overlap = 0
    while i < len(a_items) and j < len(b_items):
        (ai, aw), (bj, bw) = a_items[i], b_items[j]
        if ai == bj:
            dot += aw * bw
            s_min += min(aw, bw)
            s_max += max(aw, bw)
            overlap += 1
            i += 1
            j += 1
        elif ai < bj:
            s_max += aw
            i += 1
        else:
            s_max += bw
            j += 1
    s_max += sum(w for _, w in a_items[i:])
    s_max += sum(w for _, w in b_items[j:])
    return dot, s_min, s_max, overlap


def _assert_matches_reference(a: SparseVector, b: SparseVector):
    ref_dot, ref_min, ref_max, ref_overlap = _merge_reference(a, b)
    ref_ej = (
        ref_dot / (a.norm_squared + b.norm_squared - ref_dot)
        if ref_dot > 0.0
        else 0.0
    )
    assert math.isclose(a.ext_jaccard(b), ref_ej, rel_tol=0, abs_tol=1e-12)
    assert math.isclose(a.dot(b), ref_dot, rel_tol=0, abs_tol=1e-12)
    assert math.isclose(a.sum_min(b), ref_min, rel_tol=0, abs_tol=1e-12)
    assert math.isclose(a.sum_max(b), ref_max, rel_tol=0, abs_tol=1e-12)
    assert a.overlap_count(b) == ref_overlap
    # Symmetry is part of the contract (canonical cache keys rely on it).
    assert math.isclose(a.dot(b), b.dot(a), rel_tol=0, abs_tol=1e-12)
    assert math.isclose(a.sum_min(b), b.sum_min(a), rel_tol=0, abs_tol=1e-12)


@settings(max_examples=150, deadline=None)
@given(doc, doc)
def test_python_kernel_matches_merge_reference(wa, wb):
    with kernels.use_backend("python"):
        _assert_matches_reference(SparseVector(wa), SparseVector(wb))


@pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy backend unavailable"
)
@settings(max_examples=150, deadline=None)
@given(doc, doc)
def test_numpy_kernel_matches_merge_reference(wa, wb):
    with kernels.use_backend("numpy"):
        _assert_matches_reference(SparseVector(wa), SparseVector(wb))


@settings(max_examples=60, deadline=None)
@given(doc, doc)
def test_backends_agree_with_each_other(wa, wb):
    if not kernels.numpy_available():
        pytest.skip("numpy backend unavailable")
    a, b = SparseVector(wa), SparseVector(wb)
    with kernels.use_backend("python"):
        py = (a.dot(b), a.sum_min(b), a.sum_max(b), a.overlap_count(b))
    with kernels.use_backend("numpy"):
        np_ = (a.dot(b), a.sum_min(b), a.sum_max(b), a.overlap_count(b))
    for x, y in zip(py, np_):
        assert math.isclose(x, y, rel_tol=0, abs_tol=1e-12)


def test_frozen_form_precomputes_norm_and_weight_sum():
    v = SparseVector({1: 0.5, 9: 2.0, 70: 1.5})
    with kernels.use_backend("python"):
        fz = v.frozen()
        assert fz.backend == "python"
        assert math.isclose(fz.norm_sq, v.norm_squared)
        assert math.isclose(fz.wsum, 0.5 + 2.0 + 1.5)
        # Signature covers every term's bit.
        for tid in (1, 9, 70):
            assert fz.mask & (1 << (tid & 63))


def test_disjoint_pairs_short_circuit():
    a = SparseVector({0: 1.0, 1: 2.0})
    b = SparseVector({64: 3.0})  # collides with bit 0 in the 64-bit mask
    c = SparseVector({5: 1.0})
    with kernels.use_backend("python"):
        # Mask collision (0 vs 64) must still give the right answer.
        assert a.dot(b) == 0.0
        assert a.sum_min(b) == 0.0
        assert a.overlap_count(b) == 0
        assert math.isclose(a.sum_max(b), 6.0)
        assert a.dot(c) == 0.0


def test_backend_switch_refreezes_lazily():
    if not kernels.numpy_available():
        pytest.skip("numpy backend unavailable")
    v = SparseVector({1: 1.0, 2: 2.0})
    with kernels.use_backend("python"):
        assert v.frozen().backend == "python"
    with kernels.use_backend("numpy"):
        assert v.frozen().backend == "numpy"
    # Restored backend re-freezes back on next use.
    assert kernels.is_current(v.frozen())


def test_set_backend_returns_previous_and_validates():
    previous = kernels.set_backend("python")
    try:
        assert kernels.backend_name() == "python"
        with pytest.raises(ConfigError):
            kernels.set_backend("cython")
        # A failed switch must not clobber the active backend.
        assert kernels.backend_name() == "python"
    finally:
        kernels.set_backend(previous)


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "python")
    monkeypatch.setattr(kernels, "_backend", None)
    assert kernels.backend_name() == "python"


def test_env_var_typo_warns_and_falls_back(monkeypatch):
    monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "cython")
    monkeypatch.setattr(kernels, "_backend", None)
    with pytest.warns(RuntimeWarning, match="not one of"):
        assert kernels.backend_name() == "python"
    # Resolution is cached; no second warning on the next call.
    assert kernels.backend_name() == "python"


def test_numpy_request_degrades_to_python_when_unavailable(monkeypatch):
    # Simulate an environment without numpy regardless of this one.
    monkeypatch.setattr(kernels, "_np", None)
    monkeypatch.setattr(kernels, "_np_checked", True)
    with pytest.warns(RuntimeWarning, match="falling back"):
        assert kernels._resolve("numpy") == "python"
    assert kernels._resolve("auto") == "python"


def test_sparse_vector_pickles_without_frozen_form():
    import pickle

    v = SparseVector({3: 1.5, 8: 0.25})
    v.frozen()  # populate the cached form
    clone = pickle.loads(pickle.dumps(v))
    assert clone == v
    assert clone._frozen is None  # rebuilt lazily under the local backend
    assert math.isclose(clone.dot(v), v.dot(v))


def test_auto_backend_dispatches_by_length():
    if not kernels.numpy_available():
        pytest.skip("numpy backend unavailable")
    cross = kernels.auto_crossover()
    short = SparseVector({t: 1.0 for t in range(4)})
    long = SparseVector({t: 1.0 + (t % 7) * 0.1 for t in range(cross)})
    with kernels.use_backend("auto"):
        assert short.frozen().backend == "python"
        assert long.frozen().backend == "numpy"
        assert kernels.is_current(short.frozen())
        assert kernels.is_current(long.frozen())


def test_auto_crossover_env_override(monkeypatch):
    monkeypatch.setattr(kernels, "_crossover", None)
    monkeypatch.setenv(kernels.CROSSOVER_ENV_VAR, "8")
    assert kernels.auto_crossover() == 8
    monkeypatch.setattr(kernels, "_crossover", None)
    monkeypatch.setenv(kernels.CROSSOVER_ENV_VAR, "zero")
    with pytest.warns(RuntimeWarning, match="not an integer"):
        assert kernels.auto_crossover() == kernels.AUTO_NUMPY_MIN_TERMS
    monkeypatch.setattr(kernels, "_crossover", None)


@given(
    a=st.dictionaries(
        st.integers(min_value=0, max_value=300),
        st.floats(min_value=0.01, max_value=5.0),
        min_size=1,
        max_size=12,
    ),
    b=st.dictionaries(
        st.integers(min_value=0, max_value=300),
        st.floats(min_value=0.01, max_value=5.0),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=60, deadline=None)
def test_mixed_backend_pairs_match_python(a, b):
    if not kernels.numpy_available():
        pytest.skip("numpy backend unavailable")
    va, vb = SparseVector(a), SparseVector(b)
    with kernels.use_backend("python"):
        pa, pb = va.frozen(), vb.frozen()
        expect = (
            pa.dot(pb),
            pa.sum_min(pb),
            pa.sum_max(pb),
            pa.overlap_count(pb),
            pa.ext_jaccard(pb),
        )
    with kernels.use_backend("numpy"):
        vb._frozen = None
        nb = vb.frozen()
    # One python-form operand, one numpy-form — both orders.
    for x, y, swap in ((pa, nb, False), (nb, pa, True)):
        got = (
            x.dot(y),
            x.sum_min(y),
            x.sum_max(y) if not swap else y.sum_max(x),
            x.overlap_count(y),
            x.ext_jaccard(y),
        )
        for g, e in zip(got, expect):
            assert math.isclose(g, e, rel_tol=1e-12, abs_tol=1e-12)
    vb._frozen = None
