"""Stateful property test: the live index tracks a model under any
interleaving of inserts, deletes, and queries.

Hypothesis drives a random sequence of operations against an IUR-tree
while a plain list-of-objects model records ground truth; after every
step the tree's structure invariants hold, and queries answered by the
branch-and-bound searcher must match brute force over the model.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import (
    BruteForceRSTkNN,
    IndexConfig,
    IURTree,
    RSTkNNSearcher,
    SimilarityConfig,
    STDataset,
)
from repro.errors import FaultInjected
from repro.spatial import Point

TERMS = ["alpha", "beta", "gamma", "delta"]

coords = st.floats(min_value=0, max_value=10, allow_nan=False)
texts = st.lists(st.sampled_from(TERMS), min_size=1, max_size=3).map(" ".join)


class IndexMachine(RuleBasedStateMachine):
    @initialize(
        seeds=st.lists(st.tuples(coords, coords, texts), min_size=2, max_size=6)
    )
    def build(self, seeds):
        records = [(Point(x, y), text) for x, y, text in seeds]
        self.dataset = STDataset.from_corpus(
            records, SimilarityConfig(alpha=0.5, weighting="tf")
        )
        self.tree = IURTree.build(
            self.dataset, IndexConfig(max_entries=4, min_entries=2)
        )
        self.searcher = RSTkNNSearcher(self.tree)

    @rule(x=coords, y=coords, text=texts)
    def insert(self, x, y, text):
        obj = self.dataset.append_record(Point(x, y), text)
        self.tree.insert_object(obj)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def delete(self, pick):
        if len(self.dataset) <= 2:
            return
        victim = self.dataset.objects[pick % len(self.dataset)].oid
        assert self.tree.delete_object(victim)

    @rule(x=coords, y=coords, text=texts, k=st.integers(min_value=1, max_value=3))
    def query(self, x, y, text, k):
        query = self.dataset.make_query(Point(x, y), text)
        expected = BruteForceRSTkNN(self.dataset).search(query, k)
        assert self.searcher.search(query, k).ids == expected

    @invariant()
    def structure_holds(self):
        if hasattr(self, "tree"):
            self.tree.check_invariants()
            found = sorted(
                oid
                for oid in (o.oid for o in self.dataset.objects)
                if self._in_tree(oid)
            )
            assert found == sorted(o.oid for o in self.dataset.objects)

    def _in_tree(self, oid):
        root = self.tree.root_entry()
        stack = ([root] if root is not None else []) + self.tree.outlier_entries()
        while stack:
            entry = stack.pop()
            if entry.is_object:
                if entry.ref == oid:
                    return True
            else:
                stack.extend(self.tree.rtree.node(entry.ref).entries)
        return False


IndexMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
TestIndexMachine = IndexMachine.TestCase


class LiveIndexMachine(RuleBasedStateMachine):
    """The LSM live path under any interleaving of writes, queries, and
    folds.

    The searcher runs over a :class:`repro.lsm.LiveIndex` (overlay +
    tombstone-masked frozen tree, merged at query time) with warm kNNL
    floors armed — while the overlay is dirty the engine resolver must
    force the merged seed walk, so stale frozen-side floors (the
    tombstone-masked warm-floor hazard) never touch a live answer.  At
    every query the live ids are byte-compared against a tree freshly
    built from the mutated dataset AND brute force over it.
    """

    @initialize(
        seeds=st.lists(st.tuples(coords, coords, texts), min_size=2, max_size=6)
    )
    def build(self, seeds):
        from repro.lsm import LiveIndex

        records = [(Point(x, y), text) for x, y, text in seeds]
        self.dataset = STDataset.from_corpus(
            records, SimilarityConfig(alpha=0.5, weighting="tf")
        )
        self.config = IndexConfig(max_entries=4, min_entries=2)
        self.live = LiveIndex(
            IURTree.build(self.dataset, self.config), freeze_threshold=10**9
        )
        self.searcher = RSTkNNSearcher(self.live, warm_floors=True)

    @rule(x=coords, y=coords, text=texts)
    def insert(self, x, y, text):
        self.live.insert(Point(x, y), text)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def delete(self, pick):
        if len(self.dataset) <= 2:
            return
        victim = self.dataset.objects[pick % len(self.dataset)].oid
        assert self.live.delete_object(victim)

    @rule()
    def freeze(self):
        was_dirty = self.live.overlay_dirty
        pending = self.live.pending()
        try:
            folded = self.live.freeze_step()
        except FaultInjected:
            # An armed REPRO_FAULTS freeze_fail landed mid-fold: the
            # old generation must keep serving, overlay untouched (the
            # query rule keeps asserting byte-identity afterwards).
            assert self.live.overlay_dirty == was_dirty
            assert self.live.pending() == pending
            return
        assert folded == was_dirty
        assert self.live.pending() == 0
        assert not self.live.overlay_dirty

    @rule(x=coords, y=coords, text=texts, k=st.integers(min_value=1, max_value=3))
    def query(self, x, y, text, k):
        query = self.dataset.make_query(Point(x, y), text)
        expected = BruteForceRSTkNN(self.dataset).search(query, k)
        fresh = RSTkNNSearcher(
            IURTree.build(self.dataset, self.config), engine="seed"
        )
        live_ids = self.searcher.search(query, k).ids
        assert live_ids == fresh.search(query, k).ids
        assert live_ids == expected

    @invariant()
    def pending_matches_overlay_state(self):
        if hasattr(self, "live"):
            assert (self.live.pending() > 0) == self.live.overlay_dirty

    def teardown(self):
        if hasattr(self, "live"):
            self.live.close()


LiveIndexMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
TestLiveIndexMachine = LiveIndexMachine.TestCase
