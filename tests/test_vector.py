"""SparseVector: unit and property-based tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DatasetError, SparseVector

weights_dicts = st.dictionaries(
    st.integers(min_value=0, max_value=50),
    st.floats(min_value=1e-3, max_value=100, allow_nan=False),
    max_size=12,
)


class TestSparseVectorBasics:
    def test_empty(self):
        v = SparseVector.empty()
        assert len(v) == 0
        assert not v
        assert v.norm == 0.0
        assert v.get(3) == 0.0

    def test_rejects_non_positive_weights(self):
        with pytest.raises(DatasetError):
            SparseVector({1: 0.0})
        with pytest.raises(DatasetError):
            SparseVector({1: -2.0})

    def test_rejects_negative_ids(self):
        with pytest.raises(DatasetError):
            SparseVector({-1: 1.0})

    def test_get_binary_search(self):
        v = SparseVector({1: 1.0, 5: 2.0, 9: 3.0})
        assert v.get(1) == 1.0
        assert v.get(5) == 2.0
        assert v.get(9) == 3.0
        assert v.get(0) == 0.0
        assert v.get(6) == 0.0
        assert v.get(10) == 0.0

    def test_contains(self):
        v = SparseVector({2: 1.5})
        assert 2 in v
        assert 3 not in v

    def test_equality_and_hash(self):
        a = SparseVector({1: 1.0, 2: 2.0})
        b = SparseVector({2: 2.0, 1: 1.0})
        assert a == b
        assert hash(a) == hash(b)
        assert a != SparseVector({1: 1.0})

    def test_dot_known_value(self):
        a = SparseVector({1: 2.0, 3: 1.0})
        b = SparseVector({1: 0.5, 2: 9.0})
        assert a.dot(b) == 1.0

    def test_overlap_count(self):
        a = SparseVector({1: 1.0, 2: 1.0, 3: 1.0})
        b = SparseVector({2: 5.0, 3: 5.0, 4: 5.0})
        assert a.overlap_count(b) == 2

    def test_normalized_unit_length(self):
        v = SparseVector({1: 3.0, 2: 4.0}).normalized()
        assert v.norm == pytest.approx(1.0)

    def test_normalized_empty_is_noop(self):
        assert SparseVector.empty().normalized() == SparseVector.empty()

    def test_scaled(self):
        v = SparseVector({1: 2.0}).scaled(2.5)
        assert v.get(1) == 5.0
        with pytest.raises(DatasetError):
            v.scaled(0.0)

    def test_mean(self):
        m = SparseVector.mean([SparseVector({1: 2.0}), SparseVector({1: 4.0, 2: 2.0})])
        assert m.get(1) == 3.0
        assert m.get(2) == 1.0

    def test_mean_empty_iterable(self):
        assert SparseVector.mean([]) == SparseVector.empty()


class TestSparseVectorProperties:
    @given(weights_dicts, weights_dicts)
    @settings(max_examples=150)
    def test_dot_symmetric(self, wa, wb):
        a, b = SparseVector(wa), SparseVector(wb)
        assert a.dot(b) == pytest.approx(b.dot(a))

    @given(weights_dicts)
    @settings(max_examples=150)
    def test_dot_self_is_norm_squared(self, w):
        v = SparseVector(w)
        assert v.dot(v) == pytest.approx(v.norm_squared)

    @given(weights_dicts, weights_dicts)
    @settings(max_examples=150)
    def test_cauchy_schwarz(self, wa, wb):
        a, b = SparseVector(wa), SparseVector(wb)
        assert a.dot(b) <= a.norm * b.norm + 1e-9

    @given(weights_dicts)
    @settings(max_examples=150)
    def test_dot_matches_reference(self, w):
        v = SparseVector(w)
        other = SparseVector({t: 2.0 for t in w})
        expected = sum(2.0 * x for x in w.values())
        assert v.dot(other) == pytest.approx(expected)

    @given(weights_dicts)
    @settings(max_examples=150)
    def test_roundtrip_to_dict(self, w):
        v = SparseVector(w)
        assert SparseVector(v.to_dict()) == v
