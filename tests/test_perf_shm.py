"""Shared-memory snapshot transport: parity, lifecycle, and fallback.

The shm segment is a correctness-critical transport — a worker that
attaches a stale or corrupt segment would silently return wrong results,
and a leaked segment survives the process.  So these tests pin:

* **parity** — attached searchers and shm-parallel batches return
  byte-identical result ids and decision counters to the sequential
  snapshot engine (and the pickle transport);
* **lifecycle** — refcounts track attach/close, ``release`` is
  idempotent, and no segment outlives its batch run (clean runs, crash
  retries via ``REPRO_FAULTS``, and export failures alike);
* **staleness** — a generation bump after export makes ``attach`` with
  the advertised generation fail loudly instead of serving old data;
* **fallback** — when the transport is unavailable the batch degrades
  to pickle with ``fallback_reason`` recorded, warns only on explicit
  ``share="shm"``, and never warns twice per searcher.
"""

import pickle
import warnings

import pytest

from repro.core.rstknn import RSTkNNSearcher
from repro.errors import QueryError, SnapshotSegmentError, StaleSegmentError
from repro.index.iurtree import IURTree
from repro.perf import BatchSearcher
from repro.perf import batch as batch_mod
from repro.perf import shm as shm_mod
from repro.perf.shm import SharedSnapshotSegment, attach, shm_available
from repro.service.faults import FaultPlan, set_plan
from repro.spatial import Point
from repro.workloads import gn_like, sample_queries

# Lifecycle/parity classes need a real segment; the fallback classes
# run everywhere — without numpy they are the tests that matter, since
# they pin the degradation the no-numpy CI leg asserts.
requires_shm = pytest.mark.skipif(
    not shm_available()[0],
    reason=f"shm transport unavailable: {shm_available()[1]}",
)

_TIMING_KEYS = {
    "elapsed_seconds",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
}

_STATE = {}


def _fixture():
    if not _STATE:
        dataset = gn_like(n=150)
        tree = IURTree.build(dataset)
        tree.warm_kernels()
        tree.snapshot().text_matrix()
        queries = sample_queries(dataset, 6, seed=23)
        _STATE.update(dataset=dataset, tree=tree, queries=queries)
    return _STATE


def _decisions(result):
    return {
        k: v
        for k, v in result.stats.as_dict().items()
        if k not in _TIMING_KEYS
    }


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


def _capture_segments(monkeypatch):
    """Record every segment name batch runs create (for leak checks)."""
    names = []
    real_create = SharedSnapshotSegment.create.__func__

    def recording_create(cls, tree, **kwargs):
        seg = real_create(cls, tree, **kwargs)
        names.append(seg.name)
        return seg

    monkeypatch.setattr(
        SharedSnapshotSegment, "create", classmethod(recording_create)
    )
    return names


# ----------------------------------------------------------------------
# Attach parity
# ----------------------------------------------------------------------


@requires_shm
class TestAttachParity:
    def test_attached_searcher_matches_snapshot_engine(self):
        env = _fixture()
        reference = RSTkNNSearcher(env["tree"], engine="snapshot")
        with SharedSnapshotSegment.create(env["tree"]) as seg:
            attached = attach(seg.name, expected_generation=seg.generation)
            try:
                searcher = attached.searcher()
                for k in (1, 3, 5):
                    for query in env["queries"]:
                        a = reference.search(query, k)
                        b = searcher.search(query, k)
                        assert a.ids == b.ids
                        assert _decisions(a) == _decisions(b)
            finally:
                del searcher
                attached.close()

    def test_batch_parity_shm_vs_pickle_vs_sequential(self):
        env = _fixture()
        queries, k = env["queries"], 4
        sequential = BatchSearcher(
            env["tree"], workers=1, engine="snapshot"
        ).run(queries, k)
        for share in ("shm", "pickle"):
            run = BatchSearcher(
                env["tree"], workers=2, engine="snapshot", share=share
            ).run(queries, k)
            assert run.stats.share == share
            assert run.stats.fallback_reason is None
            assert run.id_lists() == sequential.id_lists()
            for a, b in zip(sequential.results, run.results):
                assert _decisions(a) == _decisions(b)

    def test_stats_surface_share_and_rss(self):
        env = _fixture()
        run = BatchSearcher(
            env["tree"], workers=2, engine="snapshot", share="shm"
        ).run(env["queries"], 3)
        stats = run.stats.as_dict()
        assert stats["share"] == "shm"
        # Linux/macOS report worker peak RSS; the field is advisory.
        if run.stats.worker_rss_bytes is not None:
            assert stats["worker_rss_bytes"] > 0


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


@requires_shm
class TestLifecycle:
    def test_refcount_tracks_attach_and_close(self):
        env = _fixture()
        seg = SharedSnapshotSegment.create(env["tree"])
        try:
            assert seg.refcount() == 1
            attached = attach(seg.name)
            assert seg.refcount() == 2
            attached.close()
            assert seg.refcount() == 1
        finally:
            seg.release()
        assert not _segment_exists(seg.name)

    def test_release_is_idempotent(self):
        env = _fixture()
        seg = SharedSnapshotSegment.create(env["tree"])
        seg.release()
        seg.release()
        assert not _segment_exists(seg.name)

    def test_clean_batch_run_leaves_no_segment(self, monkeypatch):
        env = _fixture()
        names = _capture_segments(monkeypatch)
        BatchSearcher(
            env["tree"], workers=2, engine="snapshot", share="shm"
        ).run(env["queries"], 3)
        assert len(names) == 1
        assert not _segment_exists(names[0])

    def test_worker_crash_retry_leaves_no_segment(self, monkeypatch):
        env = _fixture()
        names = _capture_segments(monkeypatch)
        sequential = BatchSearcher(
            env["tree"], workers=1, engine="snapshot"
        ).run(env["queries"], 3)
        set_plan(FaultPlan(worker_crash=frozenset({0})))
        try:
            run = BatchSearcher(
                env["tree"], workers=2, engine="snapshot", share="shm"
            ).run(env["queries"], 3)
        finally:
            set_plan(None, clear=True)
        assert run.stats.retries >= 1
        assert run.id_lists() == sequential.id_lists()
        assert len(names) == 1
        assert not _segment_exists(names[0])

    def test_failed_export_leaves_no_segment(self, monkeypatch):
        env = _fixture()
        names = []
        real_create = SharedSnapshotSegment.create.__func__

        def exploding_create(cls, tree, **kwargs):
            seg = real_create(cls, tree, **kwargs)
            names.append(seg.name)
            seg.release()
            raise OSError("simulated export failure")

        monkeypatch.setattr(
            SharedSnapshotSegment, "create", classmethod(exploding_create)
        )
        run = BatchSearcher(
            env["tree"], workers=2, engine="snapshot", share="auto"
        ).run(env["queries"], 3)
        assert run.stats.share == "pickle"
        assert "shm_unavailable" in run.stats.fallback_reason
        assert "simulated export failure" in run.stats.fallback_reason
        assert not _segment_exists(names[0])


# ----------------------------------------------------------------------
# Staleness / generation checking
# ----------------------------------------------------------------------


@requires_shm
class TestStaleness:
    def test_generation_bump_invalidates_segment(self):
        dataset = gn_like(n=150)
        tree = IURTree.build(dataset)
        seg = SharedSnapshotSegment.create(tree)
        try:
            exported = tree.generation
            obj = dataset.append_record(Point(50.0, 50.0), "sushi wine")
            tree.insert_object(obj)
            assert tree.generation > exported
            with pytest.raises(StaleSegmentError):
                attach(seg.name, expected_generation=tree.generation)
            # The advertised (old) generation still attaches — the
            # parent, not the worker, owns re-export decisions.
            attached = attach(seg.name, expected_generation=exported)
            attached.close()
        finally:
            seg.release()

    def test_attach_rejects_non_segment(self):
        from multiprocessing import shared_memory

        raw = shared_memory.SharedMemory(create=True, size=1024)
        try:
            with pytest.raises(SnapshotSegmentError):
                attach(raw.name)
        finally:
            raw.close()
            raw.unlink()


# ----------------------------------------------------------------------
# Fallback + warning discipline
# ----------------------------------------------------------------------


class TestFallback:
    def test_share_validation(self):
        env = _fixture()
        with pytest.raises(QueryError):
            BatchSearcher(env["tree"], share="carrier-pigeon")

    def test_unavailable_shm_degrades_to_pickle_with_reason(
        self, monkeypatch
    ):
        env = _fixture()
        monkeypatch.setattr(
            shm_mod, "shm_available", lambda: (False, "numpy missing")
        )
        bs = BatchSearcher(
            env["tree"], workers=2, engine="snapshot", share="auto"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # auto mode must stay silent
            run = bs.run(env["queries"], 3)
        assert run.stats.share == "pickle"
        assert run.stats.fallback_reason == "shm_unavailable (numpy missing)"

    def test_explicit_shm_request_warns_once_per_searcher(
        self, monkeypatch
    ):
        env = _fixture()
        monkeypatch.setattr(
            shm_mod, "shm_available", lambda: (False, "numpy missing")
        )
        bs = BatchSearcher(
            env["tree"], workers=2, engine="snapshot", share="shm"
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bs.run(env["queries"], 3)
            bs.run(env["queries"], 3)
        shm_warnings = [
            w for w in caught if "shm transport unavailable" in str(w.message)
        ]
        assert len(shm_warnings) == 1

    def test_auto_mode_records_real_environment_outcome(self):
        """No monkeypatching: whatever this host supports is recorded.

        On a numpy-equipped host this pins the shm happy path; on the
        no-numpy CI leg it pins the genuine degradation with the real
        reason string.
        """
        env = _fixture()
        run = BatchSearcher(
            env["tree"], workers=2, engine="snapshot", share="auto"
        ).run(env["queries"], 3)
        ok, why = shm_available()
        if ok:
            assert run.stats.share == "shm"
            assert run.stats.fallback_reason is None
        else:
            assert run.stats.share == "pickle"
            assert run.stats.fallback_reason == f"shm_unavailable ({why})"

    def test_seed_engine_is_never_shm_eligible(self):
        env = _fixture()
        bs = BatchSearcher(
            env["tree"], workers=2, engine="seed", share="auto"
        )
        run = bs.run(env["queries"], 3)
        assert run.stats.share == "pickle"
        assert "seed" in run.stats.fallback_reason

    def test_poisoned_pickle_cascades_to_sequential(self, monkeypatch):
        env = _fixture()

        def explode(*_a, **_k):
            raise pickle.PicklingError("boom")

        monkeypatch.setattr(batch_mod.pickle, "dumps", explode)
        bs = BatchSearcher(env["tree"], workers=2, engine="snapshot")
        with pytest.warns(RuntimeWarning, match="sequential"):
            run = bs.run(env["queries"], 3)
        assert run.stats.share is None
        reference = [
            RSTkNNSearcher(env["tree"], engine="snapshot").search(q, 3).ids
            for q in env["queries"]
        ]
        assert run.id_lists() == reference


# ----------------------------------------------------------------------
# Frontier batching knob
# ----------------------------------------------------------------------


class TestFrontierBatching:
    def test_lookahead_one_matches_default(self, monkeypatch):
        env = _fixture()
        reference = BatchSearcher(
            env["tree"], workers=1, engine="snapshot"
        ).run(env["queries"], 4)
        monkeypatch.setenv("REPRO_FRONTIER_BATCH", "1")
        # A fresh tree so memoized engines re-read the env knob.
        tree = IURTree.build(env["dataset"])
        run = BatchSearcher(tree, workers=1, engine="snapshot").run(
            env["queries"], 4
        )
        assert run.id_lists() == reference.id_lists()
        for a, b in zip(reference.results, run.results):
            assert _decisions(a) == _decisions(b)
