"""Structural R-tree: construction invariants and spatial queries."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IndexCorruptionError, Point, Rect, SparseVector
from repro.index import Entry, RTree


def object_entry(oid: int, x: float, y: float) -> Entry:
    return Entry.for_object(oid, Rect.from_point(Point(x, y)), SparseVector({oid % 7: 1.0}))


def random_entries(n: int, seed: int):
    rng = random.Random(seed)
    return [
        object_entry(i, rng.uniform(0, 100), rng.uniform(0, 100)) for i in range(n)
    ]


class TestBulkLoad:
    def test_empty(self):
        tree = RTree.bulk_load([])
        assert tree.root_id is None
        assert tree.height() == 0
        assert tree.range_search(Rect(0, 0, 100, 100)) == []

    def test_single_object(self):
        tree = RTree.bulk_load([object_entry(0, 5, 5)])
        assert tree.height() == 1
        assert tree.object_count() == 1

    def test_all_objects_present(self):
        entries = random_entries(137, seed=1)
        tree = RTree.bulk_load(entries, max_entries=8, min_entries=2)
        found = tree.range_search(Rect(0, 0, 100, 100))
        assert found == sorted(e.ref for e in entries)

    def test_invariants_hold(self):
        tree = RTree.bulk_load(random_entries(200, seed=2), max_entries=8, min_entries=2)
        tree.check_invariants(enforce_min_fill=False)

    def test_height_grows_logarithmically(self):
        tree = RTree.bulk_load(random_entries(300, seed=3), max_entries=4, min_entries=2)
        assert 4 <= tree.height() <= 7


class TestInsert:
    def test_incremental_matches_bulk_results(self):
        entries = random_entries(120, seed=4)
        bulk = RTree.bulk_load(entries, max_entries=8, min_entries=2)
        inc = RTree(max_entries=8, min_entries=2)
        for e in entries:
            inc.insert(e)
        probe = Rect(20, 20, 60, 70)
        assert bulk.range_search(probe) == inc.range_search(probe)

    def test_insert_invariants_with_min_fill(self):
        tree = RTree(max_entries=8, min_entries=2)
        for e in random_entries(150, seed=5):
            tree.insert(e)
        tree.check_invariants(enforce_min_fill=True)

    def test_insert_rejects_directory_entry(self):
        tree = RTree(max_entries=4, min_entries=1)
        tree.insert(object_entry(0, 1, 1))
        root_entry = Entry.for_subtree(0, Rect(0, 0, 1, 1), [object_entry(1, 0, 0)])
        with pytest.raises(IndexCorruptionError):
            tree.insert(root_entry)

    def test_duplicate_positions_allowed(self):
        tree = RTree(max_entries=4, min_entries=1)
        for i in range(20):
            tree.insert(object_entry(i, 5.0, 5.0))
        assert len(tree.range_search(Rect(5, 5, 5, 5))) == 20
        tree.check_invariants()


class TestQueries:
    @pytest.fixture(scope="class")
    def tree_and_entries(self):
        entries = random_entries(150, seed=6)
        return RTree.bulk_load(entries, max_entries=8, min_entries=2), entries

    def test_range_matches_brute_force(self, tree_and_entries):
        tree, entries = tree_and_entries
        probe = Rect(10, 30, 55, 80)
        brute = sorted(
            e.ref for e in entries if probe.contains_point(e.mbr.center())
        )
        assert tree.range_search(probe) == brute

    def test_empty_range(self, tree_and_entries):
        tree, _ = tree_and_entries
        assert tree.range_search(Rect(200, 200, 300, 300)) == []

    def test_knn_matches_brute_force(self, tree_and_entries):
        tree, entries = tree_and_entries
        q = Point(42.0, 58.0)
        brute = sorted(
            ((e.mbr.center().distance_to(q), e.ref) for e in entries)
        )[:10]
        result = tree.nearest(q, 10)
        assert [oid for oid, _ in result] == [oid for _, oid in brute]
        for (oid, d), (bd, boid) in zip(result, brute):
            assert d == pytest.approx(bd)

    def test_knn_k_larger_than_n(self):
        tree = RTree.bulk_load(random_entries(5, seed=7))
        assert len(tree.nearest(Point(0, 0), 50)) == 5

    def test_knn_empty_tree(self):
        assert RTree.bulk_load([]).nearest(Point(0, 0), 3) == []


class TestInvariantDetection:
    def test_detects_bad_parent_mbr(self):
        tree = RTree.bulk_load(random_entries(60, seed=8), max_entries=4, min_entries=1)
        root = tree.root
        assert not root.is_leaf
        # Corrupt: shrink the first child entry's MBR to a point.
        bad = root.entries[0]
        child = tree.node(bad.ref)
        corrupt = Entry.for_subtree(bad.ref, Rect(0, 0, 0, 0), child.entries)
        object.__setattr__(corrupt, "mbr", Rect(0, 0, 0, 0))
        root.entries[0] = corrupt
        with pytest.raises(IndexCorruptionError):
            tree.check_invariants(enforce_min_fill=False)


@given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=80))
@settings(max_examples=60, deadline=None)
def test_property_every_point_findable(coords):
    entries = [object_entry(i, x, y) for i, (x, y) in enumerate(coords)]
    tree = RTree.bulk_load(entries, max_entries=4, min_entries=2)
    tree.check_invariants(enforce_min_fill=False)
    for i, (x, y) in enumerate(coords):
        found = tree.range_search(Rect(x, y, x, y))
        assert i in found


@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=60
    ),
    st.tuples(st.floats(0, 100), st.floats(0, 100)),
)
@settings(max_examples=60, deadline=None)
def test_property_nearest_is_truly_nearest(coords, qxy):
    entries = [object_entry(i, x, y) for i, (x, y) in enumerate(coords)]
    tree = RTree.bulk_load(entries, max_entries=4, min_entries=2)
    q = Point(*qxy)
    (oid, dist), = tree.nearest(q, 1)
    best = min(Point(x, y).distance_to(q) for x, y in coords)
    assert dist == pytest.approx(best)
