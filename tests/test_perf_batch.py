"""Batch engine parity: identical results to per-query runs, any mode."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rstknn import RSTkNNSearcher
from repro.errors import QueryError
from repro.index.iurtree import IURTree
from repro.perf import BatchSearcher
from repro.workloads import gn_like, sample_queries

_STATE = {}


def _fixture():
    """Dataset/tree/reference shared by the property tests (built once)."""
    if not _STATE:
        dataset = gn_like(n=120)
        tree = IURTree.build(dataset)
        queries = sample_queries(dataset, 5, seed=17)
        _STATE.update(dataset=dataset, tree=tree, queries=queries)
    return _STATE


def _reference_ids(tree, queries, k):
    return [RSTkNNSearcher(tree).search(q, k).ids for q in queries]


@settings(max_examples=8, deadline=None)
@given(k=st.integers(min_value=1, max_value=6), count=st.integers(1, 5))
def test_sequential_batch_matches_per_query(k, count):
    env = _fixture()
    queries = env["queries"][:count]
    engine = BatchSearcher(env["tree"], workers=1, cache_entries=4096)
    batch = engine.run(queries, k)
    assert batch.id_lists() == _reference_ids(env["tree"], queries, k)
    assert len(batch) == count
    assert batch.stats.workers == 1
    assert batch.stats.queries == count


def test_parallel_batch_matches_per_query():
    env = _fixture()
    queries = env["queries"]
    engine = BatchSearcher(env["tree"], workers=2)
    batch = engine.run(queries, 4)
    assert batch.id_lists() == _reference_ids(env["tree"], queries, 4)
    assert batch.stats.workers == 2
    # Parallel runs keep no shared cache, so no cache stats are claimed.
    assert batch.stats.cache == {}


def test_sequential_cache_warms_across_runs():
    env = _fixture()
    engine = BatchSearcher(env["tree"], workers=1)
    first = engine.run(env["queries"], 3)
    again = engine.run(env["queries"], 3)
    assert again.id_lists() == first.id_lists()
    assert again.stats.cache["hits"] > first.stats.cache["hits"]
    engine.invalidate()
    assert engine.bound_cache.stats().entries == 0


def test_batch_stats_as_dict_flattens_cache_counters():
    env = _fixture()
    engine = BatchSearcher(env["tree"], workers=1)
    stats = engine.run(env["queries"][:2], 3).stats
    flat = stats.as_dict()
    assert flat["queries"] == 2
    assert "cache_hits" in flat and "cache_hit_rate" in flat


def test_rejects_nonpositive_workers():
    env = _fixture()
    with pytest.raises(QueryError):
        BatchSearcher(env["tree"], workers=0)


def test_unpicklable_tree_falls_back_to_sequential(monkeypatch):
    env = _fixture()
    engine = BatchSearcher(env["tree"], workers=4)
    import repro.perf.batch as batch_mod

    def explode(*_a, **_k):
        raise batch_mod.pickle.PicklingError("nope")

    monkeypatch.setattr(batch_mod.pickle, "dumps", explode)
    # The degradation must be loud: a RuntimeWarning at run() and the
    # reason recorded on the stats, not a silent mode switch.
    with pytest.warns(RuntimeWarning, match="fell back to sequential"):
        batch = engine.run(env["queries"][:3], 3)
    assert batch.stats.workers == 1  # degraded, not failed
    assert "PicklingError" in batch.stats.fallback_reason
    assert batch.stats.as_dict()["fallback_reason"] == batch.stats.fallback_reason
    assert batch.id_lists() == _reference_ids(env["tree"], env["queries"][:3], 3)


def test_picklable_run_reports_no_fallback():
    env = _fixture()
    batch = BatchSearcher(env["tree"], workers=1).run(env["queries"][:2], 3)
    assert batch.stats.fallback_reason is None
    assert "fallback_reason" not in batch.stats.as_dict()


def test_fused_mode_matches_per_query():
    env = _fixture()
    queries = env["queries"]
    fused = BatchSearcher(env["tree"], mode="fused", group_size=3)
    batch = fused.run(queries, 4)
    assert batch.id_lists() == _reference_ids(env["tree"], queries, 4)
    stats = batch.stats
    assert stats.mode == "fused"
    assert stats.group_size == 3
    assert stats.groups == 2  # ceil(5 / 3) locality groups
    assert stats.cache == {}  # fused runs bypass the shared bound cache
    flat = stats.as_dict()
    assert flat["mode"] == "fused" and flat["groups"] == 2


def test_fused_mode_rejects_bad_combinations():
    env = _fixture()
    with pytest.raises(QueryError):
        BatchSearcher(env["tree"], mode="fused", workers=2)
    with pytest.raises(QueryError):
        BatchSearcher(env["tree"], mode="fused", engine="seed")
    with pytest.raises(QueryError):
        BatchSearcher(env["tree"], mode="fused", group_size=0)
    with pytest.raises(QueryError):
        BatchSearcher(env["tree"], mode="bogus")


def test_harness_run_batch_queries():
    from repro.bench.harness import run_batch_queries

    env = _fixture()
    run = run_batch_queries(env["tree"], env["queries"][:3], 3)
    assert run.method == "iur-batch"
    assert run.queries == 3
    assert run.extra["queries_per_second"] > 0


def test_harness_run_batch_queries_fused():
    from repro.bench.harness import run_batch_queries

    env = _fixture()
    run = run_batch_queries(
        env["tree"], env["queries"][:4], 3, mode="fused", group_size=2
    )
    assert run.method == "iur-batch-fused2"
    assert run.extra["mode"] == "fused"
    assert run.extra["groups"] == 2


def test_cli_batch_smoke(capsys):
    from repro.cli import main

    assert main(["batch", "--n", "100", "--queries", "2", "--k", "3"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out and "cache hit rate" in out


def test_cli_batch_fused_smoke(capsys):
    from repro.cli import main

    assert (
        main(
            [
                "batch",
                "--n", "100",
                "--queries", "4",
                "--k", "3",
                "--mode", "fused",
                "--group-size", "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "fused" in out and "groups" in out
