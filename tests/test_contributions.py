"""Contribution lists and the weighted k-th-largest selection."""

import pytest

from repro import Point, Rect, SparseVector
from repro.core.contributions import Contribution, ContributionList, _kth_largest
from repro.index import Entry


def make_entry(ref=0):
    return Entry.for_object(ref, Rect.from_point(Point(0, 0)), SparseVector({1: 1.0}))


def contrib(source_ref, lo, hi, count):
    return Contribution((source_ref, False), make_entry(source_ref), lo, hi, count)


class TestKthLargest:
    def test_simple(self):
        assert _kth_largest([(0.9, 1), (0.5, 1), (0.7, 1)], 2) == 0.7

    def test_counts_expand(self):
        assert _kth_largest([(0.9, 3), (0.5, 1)], 3) == 0.9
        assert _kth_largest([(0.9, 3), (0.5, 1)], 4) == 0.5

    def test_insufficient_returns_zero(self):
        assert _kth_largest([(0.9, 2)], 3) == 0.0
        assert _kth_largest([], 1) == 0.0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            _kth_largest([(1.0, 1)], 0)

    def test_exactly_k(self):
        assert _kth_largest([(0.4, 2), (0.8, 2)], 4) == 0.4


class TestContributionList:
    def test_set_and_bounds(self):
        clist = ContributionList()
        clist.set(contrib(1, 0.2, 0.8, 2))
        clist.set(contrib(2, 0.5, 0.6, 1))
        assert clist.total_count() == 3
        assert clist.knn_lower(1) == 0.5
        assert clist.knn_lower(2) == 0.2
        assert clist.knn_upper(1) == 0.8
        assert clist.knn_upper(3) == 0.6

    def test_replace_same_source(self):
        clist = ContributionList()
        clist.set(contrib(1, 0.2, 0.8, 2))
        clist.set(contrib(1, 0.4, 0.6, 2))
        assert clist.total_count() == 2
        assert clist.knn_lower(1) == 0.4

    def test_zero_count_removes(self):
        clist = ContributionList()
        clist.set(contrib(1, 0.2, 0.8, 2))
        clist.set(contrib(1, 0.2, 0.8, 0))
        assert len(clist) == 0

    def test_remove(self):
        clist = ContributionList()
        clist.set(contrib(1, 0.2, 0.8, 2))
        clist.remove((1, False))
        assert (1, False) not in clist
        assert clist.knn_lower(1) == 0.0

    def test_tight_tracking(self):
        clist = ContributionList()
        clist.set(contrib(1, 0.2, 0.8, 2), tight=True)
        assert clist.is_tight((1, False))
        clist.set(contrib(1, 0.3, 0.7, 2))  # loose overwrite
        assert not clist.is_tight((1, False))

    def test_copy_resets_tightness(self):
        clist = ContributionList()
        clist.set(contrib(1, 0.2, 0.8, 2), tight=True)
        heir = clist.copy()
        assert heir.is_tight((1, False)) is False
        assert (1, False) in heir
        # Copies are independent.
        heir.remove((1, False))
        assert (1, False) in clist

    def test_top_by_min_and_max(self):
        clist = ContributionList()
        clist.set(contrib(1, 0.1, 0.9, 1))
        clist.set(contrib(2, 0.5, 0.6, 1))
        clist.set(contrib(3, 0.3, 0.95, 1))
        assert [c.source[0] for c in clist.top_by_min(2)] == [2, 3]
        assert [c.source[0] for c in clist.top_by_max(2)] == [3, 1]

    def test_knn_monotone_in_k(self):
        clist = ContributionList()
        for i, (lo, hi) in enumerate([(0.9, 0.95), (0.5, 0.7), (0.2, 0.4)]):
            clist.set(contrib(i, lo, hi, 2))
        lowers = [clist.knn_lower(k) for k in range(1, 8)]
        assert lowers == sorted(lowers, reverse=True)
        uppers = [clist.knn_upper(k) for k in range(1, 8)]
        assert uppers == sorted(uppers, reverse=True)
