"""Cost model predictions and search explanation traces."""

import pytest

from repro import (
    IURTree,
    QueryError,
    RSTkNNCostModel,
    RSTkNNSearcher,
    SearchTrace,
    estimate_rstknn_io,
)
from repro.workloads import gn_like, sample_queries


@pytest.fixture(scope="module")
def setup():
    dataset = gn_like(n=300, seed=31)
    tree = IURTree.build(dataset)
    queries = sample_queries(dataset, 4, seed=32)
    return dataset, tree, queries


class TestCostModel:
    def test_estimate_within_tree_bounds(self, setup):
        _, tree, queries = setup
        est = estimate_rstknn_io(tree, queries[0], 5)
        assert 0 <= est.node_visits <= est.total_nodes
        assert est.page_ios >= est.node_visits  # node spans >= 1 page
        assert 0.0 <= est.threshold <= 1.0

    def test_estimate_tracks_measured_io(self, setup):
        """The model should be within a small constant factor of truth,
        averaged over a workload (it is a planner estimate, not an oracle)."""
        _, tree, queries = setup
        searcher = RSTkNNSearcher(tree)
        measured, predicted = 0, 0
        for q in queries:
            tree.reset_io(cold=True)
            searcher.search(q, 5)
            measured += tree.io.reads
            predicted += estimate_rstknn_io(tree, q, 5).page_ios
        assert predicted > 0
        ratio = predicted / max(measured, 1)
        assert 0.2 <= ratio <= 5.0, f"estimate off by {ratio:.2f}x"

    def test_threshold_monotone_in_k(self, setup):
        _, tree, _ = setup
        model = RSTkNNCostModel(tree)
        thresholds = [model.estimate_threshold(k) for k in (1, 5, 20)]
        assert thresholds == sorted(thresholds, reverse=True)

    def test_deterministic_in_seed(self, setup):
        _, tree, queries = setup
        a = RSTkNNCostModel(tree, seed=5).estimate(queries[0], 5)
        b = RSTkNNCostModel(tree, seed=5).estimate(queries[0], 5)
        assert a == b

    def test_invalid_params(self, setup):
        _, tree, queries = setup
        with pytest.raises(QueryError):
            RSTkNNCostModel(tree, sample_size=1)
        with pytest.raises(QueryError):
            RSTkNNCostModel(tree).estimate_threshold(0)


class TestSearchTrace:
    def test_trace_matches_stats(self, setup):
        _, tree, queries = setup
        searcher = RSTkNNSearcher(tree)
        trace = SearchTrace()
        result = searcher.search(queries[0], 5, trace=trace)
        counts = trace.counts()
        assert counts.get("expand", 0) == result.stats.expansions
        assert counts.get("prune", 0) == result.stats.pruned_entries
        assert counts.get("accept", 0) == result.stats.accepted_entries
        verify_events = counts.get("verify-in", 0) + counts.get("verify-out", 0)
        assert verify_events == result.stats.verified_objects

    def test_verify_in_events_are_results(self, setup):
        _, tree, queries = setup
        searcher = RSTkNNSearcher(tree)
        trace = SearchTrace()
        result = searcher.search(queries[1], 5, trace=trace)
        for event in trace.events:
            if event.action == "verify-in":
                assert event.ref in result.ids
            if event.action == "verify-out":
                assert event.ref not in result.ids

    def test_bounds_justify_decisions(self, setup):
        _, tree, queries = setup
        searcher = RSTkNNSearcher(tree)
        trace = SearchTrace()
        searcher.search(queries[2], 5, trace=trace)
        for event in trace.events:
            if event.action == "prune":
                assert event.q_hi < event.knn_lower
            elif event.action == "accept":
                assert event.q_lo >= event.knn_upper

    def test_render_and_helpers(self, setup):
        _, tree, queries = setup
        trace = SearchTrace()
        RSTkNNSearcher(tree).search(queries[0], 3, trace=trace)
        text = trace.render(limit=5)
        assert "summary:" in text
        assert "more events" in text or len(trace.events) <= 5
        some_ref = trace.events[0].ref
        assert trace.events_for(some_ref)

    def test_max_events_cap(self, setup):
        _, tree, queries = setup
        trace = SearchTrace(max_events=3)
        RSTkNNSearcher(tree).search(queries[0], 5, trace=trace)
        assert len(trace.events) == 3


class TestSearchRanked:
    def test_ranks_match_brute_force(self, setup):
        from repro import BruteForceRSTkNN, STScorer

        dataset, tree, queries = setup
        searcher = RSTkNNSearcher(tree)
        scorer = STScorer.for_dataset(dataset)
        q = queries[0]
        ranked = searcher.search_ranked(q, 5)
        assert sorted(oid for oid, _, _ in ranked) == BruteForceRSTkNN(
            dataset
        ).search(q, 5)
        for oid, rank, sim in ranked:
            obj = dataset.get(oid)
            q_sim = scorer.score(q, obj)
            stronger = sum(
                1
                for other in dataset.objects
                if other.oid != oid and scorer.score(other, obj) > q_sim
            )
            assert rank == stronger + 1
            assert rank <= 5
            assert sim == pytest.approx(q_sim)

    def test_sorted_by_rank(self, setup):
        _, tree, queries = setup
        ranked = RSTkNNSearcher(tree).search_ranked(queries[1], 5)
        ranks = [r for _, r, _ in ranked]
        assert ranks == sorted(ranks)
