"""Location selection: influence counting and best-site search."""

import pytest

from repro import (
    CIURTree,
    IndexConfig,
    IURTree,
    LocationSelector,
    QueryError,
    RSTkNNSearcher,
)
from repro.data import sample_dataset
from repro.spatial import Point
from repro.workloads import shop_like


@pytest.fixture(scope="module")
def selector_setup():
    dataset = shop_like(n=200, seed=91)
    tree = IURTree.build(dataset)
    selector = LocationSelector(tree, k=3)
    return dataset, tree, selector


class TestInfluence:
    def test_matches_rstknn_search(self, selector_setup):
        dataset, tree, selector = selector_setup
        searcher = RSTkNNSearcher(tree)
        terms = " ".join(dataset.get(0).keywords[:3])
        for point in (Point(20, 20), Point(50, 80), Point(95, 5)):
            influence = selector.influence(point, terms)
            query = dataset.make_query(point, terms)
            assert list(influence.influenced) == searcher.search(query, 3).ids

    def test_count_property(self, selector_setup):
        dataset, _, selector = selector_setup
        result = selector.influence(Point(50, 50), "t0001 t0002")
        assert result.count == len(result.influenced)

    def test_thresholds_match_brute(self, selector_setup):
        from repro import BruteForceRSTkNN

        dataset, _, selector = selector_setup
        brute = BruteForceRSTkNN(dataset)
        for oid in (0, 50, 123):
            assert selector.threshold_of(oid) == pytest.approx(
                brute.kth_neighbor_score(dataset.get(oid), 3)
            )

    def test_works_on_clustered_tree_with_outliers(self):
        dataset = shop_like(n=150, seed=92)
        tree = CIURTree.build(
            dataset, IndexConfig(num_clusters=4, outlier_threshold=0.3)
        )
        selector = LocationSelector(tree, k=2)
        searcher = RSTkNNSearcher(tree)
        point = Point(40, 60)
        terms = " ".join(dataset.get(5).keywords[:2])
        query = dataset.make_query(point, terms)
        assert (
            list(selector.influence(point, terms).influenced)
            == searcher.search(query, 2).ids
        )

    def test_invalid_k(self, selector_setup):
        _, tree, _ = selector_setup
        with pytest.raises(QueryError):
            LocationSelector(tree, k=0)


class TestSelectBest:
    def test_picks_maximum_influence(self, selector_setup):
        dataset, _, selector = selector_setup
        candidates = [Point(10, 10), Point(50, 50), Point(90, 90)]
        terms = " ".join(dataset.get(0).keywords[:3])
        report = selector.select_best(candidates, terms)
        assert report.best.count == max(r.count for r in report.all_results)
        assert len(report.all_results) == 3

    def test_tie_breaks_to_first_candidate(self, selector_setup):
        dataset, _, selector = selector_setup
        point = Point(33, 44)
        report = selector.select_best([point, point], "t0001")
        assert report.best is report.all_results[0]

    def test_empty_candidates_rejected(self, selector_setup):
        _, _, selector = selector_setup
        with pytest.raises(QueryError):
            selector.select_best([], "t0001")

    def test_report_metadata(self, selector_setup):
        dataset, _, selector = selector_setup
        report = selector.select_best([Point(10, 10)], "t0001")
        assert report.search_seconds >= 0.0
        assert report.preprocess_seconds > 0.0
        assert "reads" in report.io

    def test_city_scenario(self):
        """The campus corner beats the harbor for a ramen shop."""
        city = sample_dataset()
        tree = IURTree.build(city)
        selector = LocationSelector(tree, k=2)
        campus, harbor = Point(8.1, 8.1), Point(1.0, 5.5)
        report = selector.select_best(
            [harbor, campus], "ramen noodles japanese quick"
        )
        by_point = {r.location: r.count for r in report.all_results}
        assert by_point[campus] >= by_point[harbor]


class TestSharedPreprocessingIsCheaper:
    def test_candidate_traversal_cheaper_than_full_search(self, selector_setup):
        """One influence count must read fewer pages than one full RSTkNN
        search — the whole point of precomputed thresholds."""
        dataset, tree, selector = selector_setup
        terms = " ".join(dataset.get(7).keywords[:3])
        point = Point(60, 30)
        query = dataset.make_query(point, terms)

        tree.reset_io(cold=True)
        selector.influence(point, terms)
        influence_reads = tree.io.reads

        tree.reset_io(cold=True)
        RSTkNNSearcher(tree).search(query, 3)
        search_reads = tree.io.reads

        assert influence_reads <= search_reads
