"""CSV ingestion and the bundled sample corpus."""

import pytest

from repro import DatasetError, IURTree, RSTkNNSearcher, BruteForceRSTkNN
from repro.data import (
    CsvSchema,
    load_csv_dataset,
    sample_dataset,
    sample_records,
    write_csv,
)
from repro.spatial import Point


def write_file(path, text):
    path.write_text(text)
    return path


class TestCsvSchema:
    def test_defaults(self):
        schema = CsvSchema()
        assert schema.x_column == "x"
        assert schema.text_columns == ("text",)

    def test_requires_text_columns(self):
        with pytest.raises(DatasetError):
            CsvSchema(text_columns=())

    def test_single_char_delimiter(self):
        with pytest.raises(DatasetError):
            CsvSchema(delimiter=",,")


class TestLoadCsv:
    def test_basic_load(self, tmp_path):
        path = write_file(
            tmp_path / "pois.csv",
            "x,y,text\n1.0,2.0,coffee shop\n3.5,4.5,book store\n",
        )
        dataset, report = load_csv_dataset(path)
        assert len(dataset) == 2
        assert report.rows_loaded == 2
        assert report.rows_skipped == 0
        assert dataset.get(0).point == Point(1.0, 2.0)
        assert "coffee" in dataset.get(0).keywords

    def test_custom_schema_and_multiple_text_columns(self, tmp_path):
        path = write_file(
            tmp_path / "pois.tsv",
            "lon\tlat\tname\tcategory\n1\t2\tLuigi\tpizza pasta\n",
        )
        schema = CsvSchema(
            x_column="lon",
            y_column="lat",
            text_columns=("name", "category"),
            delimiter="\t",
        )
        dataset, _ = load_csv_dataset(path, schema)
        kws = dataset.get(0).keywords
        assert "luigi" in kws and "pizza" in kws

    def test_skips_malformed_rows(self, tmp_path):
        path = write_file(
            tmp_path / "dirty.csv",
            "x,y,text\n1,2,ok one\nnot-a-number,2,bad\n3,,missing y\n4,5,\n6,7,ok two\n",
        )
        dataset, report = load_csv_dataset(path)
        assert len(dataset) == 2
        assert report.rows_skipped == 3
        assert len(report.skipped_reasons) == 3

    def test_strict_mode_raises(self, tmp_path):
        path = write_file(tmp_path / "dirty.csv", "x,y,text\nbad,2,hm\n")
        with pytest.raises(DatasetError):
            load_csv_dataset(path, strict=True)

    def test_missing_columns_rejected(self, tmp_path):
        path = write_file(tmp_path / "odd.csv", "a,b\n1,2\n")
        with pytest.raises(DatasetError):
            load_csv_dataset(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_csv_dataset(tmp_path / "absent.csv")

    def test_empty_file_rejected(self, tmp_path):
        path = write_file(tmp_path / "empty.csv", "x,y,text\n")
        with pytest.raises(DatasetError):
            load_csv_dataset(path)

    def test_max_rows(self, tmp_path):
        rows = "\n".join(f"{i},{i},poi number{i}" for i in range(20))
        path = write_file(tmp_path / "many.csv", "x,y,text\n" + rows + "\n")
        dataset, report = load_csv_dataset(path, max_rows=5)
        assert len(dataset) == 5
        assert report.rows_read == 5

    def test_non_finite_coordinates_skipped(self, tmp_path):
        path = write_file(
            tmp_path / "inf.csv", "x,y,text\ninf,1,weird\n1,nan,weird\n1,1,fine\n"
        )
        dataset, report = load_csv_dataset(path)
        assert len(dataset) == 1
        assert report.rows_skipped == 2


class TestWriteCsvRoundtrip:
    def test_roundtrip_locations_and_vocab(self, tmp_path):
        original = sample_dataset()
        path = tmp_path / "out.csv"
        write_csv(original, path)
        loaded, report = load_csv_dataset(path)
        assert report.rows_loaded == len(original)
        for a, b in zip(original.objects, loaded.objects):
            assert a.point == b.point
            assert set(a.keywords) == set(b.keywords)


class TestSampleDataset:
    def test_shape(self):
        dataset = sample_dataset()
        assert len(dataset) == 60
        assert len(sample_records()) == 60
        stats = dataset.stats()
        assert stats["vocabulary"] > 100

    def test_searchable_end_to_end(self):
        dataset = sample_dataset()
        tree = IURTree.build(dataset)
        query = dataset.make_query(Point(1.5, 5.5), "seafood harbor restaurant")
        result = RSTkNNSearcher(tree).search(query, 3)
        assert result.ids == BruteForceRSTkNN(dataset).search(query, 3)
        # Harbor seafood spots must be among the reverse neighbors.
        harbor_seafood = {0, 1, 5}
        assert harbor_seafood & set(result.ids)

    def test_districts_are_spatially_coherent(self):
        dataset = sample_dataset()
        tree = IURTree.build(dataset)
        # The 10 harbor POIs live in the first 10 ids and the west side.
        for oid in range(10):
            assert dataset.get(oid).point.x < 3.0
        assert tree.stats().objects == 60
