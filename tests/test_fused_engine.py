"""Fused batch engine: parity with the snapshot engine, by construction.

The fused group walk must be indistinguishable from running the
per-query snapshot engine over the same workload: identical result ids
and identical decision counters for every query, under every measure,
alpha, ``k``, group size, and index variant — with numpy and without.
These tests pin that contract plus the columnar text matrix's
invalidation rule (a fused run after an insert must never read a stale
matrix) and the locality grouping's partition properties.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CIURTree,
    IURTree,
    RSTkNNSearcher,
    SimilarityConfig,
    STDataset,
)
from repro.config import PerfConfig
from repro.core import fused as fused_mod
from repro.core.fused import locality_order, make_groups
from repro.errors import ConfigError
from repro.perf import kernels
from repro.perf.batch import BatchSearcher
from repro.perf.snapshot import SnapshotTextMatrix
from repro.spatial import Point
from repro.workloads import sample_queries

from tests.conftest import random_corpus
from tests.test_engine_snapshot import _decisions

_STATE = {}


def _env():
    """Shared dataset/trees for the parity sweep (built once)."""
    if not _STATE:
        dataset = STDataset.from_corpus(random_corpus(120, seed=19))
        _STATE.update(
            dataset=dataset,
            iur=IURTree.build(dataset),
            ciur=CIURTree.build(dataset),
            queries=sample_queries(dataset, 6, seed=3),
        )
    return _STATE


def assert_fused_parity(tree, queries, k, group_size, config=None):
    """Fused group runs == per-query snapshot runs, ids and decisions."""
    searcher = RSTkNNSearcher(tree, config, te_weight=0.05, engine="snapshot")
    snap = tree.snapshot()
    engine = snap.fused_engine_for(
        tree, searcher.measure, searcher.alpha, searcher.te_weight
    )
    per = [searcher.search(q, k) for q in queries]
    results = [None] * len(queries)
    for members in make_groups(queries, group_size):
        group = [queries[i] for i in members]
        for i, result in zip(members, engine.run_group(group, k)):
            results[i] = result
    for i, (a, b) in enumerate(zip(per, results)):
        assert b.ids == a.ids, f"query {i}: ids diverged"
        assert _decisions(b) == _decisions(a), f"query {i}: decisions diverged"


class TestFusedParity:
    def test_default_config_across_group_sizes(self):
        env = _env()
        for group_size in (1, 3, 8):
            assert_fused_parity(env["iur"], env["queries"], 5, group_size)

    def test_alpha_edges(self):
        env = _env()
        for alpha in (0.0, 1.0):
            cfg = SimilarityConfig(alpha=alpha)
            assert_fused_parity(env["iur"], env["queries"], 4, 3, cfg)

    def test_non_ejaccard_measure(self):
        env = _env()
        cfg = SimilarityConfig(alpha=0.4, text_measure="cosine")
        assert_fused_parity(env["ciur"], env["queries"], 4, 4, cfg)

    @settings(max_examples=10, deadline=None)
    @given(
        alpha=st.sampled_from([0.0, 0.25, 0.5, 0.8, 1.0]),
        k=st.integers(min_value=1, max_value=7),
        group_size=st.integers(min_value=1, max_value=6),
        variant=st.sampled_from(["iur", "ciur"]),
    )
    def test_parity_property(self, alpha, k, group_size, variant):
        env = _env()
        cfg = SimilarityConfig(alpha=alpha)
        assert_fused_parity(env[variant], env["queries"], k, group_size, cfg)

    def test_pure_python_books_parity(self, monkeypatch):
        # Force the numpy-absent fused structures (_PyBook + python
        # group kernels) on a fresh tree so no memoized numpy-backed
        # fused engine can satisfy the lookup.
        monkeypatch.setattr(fused_mod, "_group_numpy", lambda: None)
        dataset = STDataset.from_corpus(random_corpus(90, seed=23))
        tree = IURTree.build(dataset)
        queries = sample_queries(dataset, 5, seed=7)
        searcher = RSTkNNSearcher(tree, engine="snapshot")
        snap = tree.snapshot()
        engine = snap.fused_engine_for(
            tree, searcher.measure, searcher.alpha, searcher.te_weight
        )
        assert engine._np is None
        assert_fused_parity(tree, queries, 4, 2)


class TestGroupKernels:
    def test_group_text_dots_backends_agree(self):
        env = _env()
        tm = env["iur"].snapshot().text_matrix()
        query = env["queries"][0].vector
        ids, ws = query.term_ids(), tuple(w for _, w in query.items())
        np = kernels._numpy()
        if np is None:
            pytest.skip("numpy unavailable")
        got_np = kernels.group_text_dots(
            tm.int_postings, ids, ws, tm.n_rows, np
        )
        # The python path needs list-backed postings.
        py_postings = {
            tid: (list(rows), list(weights))
            for tid, (rows, weights) in tm.int_postings.items()
        }
        got_py = kernels.group_text_dots(py_postings, ids, ws, tm.n_rows, None)
        assert (got_np is None) == (got_py is None)
        if got_np is not None:
            dots_np, over_np = got_np
            dots_py, over_py = got_py
            assert over_np.tolist() == list(over_py)
            for a, b in zip(dots_np.tolist(), dots_py):
                assert a == pytest.approx(b, abs=1e-12)

    def test_group_spatial_components_backends_agree(self):
        np = kernels._numpy()
        if np is None:
            pytest.skip("numpy unavailable")
        q = ([0.0, 5.0], [1.0, 6.0], [2.0, 7.0], [3.0, 8.0])
        b = ([1.5, 9.0, 3.0], [0.5, 2.0, 7.0], [2.5, 10.0, 4.0], [1.5, 3.0, 9.0])
        got_np = kernels.group_spatial_components(*q, *b, np)
        got_py = kernels.group_spatial_components(*q, *b, None)
        for table_np, table_py in zip(got_np, got_py):
            for row_np, row_py in zip(table_np, table_py):
                assert list(row_np) == list(row_py)


class TestTextMatrix:
    def test_structure_and_memoization(self):
        env = _env()
        snap = env["iur"].snapshot()
        tm = snap.text_matrix()
        assert tm is snap.text_matrix()  # lazy, built once
        assert isinstance(tm, SnapshotTextMatrix)
        assert tm.generation == snap.generation
        assert len(tm.indptr) == snap.n_slots + 1
        assert tm.n_rows == tm.indptr[-1]
        assert tm.n_obj_rows == sum(snap.is_obj)
        # Row spans align with each slot's cluster tuple.
        for slot in range(snap.n_slots):
            span = tm.indptr[slot + 1] - tm.indptr[slot]
            assert span == len(snap.clusters[slot])
        # Object rows carry the exact frozen vectors and norms.
        for slot in range(snap.n_slots):
            row = tm.obj_row[slot]
            if snap.is_obj[slot]:
                assert tm.obj_nsq[row] == snap.obj_vec[slot].norm_squared
            else:
                assert row == -1

    def test_backend_tracks_numpy(self):
        env = _env()
        tm = env["iur"].snapshot().text_matrix()
        expected = "numpy" if kernels._numpy() is not None else "python"
        assert tm.backend == expected

    def test_describe_keys(self):
        env = _env()
        desc = env["iur"].snapshot().text_matrix().describe()
        for key in ("generation", "cluster_rows", "object_rows", "backend"):
            assert key in desc


class TestStalenessAfterInsert:
    def test_fused_run_never_reads_stale_matrix(self):
        dataset = STDataset.from_corpus(random_corpus(80, seed=41))
        tree = IURTree.build(dataset)
        fused = BatchSearcher(tree, mode="fused", group_size=3)
        queries = sample_queries(dataset, 4, seed=5)
        fused.run(queries, 3)  # freezes the pre-insert snapshot + matrix
        before = tree.snapshot()
        matrix_before = before.text_matrix()

        obj = dataset.append_record(Point(42.0, 58.0), "coffee bakery")
        tree.insert_object(obj)

        # The rebuilt snapshot owns a rebuilt matrix — the generation
        # bump invalidates the CSR arrays along with everything else.
        after = tree.snapshot()
        assert after is not before
        matrix_after = after.text_matrix()
        assert matrix_after is not matrix_before
        assert matrix_after.generation > matrix_before.generation
        assert matrix_after.n_obj_rows == matrix_before.n_obj_rows + 1

        # And the post-insert fused run matches the per-query engine
        # (which is itself pinned against the seed walk elsewhere).
        per = BatchSearcher(tree, engine="snapshot")
        assert (
            fused.run(queries, 3).id_lists() == per.run(queries, 3).id_lists()
        )

    def test_fused_run_never_reads_stale_matrix_after_delete(self):
        dataset = STDataset.from_corpus(random_corpus(80, seed=43))
        tree = IURTree.build(dataset)
        fused = BatchSearcher(tree, mode="fused", group_size=3)
        queries = sample_queries(dataset, 4, seed=7)
        fused.run(queries, 3)  # freezes the pre-delete snapshot + matrix
        before = tree.snapshot()
        matrix_before = before.text_matrix()

        victim = dataset.objects[23]
        assert tree.delete_object(victim.oid)

        # A delete bumps the generation exactly like an insert: the
        # rebuilt snapshot owns a rebuilt (one-row-shorter) matrix.
        after = tree.snapshot()
        assert after is not before
        matrix_after = after.text_matrix()
        assert matrix_after is not matrix_before
        assert matrix_after.generation > matrix_before.generation
        assert matrix_after.n_obj_rows == matrix_before.n_obj_rows - 1

        # Post-delete fused runs exclude the victim and match the
        # per-query engine.
        result = fused.run(queries, 3)
        assert all(victim.oid not in ids for ids in result.id_lists())
        per = BatchSearcher(tree, engine="snapshot")
        assert result.id_lists() == per.run(queries, 3).id_lists()


class TestLocalityGrouping:
    def test_order_is_permutation_and_deterministic(self):
        env = _env()
        order = locality_order(env["queries"])
        assert sorted(order) == list(range(len(env["queries"])))
        assert order == locality_order(env["queries"])

    def test_groups_partition_workload(self):
        env = _env()
        for group_size in (1, 2, 5, 100):
            groups = make_groups(env["queries"], group_size)
            flat = [i for members in groups for i in members]
            assert sorted(flat) == list(range(len(env["queries"])))
            assert all(len(members) <= group_size for members in groups)

    def test_empty_workload(self):
        assert locality_order([]) == []
        assert make_groups([], 4) == []


class TestPerfConfigKnobs:
    def test_defaults(self):
        cfg = PerfConfig()
        assert cfg.batch_mode == "per-query"
        assert cfg.fused_group_size == 8

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            PerfConfig(batch_mode="bogus")

    def test_rejects_nonpositive_group_size(self):
        with pytest.raises(ConfigError):
            PerfConfig(fused_group_size=0)
