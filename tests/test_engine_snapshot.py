"""Snapshot traversal engine: structure, parity, and staleness.

The ``snapshot`` engine must be indistinguishable from the seed walk in
everything except speed: identical result sets, identical decision
counters, identical simulated I/O.  These tests pin that contract and
the invalidation rules (structural generation, kernel backend,
pickling) that keep a frozen snapshot honest.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CIURTree,
    IndexConfig,
    IURTree,
    RSTkNNSearcher,
    SimilarityConfig,
    STDataset,
)
from repro.bench.harness import build_tree, run_queries
from repro.config import TEXT_MEASURES
from repro.core.rstknn import ENGINE_CHOICES, ENGINE_ENV_VAR
from repro.core.traversal import SnapshotEngine
from repro.core.explain import SearchTrace
from repro.errors import ConfigError
from repro.perf import BoundCache
from repro.perf.snapshot import IndexSnapshot
from repro.spatial import Point
from repro.workloads import sample_queries

from tests.conftest import random_corpus

#: Decision counters that must match bit-for-bit across engines.
#: (``elapsed_seconds`` is wall time; the ``cache_*`` counters describe
#: each engine's own memo, whose hit pattern legitimately differs.)
_TIMING_KEYS = {"elapsed_seconds", "cache_hits", "cache_misses", "cache_evictions"}


def _decisions(result):
    return {
        key: value
        for key, value in result.stats.as_dict().items()
        if key not in _TIMING_KEYS
    }


def _run(searcher, tree, query, k):
    tree.reset_io(cold=True)
    return searcher.search(query, k)


def assert_parity(tree, queries, k, config=None, te_weight=0.05):
    seed = RSTkNNSearcher(tree, config, te_weight=te_weight, engine="seed")
    snap = RSTkNNSearcher(tree, config, te_weight=te_weight, engine="snapshot")
    for query in queries:
        a = _run(seed, tree, query, k)
        b = _run(snap, tree, query, k)
        assert b.ids == a.ids
        assert _decisions(b) == _decisions(a)
        assert b.io == a.io


class TestSnapshotStructure:
    def test_slot_partition(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        snap = tree.snapshot()
        assert isinstance(snap, IndexSnapshot)
        n_objects = sum(snap.is_obj)
        assert n_objects == len(medium_dataset)
        # Every directory slot owns a non-empty, in-range child span;
        # every object slot owns none.
        for slot in range(snap.n_slots):
            first, last = snap.first_child[slot], snap.last_child[slot]
            if snap.is_obj[slot]:
                assert first == last == 0
            else:
                assert 0 < first < last <= snap.n_slots
                assert snap.cnt[slot] == sum(
                    snap.cnt[c] for c in range(first, last)
                )

    def test_counts_and_describe(self, small_dataset):
        tree = IURTree.build(small_dataset)
        snap = tree.snapshot()
        root = snap.root_slots[0]
        assert snap.cnt[root] + (len(snap.root_slots) - 1) == len(small_dataset)
        info = snap.describe()
        assert info["slots"] == snap.n_slots
        assert info["objects"] == len(small_dataset)
        assert info["columnar_bytes"] == snap.nbytes() > 0

    def test_snapshot_memoized(self, small_dataset):
        tree = IURTree.build(small_dataset)
        assert tree.snapshot() is tree.snapshot()

    def test_generation_invalidates(self, small_dataset):
        ds = STDataset.from_corpus(random_corpus(60, seed=11))
        tree = IURTree.build(ds)
        before = tree.snapshot()
        obj = ds.append_record(Point(50.0, 50.0), "sushi wine")
        tree.insert_object(obj)
        after = tree.snapshot()
        assert after is not before
        assert after.generation > before.generation
        assert sum(after.is_obj) == sum(before.is_obj) + 1

    def test_pickle_drops_cached_snapshot(self, small_dataset):
        tree = IURTree.build(small_dataset)
        tree.snapshot()
        clone = pickle.loads(pickle.dumps(tree))
        assert clone._snapshot_cache is None
        assert clone.snapshot().n_slots == tree.snapshot().n_slots


class TestEngineResolution:
    def test_invalid_engine_rejected(self, small_dataset):
        tree = IURTree.build(small_dataset)
        with pytest.raises(ConfigError):
            RSTkNNSearcher(tree, engine="warp")

    def test_auto_prefers_snapshot(self, small_dataset):
        tree = IURTree.build(small_dataset)
        searcher = RSTkNNSearcher(tree, engine="auto")
        assert searcher._resolve_engine(None) == "snapshot"

    def test_auto_falls_back_for_bound_cache(self, small_dataset):
        tree = IURTree.build(small_dataset)
        searcher = RSTkNNSearcher(tree, bound_cache=BoundCache(64), engine="auto")
        assert searcher._resolve_engine(None) == "seed"

    def test_traced_requests_stay_on_snapshot(self, small_dataset):
        # Since the TraceSink generalization (repro.obs), tracing works
        # on every engine: a trace no longer downgrades the request.
        tree = IURTree.build(small_dataset)
        searcher = RSTkNNSearcher(tree, engine="snapshot")
        trace = SearchTrace()
        assert searcher._resolve_engine(trace) == "snapshot"
        query = sample_queries(small_dataset, 1, seed=1)[0]
        result = searcher.search(query, 3, trace=trace)
        assert trace.events  # the snapshot walk recorded decisions
        assert result.ids == RSTkNNSearcher(tree, engine="seed").search(
            query, 3
        ).ids

    def test_env_var_selects_default(self, small_dataset, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "seed")
        tree = IURTree.build(small_dataset)
        assert RSTkNNSearcher(tree).engine == "seed"

    def test_env_var_typo_warns_and_uses_auto(self, small_dataset, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "snapshto")
        tree = IURTree.build(small_dataset)
        with pytest.warns(RuntimeWarning):
            searcher = RSTkNNSearcher(tree)
        assert searcher.engine == "auto"

    def test_engine_choices_exported(self):
        assert set(ENGINE_CHOICES) == {"seed", "snapshot", "auto", "approx"}


class TestParityAcrossIndexVariants:
    @pytest.mark.parametrize("method", ["iur", "ciur", "ciur-oe-te"])
    def test_methods(self, medium_dataset, method):
        tree = build_tree(medium_dataset, method)
        queries = sample_queries(medium_dataset, 4, seed=13)
        assert_parity(tree, queries, k=4)

    @pytest.mark.parametrize("alpha", [0.0, 0.4, 1.0])
    def test_alphas(self, medium_dataset, alpha):
        tree = build_tree(medium_dataset, "ciur")
        queries = sample_queries(medium_dataset, 3, seed=17)
        assert_parity(tree, queries, k=3, config=SimilarityConfig(alpha=alpha))

    @pytest.mark.parametrize("measure", TEXT_MEASURES)
    def test_measures(self, small_dataset, measure):
        tree = build_tree(small_dataset, "ciur")
        queries = sample_queries(small_dataset, 3, seed=19)
        config = SimilarityConfig(alpha=0.4, text_measure=measure)
        assert_parity(tree, queries, k=3, config=config)

    @pytest.mark.parametrize("k", [1, 7])
    def test_k_values(self, medium_dataset, k):
        tree = build_tree(medium_dataset, "iur")
        queries = sample_queries(medium_dataset, 3, seed=23)
        assert_parity(tree, queries, k=k)

    def test_harness_threads_engine(self, small_dataset):
        tree = build_tree(small_dataset, "iur")
        queries = sample_queries(small_dataset, 3, seed=29)
        a = run_queries(tree, queries, 3, engine="seed")
        b = run_queries(tree, queries, 3, engine="snapshot")
        assert b.mean_result_size == a.mean_result_size
        assert b.mean_reads == a.mean_reads
        assert b.mean_expansions == a.mean_expansions


class TestStalenessAfterUpdates:
    def test_snapshot_engine_sees_inserts(self):
        ds = STDataset.from_corpus(random_corpus(80, seed=31))
        tree = IURTree.build(ds)
        searcher = RSTkNNSearcher(tree, engine="snapshot")
        query = sample_queries(ds, 1, seed=2)[0]
        searcher.search(query, 3)  # freeze the pre-insert snapshot
        obj = ds.append_record(Point(42.0, 58.0), "coffee bakery")
        tree.insert_object(obj)
        assert_parity(tree, sample_queries(ds, 3, seed=3), k=3)

    def test_snapshot_engine_sees_deletes(self):
        ds = STDataset.from_corpus(random_corpus(80, seed=31))
        tree = IURTree.build(ds)
        searcher = RSTkNNSearcher(tree, engine="snapshot")
        query = sample_queries(ds, 1, seed=2)[0]
        searcher.search(query, 3)  # freeze the pre-delete snapshot
        victim = ds.objects[17]
        assert tree.delete_object(victim.oid)
        queries = sample_queries(ds, 3, seed=3)
        for q in queries:
            assert victim.oid not in searcher.search(q, 3).ids
        assert_parity(tree, queries, k=3)

    def test_shared_cache_survives_inserts(self):
        # A shared BoundCache's entries are generation-salted, so bounds
        # computed before an insert can never serve the rebuilt tree.
        ds = STDataset.from_corpus(random_corpus(80, seed=37))
        tree = IURTree.build(ds)
        cache = BoundCache(4096)
        cached = RSTkNNSearcher(tree, bound_cache=cache, engine="seed")
        queries = sample_queries(ds, 3, seed=5)
        for query in queries:
            cached.search(query, 3)
        obj = ds.append_record(Point(61.0, 44.0), "curry noodles salad")
        tree.insert_object(obj)
        fresh = RSTkNNSearcher(tree, engine="seed")
        for query in sample_queries(ds, 3, seed=6):
            assert cached.search(query, 3).ids == fresh.search(query, 3).ids

    def test_shared_cache_survives_deletes(self):
        # Deletes bump the generation exactly like inserts; pre-delete
        # cached bounds must never serve the shrunken tree.
        ds = STDataset.from_corpus(random_corpus(80, seed=37))
        tree = IURTree.build(ds)
        cache = BoundCache(4096)
        cached = RSTkNNSearcher(tree, bound_cache=cache, engine="seed")
        queries = sample_queries(ds, 3, seed=5)
        for query in queries:
            cached.search(query, 3)
        assert tree.delete_object(ds.objects[11].oid)
        fresh = RSTkNNSearcher(tree, engine="seed")
        for query in sample_queries(ds, 3, seed=6):
            assert cached.search(query, 3).ids == fresh.search(query, 3).ids


TERMS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


@st.composite
def corpora(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    records = []
    for _ in range(n):
        x = draw(st.floats(min_value=0, max_value=10, allow_nan=False))
        y = draw(st.floats(min_value=0, max_value=10, allow_nan=False))
        count = draw(st.integers(min_value=0, max_value=4))
        words = [draw(st.sampled_from(TERMS)) for _ in range(count)]
        records.append((Point(x, y), " ".join(words)))
    return records


@given(
    corpora(),
    st.floats(min_value=-2, max_value=12, allow_nan=False),
    st.floats(min_value=-2, max_value=12, allow_nan=False),
    st.integers(min_value=1, max_value=5),
    st.sampled_from([0.0, 0.3, 1.0]),
)
@settings(max_examples=40, deadline=None)
def test_snapshot_engine_matches_seed(records, qx, qy, k, alpha):
    config = SimilarityConfig(alpha=alpha)
    dataset = STDataset.from_corpus(records, config)
    tree = CIURTree.build(
        dataset, IndexConfig(max_entries=4, min_entries=2, num_clusters=3)
    )
    query = dataset.make_query(Point(qx, qy), "alpha gamma")
    seed = RSTkNNSearcher(tree, engine="seed").search(query, k)
    snap = RSTkNNSearcher(tree, engine="snapshot").search(query, k)
    assert snap.ids == seed.ids
    # The columnar walk may never probe more objects than the seed walk.
    assert snap.stats.verified_objects <= seed.stats.verified_objects


def test_snapshot_engine_used_directly(small_dataset):
    tree = IURTree.build(small_dataset)
    searcher = RSTkNNSearcher(tree, engine="snapshot")
    query = sample_queries(small_dataset, 1, seed=9)[0]
    result = searcher.search(query, 3)
    engines = tree.snapshot()._engines
    assert engines and all(
        isinstance(e, SnapshotEngine) for e in engines.values()
    )
    assert result.stats.result_count == len(result.ids)
