"""The DIR/CIR-style 'text-str' construction mode."""

import pytest

from repro import (
    BruteForceRSTkNN,
    CIURTree,
    IndexConfig,
    IURTree,
    QueryError,
    RSTkNNSearcher,
)
from repro.workloads import sample_queries, shop_like


@pytest.fixture(scope="module")
def clustered_dataset():
    return shop_like(n=200, seed=41)


class TestTextStrBuild:
    def test_builds_and_holds_invariants(self, clustered_dataset):
        tree = CIURTree.build(
            clustered_dataset, IndexConfig(num_clusters=6), method="text-str"
        )
        tree.rtree.check_invariants(enforce_min_fill=False)
        assert tree.stats().objects == len(clustered_dataset)

    def test_query_results_identical_to_str(self, clustered_dataset):
        cfg = IndexConfig(num_clusters=6)
        a = CIURTree.build(clustered_dataset, cfg, method="str")
        b = CIURTree.build(clustered_dataset, cfg, method="text-str")
        brute = BruteForceRSTkNN(clustered_dataset)
        for q in sample_queries(clustered_dataset, 3, seed=42):
            expected = brute.search(q, 5)
            assert RSTkNNSearcher(a).search(q, 5).ids == expected
            assert RSTkNNSearcher(b).search(q, 5).ids == expected

    def test_leaves_are_textually_purer(self, clustered_dataset):
        """text-str packs same-cluster objects together: the average
        number of distinct clusters per leaf must not increase."""
        cfg = IndexConfig(num_clusters=6)
        plain = CIURTree.build(clustered_dataset, cfg, method="str")
        textual = CIURTree.build(clustered_dataset, cfg, method="text-str")

        def mean_leaf_clusters(tree):
            leaves = [n for n in tree.rtree.nodes.values() if n.is_leaf]
            total = 0
            for leaf in leaves:
                labels = set()
                for entry in leaf.entries:
                    labels.update(entry.clusters.keys())
                total += len(labels)
            return total / len(leaves)

        assert mean_leaf_clusters(textual) <= mean_leaf_clusters(plain)

    def test_works_for_plain_iur(self, clustered_dataset):
        tree = IURTree.build(clustered_dataset, method="text-str")
        brute = BruteForceRSTkNN(clustered_dataset)
        q = sample_queries(clustered_dataset, 1, seed=43)[0]
        assert RSTkNNSearcher(tree).search(q, 4).ids == brute.search(q, 4)

    def test_supports_updates_afterwards(self, clustered_dataset):
        tree = CIURTree.build(
            clustered_dataset, IndexConfig(num_clusters=6), method="text-str"
        )
        obj = clustered_dataset.append_record(
            clustered_dataset.get(0).point, "t0001 t0002"
        )
        tree.insert_object(obj)
        tree.check_invariants()
        assert tree.delete_object(obj.oid)

    def test_unknown_method_still_rejected(self, clustered_dataset):
        with pytest.raises(QueryError):
            IURTree.build(clustered_dataset, method="zorder")
