"""Member-query variant plus extra property tests for the query suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BruteForceRSTkNN,
    IndexConfig,
    IURTree,
    LocationSelector,
    RSTkNNSearcher,
    SimilarityConfig,
    STDataset,
    STScorer,
    TopKSearcher,
)
from repro.core.spatial_keyword import SpatialKeywordSearcher
from repro.spatial import Point, Rect

TERMS = ["alpha", "beta", "gamma", "delta"]

coords = st.floats(min_value=0, max_value=10, allow_nan=False)
texts = st.lists(st.sampled_from(TERMS), min_size=1, max_size=3).map(" ".join)
corpora = st.lists(
    st.tuples(coords, coords, texts), min_size=3, max_size=20
)


def build(records):
    dataset = STDataset.from_corpus(
        [(Point(x, y), t) for x, y, t in records],
        SimilarityConfig(alpha=0.5, weighting="tf"),
    )
    tree = IURTree.build(dataset, IndexConfig(max_entries=4, min_entries=2))
    return dataset, tree


class TestSearchForMember:
    def test_excludes_self_and_matches_brute(self):
        from repro.workloads import shop_like

        dataset = shop_like(n=120, seed=95)
        tree = IURTree.build(dataset)
        searcher = RSTkNNSearcher(tree)
        scorer = STScorer.for_dataset(dataset)
        for oid in (3, 57, 111):
            result = searcher.search_for_member(oid, 3)
            assert oid not in result.ids
            member = dataset.get(oid)
            # Oracle: o is a reverse neighbor iff < 3 objects of D\{o}
            # are strictly more similar to o than the member is.
            expected = []
            for o in dataset.objects:
                if o.oid == oid:
                    continue
                m_sim = scorer.score(member, o)
                stronger = sum(
                    1
                    for other in dataset.objects
                    if other.oid != o.oid and scorer.score(other, o) > m_sim
                )
                if stronger <= 2:
                    expected.append(o.oid)
            assert result.ids == sorted(expected)

    def test_result_count_updated(self):
        from repro.workloads import shop_like

        dataset = shop_like(n=60, seed=96)
        tree = IURTree.build(dataset)
        result = RSTkNNSearcher(tree).search_for_member(0, 2)
        assert result.stats.result_count == len(result.ids)


class TestTopKProperty:
    @given(corpora, st.tuples(coords, coords, texts), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_topk_matches_brute(self, records, qspec, k):
        dataset, tree = build(records)
        qx, qy, qtext = qspec
        query = dataset.make_query(Point(qx, qy), qtext)
        mine = TopKSearcher(tree).top_k(query, k)
        theirs = BruteForceRSTkNN(dataset).top_k(query, k)
        assert [o for o, _ in mine] == [o for o, _ in theirs]


class TestSpatialKeywordProperty:
    @given(
        corpora,
        st.tuples(coords, coords, coords, coords),
        st.lists(st.sampled_from(TERMS), min_size=1, max_size=2, unique=True),
    )
    @settings(max_examples=40, deadline=None)
    def test_boolean_range_matches_brute(self, records, box, terms):
        dataset, tree = build(records)
        x1, x2 = sorted(box[:2])
        y1, y2 = sorted(box[2:])
        region = Rect(x1, y1, x2, y2)
        term_ids = [dataset.vocabulary.id_of(t) for t in terms]
        expected = sorted(
            o.oid
            for o in dataset.objects
            if region.contains_point(o.point)
            and all(tid is not None and tid in o.vector for tid in term_ids)
        )
        got = SpatialKeywordSearcher(tree).boolean_range(region, terms)
        assert got == expected


class TestInfluenceProperty:
    @given(corpora, st.tuples(coords, coords, texts), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_influence_equals_reverse_search(self, records, qspec, k):
        dataset, tree = build(records)
        selector = LocationSelector(tree, k)
        qx, qy, qtext = qspec
        influence = selector.influence(Point(qx, qy), qtext)
        query = dataset.make_query(Point(qx, qy), qtext)
        assert list(influence.influenced) == RSTkNNSearcher(tree).search(
            query, k
        ).ids


class TestRankedProperty:
    @given(corpora, st.tuples(coords, coords, texts))
    @settings(max_examples=25, deadline=None)
    def test_ranked_ids_equal_plain_search(self, records, qspec):
        dataset, tree = build(records)
        qx, qy, qtext = qspec
        query = dataset.make_query(Point(qx, qy), qtext)
        searcher = RSTkNNSearcher(tree)
        ranked = searcher.search_ranked(query, 3)
        assert sorted(oid for oid, _, _ in ranked) == searcher.search(query, 3).ids
        for _, rank, _ in ranked:
            assert 1 <= rank <= 3
