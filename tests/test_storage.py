"""Pages, the simulated disk, and I/O accounting."""

import pytest

from repro import PageFormatError, StorageError
from repro.storage import DiskManager, IOStats, Page


class TestIOStats:
    def test_counters(self):
        io = IOStats()
        io.record_read(3, tag="node")
        io.record_read(1)
        io.record_write(2)
        io.record_hit(4)
        assert io.reads == 4
        assert io.writes == 2
        assert io.buffer_hits == 4
        assert io.by_tag == {"node": 3}

    def test_reset(self):
        io = IOStats()
        io.record_read(5, tag="x")
        io.reset()
        assert io.reads == 0
        assert io.by_tag == {}

    def test_snapshot(self):
        io = IOStats()
        io.record_read(2, tag="verify")
        snap = io.snapshot()
        assert snap["reads"] == 2
        assert snap["reads.verify"] == 2
        io.record_read(1)
        assert snap["reads"] == 2  # snapshot is a copy


class TestPage:
    def test_payload_fits(self):
        p = Page(0, capacity=16)
        p.write(b"x" * 16)
        assert p.dirty
        assert p.free_space == 0

    def test_payload_overflow_rejected(self):
        p = Page(0, capacity=16)
        with pytest.raises(StorageError):
            p.write(b"x" * 17)
        with pytest.raises(StorageError):
            Page(0, capacity=4, data=b"12345")

    def test_negative_page_id_rejected(self):
        with pytest.raises(StorageError):
            Page(-1)


class TestDiskManager:
    def test_allocate_and_read(self):
        disk = DiskManager(page_size=64)
        rid = disk.allocate(b"hello")
        assert disk.read(rid) == b"hello"
        assert disk.stats.reads == 1
        assert disk.stats.writes == 1

    def test_multi_page_record_charges_span(self):
        disk = DiskManager(page_size=64)
        rid = disk.allocate(b"x" * 200)  # 4 pages
        assert disk.record_pages(rid) == 4
        disk.stats.reset()
        disk.read(rid)
        assert disk.stats.reads == 4

    def test_empty_record_occupies_one_page(self):
        disk = DiskManager(page_size=64)
        rid = disk.allocate(b"")
        assert disk.record_pages(rid) == 1

    def test_unknown_record_rejected(self):
        disk = DiskManager(page_size=64)
        with pytest.raises(StorageError):
            disk.read(99)
        with pytest.raises(StorageError):
            disk.record_pages(99)
        with pytest.raises(StorageError):
            disk.rewrite(99, b"")

    def test_rewrite_changes_span(self):
        disk = DiskManager(page_size=64)
        rid = disk.allocate(b"a")
        disk.rewrite(rid, b"b" * 130)
        assert disk.record_pages(rid) == 3
        assert disk.read(rid) == b"b" * 130

    def test_footprint_accounting(self):
        disk = DiskManager(page_size=64)
        disk.allocate(b"a" * 64)
        disk.allocate(b"b" * 65)
        assert disk.record_count == 2
        assert disk.total_pages == 3
        assert disk.total_bytes == 129
        assert disk.record_ids() == [0, 1]

    def test_read_tags_flow_to_stats(self):
        disk = DiskManager(page_size=64)
        rid = disk.allocate(b"x")
        disk.read(rid, tag="topk")
        assert disk.stats.by_tag["topk"] == 1

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StorageError):
            DiskManager(page_size=32)
