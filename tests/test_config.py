"""Configuration objects: validation and introspection."""

import pytest

from repro import ConfigError, IndexConfig, ReproConfig, SimilarityConfig


class TestSimilarityConfig:
    def test_defaults_are_valid(self):
        cfg = SimilarityConfig()
        assert cfg.alpha == 0.5
        assert cfg.text_measure == "extended_jaccard"
        assert cfg.weighting == "tfidf"

    @pytest.mark.parametrize("alpha", [-0.1, 1.1, 2.0])
    def test_alpha_out_of_range(self, alpha):
        with pytest.raises(ConfigError):
            SimilarityConfig(alpha=alpha)

    @pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0])
    def test_alpha_boundaries_allowed(self, alpha):
        assert SimilarityConfig(alpha=alpha).alpha == alpha

    def test_unknown_measure_rejected(self):
        with pytest.raises(ConfigError):
            SimilarityConfig(text_measure="levenshtein")

    def test_unknown_weighting_rejected(self):
        with pytest.raises(ConfigError):
            SimilarityConfig(weighting="bm25x")

    def test_lm_lambda_validated(self):
        with pytest.raises(ConfigError):
            SimilarityConfig(lm_lambda=1.5)

    def test_with_alpha_returns_new_config(self):
        base = SimilarityConfig(alpha=0.5)
        other = base.with_alpha(0.9)
        assert other.alpha == 0.9
        assert base.alpha == 0.5
        assert other.text_measure == base.text_measure


class TestIndexConfig:
    def test_defaults_are_valid(self):
        cfg = IndexConfig()
        assert cfg.max_entries >= 2 * cfg.min_entries

    def test_min_entries_must_fit(self):
        with pytest.raises(ConfigError):
            IndexConfig(max_entries=8, min_entries=5)

    def test_max_entries_floor(self):
        with pytest.raises(ConfigError):
            IndexConfig(max_entries=1)

    def test_page_size_floor(self):
        with pytest.raises(ConfigError):
            IndexConfig(page_size=10)

    def test_buffer_pages_floor(self):
        with pytest.raises(ConfigError):
            IndexConfig(buffer_pages=0)

    def test_num_clusters_floor(self):
        with pytest.raises(ConfigError):
            IndexConfig(num_clusters=0)

    def test_outlier_threshold_range(self):
        with pytest.raises(ConfigError):
            IndexConfig(outlier_threshold=1.5)
        assert IndexConfig(outlier_threshold=0.5).outlier_threshold == 0.5
        assert IndexConfig(outlier_threshold=None).outlier_threshold is None


class TestReproConfig:
    def test_describe_flattens_all_knobs(self):
        desc = ReproConfig().describe()
        assert desc["sim.alpha"] == 0.5
        assert desc["idx.page_size"] == 4096
        assert any(key.startswith("sim.") for key in desc)
        assert any(key.startswith("idx.") for key in desc)
