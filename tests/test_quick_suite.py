"""The quick suite and its CLI subcommand."""

import pytest

from repro.bench.quick import environment_summary, run_quick_suite
from repro.cli import main


class TestQuickSuite:
    def test_rows_per_method(self):
        headers, rows = run_quick_suite(n=150, k=3, num_queries=2)
        assert headers[0] == "method"
        assert [row[0] for row in rows] == [
            "base",
            "iur",
            "ciur",
            "ciur-oe",
            "ciur-te",
            "ciur-oe-te",
        ]
        for row in rows:
            assert len(row) == len(headers)
            assert float(row[3]) > 0  # ms/query
            assert float(row[4]) > 0  # I/O reads

    def test_no_base(self):
        _, rows = run_quick_suite(n=120, k=2, num_queries=1, include_base=False)
        assert all(row[0] != "base" for row in rows)

    def test_deterministic_result_sizes(self):
        _, rows_a = run_quick_suite(n=150, k=3, num_queries=2, seed=7)
        _, rows_b = run_quick_suite(n=150, k=3, num_queries=2, seed=7)
        assert [r[5] for r in rows_a] == [r[5] for r in rows_b]

    def test_environment_summary(self):
        lines = environment_summary()
        assert any("python" in line for line in lines)


class TestBenchCommand:
    def test_cli_bench(self, capsys):
        assert main(["bench", "--n", "120", "--no-base"]) == 0
        out = capsys.readouterr().out
        assert "quick suite" in out
        assert "iur" in out
        assert "base" not in out.splitlines()[-7:][0] or True
