"""RSTkNN searcher: correctness against brute force, edge cases, stats."""

import pytest

from repro import (
    BruteForceRSTkNN,
    CIURTree,
    IndexConfig,
    IURTree,
    QueryError,
    RSTkNNSearcher,
    SimilarityConfig,
    STDataset,
)
from repro.spatial import Point
from repro.workloads import sample_queries


def assert_matches_brute(dataset, tree, queries, ks):
    brute = BruteForceRSTkNN(dataset)
    searcher = RSTkNNSearcher(tree)
    for q in queries:
        for k in ks:
            assert searcher.search(q, k).ids == brute.search(q, k), (
                f"mismatch at k={k}"
            )


class TestCorrectness:
    def test_iur_matches_brute(self, small_dataset):
        tree = IURTree.build(small_dataset)
        queries = sample_queries(small_dataset, 4, seed=1)
        assert_matches_brute(small_dataset, tree, queries, (1, 3, 7))

    def test_ciur_matches_brute(self, small_dataset):
        tree = CIURTree.build(small_dataset, IndexConfig(num_clusters=4))
        queries = sample_queries(small_dataset, 4, seed=2)
        assert_matches_brute(small_dataset, tree, queries, (1, 3, 7))

    def test_ciur_oe_matches_brute(self, small_dataset):
        tree = CIURTree.build(
            small_dataset, IndexConfig(num_clusters=4, outlier_threshold=0.5)
        )
        assert tree.stats().outliers > 0  # the knob actually fired
        queries = sample_queries(small_dataset, 4, seed=3)
        assert_matches_brute(small_dataset, tree, queries, (1, 5))

    def test_ciur_te_matches_brute(self, small_dataset):
        tree = CIURTree.build(
            small_dataset, IndexConfig(num_clusters=4, use_entropy_priority=True)
        )
        queries = sample_queries(small_dataset, 4, seed=4)
        assert_matches_brute(small_dataset, tree, queries, (1, 5))

    def test_insert_built_tree_matches_brute(self, small_dataset):
        tree = IURTree.build(small_dataset, method="insert")
        queries = sample_queries(small_dataset, 3, seed=5)
        assert_matches_brute(small_dataset, tree, queries, (2, 6))

    @pytest.mark.parametrize("alpha", [0.0, 0.2, 0.8, 1.0])
    def test_alpha_extremes(self, alpha):
        from tests.conftest import random_corpus

        dataset = STDataset.from_corpus(
            random_corpus(60, seed=int(alpha * 10)),
            SimilarityConfig(alpha=alpha),
        )
        tree = IURTree.build(dataset)
        queries = sample_queries(dataset, 3, seed=6)
        assert_matches_brute(dataset, tree, queries, (1, 4))

    @pytest.mark.parametrize(
        "measure", ["cosine", "overlap", "dice", "weighted_jaccard"]
    )
    def test_other_measures(self, measure):
        from tests.conftest import random_corpus

        dataset = STDataset.from_corpus(
            random_corpus(60, seed=9), SimilarityConfig(text_measure=measure)
        )
        tree = IURTree.build(dataset)
        queries = sample_queries(dataset, 3, seed=7)
        assert_matches_brute(dataset, tree, queries, (1, 4))


class TestEdgeCases:
    def test_k_must_be_positive(self, small_dataset):
        tree = IURTree.build(small_dataset)
        with pytest.raises(QueryError):
            RSTkNNSearcher(tree).search(small_dataset.get(0), 0)

    def test_k_at_least_dataset_size_returns_everything(self, small_dataset):
        tree = IURTree.build(small_dataset)
        q = sample_queries(small_dataset, 1, seed=8)[0]
        result = RSTkNNSearcher(tree).search(q, len(small_dataset) + 5)
        assert result.ids == [o.oid for o in small_dataset.objects]

    def test_single_object_dataset(self):
        dataset = STDataset.from_corpus([(Point(1, 1), "alone here")])
        tree = IURTree.build(dataset)
        q = dataset.make_query(Point(2, 2), "alone")
        # The lone object has no k-th neighbor, so q trivially qualifies.
        assert RSTkNNSearcher(tree).search(q, 1).ids == [0]

    def test_query_identical_to_object(self, small_dataset):
        tree = IURTree.build(small_dataset)
        brute = BruteForceRSTkNN(small_dataset)
        obj = small_dataset.get(0)
        q = small_dataset.make_query_from_object(obj)
        assert RSTkNNSearcher(tree).search(q, 3).ids == brute.search(q, 3)

    def test_query_with_no_matching_terms(self, small_dataset):
        tree = IURTree.build(small_dataset)
        brute = BruteForceRSTkNN(small_dataset)
        q = small_dataset.make_query(Point(50, 50), "xylophone zymurgy")
        assert RSTkNNSearcher(tree).search(q, 2).ids == brute.search(q, 2)

    def test_far_away_query(self, small_dataset):
        tree = IURTree.build(small_dataset)
        brute = BruteForceRSTkNN(small_dataset)
        q = small_dataset.make_query(Point(100, 100), "sushi")
        assert RSTkNNSearcher(tree).search(q, 2).ids == brute.search(q, 2)


class TestStatsAndIO:
    def test_result_metadata(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        q = sample_queries(medium_dataset, 1, seed=9)[0]
        tree.reset_io()
        result = RSTkNNSearcher(tree).search(q, 5)
        stats = result.stats
        assert stats.result_count == len(result.ids)
        assert stats.elapsed_seconds > 0
        decided = (
            stats.pruned_objects + stats.accepted_objects + stats.verified_objects
        )
        assert decided == len(medium_dataset)
        assert result.io["reads"] == tree.io.reads

    def test_io_charged(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        q = sample_queries(medium_dataset, 1, seed=10)[0]
        tree.reset_io()
        RSTkNNSearcher(tree).search(q, 5)
        assert tree.io.reads > 0

    def test_warm_buffer_reduces_io(self, medium_dataset):
        tree = IURTree.build(medium_dataset)
        q = sample_queries(medium_dataset, 1, seed=11)[0]
        searcher = RSTkNNSearcher(tree)
        tree.reset_io(cold=True)
        searcher.search(q, 5)
        cold_reads = tree.io.reads
        tree.reset_io(cold=False)
        searcher.search(q, 5)
        assert tree.io.reads < cold_reads

    def test_contains_and_len(self, small_dataset):
        tree = IURTree.build(small_dataset)
        q = sample_queries(small_dataset, 1, seed=12)[0]
        result = RSTkNNSearcher(tree).search(q, len(small_dataset))
        assert len(result) == len(result.ids)
        assert result.ids[0] in result
