"""Property-based bichromatic test: group search == oracle on random
user/object populations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BichromaticRSTkNN,
    IndexConfig,
    IURTree,
    SimilarityConfig,
    STDataset,
    STScorer,
)
from repro.spatial import Point

TERMS = ["alpha", "beta", "gamma", "delta"]

coords = st.floats(min_value=0, max_value=10, allow_nan=False)
texts = st.lists(st.sampled_from(TERMS), min_size=1, max_size=3).map(" ".join)
object_sets = st.lists(st.tuples(coords, coords, texts), min_size=2, max_size=14)
user_sets = st.lists(st.tuples(coords, coords, texts), min_size=1, max_size=10)


def oracle(objects: STDataset, users: STDataset, query, k: int):
    scorer = STScorer.for_dataset(objects)
    out = []
    for user in users.objects:
        q_sim = scorer.score(query, user)
        stronger = sum(
            1 for obj in objects.objects if scorer.score(obj, user) > q_sim
        )
        if stronger <= k - 1:
            out.append(user.oid)
    return out


@given(
    object_sets,
    user_sets,
    st.tuples(coords, coords, texts),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_bichromatic_matches_oracle(object_records, user_records, qspec, k):
    objects = STDataset.from_corpus(
        [(Point(x, y), t) for x, y, t in object_records],
        SimilarityConfig(alpha=0.5, weighting="tf"),
    )
    users = objects.derive(
        [(Point(x, y), t) for x, y, t in user_records]
    )
    engine = BichromaticRSTkNN(
        IURTree.build(users, IndexConfig(max_entries=4, min_entries=2)),
        IURTree.build(objects, IndexConfig(max_entries=4, min_entries=2)),
    )
    qx, qy, qtext = qspec
    query = objects.make_query(Point(qx, qy), qtext)
    expected = oracle(objects, users, query, k)
    assert engine.search(query, k).user_ids == expected
    assert engine.search_per_user(query, k) == expected
