"""Exact text similarity values and basic measure algebra."""

import pytest

from repro import ConfigError, SparseVector, make_measure
from repro.text.similarity import (
    CosineMeasure,
    DiceMeasure,
    ExtendedJaccard,
    OverlapMeasure,
    WeightedJaccard,
)


class TestExtendedJaccard:
    m = ExtendedJaccard()

    def test_identical_vectors_score_one(self):
        v = SparseVector({1: 2.0, 2: 1.0})
        assert self.m.similarity(v, v) == pytest.approx(1.0)

    def test_disjoint_vectors_score_zero(self):
        assert self.m.similarity(SparseVector({1: 1.0}), SparseVector({2: 1.0})) == 0.0

    def test_empty_vs_anything_is_zero(self):
        assert self.m.similarity(SparseVector.empty(), SparseVector({1: 1.0})) == 0.0
        assert self.m.similarity(SparseVector.empty(), SparseVector.empty()) == 0.0

    def test_known_value(self):
        a = SparseVector({1: 1.0})
        b = SparseVector({1: 1.0, 2: 1.0})
        # dot=1, |a|^2=1, |b|^2=2 -> 1/(3-1)=0.5
        assert self.m.similarity(a, b) == pytest.approx(0.5)

    def test_symmetric(self):
        a = SparseVector({1: 2.0, 3: 0.5})
        b = SparseVector({1: 1.0, 2: 4.0})
        assert self.m.similarity(a, b) == self.m.similarity(b, a)

    def test_range(self):
        a = SparseVector({1: 5.0, 2: 0.1})
        b = SparseVector({1: 0.2, 2: 9.0})
        assert 0.0 <= self.m.similarity(a, b) <= 1.0


class TestCosine:
    m = CosineMeasure()

    def test_identical_direction_scores_one(self):
        a = SparseVector({1: 1.0, 2: 2.0})
        b = SparseVector({1: 2.0, 2: 4.0})
        assert self.m.similarity(a, b) == pytest.approx(1.0)

    def test_orthogonal_scores_zero(self):
        assert self.m.similarity(SparseVector({1: 1.0}), SparseVector({2: 1.0})) == 0.0

    def test_known_value(self):
        a = SparseVector({1: 1.0})
        b = SparseVector({1: 1.0, 2: 1.0})
        assert self.m.similarity(a, b) == pytest.approx(1.0 / (2**0.5))


class TestOverlap:
    m = OverlapMeasure()

    def test_set_jaccard(self):
        a = SparseVector({1: 9.0, 2: 1.0})
        b = SparseVector({2: 2.0, 3: 2.0})
        assert self.m.similarity(a, b) == pytest.approx(1 / 3)

    def test_weights_ignored(self):
        a1 = SparseVector({1: 1.0, 2: 1.0})
        a2 = SparseVector({1: 100.0, 2: 0.5})
        b = SparseVector({2: 2.0})
        assert self.m.similarity(a1, b) == self.m.similarity(a2, b)

    def test_identical_sets_score_one(self):
        a = SparseVector({1: 1.0, 2: 2.0})
        b = SparseVector({1: 5.0, 2: 0.1})
        assert self.m.similarity(a, b) == 1.0


class TestDice:
    m = DiceMeasure()

    def test_identical_vectors_score_one(self):
        v = SparseVector({1: 2.0, 2: 1.0})
        assert self.m.similarity(v, v) == pytest.approx(1.0)

    def test_known_value(self):
        a = SparseVector({1: 1.0})
        b = SparseVector({1: 1.0, 2: 1.0})
        # 2*1 / (1 + 2) = 2/3
        assert self.m.similarity(a, b) == pytest.approx(2 / 3)

    def test_dice_dominates_extended_jaccard(self):
        """Dice >= EJ always (2d/S vs d/(S-d) with S >= 2d)."""
        ej = ExtendedJaccard()
        a = SparseVector({1: 2.0, 3: 0.5})
        b = SparseVector({1: 1.0, 2: 4.0})
        assert self.m.similarity(a, b) >= ej.similarity(a, b)

    def test_disjoint_is_zero(self):
        assert self.m.similarity(SparseVector({1: 1.0}), SparseVector({2: 1.0})) == 0.0


class TestWeightedJaccard:
    m = WeightedJaccard()

    def test_identical_vectors_score_one(self):
        v = SparseVector({1: 2.0, 2: 1.0})
        assert self.m.similarity(v, v) == pytest.approx(1.0)

    def test_known_value(self):
        a = SparseVector({1: 2.0, 2: 1.0})
        b = SparseVector({1: 1.0, 3: 1.0})
        # min: 1 (term 1); max: 2 + 1 + 1 = 4
        assert self.m.similarity(a, b) == pytest.approx(0.25)

    def test_equals_set_jaccard_on_binary_weights(self):
        a = SparseVector({1: 1.0, 2: 1.0, 3: 1.0})
        b = SparseVector({2: 1.0, 3: 1.0, 4: 1.0})
        assert self.m.similarity(a, b) == pytest.approx(2 / 4)

    def test_disjoint_is_zero(self):
        assert self.m.similarity(SparseVector({1: 1.0}), SparseVector({2: 1.0})) == 0.0


class TestSumMinMaxHelpers:
    def test_sum_min(self):
        a = SparseVector({1: 2.0, 2: 1.0})
        b = SparseVector({1: 1.5, 3: 9.0})
        assert a.sum_min(b) == pytest.approx(1.5)

    def test_sum_max(self):
        a = SparseVector({1: 2.0, 2: 1.0})
        b = SparseVector({1: 1.5, 3: 9.0})
        assert a.sum_max(b) == pytest.approx(2.0 + 1.0 + 9.0)

    def test_weight_sum(self):
        assert SparseVector({1: 2.0, 2: 0.5}).weight_sum() == pytest.approx(2.5)

    def test_symmetry(self):
        a = SparseVector({1: 2.0, 5: 3.0})
        b = SparseVector({1: 4.0, 2: 1.0})
        assert a.sum_min(b) == b.sum_min(a)
        assert a.sum_max(b) == b.sum_max(a)


class TestFactory:
    def test_known_measures(self):
        for name in (
            "extended_jaccard",
            "cosine",
            "overlap",
            "dice",
            "weighted_jaccard",
        ):
            assert make_measure(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_measure("tanimoto-edit")
