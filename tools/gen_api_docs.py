#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks ``repro`` and its subpackages, extracting module, class, and
function docstring summaries plus public signatures into one markdown
reference.  Stdlib-only so it runs anywhere the library does:

    python tools/gen_api_docs.py [output.md]
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path
from typing import List

import repro


def first_paragraph(doc: str) -> str:
    """The docstring's lead paragraph, joined onto one line."""
    lines: List[str] = []
    for line in (doc or "").strip().splitlines():
        stripped = line.strip()
        if not stripped:
            break
        lines.append(stripped)
    return " ".join(lines)


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def public_members(module):
    """(classes, functions) defined in the module, in source order."""
    classes, functions = [], []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj):
            classes.append((name, obj))
        elif inspect.isfunction(obj):
            functions.append((name, obj))

    def order(pair):
        try:
            return inspect.getsourcelines(pair[1])[1]
        except (OSError, TypeError):
            return 1 << 30

    return sorted(classes, key=order), sorted(functions, key=order)


def document_class(name: str, cls, out: List[str]) -> None:
    out.append(f"### class `{name}{signature_of(cls)}`\n")
    summary = first_paragraph(cls.__doc__ or "")
    if summary:
        out.append(summary + "\n")
    methods = []
    for mname, method in vars(cls).items():
        if mname.startswith("_"):
            continue
        if inspect.isfunction(method):
            methods.append((mname, method, ""))
        elif isinstance(method, staticmethod):
            methods.append((mname, method.__func__, "static "))
        elif isinstance(method, classmethod):
            methods.append((mname, method.__func__, "classmethod "))
        elif isinstance(method, property):
            doc = first_paragraph(method.fget.__doc__ or "") if method.fget else ""
            methods.append((mname, None, f"property — {doc}"))
    for mname, method, kind in methods:
        if method is None:
            out.append(f"- `{mname}` ({kind.rstrip(' —')})")
            continue
        doc = first_paragraph(method.__doc__ or "")
        sig = signature_of(method)
        line = f"- {kind}`{mname}{sig}`"
        if doc:
            line += f" — {doc}"
        out.append(line)
    out.append("")


def document_module(module, out: List[str]) -> None:
    out.append(f"## `{module.__name__}`\n")
    summary = first_paragraph(module.__doc__ or "")
    if summary:
        out.append(summary + "\n")
    classes, functions = public_members(module)
    for name, cls in classes:
        document_class(name, cls, out)
    for name, fn in functions:
        doc = first_paragraph(fn.__doc__ or "")
        out.append(f"### `{name}{signature_of(fn)}`\n")
        if doc:
            out.append(doc + "\n")


def generate(output: Path) -> int:
    """Write the API reference; returns the number of modules covered."""
    out: List[str] = [
        "# API reference\n",
        "_Generated from docstrings by `tools/gen_api_docs.py`;"
        " regenerate after changing public signatures._\n",
    ]
    seen = 0
    names = [repro.__name__]
    for module_info in pkgutil.walk_packages(repro.__path__, repro.__name__ + "."):
        names.append(module_info.name)
    for name in sorted(names):
        module = importlib.import_module(name)
        document_module(module, out)
        seen += 1
    output.write_text("\n".join(out) + "\n")
    return seen


def main() -> int:
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("docs/API.md")
    target.parent.mkdir(parents=True, exist_ok=True)
    count = generate(target)
    print(f"documented {count} modules -> {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
