#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks ``repro`` and its subpackages, extracting module, class, and
function docstring summaries plus public signatures into one markdown
reference.  Stdlib-only so it runs anywhere the library does:

    python tools/gen_api_docs.py [output.md]
    python tools/gen_api_docs.py --check [output.md]

``--check`` renders the reference in memory and exits 1 if the file on
disk differs (drift gate for CI: the committed docs/API.md must match
the code's docstrings).
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path
from typing import List, Tuple

import repro


def first_paragraph(doc: str) -> str:
    """The docstring's lead paragraph, joined onto one line."""
    lines: List[str] = []
    for line in (doc or "").strip().splitlines():
        stripped = line.strip()
        if not stripped:
            break
        lines.append(stripped)
    return " ".join(lines)


_SET_REPR_RE = re.compile(r"(frozenset\(\{|(?<![\w}])\{)([^{}]*)\}")


def _stable_defaults(sig: str) -> str:
    """Sort set-literal default reprs so output is hash-seed independent
    (``frozenset({...})`` renders in iteration order otherwise)."""

    def fix(match: "re.Match[str]") -> str:
        body = match.group(2)
        if ":" in body:  # dict literal — insertion-ordered already
            return match.group(0)
        items = sorted(part.strip() for part in body.split(",") if part.strip())
        return match.group(1) + ", ".join(items) + "}"

    return _SET_REPR_RE.sub(fix, sig)


def signature_of(obj) -> str:
    try:
        return _stable_defaults(str(inspect.signature(obj)))
    except (TypeError, ValueError):
        return "(...)"


def public_members(module):
    """(classes, functions) defined in the module, in source order."""
    classes, functions = [], []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj):
            classes.append((name, obj))
        elif inspect.isfunction(obj):
            functions.append((name, obj))

    def order(pair):
        try:
            return inspect.getsourcelines(pair[1])[1]
        except (OSError, TypeError):
            return 1 << 30

    return sorted(classes, key=order), sorted(functions, key=order)


def document_class(name: str, cls, out: List[str]) -> None:
    out.append(f"### class `{name}{signature_of(cls)}`\n")
    summary = first_paragraph(cls.__doc__ or "")
    if summary:
        out.append(summary + "\n")
    methods = []
    for mname, method in vars(cls).items():
        if mname.startswith("_"):
            continue
        if inspect.isfunction(method):
            methods.append((mname, method, ""))
        elif isinstance(method, staticmethod):
            methods.append((mname, method.__func__, "static "))
        elif isinstance(method, classmethod):
            methods.append((mname, method.__func__, "classmethod "))
        elif isinstance(method, property):
            doc = first_paragraph(method.fget.__doc__ or "") if method.fget else ""
            methods.append((mname, None, f"property — {doc}"))
    for mname, method, kind in methods:
        if method is None:
            out.append(f"- `{mname}` ({kind.rstrip(' —')})")
            continue
        doc = first_paragraph(method.__doc__ or "")
        sig = signature_of(method)
        line = f"- {kind}`{mname}{sig}`"
        if doc:
            line += f" — {doc}"
        out.append(line)
    out.append("")


def document_module(module, out: List[str]) -> None:
    out.append(f"## `{module.__name__}`\n")
    summary = first_paragraph(module.__doc__ or "")
    if summary:
        out.append(summary + "\n")
    classes, functions = public_members(module)
    for name, cls in classes:
        document_class(name, cls, out)
    for name, fn in functions:
        doc = first_paragraph(fn.__doc__ or "")
        out.append(f"### `{name}{signature_of(fn)}`\n")
        if doc:
            out.append(doc + "\n")


def render() -> Tuple[str, int]:
    """The full API reference text plus the number of modules covered."""
    out: List[str] = [
        "# API reference\n",
        "_Generated from docstrings by `tools/gen_api_docs.py`;"
        " regenerate after changing public signatures._\n",
        "_Narrative companions: [ARCHITECTURE.md](ARCHITECTURE.md) (the"
        " three engines and their dataflow),"
        " [OBSERVABILITY.md](OBSERVABILITY.md) (metrics and trace sinks),"
        " [TUNING.md](TUNING.md) (performance knobs)._\n",
    ]
    seen = 0
    names = [repro.__name__]
    for module_info in pkgutil.walk_packages(repro.__path__, repro.__name__ + "."):
        names.append(module_info.name)
    for name in sorted(names):
        module = importlib.import_module(name)
        document_module(module, out)
        seen += 1
    return "\n".join(out) + "\n", seen


def generate(output: Path) -> int:
    """Write the API reference; returns the number of modules covered."""
    text, seen = render()
    output.write_text(text)
    return seen


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="docs/API.md")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the on-disk reference differs from the rendered one",
    )
    args = parser.parse_args()
    target = Path(args.output)
    if args.check:
        text, count = render()
        on_disk = target.read_text() if target.exists() else ""
        if on_disk != text:
            print(
                f"{target} is stale — regenerate with "
                "`python tools/gen_api_docs.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{target} is up to date ({count} modules)")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    count = generate(target)
    print(f"documented {count} modules -> {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
