#!/usr/bin/env python
"""Regenerate every experiment table into a JSONL result log + markdown.

The reproducibility driver behind EXPERIMENTS.md:

    python tools/run_all_experiments.py results/  [--scale N] [--only E4,E12]

writes ``results/runs.jsonl`` (append-only, re-renderable with
``repro-rstknn show``) and ``results/EXPERIMENTS_RAW.md`` with every
table, stamped.  Experiments run in id order; a failure in one is
reported and the rest still run.
"""

from __future__ import annotations

import argparse
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.report import format_table
from repro.bench.results import ResultLog


def main() -> int:
    """Run the sweep; returns non-zero when any experiment failed."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("outdir", help="directory for runs.jsonl + markdown")
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument(
        "--only", default=None, help="comma-separated experiment ids"
    )
    args = parser.parse_args()

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    log = ResultLog(outdir / "runs.jsonl")
    md_path = outdir / "EXPERIMENTS_RAW.md"

    wanted = (
        [e.strip().upper() for e in args.only.split(",")]
        if args.only
        else sorted(EXPERIMENTS, key=lambda e: int(e[1:]))
    )

    sections = [f"# Raw experiment tables ({datetime.now(timezone.utc).isoformat()})\n"]
    failures = 0
    for exp in wanted:
        kwargs = {}
        if args.scale is not None:
            if exp == "E3":
                kwargs["sizes"] = [args.scale // 4, args.scale // 2, args.scale]
            elif exp == "E11":
                kwargs["n_objects"] = args.scale
            else:
                kwargs["n"] = args.scale
        print(f"running {exp} ...", flush=True)
        started = time.perf_counter()
        try:
            headers, rows = run_experiment(exp, **kwargs)
        except Exception as exc:  # keep sweeping past one bad experiment
            failures += 1
            print(f"  FAILED: {exc}")
            sections.append(f"## {exp}\n\nFAILED: {exc}\n")
            continue
        elapsed = time.perf_counter() - started
        stamp = datetime.now(timezone.utc).isoformat()
        log.append(exp, headers, rows, params=kwargs, stamp=stamp)
        _, desc = EXPERIMENTS[exp]
        table = format_table(headers, rows, title=f"{exp} — {desc}")
        sections.append(f"## {exp} ({elapsed:.1f}s)\n\n```\n{table}\n```\n")
        print(f"  done in {elapsed:.1f}s")
    md_path.write_text("\n".join(sections) + "\n")
    print(f"wrote {md_path} and {log.path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
