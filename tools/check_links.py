#!/usr/bin/env python
"""Markdown link checker for the repo's documentation.

Scans markdown files for inline links/images (``[text](target)``) and
verifies that every *relative* target resolves to a file on disk, and
that every in-file anchor (``#section``) matches a heading in the
target document (GitHub-style slugs).  External schemes (``http://``,
``https://``, ``mailto:``) are skipped — no network access.  Stdlib
only:

    python tools/check_links.py [paths...]

Defaults to ``README.md`` plus every ``docs/*.md`` file; exits 1 when
any link is broken, so CI can hold the line.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown link or image: ``[text](target)`` / ``![alt](target)``.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX heading line: ``# Title`` .. ``###### Title``.
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

#: Schemes that are never checked (no network access in CI).
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of one heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # drop code spans
    text = re.sub(r"[*_]", "", text)  # drop emphasis markers
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    """All heading anchors a markdown file defines."""
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError):
        return set()
    return {slugify(m.group(1)) for m in _HEADING_RE.finditer(text)}


def check_file(path: Path) -> List[str]:
    """Broken-link descriptions for one markdown file (empty = clean)."""
    problems: List[str] = []
    text = path.read_text()
    # Strip fenced code blocks so example snippets are not treated as links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        target, _, anchor = target.partition("#")
        if not target:  # same-file anchor
            dest = path
        else:
            dest = (path.parent / target).resolve()
            if not dest.exists():
                problems.append(f"{path}: broken link -> {match.group(1)}")
                continue
        if anchor and dest.suffix == ".md":
            if slugify(anchor) not in anchors_of(dest):
                problems.append(
                    f"{path}: missing anchor -> {match.group(1)}"
                )
    return problems


def default_targets(root: Path) -> List[Path]:
    """README.md plus every markdown file under docs/."""
    targets = []
    readme = root / "README.md"
    if readme.exists():
        targets.append(readme)
    docs = root / "docs"
    if docs.is_dir():
        targets.extend(sorted(docs.glob("*.md")))
    return targets


def run(paths: Iterable[Path]) -> Tuple[int, List[str]]:
    """Check every path; returns (files checked, problem list)."""
    problems: List[str] = []
    checked = 0
    for path in paths:
        checked += 1
        problems.extend(check_file(path))
    return checked, problems


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    paths = (
        [Path(arg) for arg in argv] if argv else default_targets(root)
    )
    checked, problems = run(paths)
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s) in {checked} file(s)")
        return 1
    print(f"all links ok ({checked} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
