#!/usr/bin/env python
"""Docstring coverage gate: every public item must document itself.

Walks ``repro``'s modules and reports every public module, class,
function, and method without a docstring.  Exits non-zero when coverage
is incomplete, so CI (and ``tests/test_tools.py``) can hold the line.

    python tools/check_docstrings.py [--verbose]
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from typing import List

import repro

#: Methods whose meaning is conventional enough to not require a docstring.
_EXEMPT_METHODS = {
    "__init__",  # documented at the class level by convention here
}


def iter_module_names() -> List[str]:
    names = [repro.__name__]
    for module_info in pkgutil.walk_packages(repro.__path__, repro.__name__ + "."):
        names.append(module_info.name)
    return sorted(names)


def missing_in_module(module) -> List[str]:
    """Fully qualified names of undocumented public items."""
    missing: List[str] = []
    if not (module.__doc__ or "").strip():
        missing.append(module.__name__)
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        qualified = f"{module.__name__}.{name}"
        if inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(qualified)
        elif inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(qualified)
            for mname, member in vars(obj).items():
                if mname.startswith("_") or mname in _EXEMPT_METHODS:
                    continue
                fn = None
                if inspect.isfunction(member):
                    fn = member
                elif isinstance(member, (staticmethod, classmethod)):
                    fn = member.__func__
                elif isinstance(member, property):
                    fn = member.fget
                if fn is None or (fn.__doc__ or "").strip():
                    continue
                if _inherits_doc(obj, mname):
                    continue  # the base class documents the contract
                missing.append(f"{qualified}.{mname}")
    return missing


def _inherits_doc(cls, method_name: str) -> bool:
    """True when some base class documents ``method_name``."""
    for base in cls.__mro__[1:]:
        member = base.__dict__.get(method_name)
        if member is None:
            continue
        fn = member
        if isinstance(member, (staticmethod, classmethod)):
            fn = member.__func__
        elif isinstance(member, property):
            fn = member.fget
        if fn is not None and (getattr(fn, "__doc__", "") or "").strip():
            return True
    return False


def check() -> List[str]:
    """All undocumented public items across the package."""
    missing: List[str] = []
    for name in iter_module_names():
        module = importlib.import_module(name)
        missing.extend(missing_in_module(module))
    return missing


def main() -> int:
    verbose = "--verbose" in sys.argv
    missing = check()
    total_modules = len(iter_module_names())
    if missing:
        print(f"{len(missing)} undocumented public items "
              f"(across {total_modules} modules):")
        for item in missing:
            print(f"  - {item}")
        return 1
    print(f"docstring coverage complete across {total_modules} modules")
    if verbose:
        for name in iter_module_names():
            print(f"  ok {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
