#!/usr/bin/env python
"""Bichromatic BRSTkNN: which *users* would see a new service in their
personalized top-k?

The scenario: a location-based app shows each user the k venues most
relevant to their location and interests.  A business evaluating a new
venue (site + description) asks which users would have it surface in
their top-k feed — the bichromatic reverse spatial-textual kNN of the
venue against the user population, given the existing venues as
competitors.

Run:  python examples/ad_placement_bichromatic.py
"""

from repro import BichromaticRSTkNN, IURTree, STDataset
from repro.spatial import Point
from repro.workloads import WorkloadSpec, generate_corpus, generate_user_corpus

spec = WorkloadSpec(n_objects=600, n_topics=6, seed=21)

# Venues define the vocabulary and the spatial normalization; users are a
# companion population weighted against the venue corpus.
venues = STDataset.from_corpus(generate_corpus(spec))
users = venues.derive(generate_user_corpus(spec, n_users=250))

venue_tree = IURTree.build(venues)
user_tree = IURTree.build(users)
engine = BichromaticRSTkNN(user_tree, venue_tree)

# Candidate venue: center of the region, description mixing two topics.
candidate = venues.make_query(
    Point(spec.region_size / 2, spec.region_size / 2),
    " ".join(venues.objects[0].keywords[:3] + venues.objects[1].keywords[:3]),
)

print(f"{len(venues)} venues, {len(users)} users\n")
for k in (1, 5, 10):
    venue_tree.reset_io()
    user_tree.reset_io()
    result = engine.search(candidate, k)
    per_user = engine.search_per_user(candidate, k)
    assert result.user_ids == per_user, "group and per-user methods disagree"
    reach = 100.0 * len(result) / len(users)
    print(
        f"k={k:>2}: the candidate venue reaches {len(result):>3} users "
        f"({reach:.1f}% of the population)  "
        f"[user expansions={result.user_expansions}, "
        f"object expansions={result.object_expansions}]"
    )

print("\nInterpretation: larger k widens each user's feed, so the reach "
      "grows monotonically; the group-level search decides most users "
      "without ever scoring them individually.")
