#!/usr/bin/env python
"""Quickstart: build an IUR-tree and answer a reverse spatial-textual
kNN query.

The scenario: a food-delivery platform indexes restaurants (location +
menu keywords).  A new ghost kitchen wants to know, before opening, which
existing *restaurants* would count it among their top-k most similar
competitors — the monochromatic RSTkNN query of the paper.

Run:  python examples/quickstart.py
"""

from repro import IURTree, RSTkNNSearcher, SimilarityConfig, STDataset, Point

# ----------------------------------------------------------------------
# 1. A tiny hand-written corpus: (location, description) records.
# ----------------------------------------------------------------------
RESTAURANTS = [
    (Point(1.0, 1.0), "sushi sashimi japanese seafood"),
    (Point(1.2, 0.8), "ramen noodles japanese"),
    (Point(4.5, 4.0), "pizza pasta italian"),
    (Point(4.8, 4.4), "pizza calzone italian wine"),
    (Point(0.7, 4.6), "tacos burritos mexican"),
    (Point(4.2, 0.6), "burgers fries american"),
    (Point(2.5, 2.5), "seafood grill oysters wine"),
    (Point(2.8, 2.2), "noodles dumplings chinese"),
]

# alpha blends spatial proximity (0.4) and menu similarity (0.6).
config = SimilarityConfig(alpha=0.4, text_measure="extended_jaccard")
dataset = STDataset.from_corpus(RESTAURANTS, config)

# ----------------------------------------------------------------------
# 2. Index the collection with the paper's IUR-tree.
# ----------------------------------------------------------------------
tree = IURTree.build(dataset)
print("index:", tree.stats().as_dict())

# ----------------------------------------------------------------------
# 3. The prospective newcomer: location + planned menu.
# ----------------------------------------------------------------------
query = dataset.make_query(Point(1.5, 1.5), "sushi noodles japanese seafood")

searcher = RSTkNNSearcher(tree)
for k in (1, 2, 3):
    tree.reset_io()
    result = searcher.search(query, k)
    names = [" ".join(dataset.get(oid).keywords[:3]) for oid in result.ids]
    print(f"\nRST{k}NN -> {len(result.ids)} restaurants would rank the "
          f"newcomer in their top-{k}:")
    for oid, name in zip(result.ids, names):
        print(f"  #{oid}: {name}")
    print(f"  (simulated I/O: {tree.io.reads} page reads, "
          f"{result.stats.expansions} node expansions)")
