#!/usr/bin/env python
"""Tour of the whole library on the bundled sample city (60 POIs).

Covers, in one script: the sample dataset, spatial-keyword queries
(boolean range / boolean kNN), top-k spatial-textual search, RSTkNN with
ranks, index introspection (tree rendering + quality report), and the
cost model.

Run:  python examples/city_guide.py
"""

from repro import IURTree, RSTkNNSearcher, TopKSearcher, estimate_rstknn_io
from repro.analysis import measure_index_quality, render_tree
from repro.bench import format_table
from repro.core.spatial_keyword import SpatialKeywordSearcher
from repro.data import sample_dataset
from repro.spatial import Point, Rect

city = sample_dataset()
tree = IURTree.build(city)


def names(oids):
    return [" ".join(city.get(oid).keywords[:3]) for oid in oids]


print("=== the index ===")
print(render_tree(tree, max_depth=1))
quality = measure_index_quality(tree)
print()
print(format_table(quality.HEADERS, quality.as_rows(), title="index quality"))

# ----------------------------------------------------------------------
print("\n=== spatial-keyword queries ===")
sk = SpatialKeywordSearcher(tree)

harbor = Rect(0, 4, 3, 7)
hits = sk.boolean_range(harbor, ["seafood"])
print(f"seafood in the harbor district: {names(hits)}")

nearest = sk.boolean_knn(Point(8.0, 8.0), 3, ["coffee"])
print(f"3 nearest coffee spots to campus: "
      f"{[(oid, f'{d:.1f}km') for oid, d in nearest]}")

# ----------------------------------------------------------------------
print("\n=== top-k spatial-textual search ===")
visitor = city.make_query(Point(5.0, 5.0), "museum history architecture tours")
topk = TopKSearcher(tree).top_k(visitor, 4)
print("a culture-minded visitor at the plaza should see:")
for oid, score in topk:
    print(f"  {score:.3f}  {' '.join(city.get(oid).keywords[:4])}")

# ----------------------------------------------------------------------
print("\n=== reverse kNN: siting a new business ===")
candidate = city.make_query(Point(8.1, 8.2), "ramen noodles japanese quick")
estimate = estimate_rstknn_io(tree, candidate, 2)
searcher = RSTkNNSearcher(tree)
tree.reset_io()
ranked = searcher.search_ranked(candidate, 2)
print(f"(cost model predicted ~{estimate.page_ios} I/Os; "
      f"measured {tree.io.reads})")
print("a campus ramen shop would be a top-2 'similar place' for:")
for oid, rank, sim in ranked:
    print(f"  rank {rank} (SimST={sim:.3f})  "
          f"{' '.join(city.get(oid).keywords[:4])}")
