#!/usr/bin/env python
"""Explain an RSTkNN query: why is each object in (or out of) the result?

The searcher can emit a decision trace — every subtree it pruned,
accepted, expanded, and every object it had to verify exactly, with the
bounds that justified the call.  Every traversal engine emits the same
events (under ``engine="auto"`` this trace comes from the columnar
snapshot engine; see docs/OBSERVABILITY.md), so tracing costs no engine
downgrade.  This example runs a query with tracing on, prints the
decision log, and then uses ``search_ranked`` to show how prominently
the query would appear in each reverse neighbor's own top-k.

Run:  python examples/explain_query.py
"""

from repro import IURTree, RSTkNNSearcher, SearchTrace, estimate_rstknn_io
from repro.workloads import gn_like, sample_queries

dataset = gn_like(n=500)
tree = IURTree.build(dataset)
searcher = RSTkNNSearcher(tree)
query = sample_queries(dataset, 1, seed=17)[0]
k = 5

# Planner-style estimate before running anything.
estimate = estimate_rstknn_io(tree, query, k)
print(f"cost model: expects ~{estimate.page_ios} page I/Os "
      f"(threshold ≈ {estimate.threshold:.3f}, "
      f"{estimate.node_visits}/{estimate.total_nodes} nodes)\n")

trace = SearchTrace()
tree.reset_io()
result = searcher.search(query, k, trace=trace)
print(f"measured: {tree.io.reads} page I/Os, |result| = {len(result.ids)}\n")

print("decision log (first 12 events):")
print(trace.render(limit=12))

print("\nhow prominently the query would rank for each reverse neighbor:")
for oid, rank, sim in searcher.search_ranked(query, k):
    kws = " ".join(dataset.get(oid).keywords[:4])
    print(f"  object #{oid:<4} would rank the query #{rank} "
          f"(SimST={sim:.3f})  [{kws}]")
