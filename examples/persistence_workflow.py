#!/usr/bin/env python
"""Production-style workflow: build once, persist, reload, keep updating.

A service builds its spatial-textual index offline, ships the dataset and
index files, loads them at startup, and applies live inserts/deletes as
the catalog changes — all while answering RSTkNN queries that stay exact.

Run:  python examples/persistence_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    CIURTree,
    IndexConfig,
    RSTkNNSearcher,
    load_dataset,
    load_index,
    save_dataset,
    save_index,
)
from repro.spatial import Point
from repro.workloads import sample_queries, shop_like

with tempfile.TemporaryDirectory() as tmp:
    ds_path = Path(tmp) / "catalog.dataset.json"
    idx_path = Path(tmp) / "catalog.ciur.json"

    # ---- offline build ------------------------------------------------
    dataset = shop_like(n=400)
    tree = CIURTree.build(
        dataset, IndexConfig(num_clusters=8, outlier_threshold=0.1)
    )
    save_dataset(dataset, ds_path)
    save_index(tree, idx_path)
    print(f"built + saved: {tree.stats().as_dict()}")
    print(f"files: dataset={ds_path.stat().st_size}B index={idx_path.stat().st_size}B\n")

    # ---- service startup ----------------------------------------------
    catalog = load_dataset(ds_path)
    index = load_index(idx_path, catalog)
    searcher = RSTkNNSearcher(index)
    query = sample_queries(catalog, 1, seed=5)[0]
    before = searcher.search(query, 5)
    print(f"loaded index answers RST5NN with {len(before.ids)} results")

    # ---- live updates ---------------------------------------------------
    new_shop = catalog.append_record(
        Point(query.point.x, query.point.y), " ".join(query.keywords)
    )
    index.insert_object(new_shop)
    print(f"inserted shop #{new_shop.oid} at the query location")

    after = searcher.search(query, 5)
    assert new_shop.oid in after.ids, "a co-located clone must be a reverse neighbor"
    print(f"RST5NN now has {len(after.ids)} results (includes #{new_shop.oid})")

    index.delete_object(new_shop.oid)
    restored = searcher.search(query, 5)
    assert restored.ids == before.ids
    print("after deleting it again, results match the pre-update answer")

    # ---- checkpoint the updated index ----------------------------------
    save_index(index, idx_path)
    print("checkpointed the live index back to disk")
