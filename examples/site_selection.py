#!/usr/bin/env python
"""Site selection: where should the new noodle bar go?

Given candidate corners of the sample city and a menu, find the
placement that makes the newcomer a top-k "similar place" for the most
existing POIs — the influence-maximization application the RSTkNN query
exists for.  Shows the shared-threshold engine against running one full
reverse search per candidate.

Run:  python examples/site_selection.py
"""

import time

from repro import IURTree, LocationSelector, RSTkNNSearcher
from repro.bench import format_table
from repro.data import sample_dataset
from repro.spatial import Point

city = sample_dataset()
tree = IURTree.build(city)
MENU = "noodles ramen japanese quick lunch"
K = 2

CANDIDATES = {
    "harbor": Point(1.5, 5.5),
    "old town": Point(5.0, 5.0),
    "station": Point(5.4, 1.4),
    "campus": Point(8.1, 8.1),
    "market": Point(2.1, 8.1),
}

selector = LocationSelector(tree, K)
report = selector.select_best(list(CANDIDATES.values()), MENU)

rows = []
for name, point in CANDIDATES.items():
    result = next(r for r in report.all_results if r.location == point)
    sample = ", ".join(
        " ".join(city.get(oid).keywords[:2]) for oid in result.influenced[:3]
    )
    rows.append([name, str(result.count), sample + ("..." if result.count > 3 else "")])
print(format_table(
    ["candidate", "influence", "who it would reach"],
    rows,
    title=f"Placing a noodle bar (top-{K} influence per site)",
))

best_name = next(n for n, p in CANDIDATES.items() if p == report.best.location)
print(f"\nbest site: {best_name} with influence {report.best.count}")
print(f"threshold preprocessing: {report.preprocess_seconds*1000:.1f} ms, "
      f"all candidates: {report.search_seconds*1000:.1f} ms")

# Cross-check against full reverse searches.
searcher = RSTkNNSearcher(tree)
started = time.perf_counter()
for point in CANDIDATES.values():
    query = city.make_query(point, MENU)
    assert len(searcher.search(query, K).ids) == next(
        r for r in report.all_results if r.location == point
    ).count
naive_ms = (time.perf_counter() - started) * 1000
print(f"naive per-candidate reverse searches agree (took {naive_ms:.1f} ms)")
