#!/usr/bin/env python
"""Index tuning: how cluster count, outlier extraction, and buffer size
shape RSTkNN cost.

The scenario: a DBA sizing the spatial-textual index for a categorized
POI collection (strong text clusters — where the CIUR-tree shines).  We
sweep the knobs of :class:`IndexConfig` and report query cost and index
footprint for each setting.

Run:  python examples/index_tuning.py
"""

from repro import CIURTree, IndexConfig, IURTree, RSTkNNSearcher
from repro.bench import format_table
from repro.workloads import sample_queries, shop_like


def measure(tree, queries, k=5):
    searcher = RSTkNNSearcher(tree)
    total_ms = total_io = 0.0
    result_ids = None
    for query in queries:
        tree.reset_io()
        result = searcher.search(query, k)
        total_ms += result.stats.elapsed_seconds * 1000.0
        total_io += tree.io.reads
        if result_ids is None:
            result_ids = result.ids
        else:
            assert result.ids is not None
    n = len(queries)
    return total_ms / n, total_io / n, result_ids


def main() -> None:
    dataset = shop_like(n=600)
    queries = sample_queries(dataset, 3)

    rows = []
    reference = None
    configs = [
        ("iur (NC=1)", IndexConfig(num_clusters=1), IURTree),
        ("ciur NC=4", IndexConfig(num_clusters=4), CIURTree),
        ("ciur NC=8", IndexConfig(num_clusters=8), CIURTree),
        ("ciur NC=16", IndexConfig(num_clusters=16), CIURTree),
        ("ciur NC=8 + OE", IndexConfig(num_clusters=8, outlier_threshold=0.15), CIURTree),
        ("ciur NC=8 + TE", IndexConfig(num_clusters=8, use_entropy_priority=True), CIURTree),
        ("ciur NC=8, buffer=16", IndexConfig(num_clusters=8, buffer_pages=16), CIURTree),
    ]
    for label, cfg, cls in configs:
        tree = cls.build(dataset, cfg)
        ms, io, ids = measure(tree, queries)
        if reference is None:
            reference = ids
        assert ids == reference, f"{label} returned different results!"
        stats = tree.stats()
        rows.append(
            [label, f"{ms:.1f}", f"{io:.0f}", str(stats.pages), str(stats.outliers)]
        )

    print(format_table(
        ["configuration", "ms/query", "page I/O", "index pages", "outliers"],
        rows,
        title="Index tuning on the categorized POI workload (RST5NN)",
    ))
    print("\nReading the table: more clusters tighten textual bounds "
          "(fewer I/Os) at the cost of fatter nodes (more pages); OE "
          "removes bound-stretching outliers; a small buffer re-reads "
          "hot nodes and inflates I/O.")


if __name__ == "__main__":
    main()
