#!/usr/bin/env python
"""Competitor analysis at scale: compare index variants on a synthetic
gazetteer and show what the group-level pruning buys.

The scenario: a franchise planner evaluates a candidate site + concept
against a city-scale POI collection.  We run the same RSTkNN query with
the plain IUR-tree, the clustered CIUR-tree, and the CIUR-tree with both
optimizations, and against the per-object top-k baseline, reporting
runtime, simulated page I/O, and pruning statistics for each.

Run:  python examples/competitor_analysis.py [n]
"""

import sys
import time

from repro import RSTkNNSearcher, ThresholdBaseline
from repro.bench import build_tree, format_table
from repro.workloads import gn_like, sample_queries


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    k = 10
    dataset = gn_like(n=n)
    queries = sample_queries(dataset, 3)
    print(f"dataset: {dataset.stats()}\n")

    rows = []
    reference = None
    for method in ("base", "iur", "ciur", "ciur-oe-te"):
        tree = build_tree(dataset, method)
        tree.reset_io()
        started = time.perf_counter()
        if method == "base":
            ids = ThresholdBaseline(tree).search(queries[0], k)
            expansions = verified = "-"
        else:
            searcher = RSTkNNSearcher(tree)
            result = searcher.search(queries[0], k)
            ids = result.ids
            expansions = str(result.stats.expansions)
            verified = str(result.stats.verified_objects)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if reference is None:
            reference = ids
        assert ids == reference, f"{method} disagrees with the baseline!"
        rows.append(
            [method, f"{elapsed_ms:.1f}", str(tree.io.reads), str(len(ids)),
             expansions, verified]
        )

    print(format_table(
        ["method", "ms", "page I/O", "|result|", "expansions", "verified"],
        rows,
        title=f"RST{k}NN on {n} objects — all methods agree on "
              f"{len(reference)} reverse neighbors",
    ))


if __name__ == "__main__":
    main()
