"""Library-wide configuration objects.

The paper's similarity function and index behaviour are governed by a small
number of knobs (the spatial/textual blend ``alpha``, the text similarity
measure, R-tree fanout, buffer pool size, ...).  They are collected in
frozen dataclasses so a configuration can be passed around, hashed, and
reproduced exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from .errors import ConfigError

#: Text similarity measures supported by :mod:`repro.text.similarity`.
TEXT_MEASURES = (
    "extended_jaccard",
    "cosine",
    "overlap",
    "dice",
    "weighted_jaccard",
)

#: Term weighting schemes supported by :mod:`repro.text.weighting`.
WEIGHTINGS = ("tf", "tfidf", "lm", "bm25")

#: Kernel backends supported by :mod:`repro.perf.kernels` (``auto``
#: resolves to ``numpy`` when importable, else ``python``).
KERNEL_BACKENDS = ("python", "numpy", "auto")

#: Traversal engines supported by :class:`repro.core.rstknn.RSTkNNSearcher`
#: (``auto`` runs the columnar snapshot engine whenever the request does
#: not need the seed object-graph walk; ``approx`` filters against the
#: frozen kNNL sketch tier of :mod:`repro.approx`).
ENGINES = ("seed", "snapshot", "auto", "approx")

#: Batch execution modes of :class:`repro.perf.BatchSearcher`
#: (``per-query`` runs one traversal per query; ``fused`` walks the
#: index snapshot once per spatial-locality group of queries).
BATCH_MODES = ("per-query", "fused")

#: Index transports for parallel batch mode (:mod:`repro.perf.shm`).
#: ``auto`` ships a zero-copy shared-memory snapshot segment when the
#: platform supports it and falls back to pickling the tree otherwise;
#: ``shm`` insists on the segment (falling back loudly); ``pickle``
#: always ships the pickled object graph.
BATCH_SHARE_MODES = ("auto", "shm", "pickle")


@dataclass(frozen=True)
class SimilarityConfig:
    """Parameters of the spatial-textual similarity ``SimST``.

    Attributes:
        alpha: Weight of the spatial component in ``[0, 1]``; the textual
            component gets ``1 - alpha``.  ``alpha=1`` degenerates to pure
            spatial similarity, ``alpha=0`` to pure text similarity.
        text_measure: One of :data:`TEXT_MEASURES`.
        weighting: Term weighting scheme used when building datasets, one
            of :data:`WEIGHTINGS`.
        lm_lambda: Jelinek-Mercer smoothing parameter, only used by the
            ``lm`` weighting.
    """

    alpha: float = 0.5
    text_measure: str = "extended_jaccard"
    weighting: str = "tfidf"
    lm_lambda: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.text_measure not in TEXT_MEASURES:
            raise ConfigError(
                f"unknown text measure {self.text_measure!r}; "
                f"expected one of {TEXT_MEASURES}"
            )
        if self.weighting not in WEIGHTINGS:
            raise ConfigError(
                f"unknown weighting {self.weighting!r}; expected one of {WEIGHTINGS}"
            )
        if not 0.0 <= self.lm_lambda <= 1.0:
            raise ConfigError(f"lm_lambda must be in [0, 1], got {self.lm_lambda}")

    def with_alpha(self, alpha: float) -> "SimilarityConfig":
        """Return a copy with a different ``alpha``."""
        return replace(self, alpha=alpha)


@dataclass(frozen=True)
class IndexConfig:
    """Parameters of the IUR-tree family.

    Attributes:
        max_entries: Maximum R-tree node fanout ``M``.
        min_entries: Minimum fill ``m`` (only enforced by insert/split;
            STR bulk loading packs nodes fully).
        page_size: Simulated disk page size in bytes; inverted-file blocks
            are charged ``ceil(bytes / page_size)`` I/Os like the paper.
        buffer_pages: LRU buffer pool capacity, in pages.
        num_clusters: ``NC`` — number of text clusters for the CIUR-tree
            (ignored by the plain IUR-tree).
        outlier_threshold: Cosine-to-centroid below which a document is
            extracted as an outlier (OE optimization).  ``None`` disables
            outlier extraction.
        use_entropy_priority: Enable the text-entropy traversal boost (TE).
        store_intersections: Keep per-term *minimum* weights in directory
            nodes.  ``False`` degrades the index to a plain IR-tree
            (union/maximum weights only) — the ablation that isolates
            what the paper's "I" in IUR-tree buys: without intersection
            vectors every textual lower bound collapses to 0 and group
            pruning must rely on geometry alone.
    """

    max_entries: int = 16
    min_entries: int = 4
    page_size: int = 4096
    buffer_pages: int = 128
    num_clusters: int = 8
    outlier_threshold: float | None = None
    use_entropy_priority: bool = False
    store_intersections: bool = True

    def __post_init__(self) -> None:
        if self.max_entries < 2:
            raise ConfigError(f"max_entries must be >= 2, got {self.max_entries}")
        if not 1 <= self.min_entries <= self.max_entries // 2:
            raise ConfigError(
                f"min_entries must be in [1, max_entries/2], got {self.min_entries}"
            )
        if self.page_size < 64:
            raise ConfigError(f"page_size must be >= 64, got {self.page_size}")
        if self.buffer_pages < 1:
            raise ConfigError(f"buffer_pages must be >= 1, got {self.buffer_pages}")
        if self.num_clusters < 1:
            raise ConfigError(f"num_clusters must be >= 1, got {self.num_clusters}")
        if self.outlier_threshold is not None and not 0.0 <= self.outlier_threshold <= 1.0:
            raise ConfigError(
                f"outlier_threshold must be in [0, 1], got {self.outlier_threshold}"
            )


@dataclass(frozen=True)
class PerfConfig:
    """Parameters of the performance subsystem (:mod:`repro.perf`).

    Attributes:
        kernel_backend: One of :data:`KERNEL_BACKENDS`; which similarity
            kernel implementation to use.  The ``REPRO_KERNEL``
            environment variable overrides the library default at
            process level; this knob records an explicit choice for a
            run (apply it with :func:`repro.perf.set_backend`).
        bound_cache_entries: Capacity of the shared LRU pair-bound cache
            used by :class:`repro.perf.BatchSearcher` and any searcher
            constructed with a :class:`repro.perf.BoundCache`.
        batch_workers: Default process fan-out of the batch engine
            (``1`` = sequential with the shared cache).
        engine: One of :data:`ENGINES`; which searcher traversal
            implementation to run.  The ``REPRO_ENGINE`` environment
            variable overrides the library default at process level;
            this knob records an explicit choice for a run (pass it to
            :class:`repro.core.rstknn.RSTkNNSearcher` or
            :class:`repro.perf.BatchSearcher`).
        batch_mode: One of :data:`BATCH_MODES`; how
            :class:`repro.perf.BatchSearcher` executes a workload
            (``per-query`` or the fused group-traversal engine).
        fused_group_size: Queries fused into one snapshot walk when
            ``batch_mode="fused"`` (see ``docs/TUNING.md``).
        batch_share: One of :data:`BATCH_SHARE_MODES`; how parallel
            batch mode ships the index to its worker processes
            (``auto`` prefers the zero-copy shared-memory snapshot
            segment of :mod:`repro.perf.shm`, falling back to pickle
            with the reason recorded on ``BatchStats``).
        observability: When True,
            :meth:`repro.perf.BatchSearcher.from_perf_config` attaches a
            live :class:`repro.obs.MetricsRegistry` (query counters,
            decision counters, latency histograms, phase gauges) instead
            of recording nothing.  Off by default: the disabled path
            costs nothing (see ``docs/OBSERVABILITY.md``).
        retry_attempts: Total tries (including the first) the batch
            engine gives a query chunk lost to a crashed or erroring
            pool worker before finishing it sequentially in the parent
            (see ``docs/RELIABILITY.md``).
        retry_base_delay: Backoff before the first such retry, in
            seconds; later retries back off exponentially with
            deterministic jitter.
        service_max_pending: Admission-queue capacity of
            :class:`repro.service.QueryService` — requests beyond it are
            shed with :class:`repro.errors.QueueFull`.
        service_deadline_seconds: Default per-query deadline of the
            service (``None`` = no deadline unless a request carries
            one).
        shard_count: Number of Morton shards the scatter–gather layer
            partitions the dataset into (``1`` = unsharded; see
            :mod:`repro.shard`).
        shard_kmax: Largest ``k`` the per-shard admission-pruning
            tables cover — queries with bigger ``k`` scatter to every
            shard (still exact, just unpruned).
        warm_floors: Seed the exact engines (snapshot/fused, and the
            shard admission summaries) with the frozen kNNL floors of
            :mod:`repro.approx` — result ids are unchanged by
            construction, subtrees and candidates below the floor are
            pruned before any contribution-list work.  The
            ``REPRO_WARM_FLOORS`` environment variable overrides the
            library default at process level.
        approx_verify: When ``engine="approx"``, route every
            sketch-surviving candidate through the exact verification
            probe (byte-identical results).  ``False`` returns the raw
            conservative filter output (recall 1.0 by construction,
            measured precision; see ``docs/TUNING.md``).
        sketch_kmax: Largest ``k`` the frozen kNNL sketch covers;
            floors read 0.0 (never prune) beyond it.
        sketch_budget: Frontier width of the sketch's node-floor rows
            (build cost is quadratic in it).
        sketch_pool: Per-object sample-pool size of the sketch's
            fallback k-distance window (objects outside the true-kNN
            sample budget).
        sketch_sample_frac: Fraction of objects (``0.0``–``1.0``,
            evenly spaced in layout order) whose k-distance curves are
            fitted over *exact* true-kNN competitor similarities at
            sketch build time; the rest use the cheap symmetric layout
            window.  ``1.0`` (default) fits every curve over the real
            profile — the main raw-precision lever of the approx tier.
        approx_lsh: Arm the approx tier's LSH pre-filter stage
            (term-signature banding with exact refutation probes).
            Verified-mode ids are unaffected; raw mode gains precision
            at recall 1.0.  The ``REPRO_APPROX_LSH`` environment
            variable overrides the library default at process level.
        live_updates: Wrap the serving tree in a
            :class:`repro.lsm.LiveIndex` at construction time
            (``from_perf_config`` paths and the CLI): inserts and
            deletes then land in a delta overlay instead of forcing a
            full snapshot re-freeze, queries merge both sources, and a
            freezer folds the overlay into fresh frozen generations.
            The ``REPRO_LIVE_UPDATES`` environment variable overrides
            the library default at process level (see
            ``docs/UPDATES.md``).
        lsm_freeze_threshold: Overlay size (objects + tombstones) at
            which the background freezer folds the overlay into a new
            frozen generation.  Explicit ``freeze_step()`` calls ignore
            it.  Smaller values keep the merged-walk window short
            (queries return to the frozen fast paths sooner) at the
            cost of more frequent fold builds.
    """

    kernel_backend: str = "python"
    bound_cache_entries: int = 262144
    batch_workers: int = 1
    engine: str = "auto"
    batch_mode: str = "per-query"
    fused_group_size: int = 8
    batch_share: str = "auto"
    observability: bool = False
    retry_attempts: int = 3
    retry_base_delay: float = 0.05
    service_max_pending: int = 1024
    service_deadline_seconds: Optional[float] = None
    shard_count: int = 1
    shard_kmax: int = 16
    warm_floors: bool = False
    approx_verify: bool = True
    sketch_kmax: int = 16
    sketch_budget: int = 256
    sketch_pool: int = 32
    sketch_sample_frac: float = 1.0
    approx_lsh: bool = True
    live_updates: bool = False
    lsm_freeze_threshold: int = 256

    def __post_init__(self) -> None:
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ConfigError(
                f"unknown kernel backend {self.kernel_backend!r}; "
                f"expected one of {KERNEL_BACKENDS}"
            )
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.bound_cache_entries < 2:
            raise ConfigError(
                f"bound_cache_entries must be >= 2, got {self.bound_cache_entries}"
            )
        if self.batch_workers < 1:
            raise ConfigError(
                f"batch_workers must be >= 1, got {self.batch_workers}"
            )
        if self.batch_mode not in BATCH_MODES:
            raise ConfigError(
                f"unknown batch mode {self.batch_mode!r}; "
                f"expected one of {BATCH_MODES}"
            )
        if self.batch_share not in BATCH_SHARE_MODES:
            raise ConfigError(
                f"unknown batch share mode {self.batch_share!r}; "
                f"expected one of {BATCH_SHARE_MODES}"
            )
        if self.fused_group_size < 1:
            raise ConfigError(
                f"fused_group_size must be >= 1, got {self.fused_group_size}"
            )
        if not isinstance(self.observability, bool):
            raise ConfigError(
                f"observability must be a bool, got {self.observability!r}"
            )
        if self.retry_attempts < 1:
            raise ConfigError(
                f"retry_attempts must be >= 1, got {self.retry_attempts}"
            )
        if self.retry_base_delay < 0.0:
            raise ConfigError(
                f"retry_base_delay must be >= 0, got {self.retry_base_delay}"
            )
        if self.service_max_pending < 1:
            raise ConfigError(
                f"service_max_pending must be >= 1, got {self.service_max_pending}"
            )
        if self.service_deadline_seconds is not None and not (
            self.service_deadline_seconds > 0.0
        ):
            raise ConfigError(
                "service_deadline_seconds must be > 0 or None, got "
                f"{self.service_deadline_seconds}"
            )
        if self.shard_count < 1:
            raise ConfigError(
                f"shard_count must be >= 1, got {self.shard_count}"
            )
        if self.shard_kmax < 1:
            raise ConfigError(
                f"shard_kmax must be >= 1, got {self.shard_kmax}"
            )
        if not isinstance(self.warm_floors, bool):
            raise ConfigError(
                f"warm_floors must be a bool, got {self.warm_floors!r}"
            )
        if not isinstance(self.approx_verify, bool):
            raise ConfigError(
                f"approx_verify must be a bool, got {self.approx_verify!r}"
            )
        if self.sketch_kmax < 1:
            raise ConfigError(
                f"sketch_kmax must be >= 1, got {self.sketch_kmax}"
            )
        if self.sketch_budget < 1:
            raise ConfigError(
                f"sketch_budget must be >= 1, got {self.sketch_budget}"
            )
        if self.sketch_pool < 1:
            raise ConfigError(
                f"sketch_pool must be >= 1, got {self.sketch_pool}"
            )
        if not 0.0 <= self.sketch_sample_frac <= 1.0:
            raise ConfigError(
                "sketch_sample_frac must be within [0.0, 1.0], got "
                f"{self.sketch_sample_frac}"
            )
        if not isinstance(self.approx_lsh, bool):
            raise ConfigError(
                f"approx_lsh must be a bool, got {self.approx_lsh!r}"
            )
        if not isinstance(self.live_updates, bool):
            raise ConfigError(
                f"live_updates must be a bool, got {self.live_updates!r}"
            )
        if self.lsm_freeze_threshold < 1:
            raise ConfigError(
                "lsm_freeze_threshold must be >= 1, got "
                f"{self.lsm_freeze_threshold}"
            )


@dataclass(frozen=True)
class ReproConfig:
    """Top-level bundle of similarity, index, and perf configuration."""

    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    index: IndexConfig = field(default_factory=IndexConfig)
    perf: PerfConfig = field(default_factory=PerfConfig)

    def describe(self) -> Dict[str, Any]:
        """Return a flat dict of every knob, for experiment logging."""
        out: Dict[str, Any] = {}
        for prefix, cfg in (
            ("sim", self.similarity),
            ("idx", self.index),
            ("perf", self.perf),
        ):
            for key, value in vars(cfg).items():
                out[f"{prefix}.{key}"] = value
        return out


DEFAULT_CONFIG = ReproConfig()
