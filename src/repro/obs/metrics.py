"""Counters, gauges, and fixed-bucket histograms with no-op defaults.

A :class:`MetricsRegistry` hands out named instruments — monotonically
increasing :class:`Counter`\\ s, last-value :class:`Gauge`\\ s, and
fixed-bucket :class:`Histogram`\\ s — and exports their state as either a
JSON-friendly snapshot (:meth:`MetricsRegistry.snapshot`) or
Prometheus-style exposition text (:meth:`MetricsRegistry.to_prometheus`).
The same registry object is shared by every engine of one process: the
seed walk, the snapshot engine, the fused group engine, the batch
engine, and the CLI all record through the identical instrument API (see
``docs/OBSERVABILITY.md`` for the metric name catalogue).

Observability must cost nothing when it is off, so the disabled form is
not "a registry full of real instruments nobody reads" but
:data:`NULL_REGISTRY` — a :class:`NullRegistry` whose ``counter()`` /
``gauge()`` / ``histogram()`` return one process-wide shared no-op
instrument regardless of name.  No dict insertion, no per-call
allocation, no state: the hot path pays one attribute call that does
nothing.  Engine code therefore never branches on "is metrics enabled";
it records unconditionally through whatever registry it was handed.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError

#: Latency histogram bucket upper bounds, in seconds.  Spans the
#: measured per-query range of the three engines (tens of microseconds
#: for a warm snapshot walk at small |D| up to seconds for cold seed
#: walks at E3 scale).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

#: Bound-gap histogram bucket upper bounds.  SimST is normalized into
#: ``[0, 1]``, so every gap between a lower and an upper bound lies in
#: ``[0, 1]`` too; the buckets are densest near 0 where tight bounds
#: (the healthy regime) land.
BOUND_GAP_BUCKETS: Tuple[float, ...] = (
    0.01,
    0.02,
    0.05,
    0.1,
    0.15,
    0.2,
    0.3,
    0.5,
    0.75,
    1.0,
)


#: Percentile points every latency summary reports.
LATENCY_PERCENTILE_POINTS: Tuple[int, ...] = (50, 95, 99)


def latency_percentiles(
    samples: Sequence[float],
    points: Sequence[int] = LATENCY_PERCENTILE_POINTS,
) -> Dict[str, float]:
    """Nearest-rank percentiles of raw samples: ``{"p50": .., ...}``.

    Nearest-rank (not interpolated) so every reported value is an
    actually observed latency — tail figures stay honest at small
    sample counts, where interpolation would invent values between the
    worst and second-worst observation.

    Edge contract (relied on by the bench reports and the service's
    stats endpoint, and pinned by ``tests/test_obs.py``):

    - **empty input** yields ``{}`` — no keys, never a zero-filled dict
      that could be mistaken for "measured and fast";
    - **a single sample** yields that sample for *every* requested
      point (``p50 == p95 == p99``), because nearest-rank with ``n=1``
      has only one observation to report;
    - every percentile point must lie in ``1..100`` — out-of-range
      points raise :class:`~repro.errors.ConfigError` at call time
      rather than silently clamping.
    """
    for p in points:
        if not 1 <= p <= 100:
            raise ConfigError(
                f"percentile points must be in 1..100, got {p!r}"
            )
    if not samples:
        return {}
    ordered = sorted(samples)
    n = len(ordered)
    out: Dict[str, float] = {}
    for p in points:
        rank = max(1, -(-p * n // 100))  # ceil(p/100 * n) in integers
        out[f"p{p}"] = ordered[min(rank, n) - 1]
    return out


class Counter:
    """A monotonically increasing count (events, objects, decisions)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A last-value-wins measurement (occupancy, capacity, seconds)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value, replacing the previous one."""
        self.value = value

    def add(self, value: float) -> None:
        """Accumulate into the gauge (phase timers sum durations)."""
        self.value += value


class Histogram:
    """Fixed-bucket value distribution (latencies, bound gaps).

    Buckets are defined by a sorted tuple of upper bounds; one implicit
    overflow bucket catches everything beyond the last bound.  Buckets
    are cumulative in the Prometheus export and plain per-bucket counts
    in the JSON snapshot.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigError("Histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ConfigError(f"Histogram buckets must be sorted, got {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one value into its bucket."""
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def mean(self) -> float:
        """Mean of the observed values (0.0 before any observation)."""
        return self.sum / self.count if self.count else 0.0


class NoopCounter(Counter):
    """A counter that discards every increment (shared, stateless)."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        """Discard the increment."""


class NoopGauge(Gauge):
    """A gauge that discards every value (shared, stateless)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the value."""

    def add(self, value: float) -> None:
        """Discard the value."""


class NoopHistogram(Histogram):
    """A histogram that discards every observation (shared, stateless)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation."""


#: The process-wide shared no-op instruments.  ``NullRegistry`` returns
#: these very objects for *every* name, so disabled-metrics call sites
#: allocate nothing — the identity is asserted by ``tests/test_obs.py``.
NOOP_COUNTER = NoopCounter()
NOOP_GAUGE = NoopGauge()
NOOP_HISTOGRAM = NoopHistogram()


def _sanitize(name: str) -> str:
    """Dotted metric name -> Prometheus-legal snake_case name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


class MetricsRegistry:
    """Named instrument registry shared across the engines of a process.

    Instruments are created on first request and memoized by name;
    requesting an existing name with a different kind raises
    :class:`~repro.errors.ConfigError` (one name, one meaning).  Names
    are dotted (``search.queries.snapshot``); the Prometheus exporter
    rewrites dots to underscores and prefixes ``repro_``.
    """

    #: Whether instruments returned by this registry record anything.
    enabled = True

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        kinds = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in kinds.items():
            if other_kind != kind and name in table:
                raise ConfigError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unique(name, "counter")
            instrument = Counter()
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unique(name, "gauge")
            instrument = Gauge()
            self._gauges[name] = instrument
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram under ``name`` (``buckets`` only bind on creation)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unique(name, "histogram")
            instrument = Histogram(
                buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS
            )
            self._histograms[name] = instrument
        return instrument

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly dump of every instrument's current state.

        The shape round-trips through ``json.dumps``/``json.loads``
        unchanged: counters map to ints, gauges to floats, histograms to
        ``{"buckets": [...], "counts": [...], "sum": s, "count": n}``
        where ``counts`` has one trailing overflow cell.
        """
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition of every instrument.

        Counters export as ``<prefix>_<name>_total``, gauges as
        ``<prefix>_<name>``, histograms as the conventional cumulative
        ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
        """
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = f"{prefix}_{_sanitize(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(gauge.value)}")
        for name, hist in sorted(self._histograms.items()):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(hist.buckets, hist.counts):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{metric}_sum {_fmt(hist.sum)}")
            lines.append(f"{metric}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")


class NullRegistry(MetricsRegistry):
    """The zero-cost disabled registry: every request returns the shared
    no-op instrument, nothing is ever stored, exports are empty.

    Use the module-level :data:`NULL_REGISTRY` singleton rather than
    constructing new instances; identity against its instruments is the
    documented "metrics are off" contract.
    """

    enabled = False

    __slots__ = ()

    def counter(self, name: str) -> Counter:
        """The shared :data:`NOOP_COUNTER`, regardless of ``name``."""
        return NOOP_COUNTER

    def gauge(self, name: str) -> Gauge:
        """The shared :data:`NOOP_GAUGE`, regardless of ``name``."""
        return NOOP_GAUGE

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The shared :data:`NOOP_HISTOGRAM`, regardless of ``name``."""
        return NOOP_HISTOGRAM


#: The process-wide disabled registry (see :class:`NullRegistry`).
NULL_REGISTRY = NullRegistry()


def registry_or_null(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Normalize an optional registry argument: ``None`` -> no-op."""
    return metrics if metrics is not None else NULL_REGISTRY


def record_search(
    metrics: Optional[MetricsRegistry], engine: str, stats
) -> None:
    """Record one finished search's counters into a registry.

    ``stats`` is the :class:`~repro.core.rstknn.SearchStats` any of the
    engines return; ``engine`` labels the per-engine query counter and
    latency histogram (``seed`` / ``snapshot`` / ``fused`` /
    ``approx``).  A ``None`` or null registry makes this a no-op.
    """
    if metrics is None or not metrics.enabled:
        return
    metrics.counter(f"search.queries.{engine}").inc()
    metrics.histogram(
        f"search.latency_seconds.{engine}", DEFAULT_LATENCY_BUCKETS
    ).observe(stats.elapsed_seconds)
    counter = metrics.counter
    counter("search.decisions.prune").inc(stats.pruned_entries)
    counter("search.decisions.accept").inc(stats.accepted_entries)
    counter("search.decisions.expand").inc(stats.expansions)
    counter("search.decisions.verify").inc(stats.verified_objects)
    counter("search.objects.group_decided").inc(stats.group_decided_objects())
    counter("search.objects.results").inc(stats.result_count)
    counter("search.verify_node_reads").inc(stats.verify_node_reads)


def record_approx(
    metrics: Optional[MetricsRegistry], last_filter: Dict[str, float]
) -> None:
    """Record one approx-engine filter pass into a registry.

    ``last_filter`` is :attr:`repro.approx.ApproxEngine.last_filter` —
    the per-query candidate-filter counters (candidates kept, objects
    and nodes floor-pruned, spatial shortcuts, verified count).  Each
    key lands under ``approx.<key>`` as a counter; a ``None`` or null
    registry makes this a no-op (see ``docs/OBSERVABILITY.md``).
    """
    if metrics is None or not metrics.enabled or not last_filter:
        return
    counter = metrics.counter
    for key, value in last_filter.items():
        counter(f"approx.{key}").inc(int(value))


def _fmt(value: float) -> str:
    """Compact float formatting (integers lose the trailing ``.0``)."""
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)
