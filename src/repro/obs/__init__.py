"""Engine-wide observability: metrics, trace sinks, and phase timers.

``repro.obs`` is the shared low-overhead introspection layer of the
three traversal engines (seed walk, snapshot engine, fused group
engine).  Three pieces, each independent:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms with JSON-snapshot and
  Prometheus-text exporters, plus the zero-cost disabled form
  (:data:`NULL_REGISTRY`, whose instruments are shared no-op
  singletons — no per-call allocation when metrics are off);
* :mod:`repro.obs.trace` — the :class:`TraceSink` protocol every engine
  emits structured decision events through
  (:class:`~repro.core.explain.SearchTrace` is the reference sink),
  with counting / metrics-bridging / tee sinks;
* :mod:`repro.obs.timers` — :class:`PhaseTimer`, accumulating named
  wall-clock phases (build/freeze/group/walk/verify) for benchmark
  reports and registry gauges.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and the sink
contract, and ``docs/ARCHITECTURE.md`` for where the hooks attach.
"""

from .metrics import (
    BOUND_GAP_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    LATENCY_PERCENTILE_POINTS,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    latency_percentiles,
    record_approx,
    record_search,
    registry_or_null,
)
from .timers import PhaseTimer
from .trace import CountingSink, MetricsSink, TeeSink, TraceSink

__all__ = [
    "BOUND_GAP_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "LATENCY_PERCENTILE_POINTS",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "latency_percentiles",
    "record_approx",
    "record_search",
    "registry_or_null",
    "PhaseTimer",
    "CountingSink",
    "MetricsSink",
    "TeeSink",
    "TraceSink",
]
