"""The TraceSink protocol: structured decision events from any engine.

Every traversal engine — the seed object-graph walk
(:class:`~repro.core.rstknn.RSTkNNSearcher`), the columnar
:class:`~repro.core.traversal.SnapshotEngine`, and the
:class:`~repro.core.fused.FusedBatchEngine` — emits the same stream of
group-level decision events into whatever *sink* the caller attaches:

    sink.record(action, ref, is_object, count, q_lo, q_hi,
                knn_lower, knn_upper)

with ``action`` one of ``"prune" | "accept" | "expand" | "verify-in" |
"verify-out"``, ``ref`` the entry/object id the decision touched,
``q_lo``/``q_hi`` the query-similarity bounds and
``knn_lower``/``knn_upper`` the entry's group kNN band at decision time.
The engines are parity-by-construction, so the *decision multiset* a
query produces is identical across all three (asserted by
``tests/test_obs.py``); only heap tie-break ordering may differ within
equal-priority runs.

:class:`~repro.core.explain.SearchTrace` is the reference sink — it
stores every event for rendering.  This module adds cheaper and
composable sinks: :class:`CountingSink` (per-action tallies only),
:class:`MetricsSink` (bridges events into a
:class:`~repro.obs.metrics.MetricsRegistry` as counters plus bound-gap
histograms), and :class:`TeeSink` (fan-out to several sinks).
"""

from __future__ import annotations

from typing import Dict, Protocol, Sequence

from .metrics import BOUND_GAP_BUCKETS, MetricsRegistry


class TraceSink(Protocol):
    """Anything that can receive structured search decision events."""

    def record(
        self,
        action: str,
        ref: int,
        is_object: bool,
        count: int,
        q_lo: float,
        q_hi: float,
        knn_lower: float,
        knn_upper: float,
    ) -> None:
        """Receive one decision event (see module docstring for fields)."""
        ...


class CountingSink:
    """A sink that keeps only per-action event tallies.

    The cheapest useful sink: one dict increment per decision, no event
    objects.  Use it when only ``trace.counts()``-style numbers matter
    (e.g. sampling decision mix in production).
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def record(
        self,
        action: str,
        ref: int,
        is_object: bool,
        count: int,
        q_lo: float,
        q_hi: float,
        knn_lower: float,
        knn_upper: float,
    ) -> None:
        """Tally the event's action."""
        self.counts[action] = self.counts.get(action, 0) + 1


class MetricsSink:
    """A sink that feeds decision events into a metrics registry.

    Per event it increments ``trace.events.<action>`` and observes two
    fixed-bucket histograms (:data:`~repro.obs.metrics.BOUND_GAP_BUCKETS`):

    * ``trace.knn_gap`` — ``knn_upper - knn_lower``, the width of the
      entry's group kNN band.  Wide bands mean the contribution bounds
      could not separate the decision and expansion/verification work
      follows.
    * ``trace.query_gap`` — ``q_hi - q_lo``, the width of the
      query-similarity bounds (0 for object entries, whose similarity
      is exact).
    """

    __slots__ = ("metrics",)

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics

    def record(
        self,
        action: str,
        ref: int,
        is_object: bool,
        count: int,
        q_lo: float,
        q_hi: float,
        knn_lower: float,
        knn_upper: float,
    ) -> None:
        """Count the action and observe both bound-gap histograms."""
        metrics = self.metrics
        metrics.counter(f"trace.events.{action}").inc()
        metrics.histogram("trace.knn_gap", BOUND_GAP_BUCKETS).observe(
            max(knn_upper - knn_lower, 0.0)
        )
        metrics.histogram("trace.query_gap", BOUND_GAP_BUCKETS).observe(
            max(q_hi - q_lo, 0.0)
        )


class TeeSink:
    """A sink that forwards every event to several child sinks.

    Compose a full :class:`~repro.core.explain.SearchTrace` with a
    :class:`MetricsSink` to get a rendered decision log *and* registry
    metrics from one search.
    """

    __slots__ = ("sinks",)

    def __init__(self, sinks: Sequence[TraceSink]) -> None:
        self.sinks = tuple(sinks)

    def record(
        self,
        action: str,
        ref: int,
        is_object: bool,
        count: int,
        q_lo: float,
        q_hi: float,
        knn_lower: float,
        knn_upper: float,
    ) -> None:
        """Forward the event to every child sink, in order."""
        for sink in self.sinks:
            sink.record(
                action, ref, is_object, count, q_lo, q_hi, knn_lower, knn_upper
            )
