"""Named phase timers for build/freeze/group/walk/verify breakdowns.

A :class:`PhaseTimer` accumulates wall-clock seconds under named phases
so a benchmark (or the batch engine) can stamp a per-phase breakdown
next to its headline numbers::

    timer = PhaseTimer()
    with timer.phase("build"):
        tree = IURTree.build(dataset)
    with timer.phase("freeze"):
        tree.snapshot()
    report["phases"] = timer.as_dict()

Phases accumulate: re-entering a name adds to its total, so per-round
loops need no bookkeeping.  :meth:`PhaseTimer.publish` mirrors the
totals into a :class:`~repro.obs.metrics.MetricsRegistry` as
``phase.<name>.seconds`` gauges for the Prometheus/JSON exporters.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .metrics import MetricsRegistry


class PhaseTimer:
    """Accumulating wall-clock timers keyed by phase name."""

    __slots__ = ("_seconds",)

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one phase (re-entrant, accumulating)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under ``name`` (for pre-timed spans)."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def seconds(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never timed)."""
        return self._seconds.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """``{phase: seconds}`` in first-use order, for report stamping."""
        return dict(self._seconds)

    def publish(
        self, metrics: Optional[MetricsRegistry], prefix: str = "phase"
    ) -> None:
        """Mirror every phase total into ``metrics`` as a gauge.

        Gauges are named ``<prefix>.<name>.seconds`` and *set* (not
        added), so repeated publishes stay idempotent.  ``None`` is a
        no-op.
        """
        if metrics is None:
            return
        for name, seconds in self._seconds.items():
            metrics.gauge(f"{prefix}.{name}.seconds").set(seconds)
