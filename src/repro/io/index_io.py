"""Index persistence.

Stores the full tree graph — node topology plus every entry's MBR and
per-cluster interval vectors at float64 precision — together with the
index configuration, cluster labels, outliers, and (for CIUR-trees) the
centroids needed to place future insertions.  Loading reconstructs a
fully functional tree against a fresh simulated disk; queries on the
loaded tree return byte-identical results.

The dataset is saved separately (:mod:`repro.io.dataset_io`) and must be
supplied at load time — an index without its collection is meaningless,
and keeping them apart lets several indexes share one dataset file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..config import IndexConfig
from ..errors import IndexError_
from ..index.ciurtree import CIURTree
from ..index.entry import Entry
from ..index.iurtree import IURTree
from ..index.node import Node
from ..index.rtree import RTree
from ..model.dataset import STDataset
from ..spatial import Rect
from ..text import IntervalVector, SparseVector
from ..text.clustering import ClusteringResult

FORMAT_NAME = "repro-index"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def save_index(tree: IURTree, path: PathLike) -> None:
    """Write a (C)IUR-tree to ``path``."""
    cfg = tree.config
    clustering = getattr(tree, "clustering", None)
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "kind": tree.kind,
        "config": {
            "max_entries": cfg.max_entries,
            "min_entries": cfg.min_entries,
            "page_size": cfg.page_size,
            "buffer_pages": cfg.buffer_pages,
            "num_clusters": cfg.num_clusters,
            "outlier_threshold": cfg.outlier_threshold,
            "use_entropy_priority": cfg.use_entropy_priority,
        },
        "labels_by_oid": {
            str(o.oid): label
            for o, label in zip(tree.dataset.objects, tree.labels)
        },
        "outlier_oids": [o.oid for o in tree.outliers],
        "centroids": (
            [{str(t): w for t, w in c.items()} for c in clustering.centroids]
            if clustering is not None
            else None
        ),
        "root_id": tree.rtree.root_id,
        "nodes": [
            _node_to_json(node) for node in tree.rtree.nodes.values()
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_index(path: PathLike, dataset: STDataset) -> IURTree:
    """Reconstruct an index saved by :func:`save_index`.

    ``dataset`` must be the collection the index was built over (same
    object ids); a saved dataset restores one exactly.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexError_(f"cannot read index file {path}: {exc}") from exc
    if payload.get("format") != FORMAT_NAME:
        raise IndexError_(f"{path} is not a {FORMAT_NAME} file")
    if payload.get("version") != FORMAT_VERSION:
        raise IndexError_(
            f"unsupported index format version {payload.get('version')}"
        )

    cfg = IndexConfig(**payload["config"])
    labels_by_oid = {int(k): v for k, v in payload["labels_by_oid"].items()}
    dataset_oids = {o.oid for o in dataset.objects}
    if set(labels_by_oid) != dataset_oids:
        missing = sorted(dataset_oids - set(labels_by_oid))[:5]
        extra = sorted(set(labels_by_oid) - dataset_oids)[:5]
        raise IndexError_(
            "index/dataset mismatch — wrong dataset for this index? "
            f"(dataset-only ids: {missing}, index-only ids: {extra})"
        )
    labels = [labels_by_oid[o.oid] for o in dataset.objects]
    outliers = [dataset.get(oid) for oid in payload["outlier_oids"]]

    rtree = RTree(cfg.max_entries, cfg.min_entries)
    rtree.root_id = payload["root_id"]
    max_id = -1
    for spec in payload["nodes"]:
        node = _node_from_json(spec)
        rtree.nodes[node.node_id] = node
        max_id = max(max_id, node.node_id)
    rtree._next_node_id = max_id + 1

    cls = CIURTree if payload["kind"] == "ciur" else IURTree
    tree = cls(dataset, cfg, rtree, labels, outliers=outliers)
    if payload["centroids"] is not None:
        centroids = [
            SparseVector({int(t): w for t, w in c.items()})
            for c in payload["centroids"]
        ]
        tree.clustering = ClusteringResult(
            labels=list(labels), centroids=centroids, cohesion=[]
        )
    return tree


# ----------------------------------------------------------------------
# Node / entry codecs (JSON, float64-exact)
# ----------------------------------------------------------------------


def _node_to_json(node: Node) -> Dict:
    return {
        "node_id": node.node_id,
        "is_leaf": node.is_leaf,
        "parent_id": node.parent_id,
        "entries": [_entry_to_json(e) for e in node.entries],
    }


def _node_from_json(spec: Dict) -> Node:
    node = Node(
        node_id=spec["node_id"],
        is_leaf=spec["is_leaf"],
        parent_id=spec["parent_id"],
    )
    node.entries = [_entry_from_json(e) for e in spec["entries"]]
    return node


def _entry_to_json(entry: Entry) -> Dict:
    return {
        "ref": entry.ref,
        "mbr": list(entry.mbr.as_tuple()),
        "is_object": entry.is_object,
        "clusters": {
            str(cid): {
                "count": iv.doc_count,
                "int": {str(t): w for t, w in iv.intersection.items()},
                "uni": {str(t): w for t, w in iv.union.items()},
            }
            for cid, iv in entry.clusters.items()
        },
    }


def _entry_from_json(spec: Dict) -> Entry:
    clusters = {}
    for cid, c in spec["clusters"].items():
        clusters[int(cid)] = IntervalVector(
            SparseVector({int(t): w for t, w in c["int"].items()}),
            SparseVector({int(t): w for t, w in c["uni"].items()}),
            c["count"],
        )
    return Entry(
        ref=spec["ref"],
        mbr=Rect(*spec["mbr"]),
        is_object=spec["is_object"],
        clusters=clusters,
    )


def index_summary(path: PathLike) -> Dict[str, object]:
    """Lightweight header peek without loading the tree (CLI helper)."""
    payload = json.loads(Path(path).read_text())
    return {
        "kind": payload.get("kind"),
        "nodes": len(payload.get("nodes", [])),
        "outliers": len(payload.get("outlier_oids", [])),
        "version": payload.get("version"),
    }
