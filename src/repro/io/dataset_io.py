"""Dataset persistence.

A saved dataset stores, verbatim: the similarity configuration, the data
region, the vocabulary (terms + document/collection frequencies), and
every object's location, keywords, and *weighted vector*.  Loading
reconstructs an :class:`STDataset` that scores identically to the
original — no re-tokenization, no weighting drift.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..config import SimilarityConfig
from ..errors import DatasetError
from ..model.dataset import STDataset
from ..model.objects import STObject
from ..spatial import Point, Rect
from ..text import SparseVector, Vocabulary

FORMAT_NAME = "repro-dataset"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def save_dataset(dataset: STDataset, path: PathLike) -> None:
    """Write ``dataset`` to ``path`` (JSON, one self-contained document)."""
    vocab = dataset.vocabulary
    terms = vocab.terms()
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "config": {
            "alpha": dataset.config.alpha,
            "text_measure": dataset.config.text_measure,
            "weighting": dataset.config.weighting,
            "lm_lambda": dataset.config.lm_lambda,
        },
        "region": list(dataset.region.as_tuple()),
        "vocabulary": {
            "terms": terms,
            "doc_freq": [vocab.doc_frequency(i) for i in range(len(terms))],
            "collection_freq": [
                vocab.collection_frequency(i) for i in range(len(terms))
            ],
            "doc_count": vocab.doc_count,
            "total_term_count": vocab.total_term_count,
        },
        "objects": [
            {
                "oid": obj.oid,
                "x": obj.point.x,
                "y": obj.point.y,
                "keywords": list(obj.keywords),
                "vector": {str(t): w for t, w in obj.vector.items()},
            }
            for obj in dataset.objects
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_dataset(path: PathLike) -> STDataset:
    """Reconstruct a dataset saved by :func:`save_dataset`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetError(f"cannot read dataset file {path}: {exc}") from exc
    if payload.get("format") != FORMAT_NAME:
        raise DatasetError(f"{path} is not a {FORMAT_NAME} file")
    if payload.get("version") != FORMAT_VERSION:
        raise DatasetError(
            f"unsupported dataset format version {payload.get('version')}"
        )

    cfg = SimilarityConfig(**payload["config"])
    region = Rect(*payload["region"])

    vocab = Vocabulary()
    spec = payload["vocabulary"]
    for term in spec["terms"]:
        vocab.intern(term)
    # Restore the statistics directly (the private arrays are the
    # authoritative store; rebuilding them from documents would lose any
    # query-time interning the original corpus had seen).
    vocab._doc_freq = list(spec["doc_freq"])
    vocab._collection_freq = list(spec["collection_freq"])
    vocab.doc_count = spec["doc_count"]
    vocab.total_term_count = spec["total_term_count"]

    objects = []
    for record in payload["objects"]:
        vector = SparseVector({int(t): w for t, w in record["vector"].items()})
        objects.append(
            STObject(
                oid=record["oid"],
                point=Point(record["x"], record["y"]),
                vector=vector,
                keywords=tuple(record["keywords"]),
            )
        )
    return STDataset(objects, vocab, region, cfg)
