"""File persistence: exact round-trips for datasets and indexes.

Formats are versioned JSON containers (stdlib-only) — plain enough to
inspect by hand, exact enough to reproduce experiments bit-for-bit:
weighted vectors and vocabulary statistics are stored verbatim rather
than re-derived from raw text.
"""

from .dataset_io import load_dataset, save_dataset
from .index_io import load_index, save_index

__all__ = ["load_dataset", "save_dataset", "load_index", "save_index"]
