"""Command-line interface: run experiments and quick demos.

Examples::

    repro-rstknn list
    repro-rstknn run E1
    repro-rstknn run E3 --scale 2000
    repro-rstknn demo --n 1000 --k 5
    repro-rstknn obs --queries 20 --format prom
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.experiments import EXPERIMENTS, run_experiment
from .bench.report import format_table
from .core.rstknn import RSTkNNSearcher
from .index.iurtree import IURTree
from .workloads import gn_like, sample_queries


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [[name, desc] for name, (_, desc) in sorted(EXPERIMENTS.items())]
    print(format_table(["experiment", "description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.scale is not None:
        # Every experiment driver accepts its scale as the first knob.
        key = args.experiment.upper()
        if key == "E3":
            kwargs["sizes"] = [args.scale // 4, args.scale // 2, args.scale]
        elif key == "E11":
            kwargs["n_objects"] = args.scale
        else:
            kwargs["n"] = args.scale
    headers, rows = run_experiment(args.experiment, **kwargs)
    _, desc = EXPERIMENTS[args.experiment.upper()]
    print(format_table(headers, rows, title=f"{args.experiment.upper()} — {desc}"))
    if args.out:
        from datetime import datetime, timezone

        from .bench.results import ResultLog

        ResultLog(args.out).append(
            args.experiment.upper(),
            headers,
            rows,
            params=kwargs,
            stamp=datetime.now(timezone.utc).isoformat(),
        )
        print(f"(appended to {args.out})")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from .bench.results import ResultLog

    log = ResultLog(args.log)
    if args.experiment:
        print(log.render(args.experiment.upper()))
    else:
        stored = log.experiments()
        if not stored:
            print(f"no runs stored in {args.log}")
        else:
            print("stored experiments:", ", ".join(stored))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.quick import environment_summary, run_quick_suite

    for line in environment_summary():
        print(line)
    headers, rows = run_quick_suite(
        n=args.n, k=args.k, include_base=not args.no_base
    )
    print(
        format_table(
            headers,
            rows,
            title=f"quick suite — |D|={args.n}, k={args.k} (parity checked)",
        )
    )
    return 0


def _apply_live_writes(live, dataset, writes: int, seed: int = 7):
    """Apply a mixed insert/delete churn through a live index.

    Deletes pick random existing oids; inserts clone a random existing
    object's location and keywords (guaranteed in-region/in-vocab).
    Returns ``(inserted, deleted)``.
    """
    import random

    rng = random.Random(seed)
    inserted = deleted = 0
    for _ in range(writes):
        oids = [o.oid for o in dataset.objects]
        if rng.random() < 0.5 and len(oids) > 2:
            if live.delete_object(rng.choice(oids)):
                deleted += 1
                continue
        donor = dataset.get(rng.choice(oids))
        live.insert(donor.point, " ".join(donor.keywords))
        inserted += 1
    return inserted, deleted


def _add_live_args(parser) -> None:
    """``--live-updates``/``--writes`` for batch, serve-batch, serve-http."""
    parser.add_argument(
        "--live-updates",
        action="store_true",
        help="wrap the index in the LSM live-update path "
        "(repro.lsm.LiveIndex; also REPRO_LIVE_UPDATES)",
    )
    parser.add_argument(
        "--writes",
        type=int,
        default=0,
        help="mixed insert/delete writes to absorb through the live "
        "overlay before serving (implies --live-updates)",
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    from .bench.harness import build_tree
    from .perf import BatchSearcher

    dataset = gn_like(n=args.n)
    tree = build_tree(dataset, args.method)
    live = None
    if args.live_updates or args.writes:
        from .lsm import LiveIndex

        live = LiveIndex(tree)
        tree = live
    queries = sample_queries(dataset, args.queries)
    engine = BatchSearcher(
        tree,
        workers=args.workers,
        cache_entries=args.cache,
        engine=args.engine,
        mode=args.mode,
        group_size=args.group_size,
        share=args.share,
        warm_floors=True if args.warm_floors else None,
        approx_verify=not args.approx_raw,
        sketch_sample_frac=args.sketch_sample_frac,
        approx_lsh=False if args.no_lsh else None,
    )
    live_rows = []
    if live is not None and args.writes:
        inserted, deleted = _apply_live_writes(live, dataset, args.writes)
        dirty = engine.run(queries, args.k).stats
        import time as _time

        fold_started = _time.perf_counter()
        live.freeze_step()
        fold_seconds = _time.perf_counter() - fold_started
        live_rows = [
            ["live writes", f"{inserted} inserts, {deleted} deletes"],
            ["dirty throughput (q/s)", f"{dirty.queries_per_second:.1f}"],
            ["dirty fallback", dirty.fallback_reason or "-"],
            ["fold (s)", f"{fold_seconds:.3f}"],
        ]
    batch = engine.run(queries, args.k)
    stats = batch.stats
    rows = [
        ["queries", stats.queries],
        ["mode", stats.mode],
        ["workers", stats.workers],
        ["elapsed (s)", f"{stats.elapsed_seconds:.3f}"],
        ["throughput (q/s)", f"{stats.queries_per_second:.1f}"],
        ["mean latency (ms)", f"{stats.mean_ms:.2f}"],
        ["result ids (total)", stats.total_result_ids],
    ]
    if stats.groups is not None:
        rows.insert(2, ["groups", stats.groups])
        rows.insert(2, ["group size", stats.group_size])
    if stats.share is not None:
        rows.insert(3, ["share", stats.share])
    if stats.worker_rss_bytes is not None:
        rows.append(
            ["worker peak RSS (MiB)", f"{stats.worker_rss_bytes / 2**20:.1f}"]
        )
    if stats.fallback_reason:
        rows.append(["fallback", stats.fallback_reason])
    rows.extend(live_rows)
    if stats.cache:
        rows.append(["cache hits", int(stats.cache["hits"])])
        rows.append(["cache misses", int(stats.cache["misses"])])
        rows.append(["cache hit rate", f"{stats.cache['hit_rate']:.3f}"])
        rows.append(["cache evictions", int(stats.cache["evictions"])])
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"batch — {args.method} |D|={args.n}, "
                f"{stats.queries} queries, k={args.k}"
            ),
        )
    )
    return 0


def _service_chain(engine: str):
    """Map a ``--engine`` choice to a degradation chain.

    ``auto``/``fused`` keep the full chain; ``snapshot`` and ``seed``
    start the chain at that engine (later hops remain available — every
    chain engine is parity-identical, so this only pins the first
    attempt, never the answer).  ``approx`` prepends the sketch-guided
    filter to the full chain: the service runs it with exact
    verification, so its answers match the others bit for bit.
    """
    from .service import DEGRADATION_CHAIN

    if engine in ("auto", "fused"):
        return DEGRADATION_CHAIN
    if engine == "approx":
        return ("approx",) + DEGRADATION_CHAIN
    return DEGRADATION_CHAIN[DEGRADATION_CHAIN.index(engine):]


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from .bench.harness import build_tree
    from .config import SimilarityConfig
    from .obs import MetricsRegistry
    from .service import QueryService, QueueFull
    from .service.faults import current_plan

    registry = MetricsRegistry()
    config = (
        SimilarityConfig(alpha=args.alpha) if args.alpha is not None else None
    )
    dataset = gn_like(n=args.n, config=config)
    tree = build_tree(dataset, args.method)
    live = None
    if args.live_updates or args.writes:
        from .lsm import LiveIndex

        live = LiveIndex(tree, metrics=registry)
        tree = live
        if args.writes:
            inserted, deleted = _apply_live_writes(live, dataset, args.writes)
            print(
                f"live writes applied: {inserted} inserts, {deleted} deletes "
                f"({live.pending()} pending; fused/snapshot hops degrade to "
                "the merged seed walk until the overlay folds)"
            )
    queries = sample_queries(dataset, args.queries)
    if args.workers > 1:
        return _serve_batch_parallel(args, tree, queries, registry)
    service = QueryService(
        tree,
        chain=_service_chain(args.engine),
        deadline_seconds=args.deadline,
        max_pending=args.max_pending,
        metrics=registry,
    )
    plan = current_plan()
    if plan is not None:
        print(f"fault plan armed: {plan.describe()}")
    shed = 0
    for query in queries:
        try:
            service.submit(query, args.k)
        except QueueFull:
            shed += 1
    batch = service.drain()
    counters = registry.snapshot()["counters"]
    latency = registry.histogram("service.latency_seconds")
    percentiles = batch.latency_percentiles
    rows = [
        ["queries", len(queries)],
        ["served", len(batch.results)],
        ["degraded", batch.degraded_count],
        ["shed", shed],
        ["deadline expiries", counters.get("service.deadline_exceeded", 0)],
        ["chain failures", counters.get("service.failed", 0)],
        ["mean latency (ms)", f"{latency.mean() * 1000.0:.2f}"],
    ]
    for point in ("p50", "p95", "p99"):
        if point in percentiles:
            rows.append(
                [f"latency {point} (ms)", f"{percentiles[point] * 1000.0:.2f}"]
            )
    if args.deadline is not None:
        rows.insert(1, ["deadline (s)", args.deadline])
    for result in batch.results:
        if result.degraded:
            rows.append(
                [
                    "degraded path",
                    " -> ".join(result.degraded_path + (result.engine,)),
                ]
            )
            break
    if live is not None:
        import time as _time

        pending = live.pending()
        fold_started = _time.perf_counter()
        folded = live.freeze_step()
        fold_seconds = _time.perf_counter() - fold_started
        rows.append(["live pending (pre-fold)", pending])
        rows.append(["fold (s)", f"{fold_seconds:.3f}" if folded else "clean"])
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"serve-batch — {args.method} |D|={args.n}, "
                f"{len(queries)} queries, k={args.k}"
            ),
        )
    )
    if args.format == "prom":
        sys.stdout.write(registry.to_prometheus())
    return 0


def _serve_batch_parallel(args, tree, queries, registry) -> int:
    """``serve-batch --workers N``: the pool/shm configuration leg.

    Deadlines are polled in-process per node expansion, which a worker
    pool cannot honor, so ``--deadline`` with ``--workers > 1`` is
    rejected up front instead of silently ignored.
    """
    from .perf import BatchSearcher

    if args.deadline is not None:
        print(
            "serve-batch: --deadline requires the sequential service path "
            "(drop --workers)",
            file=sys.stderr,
        )
        return 2
    if args.engine == "fused":
        print(
            "serve-batch: fused mode runs in-process only; "
            "--engine fused cannot combine with --workers > 1",
            file=sys.stderr,
        )
        return 2
    engine = BatchSearcher(
        tree,
        workers=args.workers,
        engine=None if args.engine == "auto" else args.engine,
        share=args.share,
        metrics=registry,
    )
    batch = engine.run(queries, args.k)
    stats = batch.stats
    rows = [
        ["queries", stats.queries],
        ["workers", stats.workers],
        ["share", stats.share or "-"],
        ["elapsed (s)", f"{stats.elapsed_seconds:.3f}"],
        ["throughput (q/s)", f"{stats.queries_per_second:.1f}"],
        ["mean latency (ms)", f"{stats.mean_ms:.2f}"],
    ]
    for point in ("p50", "p95", "p99"):
        if point in stats.latency_ms:
            rows.append(
                [f"latency {point} (ms)", f"{stats.latency_ms[point]:.2f}"]
            )
    if stats.fallback_reason:
        rows.append(["fallback", stats.fallback_reason])
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"serve-batch (parallel) — {args.method} |D|={args.n}, "
                f"{stats.queries} queries, k={args.k}"
            ),
        )
    )
    if args.format == "prom":
        sys.stdout.write(registry.to_prometheus())
    return 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    import asyncio

    from .config import SimilarityConfig
    from .index.ciurtree import CIURTree
    from .obs import MetricsRegistry
    from .shard import ScatterGatherSearcher, build_sharded_index
    from .shard.http import ShardHttpServer, ShardQueryService

    config = (
        SimilarityConfig(alpha=args.alpha) if args.alpha is not None else None
    )
    dataset = gn_like(n=args.n, config=config)
    tree_cls = CIURTree if args.method == "ciur" else IURTree
    registry = MetricsRegistry()
    if args.live_updates or args.writes:
        # Pre-serve churn leg: absorb writes through the live scatter
        # path (merged seed walk while dirty), fold, then serve the
        # post-fold dataset through the regular sharded stack below.
        _serve_http_live_churn(args, dataset, tree_cls, registry)
    index = build_sharded_index(dataset, args.shards, tree_cls=tree_cls)
    searcher = ScatterGatherSearcher(
        index,
        workers=args.workers,
        share=args.share,
        metrics=registry,
    )
    service = ShardQueryService(
        searcher,
        deadline_seconds=args.deadline,
        max_pending=args.max_pending,
        metrics=registry,
    )
    server = ShardHttpServer(
        service,
        host=args.host,
        port=args.port,
        default_k=args.k,
        max_pending=args.max_pending,
        metrics=registry,
    )
    try:
        if args.self_test:
            return _serve_http_self_test(args, dataset, tree_cls, service, server)

        async def run() -> None:
            await server.start()
            print(
                f"serving {args.shards} shard(s) over |D|={args.n} "
                f"on http://{server.host}:{server.port} (Ctrl-C to stop)"
            )
            await server._server.serve_forever()

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            pass
        return 0
    finally:
        searcher.close()


def _serve_http_live_churn(args, dataset, tree_cls, registry) -> None:
    """``serve-http --live-updates``: write churn before serving.

    The HTTP stack serves a frozen sharded index, so live writes run
    through :class:`repro.lsm.LiveScatterGather` *before* the server
    binds: absorb ``--writes`` mixed writes, answer a probe query per
    write batch over the merged (dirty) view, check it against a tree
    freshly built from the mutated dataset, then fold.  The sharded
    index built afterwards serves the post-fold dataset.
    """
    import time as _time

    from .core import RSTkNNSearcher
    from .lsm import LiveIndex, LiveScatterGather

    live = LiveIndex(tree_cls.build(dataset), metrics=registry)
    scatter = LiveScatterGather(
        live, args.shards, workers=args.workers, share=args.share,
        metrics=registry,
    )
    try:
        inserted, deleted = _apply_live_writes(live, dataset, args.writes)
        probes = sample_queries(dataset, min(4, max(args.queries, 1)))
        fresh = RSTkNNSearcher(tree_cls.build(dataset), engine="seed")
        for i, probe in enumerate(probes):
            merged = scatter.search(probe, args.k)
            reference = fresh.search(probe, args.k)
            if list(merged.ids) != list(reference.ids):
                raise SystemExit(
                    f"live churn parity failure on probe {i}: merged "
                    f"{merged.ids} != fresh build {reference.ids}"
                )
        fold_started = _time.perf_counter()
        folded = scatter.freeze_step()
        fold_seconds = _time.perf_counter() - fold_started
        print(
            f"live churn: {inserted} inserts, {deleted} deletes; "
            f"{len(probes)} merged probes matched a fresh build; "
            + (f"fold took {fold_seconds:.3f}s" if folded else "overlay clean")
        )
    finally:
        scatter.close()
        live.close()


def _serve_http_self_test(args, dataset, tree_cls, service, server) -> int:
    """Boot the server in-process, query it over real HTTP, and gate
    the answers against both the direct service path and the unsharded
    snapshot engine (bit-identical ids or a non-zero exit)."""
    import asyncio

    from .shard.http import fetch_json
    from .text.similarity import make_measure

    tree = tree_cls.build(dataset)
    measure = make_measure(dataset.config.text_measure)
    engine = tree.snapshot().engine_for(
        tree, measure, dataset.config.alpha, 0.0
    )
    queries = sample_queries(dataset, max(args.queries, 1))
    failures: List[str] = []

    server.port = 0  # ephemeral bind: self-tests must not collide

    async def main() -> None:
        await server.start()
        host, port = server.host, server.port
        status, body = await fetch_json(host, port, "/healthz")
        if status != 200 or body.get("shards") != args.shards:
            failures.append(f"healthz: {status} {body}")
        for i, q in enumerate(queries):
            m = q.mbr()
            x, y, text = m.xlo, m.ylo, " ".join(q.keywords)
            query = service.make_query(x, y, text)
            direct, _ = service.serve(query, args.k)
            reference = engine.search(query, args.k).ids
            status, body = await fetch_json(
                host, port, "/search",
                {"x": x, "y": y, "text": text, "k": args.k},
            )
            if status != 200:
                failures.append(f"query {i}: HTTP {status} {body}")
            elif body.get("ids") != list(direct.ids):
                failures.append(
                    f"query {i}: http {body.get('ids')} != direct {direct.ids}"
                )
            elif list(direct.ids) != list(reference):
                failures.append(
                    f"query {i}: sharded {direct.ids} != unsharded {reference}"
                )
        await server.stop()

    asyncio.run(main())
    if failures:
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        return 1
    print(
        f"serve-http self-test PASSED: {len(queries)} queries over HTTP, "
        f"{args.shards} shard(s), parity with direct serve and the "
        "unsharded snapshot engine"
    )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from .core.rstknn import RSTkNNSearcher as _Searcher
    from .obs import MetricsRegistry, MetricsSink, PhaseTimer

    registry = MetricsRegistry()
    timer = PhaseTimer()
    dataset = gn_like(n=args.n)
    with timer.phase("build"):
        tree = IURTree.build(dataset)
    with timer.phase("freeze"):
        tree.warm_kernels()
        if args.engine != "seed":
            tree.snapshot()
    searcher = _Searcher(tree, engine=args.engine, metrics=registry)
    sink = MetricsSink(registry)
    queries = sample_queries(dataset, args.queries)
    with timer.phase("walk"):
        for query in queries:
            searcher.search(query, args.k, trace=sink)
    timer.publish(registry)
    if args.format == "prom":
        sys.stdout.write(registry.to_prometheus())
    else:
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    dataset = gn_like(n=args.n)
    tree = IURTree.build(dataset)
    searcher = RSTkNNSearcher(tree, engine=args.engine)
    queries = sample_queries(dataset, args.queries)
    print(f"dataset: {dataset.stats()}")
    print(f"index:   {tree.stats().as_dict()}")
    for i, query in enumerate(queries):
        tree.reset_io()
        result = searcher.search(query, args.k)
        print(
            f"query {i}: |RSTkNN|={len(result.ids)} "
            f"io={tree.io.reads} stats={result.stats.as_dict()}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-rstknn",
        description="Reverse spatial-textual kNN reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment and print its table")
    p_run.add_argument("experiment", help="experiment id, e.g. E1")
    p_run.add_argument(
        "--scale", type=int, default=None, help="override the dataset size"
    )
    p_run.add_argument(
        "--out", default=None, help="append the table to a JSONL result log"
    )
    p_run.set_defaults(fn=_cmd_run)

    p_show = sub.add_parser("show", help="re-render stored experiment results")
    p_show.add_argument("log", help="JSONL result log written by `run --out`")
    p_show.add_argument(
        "experiment", nargs="?", default=None, help="experiment id to render"
    )
    p_show.set_defaults(fn=_cmd_show)

    p_bench = sub.add_parser("bench", help="run the quick one-page suite")
    p_bench.add_argument("--n", type=int, default=400)
    p_bench.add_argument("--k", type=int, default=5)
    p_bench.add_argument(
        "--no-base", action="store_true", help="skip the slow baseline row"
    )
    p_bench.set_defaults(fn=_cmd_bench)

    p_batch = sub.add_parser(
        "batch", help="run a query workload through the batch engine"
    )
    p_batch.add_argument("--n", type=int, default=800)
    p_batch.add_argument("--k", type=int, default=5)
    p_batch.add_argument("--queries", type=int, default=20)
    p_batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process fan-out; 1 = sequential with the shared bound cache",
    )
    p_batch.add_argument(
        "--cache",
        type=int,
        default=262144,
        help="shared pair-bound cache capacity (entries)",
    )
    p_batch.add_argument(
        "--method", choices=("iur", "ciur"), default="iur", help="index variant"
    )
    p_batch.add_argument(
        "--engine",
        choices=("seed", "snapshot", "auto", "approx"),
        default=None,
        help="traversal engine (default: REPRO_ENGINE, then auto); "
        "approx runs the sketch-guided filter of repro.approx",
    )
    p_batch.add_argument(
        "--warm-floors",
        action="store_true",
        help="arm frozen kNNL floors on exact snapshot/fused walks "
        "(bit-identical results, earlier pruning; also REPRO_WARM_FLOORS)",
    )
    p_batch.add_argument(
        "--approx-raw",
        action="store_true",
        help="with --engine approx: skip exact verification and return "
        "the raw conservative candidate set (a superset of the answer)",
    )
    p_batch.add_argument(
        "--sketch-sample-frac",
        type=float,
        default=None,
        help="fraction of objects whose k-distance curves are fitted "
        "from true kNN competitor similarities at sketch build time "
        "(0.0 = layout-window sampling only; default 1.0)",
    )
    p_batch.add_argument(
        "--no-lsh",
        action="store_true",
        help="disable the approx engine's LSH pre-filter stage "
        "(also REPRO_APPROX_LSH=0)",
    )
    p_batch.add_argument(
        "--mode",
        choices=("per-query", "fused"),
        default="per-query",
        help="batch execution mode; fused walks the snapshot once per "
        "spatial-locality group of queries",
    )
    p_batch.add_argument(
        "--group-size",
        type=int,
        default=8,
        help="queries fused into one snapshot walk (fused mode only)",
    )
    p_batch.add_argument(
        "--share",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help="parallel-mode index transport: shared-memory snapshot "
        "segment (zero-copy) or a pickled tree per worker",
    )
    _add_live_args(p_batch)
    p_batch.set_defaults(fn=_cmd_batch)

    p_serve = sub.add_parser(
        "serve-batch",
        help="run a workload through the fault-tolerant query service "
        "(deadlines, degradation chain, admission queue; honors "
        "REPRO_FAULTS)",
    )
    p_serve.add_argument("--n", type=int, default=800)
    p_serve.add_argument("--k", type=int, default=5)
    p_serve.add_argument("--queries", type=int, default=20)
    p_serve.add_argument(
        "--method", choices=("iur", "ciur"), default="iur", help="index variant"
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-query deadline in seconds (default: none)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission-queue capacity; excess requests are shed",
    )
    p_serve.add_argument(
        "--format",
        choices=("table", "prom"),
        default="table",
        help="append Prometheus metrics text after the summary table",
    )
    p_serve.add_argument(
        "--engine",
        choices=("fused", "snapshot", "seed", "auto", "approx"),
        default="auto",
        help="first engine of the degradation chain (auto = full "
        "fused -> snapshot -> seed chain; approx prepends the "
        "verified sketch filter)",
    )
    p_serve.add_argument(
        "--alpha",
        type=float,
        default=None,
        help="spatial/textual blend of the workload's similarity config",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process fan-out; > 1 runs the workload through the "
        "parallel batch engine (incompatible with --deadline)",
    )
    p_serve.add_argument(
        "--share",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help="parallel-mode index transport (see `batch --share`)",
    )
    _add_live_args(p_serve)
    p_serve.set_defaults(fn=_cmd_serve_batch)

    p_http = sub.add_parser(
        "serve-http",
        help="serve sharded scatter-gather RSTkNN over HTTP (asyncio "
        "front door; POST /search, GET /healthz, GET /metrics)",
    )
    p_http.add_argument("--n", type=int, default=2000)
    p_http.add_argument("--k", type=int, default=5, help="default k")
    p_http.add_argument(
        "--shards", type=int, default=4, help="Morton shard count"
    )
    p_http.add_argument("--host", default="127.0.0.1")
    p_http.add_argument("--port", type=int, default=8764)
    p_http.add_argument(
        "--method", choices=("iur", "ciur"), default="iur", help="index variant"
    )
    p_http.add_argument(
        "--alpha",
        type=float,
        default=None,
        help="spatial/textual blend of the served similarity config",
    )
    p_http.add_argument(
        "--workers",
        type=int,
        default=0,
        help="scatter worker processes (0 = in-process scatter)",
    )
    p_http.add_argument(
        "--share",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help="shard snapshot transport for the worker pool",
    )
    p_http.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-query deadline in seconds, spanning the whole "
        "scatter-gather (default: none)",
    )
    p_http.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="concurrent in-flight request cap; excess sheds with 503",
    )
    p_http.add_argument(
        "--queries",
        type=int,
        default=3,
        help="self-test query count (ignored when serving)",
    )
    p_http.add_argument(
        "--self-test",
        action="store_true",
        help="boot on an ephemeral port, run queries over HTTP, gate "
        "parity against direct serve and the unsharded engine, exit",
    )
    _add_live_args(p_http)
    p_http.set_defaults(fn=_cmd_serve_http)

    p_obs = sub.add_parser(
        "obs",
        help="run a small traced workload and export its metrics "
        "(JSON snapshot or Prometheus text)",
    )
    p_obs.add_argument("--n", type=int, default=400)
    p_obs.add_argument("--k", type=int, default=5)
    p_obs.add_argument("--queries", type=int, default=10)
    p_obs.add_argument(
        "--engine",
        choices=("seed", "snapshot", "auto", "approx"),
        default="auto",
        help="traversal engine the workload runs on",
    )
    p_obs.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="export format: JSON registry snapshot or Prometheus text",
    )
    p_obs.set_defaults(fn=_cmd_obs)

    p_demo = sub.add_parser("demo", help="build an index and run a few queries")
    p_demo.add_argument("--n", type=int, default=800)
    p_demo.add_argument("--k", type=int, default=5)
    p_demo.add_argument("--queries", type=int, default=3)
    p_demo.add_argument(
        "--engine",
        choices=("seed", "snapshot", "auto", "approx"),
        default=None,
        help="traversal engine (default: REPRO_ENGINE, then auto)",
    )
    p_demo.set_defaults(fn=_cmd_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
