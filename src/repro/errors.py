"""Exception hierarchy for the repro library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DatasetError(ReproError):
    """A dataset is malformed or inconsistent with an operation."""


class IndexError_(ReproError):
    """An index structure violated an internal invariant.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexCorruptionError`` from the
    package root.
    """


# Friendlier public alias.
IndexCorruptionError = IndexError_


class StorageError(ReproError):
    """The page store or buffer pool was used incorrectly."""


class PageFormatError(StorageError):
    """A serialized page could not be decoded."""


class BufferPoolError(StorageError):
    """Buffer pool misuse: over-pinning, unpinning an unpinned page, etc."""


class SnapshotSegmentError(StorageError):
    """A shared-memory snapshot segment could not be created or attached.

    Raised by :mod:`repro.perf.shm` when the zero-copy transport is
    unavailable (no numpy, no ``multiprocessing.shared_memory``) or a
    segment fails structural validation at attach time.
    """


class StaleSegmentError(SnapshotSegmentError):
    """An attached segment's generation does not match the live index.

    The parent stamps the tree's structural generation into the segment
    header at export; workers verify it at attach.  A mismatch means the
    index mutated after export — the segment must be re-created, never
    served.
    """


class OverlayPendingError(ReproError):
    """A frozen-only artifact was requested from a dirty live index.

    Raised by :class:`repro.lsm.LiveIndex` when ``snapshot()`` or
    ``export_segment()`` is called while overlay objects or tombstones
    are pending: the columnar snapshot cannot represent the live union,
    and serving the stale frozen one would silently drop writes.  Fold
    first (``freeze_step()`` / the background freezer) or use the merged
    seed walk.  Deliberately *not* a :class:`QueryError` — the query
    service's degradation chain treats it as an engine failure and
    degrades fused/snapshot hops to the merged seed walk.
    """


class QueryError(ReproError):
    """A query was issued with invalid parameters."""


class ServiceError(ReproError):
    """The query service could not complete a request.

    Raised when every engine in the degradation chain failed; the
    triggering engine failure is attached as ``__cause__``.
    """


class DeadlineExceeded(ServiceError):
    """A query ran past its deadline (or was cooperatively cancelled).

    Engines check the cancellation token at node-expansion granularity,
    so the exception surfaces within one expansion of the limit and
    carries the partial :class:`~repro.core.rstknn.SearchStats`
    accumulated up to that point in :attr:`stats` (``None`` when the
    deadline expired before any engine work started).
    """

    def __init__(self, message: str = "deadline exceeded", stats=None) -> None:
        super().__init__(message)
        #: Partial decision counters of the interrupted search.
        self.stats = stats


class QueueFull(ServiceError):
    """The admission queue shed a request (``max_pending`` reached)."""


class FaultInjected(ServiceError):
    """A deterministic failure injected by :mod:`repro.service.faults`.

    Only ever raised when the ``REPRO_FAULTS`` environment variable (or
    an explicit :func:`repro.service.faults.set_plan`) arms a fault
    plan; production runs never see it.
    """
