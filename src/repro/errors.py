"""Exception hierarchy for the repro library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DatasetError(ReproError):
    """A dataset is malformed or inconsistent with an operation."""


class IndexError_(ReproError):
    """An index structure violated an internal invariant.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexCorruptionError`` from the
    package root.
    """


# Friendlier public alias.
IndexCorruptionError = IndexError_


class StorageError(ReproError):
    """The page store or buffer pool was used incorrectly."""


class PageFormatError(StorageError):
    """A serialized page could not be decoded."""


class BufferPoolError(StorageError):
    """Buffer pool misuse: over-pinning, unpinning an unpinned page, etc."""


class QueryError(ReproError):
    """A query was issued with invalid parameters."""
