"""ASCII rendering of a (C)IUR-tree: structure, sizes, text summaries.

For documentation and debugging — a glanceable view of what the index
actually built::

    node#6 [2 children, 8 objs] mbr=(0.7,0.6)-(4.8,4.6)
    ├── node#4 [2 children, 4 objs] clusters={0:4}
    │   ├── leaf#0 [3 objs]
    │   └── leaf#1 [1 objs]
    └── node#5 [2 children, 4 objs]
        ...
"""

from __future__ import annotations

from typing import List

from ..index.iurtree import IURTree


def render_tree(
    tree: IURTree,
    max_depth: int = 4,
    show_objects: bool = False,
    show_clusters: bool = True,
) -> str:
    """Render the tree as an indented ASCII outline.

    Args:
        tree: The index to draw.
        max_depth: Deepest level to draw (root is depth 0); deeper
            subtrees are summarized as ``...``.
        show_objects: Also list leaf object ids and their keywords.
        show_clusters: Include per-node cluster histograms.
    """
    rtree = tree.rtree
    lines: List[str] = []
    if rtree.root_id is None:
        lines.append("(empty tree)")
    else:
        _render_node(
            tree, rtree.root_id, "", "", 0, max_depth, show_objects,
            show_clusters, lines,
        )
    outliers = tree.outliers
    if outliers:
        lines.append(f"+ {len(outliers)} OE outliers (scanned exactly): "
                     + ", ".join(f"#{o.oid}" for o in outliers[:8])
                     + ("..." if len(outliers) > 8 else ""))
    return "\n".join(lines)


def _render_node(
    tree: IURTree,
    node_id: int,
    prefix: str,
    branch: str,
    depth: int,
    max_depth: int,
    show_objects: bool,
    show_clusters: bool,
    lines: List[str],
) -> None:
    node = tree.rtree.node(node_id)
    mbr = node.mbr()
    kind = "leaf" if node.is_leaf else "node"
    if node.is_leaf:
        size = f"{node.fanout} objs"
    else:
        size = f"{node.fanout} children, {node.object_count()} objs"
    label = (
        f"{branch}{kind}#{node_id} [{size}] "
        f"mbr=({mbr.xlo:.1f},{mbr.ylo:.1f})-({mbr.xhi:.1f},{mbr.yhi:.1f})"
    )
    if show_clusters:
        histogram = {}
        for entry in node.entries:
            for cid, iv in entry.clusters.items():
                histogram[cid] = histogram.get(cid, 0) + iv.doc_count
        label += " clusters={" + ", ".join(
            f"{cid}:{count}" for cid, count in sorted(histogram.items())
        ) + "}"
    lines.append(prefix + label)
    if node.is_leaf:
        if show_objects:
            for i, entry in enumerate(node.entries):
                obj = tree.dataset.get(entry.ref)
                connector = "└── " if i == len(node.entries) - 1 else "├── "
                child_prefix = prefix + ("    " if branch.startswith("└") else "│   " if branch else "")
                kws = " ".join(obj.keywords[:4])
                lines.append(f"{child_prefix}{connector}obj#{obj.oid} '{kws}'")
        return
    if depth >= max_depth:
        inner = prefix + ("    " if branch.startswith("└") else "│   " if branch else "")
        lines.append(inner + f"... ({node.fanout} subtrees elided)")
        return
    for i, entry in enumerate(node.entries):
        last = i == len(node.entries) - 1
        connector = "└── " if last else "├── "
        child_prefix = prefix + (
            "    " if branch.startswith("└") else ("│   " if branch else "")
        )
        _render_node(
            tree,
            entry.ref,
            child_prefix,
            connector,
            depth + 1,
            max_depth,
            show_objects,
            show_clusters,
            lines,
        )
