"""Index quality metrics: the structural properties that predict pruning.

Three families of signal, computed per level and overall:

* **spatial quality** — mean node MBR area relative to the data region,
  and mean pairwise sibling overlap (classic R-tree quality measures:
  smaller and less overlapping is better);
* **textual purity** — mean distinct clusters per node and mean
  normalized cluster entropy (what the TE optimization keys on);
* **summary occupancy** — fraction of node summaries with non-empty
  intersection vectors (what the E15 ablation keys on: empty
  intersections mean the "I" of IUR is inert).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..index.iurtree import IURTree
from ..text.entropy import normalized_cluster_entropy


@dataclass(frozen=True)
class LevelQuality:
    """Aggregate quality of one tree level (root = level 0)."""

    level: int
    nodes: int
    mean_fanout: float
    mean_area_fraction: float
    mean_sibling_overlap: float
    mean_clusters_per_node: float
    mean_entropy: float
    intersection_occupancy: float


@dataclass(frozen=True)
class IndexQuality:
    """Whole-index quality report."""

    levels: List[LevelQuality]
    height: int
    nodes: int
    objects: int
    outliers: int

    def as_rows(self) -> List[List[str]]:
        """Rows for :func:`repro.bench.report.format_table`."""
        out = []
        for lq in self.levels:
            out.append(
                [
                    str(lq.level),
                    str(lq.nodes),
                    f"{lq.mean_fanout:.1f}",
                    f"{100 * lq.mean_area_fraction:.2f}%",
                    f"{100 * lq.mean_sibling_overlap:.2f}%",
                    f"{lq.mean_clusters_per_node:.2f}",
                    f"{lq.mean_entropy:.2f}",
                    f"{100 * lq.intersection_occupancy:.1f}%",
                ]
            )
        return out

    HEADERS = [
        "level",
        "nodes",
        "fanout",
        "area%",
        "overlap%",
        "clusters",
        "entropy",
        "int-occ%",
    ]


def measure_index_quality(tree: IURTree) -> IndexQuality:
    """Compute :class:`IndexQuality` for a built tree (no I/O charged —
    this is offline analysis over the in-memory structure)."""
    rtree = tree.rtree
    region_area = max(tree.dataset.region.area(), 1e-12)
    num_clusters = max(tree.num_clusters(), 1)

    # Assign levels by BFS from the root.
    levels: Dict[int, List[int]] = {}
    if rtree.root_id is not None:
        frontier = [(rtree.root_id, 0)]
        while frontier:
            nid, level = frontier.pop()
            levels.setdefault(level, []).append(nid)
            node = rtree.node(nid)
            if not node.is_leaf:
                frontier.extend((e.ref, level + 1) for e in node.entries)

    out: List[LevelQuality] = []
    for level in sorted(levels):
        node_ids = levels[level]
        fanouts: List[int] = []
        area_fracs: List[float] = []
        overlaps: List[float] = []
        clusters: List[int] = []
        entropies: List[float] = []
        int_total = int_nonempty = 0
        for nid in node_ids:
            node = rtree.node(nid)
            fanouts.append(node.fanout)
            area_fracs.append(node.mbr().area() / region_area)
            overlaps.append(_sibling_overlap(node))
            labels = {}
            for entry in node.entries:
                for cid, iv in entry.clusters.items():
                    labels[cid] = labels.get(cid, 0) + iv.doc_count
                    int_total += 1
                    if len(iv.intersection):
                        int_nonempty += 1
            clusters.append(len(labels))
            entropies.append(normalized_cluster_entropy(labels, num_clusters))
        n = len(node_ids)
        out.append(
            LevelQuality(
                level=level,
                nodes=n,
                mean_fanout=sum(fanouts) / n,
                mean_area_fraction=sum(area_fracs) / n,
                mean_sibling_overlap=sum(overlaps) / n,
                mean_clusters_per_node=sum(clusters) / n,
                mean_entropy=sum(entropies) / n,
                intersection_occupancy=(
                    int_nonempty / int_total if int_total else 0.0
                ),
            )
        )
    return IndexQuality(
        levels=out,
        height=rtree.height(),
        nodes=len(rtree.nodes),
        objects=len(tree.dataset),
        outliers=len(tree.outliers),
    )


def _sibling_overlap(node) -> float:
    """Mean pairwise overlap of the node's entry MBRs, normalized by the
    smaller rectangle's area (0 = disjoint siblings, 1 = fully nested)."""
    entries = node.entries
    if len(entries) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            a, b = entries[i].mbr, entries[j].mbr
            inter = a.intersection_area(b)
            denom = min(a.area(), b.area())
            if denom > 0.0:
                total += inter / denom
            elif inter > 0.0 or (a.intersects(b) and a.is_point()):
                total += 1.0
            pairs += 1
    return total / pairs if pairs else 0.0
