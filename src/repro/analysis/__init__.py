"""Analysis utilities: index quality metrics, bound profiling, tree views.

Everything here is read-only introspection used by the documentation,
the ablation write-ups, and DBAs tuning an index — nothing in the query
path depends on this package.
"""

from .index_quality import IndexQuality, measure_index_quality
from .bound_profile import BoundProfile, profile_bounds
from .treeviz import render_tree
from .workload_stats import WorkloadStats, measure_workload

__all__ = [
    "IndexQuality",
    "measure_index_quality",
    "BoundProfile",
    "profile_bounds",
    "render_tree",
    "WorkloadStats",
    "measure_workload",
]
