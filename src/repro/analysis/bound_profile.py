"""Bound-tightness profiling: how close are MinST/MaxST to the truth?

For sampled (node, object) pairs the profiler computes the bound band
``[MinST, MaxST]`` against the exact similarity spread of the node's
objects, yielding per-level *slack* statistics.  Slack is what the
searcher pays for: a slack-0 index would decide everything at the root.

Used by the documentation to show *why* the CIUR-tree helps (tighter
textual bands on clustered corpora) and by E15's narrative (intersection
vectors only shrink the lower slack when intersections are non-empty).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import SimilarityConfig
from ..core.bounds import BoundComputer
from ..index.entry import Entry
from ..index.iurtree import IURTree
from ..model.scorer import STScorer
from ..text import make_measure


@dataclass(frozen=True)
class BoundProfile:
    """Slack statistics for one tree level.

    ``lower_slack`` = mean(actual_min − MinST); ``upper_slack`` =
    mean(MaxST − actual_max); both non-negative for sound bounds (the
    profiler asserts it).
    """

    level: int
    samples: int
    mean_band_width: float
    mean_lower_slack: float
    mean_upper_slack: float


def profile_bounds(
    tree: IURTree,
    config: Optional[SimilarityConfig] = None,
    sample_pairs: int = 40,
    seed: int = 17,
) -> List[BoundProfile]:
    """Profile bound tightness per level against exact similarities.

    Raises ``AssertionError`` if any bound is violated — doubling as a
    deep end-to-end check of the entire bound stack on real tree nodes.
    """
    cfg = config if config is not None else tree.dataset.config
    bounds = BoundComputer(
        tree.dataset.proximity, make_measure(cfg.text_measure), cfg.alpha
    )
    scorer = STScorer.for_dataset(tree.dataset, cfg)
    rng = random.Random(seed)
    rtree = tree.rtree
    dataset = tree.dataset

    levels: Dict[int, List[int]] = {}
    if rtree.root_id is not None:
        stack = [(rtree.root_id, 0)]
        while stack:
            nid, level = stack.pop()
            levels.setdefault(level, []).append(nid)
            node = rtree.node(nid)
            if not node.is_leaf:
                stack.extend((e.ref, level + 1) for e in node.entries)

    out: List[BoundProfile] = []
    for level in sorted(levels):
        node_ids = levels[level]
        widths: List[float] = []
        lower_slacks: List[float] = []
        upper_slacks: List[float] = []
        for _ in range(sample_pairs):
            nid = node_ids[rng.randrange(len(node_ids))]
            node = rtree.node(nid)
            probe = dataset.objects[rng.randrange(len(dataset.objects))]
            probe_entry = Entry.for_object(probe.oid, probe.mbr(), probe.vector)
            node_entry = Entry.for_subtree(nid, node.mbr(), node.entries)
            lo, hi = bounds.st_bounds(probe_entry, node_entry)
            members = _objects_under(rtree, node)
            sims = [
                scorer.score(probe, dataset.get(oid))
                for oid in members
                if oid != probe.oid
            ]
            if not sims:
                continue
            actual_min, actual_max = min(sims), max(sims)
            assert lo <= actual_min + 1e-9, "lower bound violated"
            assert actual_max <= hi + 1e-9, "upper bound violated"
            widths.append(hi - lo)
            lower_slacks.append(actual_min - lo)
            upper_slacks.append(hi - actual_max)
        if not widths:
            continue
        n = len(widths)
        out.append(
            BoundProfile(
                level=level,
                samples=n,
                mean_band_width=sum(widths) / n,
                mean_lower_slack=sum(lower_slacks) / n,
                mean_upper_slack=sum(upper_slacks) / n,
            )
        )
    return out


def _objects_under(rtree, node) -> List[int]:
    out: List[int] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            out.extend(e.ref for e in current.entries)
        else:
            stack.extend(rtree.node(e.ref) for e in current.entries)
    return out
