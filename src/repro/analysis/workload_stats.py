"""Corpus statistics: the workload properties that drive index behaviour.

Quantifies, for any dataset, the three characteristics DESIGN.md §4 says
the generators must reproduce — vocabulary skew, document length, and
spatial clusteredness — so users can compare their own data against the
bundled workloads and pick tuning knobs accordingly (see docs/TUNING.md).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List

from ..model.dataset import STDataset


@dataclass(frozen=True)
class WorkloadStats:
    """Summary statistics of one corpus."""

    objects: int
    vocabulary: int
    mean_doc_terms: float
    median_doc_terms: float
    max_doc_terms: int
    zipf_exponent: float
    top10_term_mass: float
    spatial_clustering: float
    region_diagonal: float

    def as_rows(self) -> List[List[str]]:
        """Rows for :func:`repro.bench.report.format_table`."""
        return [
            ["objects", str(self.objects)],
            ["vocabulary", str(self.vocabulary)],
            ["mean terms/doc", f"{self.mean_doc_terms:.2f}"],
            ["median terms/doc", f"{self.median_doc_terms:.1f}"],
            ["max terms/doc", str(self.max_doc_terms)],
            ["zipf exponent (fit)", f"{self.zipf_exponent:.2f}"],
            ["top-10 term mass", f"{100 * self.top10_term_mass:.1f}%"],
            ["spatial clustering (R)", f"{self.spatial_clustering:.2f}"],
            ["region diagonal", f"{self.region_diagonal:.2f}"],
        ]

    HEADERS = ["statistic", "value"]


def measure_workload(dataset: STDataset, sample: int = 400, seed: int = 7) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for a dataset.

    ``zipf_exponent`` is a least-squares fit of log-frequency against
    log-rank over the collection frequencies (≈1.0–1.2 for natural text).
    ``spatial_clustering`` is the Clark–Evans-style ratio R = observed
    mean nearest-neighbor distance / expected under uniformity: R ≈ 1 is
    random, R → 0 is strongly clustered, R > 1 is dispersed.  Computed on
    a sample for large corpora.
    """
    lens = sorted(len(o.vector) for o in dataset.objects)
    n = len(lens)
    mean_len = sum(lens) / n
    median_len = (
        lens[n // 2] if n % 2 else (lens[n // 2 - 1] + lens[n // 2]) / 2.0
    )

    vocab = dataset.vocabulary
    freqs = sorted(
        (vocab.collection_frequency(tid) for tid in range(len(vocab))),
        reverse=True,
    )
    freqs = [f for f in freqs if f > 0]
    zipf = _fit_zipf(freqs)
    total_mass = sum(freqs)
    top10 = sum(freqs[:10]) / total_mass if total_mass else 0.0

    clustering = _clark_evans(dataset, sample, seed)

    return WorkloadStats(
        objects=n,
        vocabulary=len(vocab),
        mean_doc_terms=mean_len,
        median_doc_terms=median_len,
        max_doc_terms=lens[-1],
        zipf_exponent=zipf,
        top10_term_mass=top10,
        spatial_clustering=clustering,
        region_diagonal=dataset.region.diagonal(),
    )


def _fit_zipf(freqs: List[int]) -> float:
    """Least-squares slope of log f vs log rank, negated."""
    if len(freqs) < 3:
        return 0.0
    xs = [math.log(rank) for rank in range(1, len(freqs) + 1)]
    ys = [math.log(f) for f in freqs]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    if var == 0.0:
        return 0.0
    return -cov / var


def _clark_evans(dataset: STDataset, sample: int, seed: int) -> float:
    """Clark–Evans nearest-neighbor ratio on a sample of points."""
    points = [o.point for o in dataset.objects]
    if len(points) < 2:
        return 1.0
    rng = random.Random(seed)
    probes = points if len(points) <= sample else rng.sample(points, sample)
    total_nn = 0.0
    for p in probes:
        best = min(
            p.distance_to(q) for q in points if q is not p
        )
        total_nn += best
    observed = total_nn / len(probes)
    area = max(dataset.region.area(), 1e-12)
    density = len(points) / area
    expected = 0.5 / math.sqrt(density) if density > 0 else 1.0
    if expected == 0.0:
        return 1.0
    return observed / expected
