"""CSV/TSV ingestion of spatial-textual records.

A :class:`CsvSchema` names the coordinate and text columns (by header or
index); :func:`load_csv_dataset` streams the file, validates coordinates,
optionally concatenates several text columns, and builds an
:class:`STDataset` under any similarity configuration.  Malformed rows
can be skipped (with a count returned) or raise, depending on
``strict``.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..config import SimilarityConfig
from ..errors import DatasetError
from ..model.dataset import STDataset
from ..spatial import Point

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CsvSchema:
    """Column mapping for a delimited spatial-textual file.

    Columns are named by header.  ``text_columns`` are concatenated with
    spaces — e.g. a POI file's name + category + description.
    """

    x_column: str = "x"
    y_column: str = "y"
    text_columns: Tuple[str, ...] = ("text",)
    delimiter: str = ","

    def __post_init__(self) -> None:
        if not self.text_columns:
            raise DatasetError("CsvSchema needs at least one text column")
        if len(self.delimiter) != 1:
            raise DatasetError("delimiter must be a single character")


@dataclass
class LoadReport:
    """What happened during ingestion."""

    rows_read: int = 0
    rows_loaded: int = 0
    rows_skipped: int = 0
    skipped_reasons: List[str] = field(default_factory=list)


def load_csv_dataset(
    path: PathLike,
    schema: Optional[CsvSchema] = None,
    config: Optional[SimilarityConfig] = None,
    strict: bool = False,
    max_rows: Optional[int] = None,
) -> Tuple[STDataset, LoadReport]:
    """Load a delimited file into a dataset.

    Args:
        path: The file to read (must have a header row).
        schema: Column mapping; defaults to ``x, y, text``.
        config: Similarity configuration for weighting.
        strict: Raise on the first malformed row instead of skipping.
        max_rows: Stop after this many data rows (sampling big files).

    Returns:
        ``(dataset, report)``.

    Raises:
        DatasetError: Unreadable file, missing columns, or (in strict
            mode) any malformed row — and always when zero rows load.
    """
    sch = schema if schema is not None else CsvSchema()
    report = LoadReport()
    records: List[Tuple[Point, str]] = []
    try:
        handle = open(path, newline="")
    except OSError as exc:
        raise DatasetError(f"cannot open {path}: {exc}") from exc
    with handle:
        reader = csv.DictReader(handle, delimiter=sch.delimiter)
        header = reader.fieldnames or []
        needed = [sch.x_column, sch.y_column, *sch.text_columns]
        missing = [col for col in needed if col not in header]
        if missing:
            raise DatasetError(
                f"{path} is missing columns {missing}; header is {header}"
            )
        for row in reader:
            if max_rows is not None and report.rows_read >= max_rows:
                break
            report.rows_read += 1
            try:
                point = Point(
                    _parse_coord(row[sch.x_column], sch.x_column),
                    _parse_coord(row[sch.y_column], sch.y_column),
                )
                text = " ".join(
                    (row[col] or "").strip() for col in sch.text_columns
                ).strip()
                if not text:
                    raise DatasetError("empty text")
            except DatasetError as exc:
                if strict:
                    raise DatasetError(
                        f"{path} row {report.rows_read}: {exc}"
                    ) from exc
                report.rows_skipped += 1
                if len(report.skipped_reasons) < 10:
                    report.skipped_reasons.append(
                        f"row {report.rows_read}: {exc}"
                    )
                continue
            records.append((point, text))
            report.rows_loaded += 1
    if not records:
        raise DatasetError(f"{path}: no loadable rows")
    return STDataset.from_corpus(records, config), report


def write_csv(
    dataset: STDataset, path: PathLike, schema: Optional[CsvSchema] = None
) -> None:
    """Write a dataset's records out in the schema's column layout.

    Text is written as the object's keyword set (term frequencies are a
    property of the weighting, not the raw file); loading the file back
    reproduces locations and vocabulary, not exact TF counts.
    """
    sch = schema if schema is not None else CsvSchema()
    text_col = sch.text_columns[0]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(
            handle,
            fieldnames=[sch.x_column, sch.y_column, text_col],
            delimiter=sch.delimiter,
        )
        writer.writeheader()
        for obj in dataset.objects:
            writer.writerow(
                {
                    sch.x_column: repr(obj.point.x),
                    sch.y_column: repr(obj.point.y),
                    text_col: " ".join(obj.keywords),
                }
            )


def _parse_coord(raw: Optional[str], column: str) -> float:
    if raw is None or not raw.strip():
        raise DatasetError(f"missing {column}")
    try:
        value = float(raw)
    except ValueError:
        raise DatasetError(f"non-numeric {column}: {raw!r}") from None
    if value != value or value in (float("inf"), float("-inf")):
        raise DatasetError(f"non-finite {column}: {raw!r}")
    return value
