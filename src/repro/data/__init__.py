"""Tabular data ingestion: CSV/TSV loaders for real-world corpora.

The :mod:`repro.io` package handles *exact* round-trips of library
objects; this package handles the messier job of getting external data
in — delimited files with configurable columns, coordinate validation,
and de-duplication — plus a small bundled sample corpus for docs and
smoke tests.
"""

from .csv_loader import CsvSchema, load_csv_dataset, write_csv
from .sample import sample_dataset, sample_records

__all__ = [
    "CsvSchema",
    "load_csv_dataset",
    "write_csv",
    "sample_dataset",
    "sample_records",
]
