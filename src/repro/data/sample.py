"""A small bundled sample corpus: 60 POIs of a fictional city.

Hand-curated so docs, doctests, and smoke examples have a stable,
human-readable dataset with genuine spatial districts (harbor, old town,
station, campus) and textual categories (food, lodging, culture,
services).  Coordinates are kilometers on a 10×10 grid.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..config import SimilarityConfig
from ..model.dataset import STDataset
from ..spatial import Point

#: (x, y, description) — grouped by district for readability.
_SAMPLE_POIS: Tuple[Tuple[float, float, str], ...] = (
    # Harbor (west, ~x 0-3, y 4-7): seafood, maritime
    (0.8, 5.2, "seafood restaurant oysters harbor view"),
    (1.1, 5.6, "fish market fresh seafood"),
    (1.4, 4.9, "sailing club marina boats"),
    (0.6, 6.1, "lighthouse museum maritime history"),
    (1.9, 5.8, "harbor hotel rooms breakfast"),
    (2.3, 5.1, "sushi bar japanese seafood"),
    (1.6, 6.4, "ferry terminal tickets travel"),
    (2.0, 4.6, "fishing supplies bait tackle"),
    (2.6, 6.0, "waterfront cafe coffee pastries"),
    (0.9, 4.4, "shipyard repairs maritime services"),
    # Old town (center, ~x 4-6, y 4-6): culture, dining
    (4.5, 5.0, "cathedral gothic architecture tours"),
    (4.8, 5.3, "art museum paintings sculpture"),
    (5.1, 4.7, "wine bar tapas evening"),
    (5.3, 5.5, "boutique hotel historic rooms"),
    (4.3, 4.5, "italian restaurant pasta pizza wine"),
    (5.6, 5.1, "antique books shop rare prints"),
    (4.9, 5.9, "theater opera concerts"),
    (5.4, 4.3, "chocolate shop pralines gifts"),
    (4.6, 5.6, "city hall civic services"),
    (5.0, 5.2, "plaza fountain landmark"),
    (5.8, 5.7, "jazz club live music cocktails"),
    (4.2, 5.8, "walking tours history guide"),
    # Station district (south, ~x 4-7, y 0-3): transit, fast food, services
    (5.2, 1.2, "central station trains transit"),
    (5.5, 1.5, "fast food burgers fries"),
    (4.9, 0.9, "kebab takeaway late night"),
    (5.8, 1.1, "budget hostel beds backpackers"),
    (6.2, 1.8, "pharmacy health essentials"),
    (4.6, 1.6, "convenience store snacks drinks"),
    (6.0, 0.7, "car rental vehicles travel"),
    (5.1, 2.2, "noodle bar asian quick lunch"),
    (6.5, 1.4, "copy shop printing services"),
    (4.4, 2.0, "bike rental city tours"),
    # Campus (north-east, ~x 7-9, y 7-9): study, cheap eats, tech
    (7.6, 8.1, "university library study books"),
    (8.0, 8.4, "student cafe coffee cheap lunch"),
    (8.3, 7.7, "computer store laptops repairs"),
    (7.9, 7.4, "copy center printing thesis binding"),
    (8.6, 8.0, "ramen noodles japanese student favorite"),
    (7.3, 7.9, "physics institute research lectures"),
    (8.2, 8.8, "botanical garden plants walks"),
    (8.8, 8.5, "bookshop textbooks stationery"),
    (7.7, 8.7, "gym fitness climbing wall"),
    (8.5, 7.2, "pizza slice takeaway student deal"),
    # Market quarter (north-west, ~x 1-3, y 7-9): food, crafts
    (1.8, 8.2, "farmers market vegetables cheese"),
    (2.2, 8.6, "bakery bread croissants"),
    (1.5, 7.8, "craft brewery beer tasting"),
    (2.6, 8.1, "flower shop bouquets plants"),
    (2.0, 7.5, "butcher sausages regional"),
    (2.9, 8.8, "ceramics studio pottery classes"),
    (1.2, 8.5, "tea house herbal infusions"),
    (2.4, 7.2, "spice shop curry saffron"),
    # Scattered suburbs
    (9.3, 2.1, "garden center plants tools"),
    (8.9, 0.8, "warehouse furniture discount"),
    (0.5, 9.1, "country inn rooms quiet"),
    (9.6, 9.4, "observatory stars tours"),
    (0.4, 0.6, "campground tents nature"),
    (3.4, 3.2, "city park playground picnic"),
    (6.8, 6.2, "river bridge viewpoint"),
    (3.8, 6.9, "swimming pool sauna family"),
    (7.1, 4.1, "football stadium matches events"),
    (3.1, 1.0, "airport shuttle transfers travel"),
)


def sample_records() -> List[Tuple[Point, str]]:
    """The raw (location, description) records of the sample city."""
    return [(Point(x, y), text) for x, y, text in _SAMPLE_POIS]


def sample_dataset(config: Optional[SimilarityConfig] = None) -> STDataset:
    """The bundled sample city as a weighted dataset (60 POIs)."""
    return STDataset.from_corpus(sample_records(), config)
