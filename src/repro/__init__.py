"""repro — Reverse Spatial and Textual k Nearest Neighbor Search.

A from-scratch reproduction of Lu, Lu and Cong, *"Reverse spatial and
textual k nearest neighbor search"* (SIGMOD 2011): RSTkNN queries over
the IUR-tree and CIUR-tree spatial-textual indexes, with a simulated-I/O
storage substrate, baselines, bichromatic extension, and a full
benchmark harness.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the reproduced evaluation.

Quickstart::

    from repro import IURTree, RSTkNNSearcher
    from repro.workloads import gn_like, sample_queries

    dataset = gn_like(n=1000)
    tree = IURTree.build(dataset)
    searcher = RSTkNNSearcher(tree)
    query = sample_queries(dataset, 1)[0]
    result = searcher.search(query, k=5)
    print(result.ids, result.stats.as_dict())
"""

from .config import (
    DEFAULT_CONFIG,
    IndexConfig,
    PerfConfig,
    ReproConfig,
    SimilarityConfig,
)
from .errors import (
    BufferPoolError,
    ConfigError,
    DatasetError,
    DeadlineExceeded,
    FaultInjected,
    IndexCorruptionError,
    OverlayPendingError,
    PageFormatError,
    QueryError,
    QueueFull,
    ReproError,
    ServiceError,
    StorageError,
)
from .spatial import Point, Rect, SpatialProximity
from .text import (
    IntervalVector,
    SparseVector,
    Vocabulary,
    make_measure,
    make_weighting,
)
from .model import STDataset, STObject, STScorer
from .index import CIURTree, Entry, IndexStats, IURTree, RTree
from .core import (
    BichromaticRSTkNN,
    BoundComputer,
    BruteForceRSTkNN,
    RSTkNNSearcher,
    SearchResult,
    SearchStats,
    InfluenceResult,
    LocationSelector,
    SearchTrace,
    SelectionReport,
    SpatialKeywordSearcher,
    ThresholdBaseline,
    TopKSearcher,
)
from .index.costmodel import CostEstimate, RSTkNNCostModel, estimate_rstknn_io
from .io import load_dataset, load_index, save_dataset, save_index
from .lsm import LiveIndex, LiveScatterGather
from .perf import BatchResult, BatchSearcher, BatchStats, BoundCache, CacheStats
from .service import (
    DEGRADATION_CHAIN,
    CancelToken,
    Deadline,
    QueryService,
    RetryPolicy,
    ServiceBatchResult,
    ServiceResult,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # config
    "DEFAULT_CONFIG",
    "IndexConfig",
    "PerfConfig",
    "ReproConfig",
    "SimilarityConfig",
    # errors
    "BufferPoolError",
    "ConfigError",
    "DatasetError",
    "DeadlineExceeded",
    "FaultInjected",
    "IndexCorruptionError",
    "OverlayPendingError",
    "PageFormatError",
    "QueryError",
    "QueueFull",
    "ReproError",
    "ServiceError",
    "StorageError",
    # spatial
    "Point",
    "Rect",
    "SpatialProximity",
    # text
    "IntervalVector",
    "SparseVector",
    "Vocabulary",
    "make_measure",
    "make_weighting",
    # model
    "STDataset",
    "STObject",
    "STScorer",
    # index
    "CIURTree",
    "Entry",
    "IndexStats",
    "IURTree",
    "RTree",
    # core
    "BichromaticRSTkNN",
    "BoundComputer",
    "BruteForceRSTkNN",
    "RSTkNNSearcher",
    "SearchResult",
    "SearchStats",
    "InfluenceResult",
    "LocationSelector",
    "SearchTrace",
    "SelectionReport",
    "SpatialKeywordSearcher",
    "ThresholdBaseline",
    "TopKSearcher",
    # cost model
    "CostEstimate",
    "RSTkNNCostModel",
    "estimate_rstknn_io",
    # persistence
    "load_dataset",
    "load_index",
    "save_dataset",
    "save_index",
    # lsm (live updates)
    "LiveIndex",
    "LiveScatterGather",
    # perf
    "BatchResult",
    "BatchSearcher",
    "BatchStats",
    "BoundCache",
    "CacheStats",
    # service
    "DEGRADATION_CHAIN",
    "CancelToken",
    "Deadline",
    "QueryService",
    "RetryPolicy",
    "ServiceBatchResult",
    "ServiceResult",
]
