"""Baselines the paper compares against.

* :class:`BruteForceRSTkNN` — exact O(n²) reference: for every object,
  rank every other object and check where the query lands.  The oracle
  for every correctness test in the suite.
* :class:`ThresholdBaseline` — the practical pre-IUR-tree strategy: index
  the objects, then answer RSTkNN by running one top-k query *per object*
  to learn its k-th neighbor score and comparing the query's similarity
  against it.  Correct, but pays ``n`` tree searches — exactly the cost
  profile the paper's group-level pruning removes.

Both implement the shared tie-inclusive membership: ``o`` is a result iff
strictly fewer than ``k`` other objects are strictly more similar to ``o``
than the query is — equivalently ``SimST(q, o) >= RS_k(o)``, the k-th
neighbor score (taken as 0 when fewer than ``k`` neighbors exist).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import SimilarityConfig
from ..errors import QueryError
from ..index.iurtree import IURTree
from ..model.dataset import STDataset
from ..model.objects import STObject
from ..model.scorer import STScorer
from .topk import TopKSearcher


class BruteForceRSTkNN:
    """Quadratic-time oracle for reverse spatial-textual kNN."""

    def __init__(
        self, dataset: STDataset, config: Optional[SimilarityConfig] = None
    ) -> None:
        self.dataset = dataset
        self.scorer = STScorer.for_dataset(dataset, config)

    def kth_neighbor_score(self, obj: STObject, k: int) -> float:
        """``RS_k(obj)``: the k-th largest SimST to other dataset objects."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        sims = sorted(
            (
                self.scorer.score(obj, other)
                for other in self.dataset.objects
                if other.oid != obj.oid
            ),
            reverse=True,
        )
        if len(sims) < k:
            return 0.0
        return sims[k - 1]

    def search(self, query: STObject, k: int) -> List[int]:
        """Sorted ids of all objects with the query in their top-k."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        results: List[int] = []
        for obj in self.dataset.objects:
            q_sim = self.scorer.score(query, obj)
            stronger = 0
            for other in self.dataset.objects:
                if other.oid == obj.oid:
                    continue
                if self.scorer.score(other, obj) > q_sim:
                    stronger += 1
                    if stronger >= k:
                        break
            if stronger <= k - 1:
                results.append(obj.oid)
        return sorted(results)

    def top_k(self, query: STObject, k: int) -> List[tuple]:
        """Brute-force top-k (oracle for :class:`TopKSearcher`)."""
        scored = sorted(
            ((self.scorer.score(query, o), o.oid) for o in self.dataset.objects),
            key=lambda so: (-so[0], so[1]),
        )
        return [(oid, score) for score, oid in scored[:k]]


class ThresholdBaseline:
    """Per-object top-k probing over a tree index (the pre-paper method)."""

    def __init__(
        self, tree: IURTree, config: Optional[SimilarityConfig] = None
    ) -> None:
        self.tree = tree
        self.topk = TopKSearcher(tree, config)
        self.scorer = STScorer.for_dataset(tree.dataset, config)

    def search(self, query: STObject, k: int) -> List[int]:
        """RSTkNN by issuing one top-k query per dataset object."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        results: List[int] = []
        for obj in self.tree.dataset.objects:
            q_sim = self.scorer.score(query, obj)
            threshold = self.topk.kth_score(obj, k, exclude_oid=obj.oid)
            if q_sim >= threshold:
                results.append(obj.oid)
        return sorted(results)

    def thresholds(self, k: int) -> Dict[int, float]:
        """``RS_k`` for every object (used by analyses and tests)."""
        return {
            obj.oid: self.topk.kth_score(obj, k, exclude_oid=obj.oid)
            for obj in self.tree.dataset.objects
        }
