"""Core RSTkNN machinery: bounds, contribution lists, searchers, baselines."""

from .bounds import BoundComputer
from .contributions import Contribution, ContributionList
from .rstknn import (
    ENGINE_CHOICES,
    ENGINE_ENV_VAR,
    RSTkNNSearcher,
    SearchResult,
    SearchStats,
)
from .traversal import SnapshotEngine
from .topk import TopKSearcher
from .baseline import BruteForceRSTkNN, ThresholdBaseline
from .bichromatic import BichromaticRSTkNN
from .explain import SearchTrace, TraceEvent
from .spatial_keyword import SpatialKeywordSearcher
from .location_selection import InfluenceResult, LocationSelector, SelectionReport

__all__ = [
    "BoundComputer",
    "Contribution",
    "ContributionList",
    "ENGINE_CHOICES",
    "ENGINE_ENV_VAR",
    "RSTkNNSearcher",
    "SearchResult",
    "SearchStats",
    "SnapshotEngine",
    "TopKSearcher",
    "BruteForceRSTkNN",
    "ThresholdBaseline",
    "BichromaticRSTkNN",
    "SearchTrace",
    "TraceEvent",
    "SpatialKeywordSearcher",
    "InfluenceResult",
    "LocationSelector",
    "SelectionReport",
]
