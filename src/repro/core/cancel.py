"""Engine-side half of cooperative cancellation.

The engines deliberately do not import :mod:`repro.service` (the
service imports them); they only agree on a *duck-typed* token
protocol: anything with an ``expired() -> bool`` method can be passed
as ``cancel`` to :meth:`RSTkNNSearcher.search
<repro.core.rstknn.RSTkNNSearcher.search>`, :meth:`SnapshotEngine.search
<repro.core.traversal.SnapshotEngine.search>`, or
:meth:`FusedBatchEngine.run_group
<repro.core.fused.FusedBatchEngine.run_group>`.  Engines poll the token
once at search start and once per node expansion — the unit of work
that dominates query cost — and raise
:class:`repro.errors.DeadlineExceeded` carrying the partial
:class:`~repro.core.rstknn.SearchStats` when it reports expiry.  With
``cancel=None`` (the default) no poll happens at all and the walks are
byte-for-byte the pre-cancellation code paths.
"""

from __future__ import annotations


def cancel_message(cancel: object) -> str:
    """The reason string for a ``DeadlineExceeded`` raised off ``cancel``.

    Uses the token's ``describe()`` when it offers one (the
    :mod:`repro.service.deadline` tokens do), so the exception says
    *which* limit fired ("deadline of 0.5s exceeded" vs "query
    cancelled"); any foreign token falls back to a generic message.
    """
    describe = getattr(cancel, "describe", None)
    if callable(describe):
        return str(describe())
    return "deadline exceeded"
