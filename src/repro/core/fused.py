"""Fused multi-query traversal: batch RSTkNN search over one snapshot.

A :class:`FusedBatchEngine` runs a *group* of queries over one
:class:`~repro.perf.snapshot.IndexSnapshot`, amortizing every piece of
per-node work that the per-query :class:`~repro.core.traversal.SnapshotEngine`
repeats for each query in a batch:

* **Group block tables** — when any query in the group expands a node,
  the spatial components of the query bounds for *all* of the group's
  queries against all of that node's children come from one vectorized
  ``(G, C)`` array pass (:func:`repro.perf.kernels.group_spatial_components`,
  numpy when available, pure-python fallback otherwise), finished with
  scalar ``math.hypot``/clamps per cell so each value is bit-identical
  to the scalar engine's.  Later queries in the group that reach the
  same node find their bounds precomputed.
* **Columnar text-bound tables** — the textual side of those bounds
  evaluates against the snapshot's
  :class:`~repro.perf.snapshot.SnapshotTextMatrix`: one sparse
  accumulation per query produces the query-vs-row dot products for
  *every* cluster and object summary at once
  (:func:`repro.perf.kernels.group_text_dots`).  Rows with at most two
  shared terms are bit-identical to the frozen-kernel reduction by IEEE
  commutativity; the few heavier rows are recomputed through the exact
  scalar kernel, so every Extended Jaccard bound matches the per-query
  engine bit for bit.
* **Sibling templates** — the mutual sibling/self contribution rows
  created at each expansion are identical for every query (they do not
  depend on the query at all), so they are built once per group as
  columnar row batches and bulk-appended into each query's candidate
  book.
* **Columnar candidate books** — each query's per-entry contribution
  list is a struct-of-arrays *book* (slot/lo/hi/count columns plus
  alive/tight masks and a slot->row position table) instead of a dict
  of tuples.  The prune/accept decision reduces the live columns with a
  vectorized weighted k-th largest (``argpartition``), and the lazy
  tightening pass selects its candidates with a stable argsort —
  both provably value-identical to the seed's ``heapq.nlargest`` over
  insertion-ordered items (stability reproduces the tie-breaks, and
  every contribution count is >= 1 so any top-k-by-value selection
  yields the same weighted k-th value).
* **Bitset frontiers** — per-query entry statuses live in integer
  bitsets over snapshot slots (plus one append-only discovery-order
  list that replays the seed's result-gathering and page-charge order).

The engine wraps the per-query snapshot engine of the same
``(measure, alpha, te_weight)`` setting and shares its persistent pair
memo and verification probe, so pair bounds, verify decisions, and
simulated I/O are the same values and the same charge sequences by
construction.  Result ids and decision counters are asserted identical
to the per-query engine in tests and in the fused benchmark's parity
gate.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.trace import TraceSink

from ..model.objects import STObject
from ..perf import kernels
from ..text.interval import IntervalVector
from ..text.similarity import ExtendedJaccard
from ..errors import DeadlineExceeded
from .cancel import cancel_message
from .contributions import _kth_largest
from .rstknn import SearchResult, SearchStats
from .traversal import _frontier_lookahead_from_env, tighten_width_for

#: Default number of queries fused into one group walk.
DEFAULT_GROUP_SIZE = 8

#: Pseudo-node key for the root-entry "block" (the initial live set).
_ROOT_BLOCK = -1

_c_lo = itemgetter(1)
_c_hi = itemgetter(2)


def _group_numpy():
    """numpy for the fused group structures, or None.

    A separate seam from :func:`repro.perf.kernels._numpy` so tests can
    force the pure-python fused path without unfreezing kernel forms.
    """
    return kernels._numpy()


def _interleave16(v: int) -> int:
    """Spread the low 16 bits of ``v`` into the even bit positions."""
    v &= 0xFFFF
    v = (v | (v << 8)) & 0x00FF00FF
    v = (v | (v << 4)) & 0x0F0F0F0F
    v = (v | (v << 2)) & 0x33333333
    v = (v | (v << 1)) & 0x55555555
    return v


def locality_order(queries: Sequence[STObject]) -> List[int]:
    """Workload indices sorted by Morton code of the query centers.

    Groups cut from this order hold spatially close queries, which is
    what makes fused walks effective: nearby queries expand nearly the
    same frontier, so the group's shared block tables and templates are
    computed once and reused by every member.  Deterministic (stable on
    code ties) so batch runs are reproducible.
    """
    pts = []
    for q in queries:
        m = q.mbr()
        pts.append(((m.xlo + m.xhi) / 2.0, (m.ylo + m.yhi) / 2.0))
    if not pts:
        return []
    xmin = min(p[0] for p in pts)
    xmax = max(p[0] for p in pts)
    ymin = min(p[1] for p in pts)
    ymax = max(p[1] for p in pts)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    coded = []
    for i, (x, y) in enumerate(pts):
        xi = int((x - xmin) / xspan * 0xFFFF)
        yi = int((y - ymin) / yspan * 0xFFFF)
        coded.append((_interleave16(xi) | (_interleave16(yi) << 1), i))
    coded.sort()
    return [i for _, i in coded]


def make_groups(queries: Sequence[STObject], group_size: int) -> List[List[int]]:
    """Locality-ordered index groups of at most ``group_size`` queries."""
    order = locality_order(queries)
    return [
        order[i : i + group_size] for i in range(0, len(order), group_size)
    ]


def _np_kth(np, values, counts, k: int) -> float:
    """Weighted k-th largest over columnar (values, counts) — the
    vectorized twin of :func:`repro.core.contributions._kth_largest`.

    Every count is >= 1 (entry counts, or ``count - 1`` of an entry
    with ``count >= 2``), so the weighted k-th element always lies
    within the ``k`` largest entries by value and ``argpartition``
    selection is exact; the returned float is one of the stored bound
    values, untouched by arithmetic, hence bit-identical.
    """
    m = values.shape[0]
    if m == 0:
        return 0.0
    if m > k:
        sel = np.argpartition(values, m - k)[m - k :]
        values = values[sel]
        counts = counts[sel]
    order = np.argsort(-values, kind="stable")
    remaining = k
    for j in order:
        c = int(counts[j])
        if c <= 0:
            continue
        remaining -= c
        if remaining <= 0:
            return float(values[j])
    return 0.0


class _NpBook:
    """Columnar contribution book over numpy arrays.

    Rows are stored in insertion order (exactly the insertion order of
    the seed's contribution dict); deletions flip the ``alive`` mask so
    surviving rows keep their relative order, which is what makes the
    stable-argsort candidate selection reproduce ``heapq.nlargest``
    tie-breaking.  The reduction columns (``lo``/``hi``/``cnt``/
    ``alive``) are numpy arrays because :meth:`decide` consumes them
    whole; ``pos`` (slot -> row + 1, 0 = absent) and ``tight`` are
    plain lists because the tightening pass reads them one element at
    a time, where numpy scalar indexing is the dominant cost.
    """

    __slots__ = ("np", "slots", "lo", "hi", "cnt", "alive", "tight", "pos", "n")

    def __init__(self, np, n_slots: int, cap: int) -> None:
        self.np = np
        cap = max(cap, 8)
        self.slots = np.empty(cap, dtype=np.intp)
        self.lo = np.empty(cap, dtype=np.float64)
        self.hi = np.empty(cap, dtype=np.float64)
        self.cnt = np.empty(cap, dtype=np.int64)
        self.alive = np.zeros(cap, dtype=bool)
        self.tight: List[bool] = []
        self.pos = [0] * n_slots
        self.n = 0

    def _ensure(self, extra: int) -> None:
        need = self.n + extra
        cap = self.slots.shape[0]
        if need <= cap:
            return
        np = self.np
        cap = max(cap * 2, need + 8)
        for name in ("slots", "lo", "hi", "cnt", "alive"):
            src = getattr(self, name)
            dst = np.empty(cap, dtype=src.dtype)
            dst[: self.n] = src[: self.n]
            setattr(self, name, dst)

    def clone(self, extra: int) -> "_NpBook":
        """Copy for a child book: values inherited, tight flags cleared
        (the seed starts every child's tight-set empty)."""
        np = self.np
        book = _NpBook.__new__(_NpBook)
        book.np = np
        n = self.n
        cap = n + extra + 8
        for name in ("slots", "lo", "hi", "cnt", "alive"):
            src = getattr(self, name)
            dst = np.empty(cap, dtype=src.dtype)
            dst[:n] = src[:n]
            setattr(book, name, dst)
        book.tight = [False] * n
        book.pos = self.pos[:]
        book.n = n
        return book

    def extend(self, batch) -> None:
        """Bulk-append a template/substitution row batch (rows tight)."""
        slots_a, lo_a, hi_a, cnt_a = batch
        m = len(slots_a)
        if m == 0:
            return
        self._ensure(m)
        n0 = self.n
        n1 = n0 + m
        self.slots[n0:n1] = slots_a
        self.lo[n0:n1] = lo_a
        self.hi[n0:n1] = hi_a
        self.cnt[n0:n1] = cnt_a
        self.alive[n0:n1] = True
        self.tight.extend([True] * m)
        pos = self.pos
        for i, slot in enumerate(slots_a, n0 + 1):
            pos[slot] = i
        self.n = n1

    def kill(self, slot: int) -> None:
        p = self.pos[slot]
        if p:
            self.alive[p - 1] = False
            self.pos[slot] = 0

    def has(self, slot: int) -> bool:
        return bool(self.pos[slot])

    def is_tight(self, slot: int) -> bool:
        return self.tight[self.pos[slot] - 1]

    def retighten(self, slot: int, lo: float, hi: float) -> None:
        """Replace a loose inherited row with its direct pair bound
        (the count is unchanged, as in the seed's recompute branch)."""
        p = self.pos[slot] - 1
        self.lo[p] = lo
        self.hi[p] = hi
        self.tight[p] = True

    def decide(self, q_lo: float, q_hi: float, k: int) -> int:
        n = self.n
        mask = self.alive[:n]
        np = self.np
        counts = self.cnt[:n][mask]
        if q_hi < _np_kth(np, self.lo[:n][mask], counts, k):
            return -1
        if q_lo >= _np_kth(np, self.hi[:n][mask], counts, k):
            return 1
        return 0

    def knn_bounds(self, k: int) -> Tuple[float, float]:
        """Current ``(kNNL, kNNU)`` band over the live rows (for trace
        events; same selection the decision rules consume)."""
        n = self.n
        mask = self.alive[:n]
        np = self.np
        counts = self.cnt[:n][mask]
        return (
            _np_kth(np, self.lo[:n][mask], counts, k),
            _np_kth(np, self.hi[:n][mask], counts, k),
        )

    def candidate_slots(self, width: int) -> List[int]:
        """Slots of the top-``width`` live rows by lo, then by hi —
        the same sequence ``heapq.nlargest`` yields over the seed's
        insertion-ordered items (stable sort reproduces the tie-breaks)."""
        np = self.np
        n = self.n
        rows = np.flatnonzero(self.alive[:n])
        slots = self.slots[rows]
        by_lo = np.argsort(-self.lo[rows], kind="stable")[:width]
        by_hi = np.argsort(-self.hi[rows], kind="stable")[:width]
        return slots[np.concatenate((by_lo, by_hi))].tolist()


class _PyBook:
    """Pure-python columnar book (numpy-absent fallback), same contract."""

    __slots__ = ("slots", "lo", "hi", "cnt", "alive", "tight", "pos", "n")

    def __init__(self, n_slots: int, cap: int = 0) -> None:
        self.slots: List[int] = []
        self.lo: List[float] = []
        self.hi: List[float] = []
        self.cnt: List[int] = []
        self.alive: List[bool] = []
        self.tight: List[bool] = []
        self.pos = [0] * n_slots
        self.n = 0

    def clone(self, extra: int) -> "_PyBook":
        book = _PyBook.__new__(_PyBook)
        book.slots = self.slots[:]
        book.lo = self.lo[:]
        book.hi = self.hi[:]
        book.cnt = self.cnt[:]
        book.alive = self.alive[:]
        book.tight = [False] * self.n
        book.pos = self.pos[:]
        book.n = self.n
        return book

    def extend(self, batch) -> None:
        slots_a, lo_a, hi_a, cnt_a = batch
        m = len(slots_a)
        if m == 0:
            return
        n0 = self.n
        self.slots.extend(slots_a)
        self.lo.extend(lo_a)
        self.hi.extend(hi_a)
        self.cnt.extend(cnt_a)
        self.alive.extend([True] * m)
        self.tight.extend([True] * m)
        pos = self.pos
        for i, slot in enumerate(slots_a, n0 + 1):
            pos[slot] = i
        self.n = n0 + m

    def kill(self, slot: int) -> None:
        p = self.pos[slot]
        if p:
            self.alive[p - 1] = False
            self.pos[slot] = 0

    def has(self, slot: int) -> bool:
        return bool(self.pos[slot])

    def is_tight(self, slot: int) -> bool:
        return self.tight[self.pos[slot] - 1]

    def retighten(self, slot: int, lo: float, hi: float) -> None:
        p = self.pos[slot] - 1
        self.lo[p] = lo
        self.hi[p] = hi
        self.tight[p] = True

    def decide(self, q_lo: float, q_hi: float, k: int) -> int:
        lows: List[Tuple[float, int]] = []
        highs: List[Tuple[float, int]] = []
        lo, hi, cnt, alive = self.lo, self.hi, self.cnt, self.alive
        for i in range(self.n):
            if alive[i]:
                lows.append((lo[i], cnt[i]))
                highs.append((hi[i], cnt[i]))
        if q_hi < _kth_largest(lows, k):
            return -1
        if q_lo >= _kth_largest(highs, k):
            return 1
        return 0

    def knn_bounds(self, k: int) -> Tuple[float, float]:
        """Current ``(kNNL, kNNU)`` band over the live rows (for trace
        events; same selection the decision rules consume)."""
        lows: List[Tuple[float, int]] = []
        highs: List[Tuple[float, int]] = []
        lo, hi, cnt, alive = self.lo, self.hi, self.cnt, self.alive
        for i in range(self.n):
            if alive[i]:
                lows.append((lo[i], cnt[i]))
                highs.append((hi[i], cnt[i]))
        return (_kth_largest(lows, k), _kth_largest(highs, k))

    def candidate_slots(self, width: int) -> List[int]:
        items = []
        slots, lo, hi, alive = self.slots, self.lo, self.hi, self.alive
        for i in range(self.n):
            if alive[i]:
                items.append((slots[i], lo[i], hi[i]))
        return [
            item[0] for item in heapq.nlargest(width, items, key=_c_lo)
        ] + [item[0] for item in heapq.nlargest(width, items, key=_c_hi)]


class _GroupState:
    """Shared per-group context: stacked query data and lazy tables."""

    __slots__ = (
        "G",
        "queries",
        "qxlo",
        "qylo",
        "qxhi",
        "qyhi",
        "q_ids",
        "q_ws",
        "q_frozen",
        "q_nsq",
        "q_iv",
        "blocks",
        "templates",
        "text_tables",
    )

    def __init__(self, eng: "FusedBatchEngine", queries: List[STObject]) -> None:
        self.queries = queries
        self.G = len(queries)
        qxlo: List[float] = []
        qylo: List[float] = []
        qxhi: List[float] = []
        qyhi: List[float] = []
        self.q_ids: List[Tuple[int, ...]] = []
        self.q_ws: List[Tuple[float, ...]] = []
        self.q_frozen: List = []
        self.q_nsq: List[float] = []
        for q in queries:
            m = q.mbr()
            qxlo.append(m.xlo)
            qylo.append(m.ylo)
            qxhi.append(m.xhi)
            qyhi.append(m.yhi)
            vec = q.vector
            self.q_ids.append(vec.term_ids())
            self.q_ws.append(tuple(w for _, w in vec.items()))
            self.q_frozen.append(vec.frozen())
            self.q_nsq.append(vec.norm_squared)
        np = eng._np
        if np is not None:
            self.qxlo = np.asarray(qxlo)
            self.qylo = np.asarray(qylo)
            self.qxhi = np.asarray(qxhi)
            self.qyhi = np.asarray(qyhi)
        else:
            self.qxlo, self.qylo, self.qxhi, self.qyhi = qxlo, qylo, qxhi, qyhi
        self.q_iv = (
            None
            if eng._ej
            else [IntervalVector.from_document(q.vector) for q in queries]
        )
        #: node key -> [g][child index] = (lo, hi) query bounds.
        self.blocks: Dict[int, List[List[Tuple[float, float]]]] = {}
        #: node key -> [child index] = columnar sibling/self row batch.
        self.templates: Dict[int, List] = {}
        #: per-query (int_dots, uni_dots, obj_sims) vs the text matrix.
        self.text_tables: Optional[List[Tuple]] = None


class FusedBatchEngine:
    """Group-at-a-time RSTkNN search over one snapshot (see module doc).

    One engine exists per ``(measure, alpha, te_weight)`` setting of a
    snapshot (:meth:`IndexSnapshot.fused_engine_for`); it wraps the
    per-query :class:`~repro.core.traversal.SnapshotEngine` of the same
    setting, sharing its pair memo and verification probe.
    """

    def __init__(
        self,
        tree,
        snap,
        measure,
        alpha: float,
        te_weight: float,
        floors=None,
    ) -> None:
        self.tree = tree
        self.snap = snap
        self.measure = measure
        self.alpha = alpha
        self.te_weight = te_weight
        #: Optional frozen :class:`~repro.approx.sketch.KnnlSketch`
        #: (same warm-start floor contract as
        #: :class:`~repro.core.traversal.SnapshotEngine`: ids unchanged,
        #: decision counters differ, memoized separately via
        #: :meth:`IndexSnapshot.warm_fused_engine_for`).
        self.floors = floors
        self.base = snap.engine_for(tree, measure, alpha, te_weight)
        self._ej = isinstance(measure, ExtendedJaccard)
        #: (key, expanded slot) -> columnar substitution row batch;
        #: persistent across groups (pair bounds are query-independent).
        self._sub_batches: Dict[Tuple[int, int], object] = {}
        np = _group_numpy()
        if np is not None and snap.np_xlo is None and snap.n_slots:
            np = None  # snapshot was frozen without numpy views
        self._np = np
        #: Frontier nodes whose block tables share one spatial kernel
        #: call (same knob/contract as the per-query engine's
        #: :data:`~repro.core.traversal.DEFAULT_FRONTIER_LOOKAHEAD`).
        self.frontier_lookahead = _frontier_lookahead_from_env()
        #: batch size -> kernel calls (observability, never in stats).
        self.frontier_hist: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_group(
        self,
        queries: Sequence[STObject],
        k: int,
        traces: Optional[Sequence[Optional["TraceSink"]]] = None,
        cancel: Optional[object] = None,
    ) -> List[SearchResult]:
        """Search every query of one group; results in input order.

        ``traces`` optionally attaches one :class:`repro.obs.TraceSink`
        per query (``None`` entries skip tracing for that query); each
        traced walk emits the same decision-event multiset the other
        engines produce for that query.

        ``cancel`` is one cooperative cancellation token for the whole
        group — group members share bound tables, so a finer grain would
        tear shared state mid-build.  It is polled once per node
        expansion of whichever member is walking; expiry raises
        :class:`~repro.errors.DeadlineExceeded` with that member's
        partial stats (completed members' results are discarded with the
        group).  The service keeps per-query deadlines exact by serving
        deadline-bearing queries as singleton groups.
        """
        gs = _GroupState(self, list(queries))
        if traces is None:
            return [
                self._search_one(gs, g, k, cancel=cancel)
                for g in range(gs.G)
            ]
        return [
            self._search_one(gs, g, k, trace=traces[g], cancel=cancel)
            for g in range(gs.G)
        ]

    # ------------------------------------------------------------------
    # Group-shared structures
    # ------------------------------------------------------------------

    def _new_book(self, cap: int):
        if self._np is not None:
            return _NpBook(self._np, self.snap.n_slots, cap)
        return _PyBook(self.snap.n_slots)

    def _block_slots(self, key: int) -> List[int]:
        snap = self.snap
        if key == _ROOT_BLOCK:
            return list(snap.root_slots)
        return list(range(snap.first_child[key], snap.last_child[key]))

    def _template(self, gs: _GroupState, key: int) -> List:
        """Per-child sibling/self contribution row batches for one node.

        Query-independent, so built once per group; the ``_st`` calls
        run in exactly the per-query engine's expansion order (each
        child's siblings in span order, then its self pair), so a cold
        pair memo is populated with the same owner-first operand order
        the per-query engine would use.
        """
        tmpl = gs.templates.get(key)
        if tmpl is not None:
            return tmpl
        slots = self._block_slots(key)
        st = self.base._st
        cnt = self.snap.cnt
        np = self._np
        tmpl = []
        for c in slots:
            t_slots: List[int] = []
            t_lo: List[float] = []
            t_hi: List[float] = []
            t_cnt: List[int] = []
            for sib in slots:
                if sib == c:
                    continue
                lo, hi = st(c, sib)
                t_slots.append(sib)
                t_lo.append(lo)
                t_hi.append(hi)
                t_cnt.append(cnt[sib])
            cc = cnt[c]
            if cc >= 2:
                lo, hi = st(c, c)
                t_slots.append(c)
                t_lo.append(lo)
                t_hi.append(hi)
                t_cnt.append(cc - 1)
            if np is not None:
                batch = (
                    np.asarray(t_slots, dtype=np.intp),
                    np.asarray(t_lo, dtype=np.float64),
                    np.asarray(t_hi, dtype=np.float64),
                    np.asarray(t_cnt, dtype=np.int64),
                )
            else:
                batch = (t_slots, t_lo, t_hi, t_cnt)
            tmpl.append(batch)
        gs.templates[key] = tmpl
        return tmpl

    def _text_tables_for(self, gs: _GroupState) -> List[Tuple]:
        tables = gs.text_tables
        if tables is None:
            tables = self._build_text_tables(gs)
            gs.text_tables = tables
        return tables

    def _build_text_tables(self, gs: _GroupState) -> List[Tuple]:
        """Per-query dot/similarity rows against the whole text matrix.

        One sparse accumulation per (query, postings family); rows with
        three or more shared terms are recomputed through the scalar
        frozen kernel so every value matches the per-query engine's
        frozen-set-order reduction bit for bit (see
        :func:`repro.perf.kernels.group_text_dots`).
        """
        tm = self.snap.text_matrix()
        np = self._np
        tables = []
        for g in range(gs.G):
            fro = gs.q_frozen[g]
            ids = gs.q_ids[g]
            ws = gs.q_ws[g]
            int_d = self._dots_with_fixup(
                tm.int_postings, ids, ws, tm.n_rows, fro, tm.int_frozen, np
            )
            uni_d = self._dots_with_fixup(
                tm.uni_postings, ids, ws, tm.n_rows, fro, tm.uni_frozen, np
            )
            obj_sim = [0.0] * tm.n_obj_rows
            res = kernels.group_text_dots(
                tm.obj_postings, ids, ws, tm.n_obj_rows, np
            )
            if res is not None:
                dots, overlaps = res
                if np is not None:
                    dots = dots.tolist()
                    overlaps = overlaps.tolist()
                q_nsq = gs.q_nsq[g]
                obj_nsq = tm.obj_nsq
                for r in range(tm.n_obj_rows):
                    ov = overlaps[r]
                    if ov == 0:
                        continue
                    if ov >= 3:
                        obj_sim[r] = fro.ext_jaccard(tm.obj_frozen[r])
                    else:
                        d = dots[r]
                        if d != 0.0:
                            obj_sim[r] = d / (q_nsq + obj_nsq[r] - d)
            tables.append((int_d, uni_d, obj_sim))
        return tables

    @staticmethod
    def _dots_with_fixup(postings, ids, ws, n_rows, fro, frozen_rows, np):
        res = kernels.group_text_dots(postings, ids, ws, n_rows, np)
        if res is None:
            return [0.0] * n_rows
        dots, overlaps = res
        if np is not None:
            heavy = np.flatnonzero(overlaps >= 3).tolist()
            dots = dots.tolist()
            for r in heavy:
                dots[r] = fro.dot(frozen_rows[r])
        else:
            for r in range(n_rows):
                if overlaps[r] >= 3:
                    dots[r] = fro.dot(frozen_rows[r])
        return dots

    def _q_text(
        self, gs: _GroupState, g: int, slot: int, tables, tm
    ) -> Tuple[float, float]:
        """``(MinSimT, MaxSimT)`` of query ``g`` vs a directory slot —
        the fused twin of the scalar engine's ``q_text`` closure."""
        lo: Optional[float] = None
        hi = 0.0
        if self._ej:
            int_d, uni_d, _ = tables[g]
            q_nsq = gs.q_nsq[g]
            insq = tm.insq
            unsq = tm.unsq
            for r in range(tm.indptr[slot], tm.indptr[slot + 1]):
                d_min = int_d[r]
                if d_min == 0.0:
                    pair_lo = 0.0
                else:
                    s_max = q_nsq + unsq[r]
                    pair_lo = d_min / (s_max - d_min)
                d_max = uni_d[r]
                if d_max == 0.0:
                    pair_hi = 0.0
                elif 2.0 * d_max >= q_nsq + insq[r]:
                    pair_hi = 1.0
                else:
                    s_min = q_nsq + insq[r]
                    pair_hi = d_max / (s_min - d_max)
                lo = pair_lo if lo is None else min(lo, pair_lo)
                hi = max(hi, pair_hi)
        else:
            measure = self.measure
            q_iv = gs.q_iv[g]
            for ivb, *_ in self.snap.clusters[slot]:
                pair_lo = measure.min_similarity(q_iv, ivb)
                pair_hi = measure.max_similarity(q_iv, ivb)
                lo = pair_lo if lo is None else min(lo, pair_lo)
                hi = max(hi, pair_hi)
        return (lo if lo is not None else 0.0, hi)

    def _block(self, gs: _GroupState, key: int) -> List[List[Tuple[float, float]]]:
        """Query bounds of every group member vs one node's children.

        Built lazily the first time any member expands ``key`` (or at
        root setup); the spatial components for all (query, child) cells
        come from one vectorized pass, the textual parts from the
        group's columnar text tables, and each cell is finished with the
        scalar engine's exact clamp/blend expressions.  Multi-key builds
        go through :meth:`_build_blocks`, which shares the spatial pass
        across several frontier nodes.
        """
        table = gs.blocks.get(key)
        if table is None:
            self._build_blocks(gs, [key])
            table = gs.blocks[key]
        return table

    def _build_blocks(self, gs: _GroupState, keys: Sequence[int]) -> None:
        """Build the block tables of several nodes in one spatial pass.

        The concatenated child slots of every not-yet-built key feed a
        single :func:`~repro.perf.kernels.group_spatial_components`
        call; each key's ``(G, C)`` component tables are column slices
        of the result (elementwise expressions, so every cell is
        bit-identical to a per-key pass).  The textual side already
        amortizes globally through the group's text tables.
        """
        pending = [key for key in keys if key not in gs.blocks]
        if not pending:
            return
        snap = self.snap
        alpha = self.alpha
        np = self._np
        slot_lists = [self._block_slots(key) for key in pending]
        comps: List[Optional[Tuple]] = [None] * len(pending)
        if alpha > 0.0:
            self.frontier_hist[len(pending)] = (
                self.frontier_hist.get(len(pending), 0) + 1
            )
            if np is not None and len(pending) > 1:
                all_slots = [s for sl in slot_lists for s in sl]
                if all_slots:
                    idx = np.asarray(all_slots, dtype=np.intp)
                    comp_all = kernels.group_spatial_components(
                        gs.qxlo, gs.qylo, gs.qxhi, gs.qyhi,
                        snap.np_xlo[idx], snap.np_ylo[idx],
                        snap.np_xhi[idx], snap.np_yhi[idx], np,
                    )
                    off = 0
                    for i, sl in enumerate(slot_lists):
                        C = len(sl)
                        if C:
                            comps[i] = tuple(
                                t[:, off : off + C] for t in comp_all
                            )
                        off += C
            else:
                for i, sl in enumerate(slot_lists):
                    if sl:
                        comps[i] = self._comp_for(gs, sl)

        tables = tm = None
        if alpha < 1.0 and self._ej and any(slot_lists):
            tables = self._text_tables_for(gs)
            tm = snap.text_matrix()
        for key, sl, comp in zip(pending, slot_lists, comps):
            gs.blocks[key] = self._finish_block(gs, sl, comp, tables, tm)

    def _comp_for(self, gs: _GroupState, slots: List[int]):
        """Single-node spatial component tables (both array backends)."""
        snap = self.snap
        np = self._np
        if np is not None:
            idx = np.asarray(slots, dtype=np.intp)
            bxlo = snap.np_xlo[idx]
            bylo = snap.np_ylo[idx]
            bxhi = snap.np_xhi[idx]
            byhi = snap.np_yhi[idx]
        else:
            bxlo = [snap.xlo[s] for s in slots]
            bylo = [snap.ylo[s] for s in slots]
            bxhi = [snap.xhi[s] for s in slots]
            byhi = [snap.yhi[s] for s in slots]
        return kernels.group_spatial_components(
            gs.qxlo, gs.qylo, gs.qxhi, gs.qyhi, bxlo, bylo, bxhi, byhi, np
        )

    def _finish_block(
        self, gs: _GroupState, slots: List[int], comp, tables, tm
    ) -> List[List[Tuple[float, float]]]:
        """Scalar clamp/blend finish of one node's block table."""
        snap = self.snap
        alpha = self.alpha
        ej = self._ej
        G = gs.G
        fd = self.base._fd
        is_obj = snap.is_obj
        if tables is None and alpha < 1.0 and ej and slots:
            tables = self._text_tables_for(gs)
            tm = snap.text_matrix()
        measure = self.measure
        obj_vec = snap.obj_vec
        table = []
        for g in range(G):
            if comp is not None:
                dxm, dym, dxM, dyM, pdx, pdy = (
                    comp[0][g],
                    comp[1][g],
                    comp[2][g],
                    comp[3][g],
                    comp[4][g],
                    comp[5][g],
                )
            row: List[Tuple[float, float]] = []
            for i, s in enumerate(slots):
                if is_obj[s]:
                    score = 0.0
                    if alpha > 0.0:
                        score += alpha * fd(math.hypot(pdx[i], pdy[i]))
                    if alpha < 1.0:
                        if ej:
                            sim = tables[g][2][tm.obj_row[s]]
                        else:
                            sim = measure.similarity(
                                gs.queries[g].vector, obj_vec[s]
                            )
                        score += (1.0 - alpha) * sim
                    row.append((score, score))
                elif alpha == 0.0:
                    row.append(self._q_text(gs, g, s, tables, tm))
                else:
                    s_hi = fd(math.hypot(dxm[i], dym[i]))
                    s_lo = fd(math.hypot(dxM[i], dyM[i]))
                    if alpha == 1.0:
                        row.append((alpha * s_lo, alpha * s_hi))
                    else:
                        t_lo, t_hi = self._q_text(gs, g, s, tables, tm)
                        row.append(
                            (
                                alpha * s_lo + (1.0 - alpha) * t_lo,
                                alpha * s_hi + (1.0 - alpha) * t_hi,
                            )
                        )
            table.append(row)
        return table

    # ------------------------------------------------------------------
    # Per-query walk
    # ------------------------------------------------------------------

    def _search_one(
        self,
        gs: _GroupState,
        g: int,
        k: int,
        trace: Optional["TraceSink"] = None,
        cancel: Optional[object] = None,
    ) -> SearchResult:
        """One query's branch-and-bound walk over the shared group state.

        Line-faithful to :meth:`SnapshotEngine.search`: same heap
        discipline, decision rules, lazy tightening, verification probe
        and buffer charges in the same order — only the representation
        of bounds (group tables) and contribution lists (columnar
        books) differs, with value parity argued piecewise above.
        ``trace`` receives the engine-parity decision events.
        """
        started = time.perf_counter()
        stats = SearchStats()
        if cancel is not None and cancel.expired():
            raise DeadlineExceeded(cancel_message(cancel), stats=stats)
        base = self.base
        hits0, misses0 = base.hits, base.misses
        snap = self.snap
        tree = self.tree
        te = self.te_weight
        is_obj = snap.is_obj
        cnt = snap.cnt

        roots = snap.root_slots
        if not roots:
            stats.elapsed_seconds = time.perf_counter() - started
            return SearchResult([], stats, tree.io.snapshot())

        undecided = 0
        accepted_bits = 0
        result_bits = 0
        order: List[int] = []
        books: Dict[int, object] = {}
        qbounds: Dict[int, Tuple[float, float]] = {}
        expanded: Dict[int, Tuple[int, int]] = {}
        counter = itertools.count()
        heap: List[Tuple[float, int, int]] = []

        # Warm-start floors (see SnapshotEngine.search): slots whose
        # query upper bound cannot reach the frozen kNNL floor are
        # dropped before any book is built; they keep contributing to
        # their siblings' books through the full-range group template.
        floors = self.floors
        use_floors = floors is not None and k <= floors.kmax
        if use_floors:
            f_idx = floors.floor_idx
            f_tbl = floors.floor_table
            f_kmax = floors.kmax
            f_koff = k - 1
            f_curve_c = floors.curve_c
            f_curve_b = floors.curve_b
            f_prof = floors.obj_profile

            def floor_of(slot: int) -> float:
                fl = f_tbl[f_idx[slot] * f_kmax + f_koff]
                if is_obj[slot]:
                    if f_prof:
                        # Sampled k-distance profile: dominates the
                        # fitted curve pointwise wherever both exist.
                        y = f_prof[slot * f_kmax + f_koff]
                        if y > fl:
                            return y
                        return fl
                    c = f_curve_c[slot]
                    if c > 0.0:
                        curve = c * k ** -f_curve_b[slot]
                        if curve > fl:
                            return curve
                return fl

        root_tmpl = self._template(gs, _ROOT_BLOCK)
        root_qb = self._block(gs, _ROOT_BLOCK)[g]
        for i, r in enumerate(roots):
            qb = root_qb[i]
            if use_floors and qb[1] < floor_of(r):
                stats.pruned_entries += 1
                stats.pruned_objects += cnt[r]
                continue
            undecided |= 1 << r
            order.append(r)
            book = self._new_book(len(roots) + 1)
            book.extend(root_tmpl[i])
            books[r] = book
            qbounds[r] = qb
            if te == 0.0 or is_obj[r]:
                prio = qb[1]
            else:
                prio = qb[1] + te * snap.ent_root[r]
            heapq.heappush(heap, (-prio, next(counter), r))

        tighten_width = tighten_width_for(k)
        ref_col = snap.ref

        def t_record(action: str, key: int, q_lo: float, q_hi: float) -> None:
            # Engine-parity event: same fields and same kNN-band values
            # as RSTkNNSearcher._record / SnapshotEngine's t_record.
            knn_lo, knn_hi = books[key].knn_bounds(k)
            trace.record(
                action,
                int(ref_col[key]),
                bool(is_obj[key]),
                int(cnt[key]),
                q_lo,
                q_hi,
                knn_lo,
                knn_hi,
            )

        while heap:
            _, _, key = heapq.heappop(heap)
            if not (undecided >> key) & 1:
                continue
            q_lo, q_hi = qbounds[key]
            book = books[key]
            decision = book.decide(q_lo, q_hi, k)
            while decision == 0 and self._tighten_book(
                key, book, expanded, tighten_width
            ):
                decision = book.decide(q_lo, q_hi, k)
            undecided &= ~(1 << key)
            if decision < 0:
                stats.pruned_entries += 1
                stats.pruned_objects += cnt[key]
                if trace is not None:
                    t_record("prune", key, q_lo, q_hi)
                del books[key]
                continue
            if decision > 0:
                accepted_bits |= 1 << key
                stats.accepted_entries += 1
                stats.accepted_objects += cnt[key]
                if trace is not None:
                    t_record("accept", key, q_lo, q_hi)
                del books[key]
                continue
            if is_obj[key]:
                member = base._verify(key, q_hi, k, stats)
                if member:
                    result_bits |= 1 << key
                stats.verified_objects += 1
                if trace is not None:
                    t_record(
                        "verify-in" if member else "verify-out", key, q_lo, q_hi
                    )
                del books[key]
                continue

            # Expand: children inherit the parent's book; sibling/self
            # rows come from the group template, query bounds from the
            # group block table.
            if cancel is not None and cancel.expired():
                stats.elapsed_seconds = time.perf_counter() - started
                raise DeadlineExceeded(cancel_message(cancel), stats=stats)
            if trace is not None:
                t_record("expand", key, q_lo, q_hi)
            fc, lc = snap.first_child[key], snap.last_child[key]
            tree.buffer.get(snap.record_id[key], "node")
            stats.expansions += 1
            expanded[key] = (fc, lc)
            parent = books.pop(key)
            parent.kill(key)
            tmpl = self._template(gs, key)
            if key not in gs.blocks and self.frontier_lookahead > 1:
                batch_keys = [key]
                for _p, _c, cand in heapq.nsmallest(
                    self.frontier_lookahead, heap
                ):
                    if len(batch_keys) >= self.frontier_lookahead:
                        break
                    if (
                        (undecided >> cand) & 1
                        and not is_obj[cand]
                        and cand not in gs.blocks
                    ):
                        batch_keys.append(cand)
                self._build_blocks(gs, batch_keys)
            block_qb = self._block(gs, key)[g]
            span = lc - fc
            for i, c in enumerate(range(fc, lc)):
                qb = block_qb[i]
                if use_floors and qb[1] < floor_of(c):
                    # Floored child: no bit, no book, no heap entry —
                    # still a contributor in its siblings' templates.
                    stats.pruned_entries += 1
                    stats.pruned_objects += cnt[c]
                    continue
                undecided |= 1 << c
                order.append(c)
                book = parent.clone(span)
                book.extend(tmpl[i])
                books[c] = book
                qbounds[c] = qb
                if te == 0.0 or is_obj[c]:
                    prio = qb[1]
                else:
                    prio = qb[1] + te * snap.ent_child[c]
                heapq.heappush(heap, (-prio, next(counter), c))

        ids: List[int] = []
        for key in order:
            if (accepted_bits >> key) & 1:
                charges, sub_ids = snap.collect_plan(key)
                for rid in charges:
                    tree.buffer.get(rid, "collect")
                ids.extend(sub_ids)
            elif (result_bits >> key) & 1:
                ids.append(snap.ref[key])
        ids.sort()
        stats.result_count = len(ids)
        stats.cache_hits = base.hits - hits0
        stats.cache_misses = base.misses - misses0
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(ids, stats, tree.io.snapshot())

    def _sub_batch(self, key: int, slot: int, span: Tuple[int, int]):
        """Columnar substitution rows: ``slot``'s children vs ``key``.

        Query- and group-independent (pair bounds depend only on the
        two slots), so the batch is built once per (key, expanded slot)
        pair and bulk-extended into every book that still holds the
        parent — this is where the per-child ``_st`` calls of the
        per-query engine's tightening pass get amortized away.
        """
        cache_key = (key, slot)
        batch = self._sub_batches.get(cache_key)
        if batch is not None:
            return batch
        st = self.base._st
        cnt = self.snap.cnt
        children = range(span[0], span[1])
        lo_a: List[float] = []
        hi_a: List[float] = []
        for child in children:
            lo, hi = st(key, child)
            lo_a.append(lo)
            hi_a.append(hi)
        slots_a: List[int] = list(children)
        cnt_a = [cnt[c] for c in children]
        np = self._np
        if np is not None:
            batch = (
                np.asarray(slots_a, dtype=np.intp),
                np.asarray(lo_a, dtype=np.float64),
                np.asarray(hi_a, dtype=np.float64),
                np.asarray(cnt_a, dtype=np.int64),
            )
        else:
            batch = (slots_a, lo_a, hi_a, cnt_a)
        self._sub_batches[cache_key] = batch
        return batch

    def _tighten_book(
        self,
        key: int,
        book,
        expanded: Dict[int, Tuple[int, int]],
        width: int,
    ) -> bool:
        """Lazy effect-list refinement over the columnar book — the
        twin of :meth:`SnapshotEngine._tighten`."""
        changed = False
        seen: Set[int] = set()
        st = self.base._st
        for slot in book.candidate_slots(width):
            if slot in seen or not book.has(slot):
                continue
            seen.add(slot)
            span = expanded.get(slot)
            if span is not None and slot != key:
                book.kill(slot)
                book.extend(self._sub_batch(key, slot, span))
                changed = True
            elif not book.is_tight(slot):
                lo, hi = st(key, slot)
                book.retighten(slot, lo, hi)
                changed = True
        return changed
