"""Spatial-textual similarity bounds between tree entries.

Everything the branch-and-bound searcher knows about similarity flows
through :class:`BoundComputer`, which blends the spatial MBR-distance
bounds with the textual interval-vector bounds:

    MinST(E, F) = alpha * (1 - MaxDist(E, F)/maxD) + (1-alpha) * MinSimT(E, F)
    MaxST(E, F) = alpha * (1 - MinDist(E, F)/maxD) + (1-alpha) * MaxSimT(E, F)

so for every object pair ``o in E, o' in F``:
``MinST(E, F) <= SimST(o, o') <= MaxST(E, F)``.

For clustered (CIUR) entries, the textual bounds are taken over all
cluster pairs: a document of ``E`` lives in exactly one of its clusters,
so ``min`` / ``max`` over pairs of per-cluster bounds is valid and tighter
than the merged single-cluster bound whenever clusters separate the text.

Because an object entry's interval vector is degenerate (int == uni ==
its document), the same formulas yield *exact* similarities for
object-object pairs — no special cases in the searcher.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from ..index.entry import Entry
from ..spatial import SpatialProximity
from ..text import TextMeasure


class BoundComputer:
    """Computes and memoizes entry-pair SimST bounds."""

    def __init__(
        self,
        proximity: SpatialProximity,
        measure: TextMeasure,
        alpha: float,
        enable_cache: bool = True,
    ) -> None:
        """``enable_cache=False`` disables memoization.

        The caches key on ``(entry.ref, entry.is_object)`` pairs, which is
        sound only while every entry comes from a single id namespace
        (one tree plus one query).  Bichromatic search mixes two trees
        whose node/object ids collide, so it must switch the caches off.
        """
        self.proximity = proximity
        self.measure = measure
        self.alpha = alpha
        self.enable_cache = enable_cache
        self._text_cache: Dict[
            Tuple[int, bool, int, bool], Tuple[float, float]
        ] = {}
        self._exact_cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Textual bounds
    # ------------------------------------------------------------------

    def text_bounds(self, a: Entry, b: Entry) -> Tuple[float, float]:
        """``(MinSimT, MaxSimT)`` over every document pair of ``a × b``."""
        key = (a.ref, a.is_object, b.ref, b.is_object)
        if self.enable_cache:
            cached = self._text_cache.get(key)
            if cached is not None:
                return cached
        lo = None
        hi = 0.0
        for iv_a in a.clusters.values():
            for iv_b in b.clusters.values():
                pair_lo = self.measure.min_similarity(iv_a, iv_b)
                pair_hi = self.measure.max_similarity(iv_a, iv_b)
                lo = pair_lo if lo is None else min(lo, pair_lo)
                hi = max(hi, pair_hi)
        result = (lo if lo is not None else 0.0, hi)
        if self.enable_cache:
            self._text_cache[key] = result
            self._text_cache[(key[2], key[3], key[0], key[1])] = result
        return result

    # ------------------------------------------------------------------
    # Blended bounds
    # ------------------------------------------------------------------

    def exact_score(self, a: Entry, b: Entry) -> float:
        """Exact SimST between two object entries (memoized)."""
        key = (a.ref, b.ref)
        if self.enable_cache:
            cached = self._exact_cache.get(key)
            if cached is not None:
                return cached
        alpha = self.alpha
        score = 0.0
        if alpha > 0.0:
            am, bm = a.mbr, b.mbr
            dist = math.hypot(am.xlo - bm.xlo, am.ylo - bm.ylo)
            score += alpha * self.proximity.from_distance(dist)
        if alpha < 1.0:
            score += (1.0 - alpha) * self.measure.similarity(
                a.exact_vector(), b.exact_vector()
            )
        if self.enable_cache:
            self._exact_cache[key] = score
            self._exact_cache[(b.ref, a.ref)] = score
        return score

    def st_bounds(self, a: Entry, b: Entry) -> Tuple[float, float]:
        """``(MinST, MaxST)`` over every object pair of ``a × b``.

        Exact (``MinST == MaxST``) when both entries are objects.
        """
        if a.is_object and b.is_object:
            score = self.exact_score(a, b)
            return score, score
        alpha = self.alpha
        if alpha == 0.0:
            t_lo, t_hi = self.text_bounds(a, b)
            return t_lo, t_hi
        s_lo = self.proximity.lower_bound(a.mbr, b.mbr)
        s_hi = self.proximity.upper_bound(a.mbr, b.mbr)
        if alpha == 1.0:
            return alpha * s_lo, alpha * s_hi
        t_lo, t_hi = self.text_bounds(a, b)
        return (
            alpha * s_lo + (1.0 - alpha) * t_lo,
            alpha * s_hi + (1.0 - alpha) * t_hi,
        )

    def self_bounds(self, entry: Entry) -> Tuple[float, float]:
        """``(MinST, MaxST)`` between two *distinct* objects inside ``entry``.

        The spatial extremes within one MBR are 0 (co-located) and the
        diagonal; the textual bounds are the entry-vs-itself cluster-pair
        bounds.  Only meaningful when ``entry.count >= 2``.
        """
        return self.st_bounds(entry, entry)

    def clear_cache(self) -> None:
        """Drop memoized text bounds (between queries)."""
        self._text_cache.clear()
