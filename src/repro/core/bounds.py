"""Spatial-textual similarity bounds between tree entries.

Everything the branch-and-bound searcher knows about similarity flows
through :class:`BoundComputer`, which blends the spatial MBR-distance
bounds with the textual interval-vector bounds:

    MinST(E, F) = alpha * (1 - MaxDist(E, F)/maxD) + (1-alpha) * MinSimT(E, F)
    MaxST(E, F) = alpha * (1 - MinDist(E, F)/maxD) + (1-alpha) * MaxSimT(E, F)

so for every object pair ``o in E, o' in F``:
``MinST(E, F) <= SimST(o, o') <= MaxST(E, F)``.

For clustered (CIUR) entries, the textual bounds are taken over all
cluster pairs: a document of ``E`` lives in exactly one of its clusters,
so ``min`` / ``max`` over pairs of per-cluster bounds is valid and tighter
than the merged single-cluster bound whenever clusters separate the text.

Because an object entry's interval vector is degenerate (int == uni ==
its document), the same formulas yield *exact* similarities for
object-object pairs — no special cases in the searcher.

Memoization happens at two levels.  Each computer keeps a private
per-query memo; additionally a :class:`~repro.perf.cache.BoundCache` may
be shared across queries (owned by the searcher or batch engine).  Only
*tree-resident* pairs — both refs >= 0 — go to the shared cache: query
entries use negative refs that collide between queries.  Both bounds and
exact scores are symmetric, so pairs are keyed canonically (smaller
``(ref, is_object)`` first).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..index.entry import Entry
from ..perf.cache import BoundCache
from ..spatial import SpatialProximity
from ..text import TextMeasure

#: Canonical symmetric pair key: two ``(ref << 1) | is_object`` codes
#: packed into one integer.  Integers hash to themselves, so cache
#: probes skip the tuple allocation and tuple hashing a 4-tuple key
#: would pay on every lookup of the hot path.
PairKey = int

#: Radix separating the two packed entry codes; node refs and object
#: ids stay far below 2**40 for any dataset this library can hold.
_KEY_RADIX = 1 << 40

#: Radix separating the tree-generation salt from the packed pair codes
#: (a full pair key stays below 2**82).  Shared-cache keys carry the
#: salt so entries cached against an older tree generation can never be
#: returned after an insert/delete mutated the node summaries — stale
#: keys simply stop being probed and age out of the LRU.
_GEN_RADIX = 1 << 82


class BoundComputer:
    """Computes and memoizes entry-pair SimST bounds."""

    def __init__(
        self,
        proximity: SpatialProximity,
        measure: TextMeasure,
        alpha: float,
        enable_cache: bool = True,
        shared_cache: Optional[BoundCache] = None,
        generation: int = 0,
    ) -> None:
        """``enable_cache=False`` disables memoization entirely.

        The caches key on ``(entry.ref, entry.is_object)`` pairs, which is
        sound only while every entry comes from a single id namespace
        (one tree plus one query).  Bichromatic search mixes two trees
        whose node/object ids collide, so it must switch the caches off.

        ``shared_cache`` is an optional cross-query
        :class:`~repro.perf.cache.BoundCache`: tree-pair bounds computed
        by this query become hits for every later query on the same tree.
        ``generation`` (the tree's mutation counter) salts every shared
        key, so bounds cached before a structural update cannot leak into
        queries running after it.
        """
        self.proximity = proximity
        self.measure = measure
        self.alpha = alpha
        self.enable_cache = enable_cache
        self.shared_cache = shared_cache if enable_cache else None
        self._salt = generation * _GEN_RADIX
        # Hot-path aliases: st_bounds probes the shared pairs LRU's dict
        # directly (one C-level get per hit) and only falls into the
        # LRUCache methods on insert.
        self._pairs_lru = (
            self.shared_cache.pairs if self.shared_cache is not None else None
        )
        self._pairs_data = (
            self._pairs_lru._data if self._pairs_lru is not None else None
        )
        self._text_cache: Dict[PairKey, Tuple[float, float]] = {}
        self._exact_cache: Dict[PairKey, float] = {}
        #: Lifetime lookup counters across both memo levels.
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _pair_key(a: Entry, b: Entry) -> PairKey:
        """Canonical symmetric key (smaller entry code first)."""
        ka = (a.ref << 1) | a.is_object
        kb = (b.ref << 1) | b.is_object
        if kb < ka:
            ka, kb = kb, ka
        return ka * _KEY_RADIX + kb

    # ------------------------------------------------------------------
    # Textual bounds
    # ------------------------------------------------------------------

    def text_bounds(self, a: Entry, b: Entry) -> Tuple[float, float]:
        """``(MinSimT, MaxSimT)`` over every document pair of ``a × b``."""
        shared = None
        key: Optional[PairKey] = None
        if self.enable_cache:
            key = self._pair_key(a, b)
            if self.shared_cache is not None and a.ref >= 0 and b.ref >= 0:
                shared = self.shared_cache.text
                key += self._salt
                cached = shared.get(key)
            else:
                cached = self._text_cache.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        lo = None
        hi = 0.0
        for iv_a in a.clusters.values():
            for iv_b in b.clusters.values():
                pair_lo = self.measure.min_similarity(iv_a, iv_b)
                pair_hi = self.measure.max_similarity(iv_a, iv_b)
                lo = pair_lo if lo is None else min(lo, pair_lo)
                hi = max(hi, pair_hi)
        result = (lo if lo is not None else 0.0, hi)
        if key is not None:
            if shared is not None:
                shared.put(key, result)
            else:
                self._text_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Blended bounds
    # ------------------------------------------------------------------

    def exact_score(self, a: Entry, b: Entry) -> float:
        """Exact SimST between two object entries (memoized)."""
        shared = None
        key: Optional[PairKey] = None
        if self.enable_cache:
            key = self._pair_key(a, b)
            if self.shared_cache is not None and a.ref >= 0 and b.ref >= 0:
                shared = self.shared_cache.exact
                key += self._salt
                cached = shared.get(key)
            else:
                cached = self._exact_cache.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        alpha = self.alpha
        score = 0.0
        if alpha > 0.0:
            am, bm = a.mbr, b.mbr
            dist = math.hypot(am.xlo - bm.xlo, am.ylo - bm.ylo)
            score += alpha * self.proximity.from_distance(dist)
        if alpha < 1.0:
            score += (1.0 - alpha) * self.measure.similarity(
                a.exact_vector(), b.exact_vector()
            )
        if key is not None:
            if shared is not None:
                shared.put(key, score)
            else:
                self._exact_cache[key] = score
        return score

    def st_bounds(self, a: Entry, b: Entry) -> Tuple[float, float]:
        """``(MinST, MaxST)`` over every object pair of ``a × b``.

        Exact (``MinST == MaxST``) when both entries are objects.  The
        blended tuple is the hottest lookup of the searcher (every kNN
        tightening round re-derives it), so tree-resident pairs are
        cached whole in the shared ``pairs`` LRU — one probe replaces
        the text-bound lookup, two MBR distance computations, and the
        alpha blend.
        """
        pairs = self._pairs_lru
        if pairs is not None:
            ar, br = a.ref, b.ref
            if ar >= 0 and br >= 0:
                ka = (ar << 1) | a.is_object
                kb = (br << 1) | b.is_object
                if kb < ka:
                    ka, kb = kb, ka
                key = ka * _KEY_RADIX + kb + self._salt
                cached = self._pairs_data.get(key)
                if cached is not None:
                    pairs.hits += 1
                    self.hits += 1
                    return cached
                pairs.misses += 1
                self.misses += 1
                result = self._st_bounds_compute(a, b)
                pairs.put(key, result)
                return result
        return self._st_bounds_compute(a, b)

    def _st_bounds_compute(self, a: Entry, b: Entry) -> Tuple[float, float]:
        if a.is_object and b.is_object:
            score = self.exact_score(a, b)
            return score, score
        alpha = self.alpha
        if alpha == 0.0:
            t_lo, t_hi = self.text_bounds(a, b)
            return t_lo, t_hi
        s_lo = self.proximity.lower_bound(a.mbr, b.mbr)
        s_hi = self.proximity.upper_bound(a.mbr, b.mbr)
        if alpha == 1.0:
            return alpha * s_lo, alpha * s_hi
        t_lo, t_hi = self.text_bounds(a, b)
        return (
            alpha * s_lo + (1.0 - alpha) * t_lo,
            alpha * s_hi + (1.0 - alpha) * t_hi,
        )

    def self_bounds(self, entry: Entry) -> Tuple[float, float]:
        """``(MinST, MaxST)`` between two *distinct* objects inside ``entry``.

        The spatial extremes within one MBR are 0 (co-located) and the
        diagonal; the textual bounds are the entry-vs-itself cluster-pair
        bounds.  Only meaningful when ``entry.count >= 2``.
        """
        return self.st_bounds(entry, entry)

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------

    def cache_stats(self) -> Dict[str, float]:
        """Lookup counters plus current occupancy of every memo level.

        ``hits`` / ``misses`` count this computer's lookups (private and
        shared); the ``shared_*`` keys describe the cross-query cache
        when one is attached.
        """
        out: Dict[str, float] = {
            "hits": self.hits,
            "misses": self.misses,
            "text_entries": len(self._text_cache),
            "exact_entries": len(self._exact_cache),
        }
        if self.shared_cache is not None:
            for key, value in self.shared_cache.stats().as_dict().items():
                out[f"shared_{key}"] = value
        return out

    def clear(self) -> None:
        """Drop the private per-query memos.

        Long-lived computers (analysis loops, services) call this between
        queries so the unbounded private dicts cannot grow without limit;
        the shared cache is size-bounded and is left intact.
        """
        self._text_cache.clear()
        self._exact_cache.clear()

    def clear_cache(self) -> None:
        """Alias of :meth:`clear` (the seed API's name)."""
        self.clear()
