"""Influence counting and optimal location selection.

The natural application of RSTkNN — and the 2011 paper's future-work
direction, later developed into MaxBRSTkNN by follow-up work — is *site
selection*: given a text description and a set of candidate locations,
place the new object where it becomes a top-k neighbor of the most
existing objects (its **influence**).

Naively this is one RSTkNN query per candidate.  This module does the
work the candidates can share, once:

1. every object's k-th-neighbor score ``RS_k(o)`` is computed with one
   batched top-k pass over a shared warm buffer (cheap, see E12);
2. the tree is annotated with per-subtree threshold extremes
   ``thr_min/thr_max`` (min/max ``RS_k`` below each node).

Counting a candidate's influence is then a bound-pruned traversal: a
subtree is *out* when even the candidate's best similarity cannot reach
the subtree's smallest threshold (``MaxST(q, N) < thr_min(N)``), and
*fully in* when its worst similarity clears the largest threshold
(``MinST(q, N) >= thr_max(N)``).  Exactly the RSTkNN decision rules, but
against precomputed thresholds — so each extra candidate costs one cheap
traversal instead of a full reverse search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SimilarityConfig
from ..errors import QueryError
from ..index.entry import Entry
from ..index.iurtree import IURTree
from ..model.objects import STObject
from ..spatial import Point
from ..text import make_measure
from .bounds import BoundComputer
from .topk import TopKSearcher


@dataclass(frozen=True)
class InfluenceResult:
    """Influence of one candidate placement."""

    location: Point
    influenced: Tuple[int, ...]

    @property
    def count(self) -> int:
        """Number of influenced objects."""
        return len(self.influenced)


@dataclass
class SelectionReport:
    """Outcome of a best-location selection."""

    best: InfluenceResult
    all_results: List[InfluenceResult]
    preprocess_seconds: float = 0.0
    search_seconds: float = 0.0
    io: Dict[str, int] = field(default_factory=dict)


class LocationSelector:
    """Shared-threshold influence engine over one (C)IUR-tree."""

    def __init__(
        self,
        tree: IURTree,
        k: int,
        config: Optional[SimilarityConfig] = None,
    ) -> None:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self.tree = tree
        self.k = k
        cfg = config if config is not None else tree.dataset.config
        self.config = cfg
        self.measure = make_measure(cfg.text_measure)
        self.alpha = cfg.alpha
        started = time.perf_counter()
        self._thresholds = self._compute_thresholds()
        self._node_thresholds = self._annotate_nodes()
        self.preprocess_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------

    def _compute_thresholds(self) -> Dict[int, float]:
        """``RS_k(o)`` for every object, via warm-buffer top-k probes."""
        topk = TopKSearcher(self.tree, self.config)
        return {
            obj.oid: topk.kth_score(obj, self.k, exclude_oid=obj.oid)
            for obj in self.tree.dataset.objects
        }

    def _annotate_nodes(self) -> Dict[int, Tuple[float, float]]:
        """Per-node (thr_min, thr_max) over the subtree's objects."""
        out: Dict[int, Tuple[float, float]] = {}
        rtree = self.tree.rtree

        def visit(node_id: int) -> Tuple[float, float]:
            node = rtree.node(node_id)
            lo, hi = float("inf"), float("-inf")
            for entry in node.entries:
                if entry.is_object:
                    value = self._thresholds[entry.ref]
                    lo = min(lo, value)
                    hi = max(hi, value)
                else:
                    clo, chi = visit(entry.ref)
                    lo = min(lo, clo)
                    hi = max(hi, chi)
            out[node_id] = (lo, hi)
            return lo, hi

        if rtree.root_id is not None:
            visit(rtree.root_id)
        return out

    def threshold_of(self, oid: int) -> float:
        """``RS_k`` of one object (exposed for analyses and tests)."""
        return self._thresholds[oid]

    # ------------------------------------------------------------------
    # Influence counting
    # ------------------------------------------------------------------

    def influence(self, location: Point, text: str) -> InfluenceResult:
        """Objects that would count the placed object in their top-k.

        Tie-inclusive, matching :class:`RSTkNNSearcher` semantics:
        influence includes objects where the newcomer ties their current
        k-th neighbor.
        """
        query = self.tree.dataset.make_query(location, text)
        return self._influence_of(query)

    def _influence_of(self, query: STObject) -> InfluenceResult:
        bounds = BoundComputer(
            self.tree.dataset.proximity, self.measure, self.alpha
        )
        q_entry = Entry.for_object(-1, query.mbr(), query.vector)
        influenced: List[int] = []
        stack: List[Entry] = []
        root = self.tree.root_entry()
        if root is not None:
            stack.append(root)
        stack.extend(self.tree.outlier_entries())
        while stack:
            entry = stack.pop()
            q_lo, q_hi = bounds.st_bounds(q_entry, entry)
            if entry.is_object:
                if q_hi >= self._thresholds[entry.ref]:
                    influenced.append(entry.ref)
                continue
            thr_lo, thr_hi = self._node_thresholds[entry.ref]
            if q_hi < thr_lo:
                continue  # cannot influence anything below
            if q_lo >= thr_hi:
                influenced.extend(self._collect(entry))
                continue
            stack.extend(self.tree.children(entry, tag="influence"))
        influenced.sort()
        return InfluenceResult(query.point, tuple(influenced))

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def select_best(
        self, candidates: Sequence[Point], text: str
    ) -> SelectionReport:
        """Evaluate every candidate and return the most influential one.

        Ties break toward the earliest candidate, so the result is
        deterministic in the input order.
        """
        if not candidates:
            raise QueryError("select_best needs at least one candidate")
        started = time.perf_counter()
        results = [self.influence(point, text) for point in candidates]
        best = max(enumerate(results), key=lambda ir: (ir[1].count, -ir[0]))[1]
        return SelectionReport(
            best=best,
            all_results=results,
            preprocess_seconds=self.preprocess_seconds,
            search_seconds=time.perf_counter() - started,
            io=self.tree.io.snapshot(),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _collect(self, entry: Entry) -> List[int]:
        if entry.is_object:
            return [entry.ref]
        out: List[int] = []
        stack = [entry]
        while stack:
            e = stack.pop()
            if e.is_object:
                out.append(e.ref)
            else:
                stack.extend(self.tree.children(e, tag="influence-collect"))
        return out
