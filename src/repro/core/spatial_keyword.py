"""Classic spatial-keyword queries over the same (C)IUR-tree.

The IUR-tree subsumes the IR-tree, so the standard spatial-keyword query
suite (Cong et al., the paper's indexing substrate) comes almost for
free and rounds the library out for downstream users:

* **Boolean range query** — objects inside a rectangle whose documents
  contain *all* required terms;
* **Boolean kNN query** — the k nearest objects (pure distance)
  containing all required terms;
* **Term range query** — objects inside a rectangle containing *any* of
  the terms (disjunctive form).

Pruning uses the union vectors: a subtree can only contain a document
with term ``t`` if its union carries ``t``, and (conjunctively) only if
it carries *every* required term.  Subtrees whose *intersection* carries
every required term satisfy the predicate wholesale — the "I" side gives
a containment fast path symmetric to the RSTkNN accept rule.

All traversal goes through :meth:`IURTree.children`, so simulated I/O is
charged like every other query in the library.

Term-containment semantics: an object "contains" a term iff the term has
non-zero weight in its **weighted vector** — identical to what the index
summaries see.  (Under TF-IDF a term occurring in every document gets
weight 0 and is not searchable; use ``tf`` weighting when raw keyword
semantics matter.)
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..index.entry import Entry
from ..index.iurtree import IURTree
from ..spatial import Point, Rect


class SpatialKeywordSearcher:
    """Boolean spatial-keyword queries over a (C)IUR-tree."""

    def __init__(self, tree: IURTree) -> None:
        self.tree = tree

    # ------------------------------------------------------------------
    # Term plumbing
    # ------------------------------------------------------------------

    def _term_ids(self, terms: Sequence[str]) -> Optional[List[int]]:
        """Resolve terms to ids; None when any term is out-of-vocabulary
        (a conjunctive query can then match nothing)."""
        ids: List[int] = []
        vocab = self.tree.dataset.vocabulary
        for term in terms:
            tid = vocab.id_of(term)
            if tid is None:
                return None
            ids.append(tid)
        return ids

    @staticmethod
    def _may_contain_all(entry: Entry, term_ids: Sequence[int]) -> bool:
        """Union test: some document below could hold every term."""
        for iv in entry.clusters.values():
            if all(tid in iv.union for tid in term_ids):
                return True
        return False

    @staticmethod
    def _all_contain_all(entry: Entry, term_ids: Sequence[int]) -> bool:
        """Intersection test: every document below holds every term."""
        return all(
            all(tid in iv.intersection for tid in term_ids)
            for iv in entry.clusters.values()
        )

    @staticmethod
    def _may_contain_any(entry: Entry, term_ids: Sequence[int]) -> bool:
        for iv in entry.clusters.values():
            if any(tid in iv.union for tid in term_ids):
                return True
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def boolean_range(self, region: Rect, terms: Sequence[str]) -> List[int]:
        """Objects inside ``region`` containing *all* of ``terms``.

        With no terms this is a plain spatial range query.
        """
        term_ids = self._term_ids(terms)
        if term_ids is None:
            return []
        roots = self._initials()
        out: List[int] = []
        stack = [e for e in roots if region.intersects(e.mbr)]
        while stack:
            entry = stack.pop()
            if not region.intersects(entry.mbr):
                continue
            if term_ids and not self._may_contain_all(entry, term_ids):
                continue
            if entry.is_object:
                if region.contains_point(entry.mbr.center()) and all(
                    tid in entry.exact_vector() for tid in term_ids
                ):
                    out.append(entry.ref)
                continue
            if (
                region.contains_rect(entry.mbr)
                and term_ids
                and self._all_contain_all(entry, term_ids)
            ):
                out.extend(self._collect(entry))
                continue
            stack.extend(self.tree.children(entry, tag="bool-range"))
        return sorted(out)

    def any_term_range(self, region: Rect, terms: Sequence[str]) -> List[int]:
        """Objects inside ``region`` containing *any* of ``terms``."""
        vocab = self.tree.dataset.vocabulary
        term_ids = [tid for tid in (vocab.id_of(t) for t in terms) if tid is not None]
        if not term_ids:
            return []
        out: List[int] = []
        stack = [e for e in self._initials() if region.intersects(e.mbr)]
        while stack:
            entry = stack.pop()
            if not region.intersects(entry.mbr):
                continue
            if not self._may_contain_any(entry, term_ids):
                continue
            if entry.is_object:
                vector = entry.exact_vector()
                if region.contains_point(entry.mbr.center()) and any(
                    tid in vector for tid in term_ids
                ):
                    out.append(entry.ref)
                continue
            stack.extend(self.tree.children(entry, tag="any-range"))
        return sorted(out)

    def boolean_knn(
        self, point: Point, k: int, terms: Sequence[str]
    ) -> List[Tuple[int, float]]:
        """The ``k`` nearest objects (Euclidean) containing all ``terms``.

        Best-first by MBR distance with conjunctive union pruning; ties
        break by object id for determinism.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        term_ids = self._term_ids(terms)
        if term_ids is None:
            return []
        counter = itertools.count()
        heap: List[Tuple[float, int, int, int, Entry]] = []

        def push(entry: Entry) -> None:
            if term_ids and not self._may_contain_all(entry, term_ids):
                return
            dist = entry.mbr.min_dist_point(point)
            if entry.is_object:
                heapq.heappush(heap, (dist, 1, entry.ref, next(counter), entry))
            else:
                heapq.heappush(heap, (dist, 0, 0, next(counter), entry))

        for entry in self._initials():
            push(entry)

        results: List[Tuple[int, float]] = []
        while heap and len(results) < k:
            dist, _, _, _, entry = heapq.heappop(heap)
            if entry.is_object:
                vector = entry.exact_vector()
                if all(tid in vector for tid in term_ids):
                    results.append((entry.ref, dist))
                continue
            for child in self.tree.children(entry, tag="bool-knn"):
                push(child)
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _initials(self) -> List[Entry]:
        root = self.tree.root_entry()
        return ([root] if root is not None else []) + self.tree.outlier_entries()

    def _collect(self, entry: Entry) -> List[int]:
        if entry.is_object:
            return [entry.ref]
        out: List[int] = []
        stack = [entry]
        while stack:
            e = stack.pop()
            if e.is_object:
                out.append(e.ref)
            else:
                stack.extend(self.tree.children(e, tag="bool-collect"))
        return out
