"""Best-first top-k spatial-textual search over a (C)IUR-tree.

The classic upper-bound-guided traversal: entries are popped from a
max-heap keyed by ``MaxST(q, E)``; because an object entry's bound equals
its exact score, any object popped from the heap is guaranteed to be the
best remaining object — so the first ``k`` popped objects are the top-k.

This searcher backs the per-object-top-k baseline (the score of the k-th
ranked neighbor of every object is what brute-force RSTkNN needs) and the
batched top-k experiment (E12), where a shared warm buffer pool shows the
I/O benefit of processing many queries jointly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SimilarityConfig
from ..errors import QueryError
from ..index.entry import Entry
from ..index.iurtree import IURTree
from ..model.objects import STObject
from ..text import make_measure
from .bounds import BoundComputer


class TopKSearcher:
    """Top-k most similar objects to a query object, by SimST."""

    def __init__(
        self, tree: IURTree, config: Optional[SimilarityConfig] = None
    ) -> None:
        self.tree = tree
        cfg = config if config is not None else tree.dataset.config
        self.config = cfg
        self.measure = make_measure(cfg.text_measure)
        self.alpha = cfg.alpha

    def top_k(
        self,
        query: STObject,
        k: int,
        exclude_oid: Optional[int] = None,
    ) -> List[Tuple[int, float]]:
        """The ``k`` highest-SimST objects as ``(oid, score)`` pairs.

        Ties break deterministically by object id so results are
        reproducible; ``exclude_oid`` omits one object (used when the
        query *is* a dataset object asking about its own neighbors).
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        bounds = BoundComputer(
            self.tree.dataset.proximity, self.measure, self.alpha
        )
        q_entry = Entry.for_object(-1, query.mbr(), query.vector)
        counter = itertools.count()
        # Heap key: (-score_bound, is_object, oid, seq).  Directory entries
        # sort *before* objects at equal bounds, so an equal-scored object
        # hiding inside a subtree surfaces before a tied object is emitted;
        # among tied objects the smaller id wins.  Both choices make the
        # output identical to brute force sorted by (-score, oid).
        heap: List[Tuple[float, int, int, int, Entry]] = []

        def push(entry: Entry) -> None:
            if entry.is_object and entry.ref == exclude_oid:
                return
            _, hi = bounds.st_bounds(q_entry, entry)
            if entry.is_object:
                heapq.heappush(heap, (-hi, 1, entry.ref, next(counter), entry))
            else:
                heapq.heappush(heap, (-hi, 0, 0, next(counter), entry))

        root = self.tree.root_entry()
        for entry in ([root] if root is not None else []) + self.tree.outlier_entries():
            push(entry)

        results: List[Tuple[int, float]] = []
        while heap and len(results) < k:
            neg_hi, _, _, _, entry = heapq.heappop(heap)
            if entry.is_object:
                results.append((entry.ref, -neg_hi))
                continue
            for child in self.tree.children(entry, tag="topk"):
                push(child)
        return results

    def kth_score(self, query: STObject, k: int, exclude_oid: Optional[int] = None) -> float:
        """Score of the k-th ranked object (0.0 when fewer than k exist)."""
        ranked = self.top_k(query, k, exclude_oid)
        if len(ranked) < k:
            return 0.0
        return ranked[-1][1]

    def batch_topk(
        self, queries: Sequence[STObject], k: int
    ) -> Dict[int, List[Tuple[int, float]]]:
        """Run many top-k queries against a shared (warming) buffer pool.

        The joint benefit is pure I/O: later queries hit pages the earlier
        ones faulted in.  Returns results keyed by position in ``queries``.
        """
        return {i: self.top_k(q, k) for i, q in enumerate(queries)}
