"""The branch-and-bound RSTkNN searcher over IUR/CIUR trees.

Algorithm sketch (Section 3.3 of DESIGN.md):

1. Maintain a set of **live entries** that always partitions the dataset
   (initially the tree root plus any OE outliers); each live entry is
   undecided, pruned, accepted, or a verified object.
2. Every *undecided* entry owns a :class:`ContributionList` holding, per
   live entry, the SimST bounds and object count — from which its group
   kNN bounds ``kNNL`` / ``kNNU`` derive.
3. Pop entries best-first (largest ``MaxST(q, E)``, optionally boosted by
   cluster entropy — the TE optimization).  Apply the decision rules:

   * ``MaxST(q, E) < kNNL(E)`` → **prune** ``E`` (no object in it can have
     ``q`` among its k most similar);
   * ``MinST(q, E) >= kNNU(E)`` → **accept** ``E`` (every object in it has
     ``q`` among its top-k);
   * otherwise **expand** a directory entry (children inherit the
     frontier and contribute mutually), or **verify** an object entry
     exactly with a bounded count probe over the same tree.

Pruned and accepted entries stay live — they keep contributing to other
entries' kNN bounds — but are never expanded; only the verification probe
descends into pruned regions when an individual object needs an exact
answer.  Membership semantics are tie-inclusive and shared with every
baseline: ``q`` is in the reverse set of ``o`` iff strictly fewer than
``k`` dataset objects (excluding ``o``) are strictly more similar to
``o`` than ``q`` is.
"""

from __future__ import annotations

import copy
import heapq
import itertools
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from ..obs.trace import TraceSink

from ..config import SimilarityConfig
from ..errors import ConfigError, DeadlineExceeded, QueryError
from .cancel import cancel_message
from ..index.entry import Entry
from ..index.iurtree import IURTree
from ..model.objects import STObject
from ..obs.metrics import record_approx, record_search
from ..perf.cache import BoundCache
from ..text import make_measure
from ..text.entropy import normalized_cluster_entropy
from .bounds import BoundComputer
from .contributions import Contribution, ContributionList, SourceKey

_UNDECIDED = "undecided"
_PRUNED = "pruned"
_ACCEPTED = "accepted"
_EXPANDED = "expanded"
_RESULT = "result"
_NONRESULT = "nonresult"

#: Traversal engine knob values: ``seed`` is the reference object-graph
#: walk below; ``snapshot`` runs the columnar SnapshotEngine
#: (:mod:`repro.core.traversal`); ``auto`` picks snapshot whenever the
#: request has no feature that requires the seed walk; ``approx`` runs
#: the sketch-guided candidate filter (:mod:`repro.approx`) — exact
#: answers when ``approx_verify`` is on, a measured-recall candidate
#: set when it is off.  Since the observability layer
#: (:mod:`repro.obs`) generalized tracing into the TraceSink protocol,
#: every engine emits decision events, so a trace no longer forces
#: ``seed`` — only an attached cross-query BoundCache does (its
#: cache-stat contract belongs to the seed's BoundComputer).
ENGINE_CHOICES = ("seed", "snapshot", "auto", "approx")

#: Environment override for the default engine.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Environment override that arms kNNL warm-start floors on the exact
#: snapshot/fused engines (``1``/``true``/``yes`` arm, anything else
#: leaves them off).  Floors never change result ids, only how early
#: subtrees are discarded, so this is safe to flip fleet-wide.
WARM_FLOORS_ENV_VAR = "REPRO_WARM_FLOORS"

#: Environment override for the approx tier's LSH pre-filter stage
#: (``0``/``false``/``no``/``off`` disarm it; default on).  The stage
#: never changes verified-mode ids and keeps raw-mode recall at 1.0,
#: so it is safe to flip fleet-wide.
APPROX_LSH_ENV_VAR = "REPRO_APPROX_LSH"


def _default_warm_floors() -> bool:
    """Warm-floor default from ``REPRO_WARM_FLOORS`` (off when unset)."""
    raw = os.environ.get(WARM_FLOORS_ENV_VAR)
    if raw is None:
        return False
    return raw.strip().lower() in ("1", "true", "yes", "on")


def _default_approx_lsh() -> bool:
    """LSH pre-filter default from ``REPRO_APPROX_LSH`` (on when unset)."""
    raw = os.environ.get(APPROX_LSH_ENV_VAR)
    if raw is None:
        return True
    return raw.strip().lower() not in ("0", "false", "no", "off")


def _default_engine() -> str:
    """Engine named by ``REPRO_ENGINE``, else ``auto`` (warn on typos)."""
    name = os.environ.get(ENGINE_ENV_VAR)
    if name is None:
        return "auto"
    name = name.strip().lower()
    if name not in ENGINE_CHOICES:
        warnings.warn(
            f"{ENGINE_ENV_VAR}={name!r} is not one of {ENGINE_CHOICES}; "
            "using 'auto'",
            RuntimeWarning,
            stacklevel=3,
        )
        return "auto"
    return name


@dataclass
class SearchStats:
    """Counters describing how one search decided the dataset."""

    expansions: int = 0
    pruned_entries: int = 0
    pruned_objects: int = 0
    accepted_entries: int = 0
    accepted_objects: int = 0
    verified_objects: int = 0
    verify_node_reads: int = 0
    result_count: int = 0
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    def group_decided_objects(self) -> int:
        """Objects decided purely by bounds (no per-object probe)."""
        return self.pruned_objects + self.accepted_objects

    def as_dict(self) -> Dict[str, float]:
        """Flat dict of the counters, for experiment logging."""
        return {
            "expansions": self.expansions,
            "pruned_entries": self.pruned_entries,
            "pruned_objects": self.pruned_objects,
            "accepted_entries": self.accepted_entries,
            "accepted_objects": self.accepted_objects,
            "verified_objects": self.verified_objects,
            "verify_node_reads": self.verify_node_reads,
            "result_count": self.result_count,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
        }


@dataclass
class SearchResult:
    """Sorted result ids plus the search's decision and I/O statistics."""

    ids: List[int]
    stats: SearchStats
    io: Dict[str, int] = field(default_factory=dict)
    _id_set: Optional[set] = field(
        default=None, repr=False, compare=False
    )

    def __contains__(self, oid: int) -> bool:
        # Built lazily on the first membership test and reused; the
        # length check catches the supported mutation (removing the
        # member id in search_for_member) without hashing every id again.
        cached = self._id_set
        if cached is None or len(cached) != len(self.ids):
            cached = set(self.ids)
            self._id_set = cached
        return oid in cached

    def __len__(self) -> int:
        return len(self.ids)


class RSTkNNSearcher:
    """Reverse spatial-textual kNN search over a (C)IUR-tree."""

    def __init__(
        self,
        tree: IURTree,
        config: Optional[SimilarityConfig] = None,
        te_weight: float = 0.05,
        bound_cache: Optional[BoundCache] = None,
        engine: Optional[str] = None,
        metrics: Optional["MetricsRegistry"] = None,
        warm_floors: Optional[bool] = None,
        approx_verify: bool = True,
        sketch_kmax: Optional[int] = None,
        sketch_budget: Optional[int] = None,
        sketch_pool: Optional[int] = None,
        sketch_sample_frac: Optional[float] = None,
        approx_lsh: Optional[bool] = None,
    ) -> None:
        """``bound_cache`` shares tree-pair bounds across this searcher's
        queries (see :class:`repro.perf.cache.BoundCache`); ``None`` keeps
        the seed behaviour of per-query memoization only.  ``engine``
        picks the traversal implementation (:data:`ENGINE_CHOICES`);
        ``None`` defers to ``REPRO_ENGINE`` and then ``auto``.
        ``metrics`` attaches a :class:`repro.obs.MetricsRegistry`: each
        search then records per-engine query counters, decision
        counters, and a latency histogram (``None`` records nothing —
        see ``docs/OBSERVABILITY.md``).

        ``warm_floors`` arms the frozen kNNL floor sketch
        (:mod:`repro.approx`) on the exact snapshot engine — results
        stay bit-identical, only pruning gets earlier; ``None`` defers
        to ``REPRO_WARM_FLOORS`` and then off.  ``approx_verify``
        applies when ``engine="approx"``: ``True`` verifies every
        candidate exactly (byte-identical ids), ``False`` returns the
        raw conservative candidate set.  The ``sketch_*`` knobs
        override the sketch build parameters (``None`` keeps the
        :mod:`repro.approx.sketch` defaults; ``sketch_sample_frac``
        budgets the exact true-kNN curve-sampling pass).
        ``approx_lsh`` arms the approx tier's LSH pre-filter stage;
        ``None`` defers to ``REPRO_APPROX_LSH`` and then on."""
        self.tree = tree
        cfg = config if config is not None else tree.dataset.config
        self.config = cfg
        self.measure = make_measure(cfg.text_measure)
        self.alpha = cfg.alpha
        self.te_weight = te_weight if tree.config.use_entropy_priority else 0.0
        self.bound_cache = bound_cache
        if engine is None:
            engine = _default_engine()
        elif engine not in ENGINE_CHOICES:
            raise ConfigError(
                f"engine must be one of {ENGINE_CHOICES}, got {engine!r}"
            )
        self.engine = engine
        self.metrics = metrics
        if warm_floors is None:
            warm_floors = _default_warm_floors()
        self.warm_floors = bool(warm_floors)
        self.approx_verify = bool(approx_verify)
        self.sketch_kmax = sketch_kmax
        self.sketch_budget = sketch_budget
        self.sketch_pool = sketch_pool
        self.sketch_sample_frac = sketch_sample_frac
        if approx_lsh is None:
            approx_lsh = _default_approx_lsh()
        self.approx_lsh = bool(approx_lsh)

    def _bound_computer(self) -> BoundComputer:
        """A per-query computer attached to the shared cache, if any."""
        return BoundComputer(
            self.tree.dataset.proximity,
            self.measure,
            self.alpha,
            shared_cache=self.bound_cache,
            generation=getattr(self.tree, "generation", 0),
        )

    def _resolve_engine(self, trace: Optional["TraceSink"]) -> str:
        """The engine one search call will actually run.

        Every engine emits decision events through the TraceSink
        protocol (:mod:`repro.obs.trace`), so a traced request is *not*
        downgraded.  Under ``auto``, an attached BoundCache selects
        ``seed`` — its cache-stat contract belongs to the seed's
        BoundComputer — as does a tree that cannot produce snapshots.
        """
        del trace  # every engine can trace; kept for signature stability
        engine = self.engine
        if getattr(self.tree, "overlay_dirty", False):
            # A live overlay/tombstone set is pending (repro.lsm): only
            # the seed walk merges the frozen and overlay sources under
            # the bound logic, and the frozen-side fast paths — columnar
            # snapshot, warm kNNL floors, the approx sketch — are all
            # derived from the pre-write snapshot, so they are unsound
            # against the union.  After a fold the view is clean and the
            # requested engine applies again.
            return "seed"
        can_snapshot = getattr(self.tree, "snapshot", None) is not None
        if engine == "auto":
            if self.bound_cache is not None or not can_snapshot:
                return "seed"
            return "snapshot"
        if engine in ("snapshot", "approx") and not can_snapshot:
            return "seed"
        return engine

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def search(
        self,
        query: STObject,
        k: int,
        trace: Optional["TraceSink"] = None,
        cancel: Optional[object] = None,
    ) -> SearchResult:
        """All objects that count ``query`` among their top-k by SimST.

        Pass any :class:`repro.obs.TraceSink` — typically a
        :class:`repro.core.explain.SearchTrace` — as ``trace`` to capture
        every group-level decision with its justifying bounds.  Tracing
        works on every engine and does not change engine resolution.

        ``cancel`` is a cooperative cancellation token (anything with an
        ``expired() -> bool`` method, e.g. a
        :class:`repro.service.Deadline`), polled once per node expansion;
        expiry raises :class:`~repro.errors.DeadlineExceeded` carrying
        the partial :class:`SearchStats`.  ``None`` skips the polls
        entirely.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        pin = getattr(self.tree, "pin", None)
        if pin is not None:
            # Live trees (repro.lsm.LiveIndex) are searched through a
            # pinned epoch view: the pin keeps the background freezer
            # from retiring the epoch (and its shm segments) mid-walk.
            # The view has no ``pin`` of its own, so the recursion runs
            # the normal path exactly once.
            with pin() as view:
                pinned = copy.copy(self)
                pinned.tree = view
                return pinned.search(query, k, trace=trace, cancel=cancel)
        resolved = self._resolve_engine(trace)
        if resolved == "snapshot":
            snap = self.tree.snapshot()
            if self.warm_floors:
                runner = snap.warm_engine_for(
                    self.tree,
                    self.measure,
                    self.alpha,
                    self.te_weight,
                    kmax=self.sketch_kmax,
                    budget=self.sketch_budget,
                    pool=self.sketch_pool,
                    sample_frac=self.sketch_sample_frac,
                )
            else:
                runner = snap.engine_for(
                    self.tree, self.measure, self.alpha, self.te_weight
                )
            result = runner.search(query, k, trace=trace, cancel=cancel)
            record_search(self.metrics, "snapshot", result.stats)
            return result
        if resolved == "approx":
            snap = self.tree.snapshot()
            runner = snap.approx_engine_for(
                self.tree,
                self.measure,
                self.alpha,
                self.te_weight,
                verify=self.approx_verify,
                kmax=self.sketch_kmax,
                budget=self.sketch_budget,
                pool=self.sketch_pool,
                sample_frac=self.sketch_sample_frac,
                lsh=self.approx_lsh,
            )
            result = runner.search(query, k, trace=trace, cancel=cancel)
            record_search(self.metrics, "approx", result.stats)
            record_approx(self.metrics, runner.last_filter)
            return result
        started = time.perf_counter()
        stats = SearchStats()
        if cancel is not None and cancel.expired():
            raise DeadlineExceeded(cancel_message(cancel), stats=stats)
        bounds = self._bound_computer()
        evictions_before = (
            self.bound_cache.stats().evictions
            if self.bound_cache is not None
            else 0
        )
        q_entry = Entry.for_object(-1, query.mbr(), query.vector)

        roots = self._initial_entries()
        if not roots:
            stats.elapsed_seconds = time.perf_counter() - started
            record_search(self.metrics, "seed", stats)
            return SearchResult([], stats, self.tree.io.snapshot())

        live: Dict[SourceKey, Entry] = {}
        lists: Dict[SourceKey, ContributionList] = {}
        status: Dict[SourceKey, str] = {}
        qbounds: Dict[SourceKey, Tuple[float, float]] = {}
        expanded_children: Dict[SourceKey, List[Entry]] = {}
        counter = itertools.count()
        heap: List[Tuple[float, int, SourceKey]] = []

        for entry in roots:
            key = _key(entry)
            live[key] = entry
            status[key] = _UNDECIDED
        for key, entry in live.items():
            lists[key] = self._fresh_list(entry, key, live, bounds)
            qbounds[key] = bounds.st_bounds(q_entry, entry)
            heapq.heappush(
                heap, (-self._priority(entry, qbounds[key][1]), next(counter), key)
            )

        num_clusters = max(self.tree.num_clusters(), 1)
        tighten_width = max(16, 4 * k)

        while heap:
            _, _, key = heapq.heappop(heap)
            if status.get(key) != _UNDECIDED:
                continue
            entry = live[key]
            q_lo, q_hi = qbounds[key]
            decision = self._decide(lists[key], q_lo, q_hi, k)
            while decision == 0 and self._tighten(
                entry, lists[key], bounds, expanded_children, tighten_width
            ):
                # Lazily refine the decisive contributions (the paper's
                # effect-list update) before paying for an expansion or a
                # probe.
                decision = self._decide(lists[key], q_lo, q_hi, k)
            if decision < 0:
                status[key] = _PRUNED
                stats.pruned_entries += 1
                stats.pruned_objects += entry.count
                if trace is not None:
                    self._record(trace, "prune", entry, q_lo, q_hi, lists[key], k)
                del lists[key]
                continue
            if decision > 0:
                status[key] = _ACCEPTED
                stats.accepted_entries += 1
                stats.accepted_objects += entry.count
                if trace is not None:
                    self._record(trace, "accept", entry, q_lo, q_hi, lists[key], k)
                del lists[key]
                continue
            if entry.is_object:
                member = self._verify(entry, q_hi, k, bounds, roots, stats)
                status[key] = _RESULT if member else _NONRESULT
                stats.verified_objects += 1
                if trace is not None:
                    self._record(
                        trace,
                        "verify-in" if member else "verify-out",
                        entry,
                        q_lo,
                        q_hi,
                        lists[key],
                        k,
                    )
                del lists[key]
                continue

            # Expand: replace the entry by its children.  Children inherit
            # the parent's contribution list — every inherited bound stays
            # valid for the sub-region, just looser — and only the mutual
            # sibling and self terms are computed fresh.  Other entries'
            # lists keep the parent's (valid) contribution and are only
            # rebuilt if they later pop undecided.
            if cancel is not None and cancel.expired():
                stats.elapsed_seconds = time.perf_counter() - started
                raise DeadlineExceeded(cancel_message(cancel), stats=stats)
            if trace is not None:
                self._record(trace, "expand", entry, q_lo, q_hi, lists[key], k)
            children = self.tree.children(entry)
            stats.expansions += 1
            status[key] = _EXPANDED
            expanded_children[key] = children
            parent_list = lists.pop(key)
            parent_list.remove(key)  # parent's self-contribution
            del live[key]
            child_items: List[Tuple[SourceKey, Entry]] = []
            for child in children:
                ckey = _key(child)
                live[ckey] = child
                status[ckey] = _UNDECIDED
                child_items.append((ckey, child))
            for ckey, child in child_items:
                clist = parent_list.copy()
                for skey, sibling in child_items:
                    if skey == ckey:
                        continue
                    lo, hi = bounds.st_bounds(child, sibling)
                    clist.set(
                        Contribution(skey, sibling, lo, hi, sibling.count),
                        tight=True,
                    )
                if child.count >= 2:
                    lo, hi = bounds.self_bounds(child)
                    clist.set(
                        Contribution(ckey, child, lo, hi, child.count - 1),
                        tight=True,
                    )
                lists[ckey] = clist
                qb = bounds.st_bounds(q_entry, child)
                qbounds[ckey] = qb
                prio = self._priority(child, qb[1], num_clusters)
                heapq.heappush(heap, (-prio, next(counter), ckey))

        # Gather results: accepted subtrees enumerate their objects.
        ids: List[int] = []
        for key, st in status.items():
            if st == _ACCEPTED:
                ids.extend(self._collect(live[key]))
            elif st == _RESULT:
                ids.append(key[0])
        ids.sort()
        stats.result_count = len(ids)
        stats.cache_hits = bounds.hits
        stats.cache_misses = bounds.misses
        if self.bound_cache is not None:
            stats.cache_evictions = (
                self.bound_cache.stats().evictions - evictions_before
            )
        stats.elapsed_seconds = time.perf_counter() - started
        record_search(self.metrics, "seed", stats)
        return SearchResult(ids, stats, self.tree.io.snapshot())

    def search_for_member(self, oid: int, k: int) -> SearchResult:
        """Reverse neighbors of an object already *in* the dataset.

        Uses the member's own location and text as the query; the member
        itself is excluded from the result (it trivially ranks itself
        first).  Everything else keeps the standard semantics: for every
        other object ``o``, the member competes against ``D \\ {o}`` —
        which contains the member — so no special-casing is needed
        beyond dropping ``oid`` from the output.
        """
        obj = self.tree.object(oid)
        query = self.tree.dataset.make_query_from_object(obj)
        result = self.search(query, k)
        if oid in result.ids:
            result.ids.remove(oid)
            result.stats.result_count = len(result.ids)
        return result

    def search_ranked(
        self, query: STObject, k: int
    ) -> List[Tuple[int, int, float]]:
        """Reverse neighbors with the query's rank in each one's list.

        Returns ``(oid, rank, sim)`` triples sorted by ``(rank, oid)``:
        ``rank`` is 1 + the number of dataset objects strictly more
        similar to ``oid`` than the query is (so rank 1 means the query
        would be the object's single most similar neighbor).  Useful for
        applications that care *how prominently* a new facility would
        surface, not just whether it makes the top-k.
        """
        result = self.search(query, k)
        bounds = self._bound_computer()
        q_entry = Entry.for_object(-1, query.mbr(), query.vector)
        roots = self._initial_entries()
        ranked: List[Tuple[int, int, float]] = []
        for oid in result.ids:
            obj = self.tree.object(oid)
            o_entry = Entry.for_object(oid, obj.mbr(), obj.vector)
            _, q_sim = bounds.st_bounds(q_entry, o_entry)
            stronger = self._count_stronger(o_entry, q_sim, bounds, roots)
            ranked.append((oid, stronger + 1, q_sim))
        ranked.sort(key=lambda t: (t[1], t[0]))
        return ranked

    def _count_stronger(
        self,
        obj_entry: Entry,
        q_sim: float,
        bounds: BoundComputer,
        roots: List[Entry],
    ) -> int:
        """Exact count of objects strictly more similar than the query
        (no early exit — ranks need the true count)."""
        target_point = obj_entry.mbr.center()
        count = 0
        stack = [e for e in roots if _key(e) != _key(obj_entry)]
        while stack:
            entry = stack.pop()
            if entry.is_object:
                if entry.ref == obj_entry.ref:
                    continue
                _, sim = bounds.st_bounds(obj_entry, entry)
                if sim > q_sim:
                    count += 1
                continue
            lo, hi = bounds.st_bounds(obj_entry, entry)
            if hi <= q_sim:
                continue
            if lo > q_sim and not entry.mbr.contains_point(target_point):
                count += entry.count
                continue
            stack.extend(self.tree.children(entry, tag="rank"))
        return count

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------

    @staticmethod
    def _record(
        trace: "TraceSink",
        action: str,
        entry: Entry,
        q_lo: float,
        q_hi: float,
        clist: ContributionList,
        k: int,
    ) -> None:
        trace.record(
            action,
            entry.ref,
            entry.is_object,
            entry.count,
            q_lo,
            q_hi,
            clist.knn_lower(k),
            clist.knn_upper(k),
        )

    @staticmethod
    def _decide(clist: ContributionList, q_lo: float, q_hi: float, k: int) -> int:
        """Apply the two decision rules: -1 prune, +1 accept, 0 undecided."""
        if q_hi < clist.knn_lower(k):
            return -1
        if q_lo >= clist.knn_upper(k):
            return 1
        return 0

    def _initial_entries(self) -> List[Entry]:
        roots: List[Entry] = []
        root = self.tree.root_entry()
        if root is not None:
            roots.append(root)
        roots.extend(self.tree.outlier_entries())
        return roots

    def _priority(
        self, entry: Entry, q_hi: float, num_clusters: int = 1
    ) -> float:
        """Best-first key: promise vs the query, plus the TE boost."""
        if self.te_weight == 0.0 or entry.is_object:
            return q_hi
        histogram = {cid: iv.doc_count for cid, iv in entry.clusters.items()}
        return q_hi + self.te_weight * normalized_cluster_entropy(
            histogram, max(num_clusters, 2)
        )

    def _fresh_list(
        self,
        entry: Entry,
        key: SourceKey,
        live: Dict[SourceKey, Entry],
        bounds: BoundComputer,
    ) -> ContributionList:
        """Build a full contribution list over every live entry."""
        clist = ContributionList()
        for okey, other in live.items():
            if okey == key:
                continue
            lo, hi = bounds.st_bounds(entry, other)
            clist.set(Contribution(okey, other, lo, hi, other.count), tight=True)
        if entry.count >= 2:
            lo, hi = bounds.self_bounds(entry)
            clist.set(Contribution(key, entry, lo, hi, entry.count - 1), tight=True)
        return clist

    def _tighten(
        self,
        entry: Entry,
        clist: ContributionList,
        bounds: BoundComputer,
        expanded_children: Dict[SourceKey, List[Entry]],
        width: int,
    ) -> bool:
        """Refine the contributions that gate this entry's decision.

        Only the ``width`` largest lower-bound contributions (they decide
        ``kNNL``) and largest upper-bound contributions (``kNNU``) are
        touched.  A loose contribution is either recomputed directly
        against its summarizing entry, or — when that entry has already
        been expanded — substituted by per-child contributions, which
        preserves coverage exactly while strictly refining the bounds.

        Returns True when anything changed (so the caller re-checks the
        decision rules), False at a local fixpoint.
        """
        candidates = clist.top_by_min(width) + clist.top_by_max(width)
        changed = False
        seen: set = set()
        for contribution in candidates:
            skey = contribution.source
            if skey in seen or skey not in clist:
                continue
            seen.add(skey)
            children = expanded_children.get(skey)
            if children is not None and skey != _key(entry):
                clist.remove(skey)
                for child in children:
                    lo, hi = bounds.st_bounds(entry, child)
                    clist.set(
                        Contribution(_key(child), child, lo, hi, child.count),
                        tight=True,
                    )
                changed = True
            elif not clist.is_tight(skey):
                lo, hi = bounds.st_bounds(entry, contribution.entry)
                count = contribution.count
                if skey == _key(entry):
                    lo, hi = bounds.self_bounds(entry)
                clist.set(
                    Contribution(skey, contribution.entry, lo, hi, count),
                    tight=True,
                )
                changed = True
        return changed

    def _verify(
        self,
        obj_entry: Entry,
        q_sim: float,
        k: int,
        bounds: BoundComputer,
        roots: List[Entry],
        stats: SearchStats,
    ) -> bool:
        """Exact membership probe for one undecided object.

        Counts dataset objects strictly more similar to ``o`` than the
        query is, descending the tree with bound pruning and stopping as
        soon as ``k`` are found.  Subtrees whose MinST already exceeds the
        query similarity are counted wholesale unless they might contain
        ``o`` itself.
        """
        target_point = obj_entry.mbr.center()
        count = 0
        stack: List[Entry] = [e for e in roots if _key(e) != _key(obj_entry)]
        while stack and count < k:
            entry = stack.pop()
            if entry.is_object:
                if entry.ref == obj_entry.ref:
                    continue
                _, sim = bounds.st_bounds(obj_entry, entry)
                if sim > q_sim:
                    count += 1
                continue
            lo, hi = bounds.st_bounds(obj_entry, entry)
            if hi <= q_sim:
                continue
            if lo > q_sim and not entry.mbr.contains_point(target_point):
                # Every object here beats the query, and o is elsewhere.
                count += entry.count
                continue
            stats.verify_node_reads += 1
            stack.extend(self.tree.children(entry, tag="verify"))
        return count <= k - 1

    def _collect(self, entry: Entry) -> List[int]:
        """Enumerate the object ids beneath an accepted entry."""
        if entry.is_object:
            return [entry.ref]
        out: List[int] = []
        stack = [entry]
        while stack:
            e = stack.pop()
            if e.is_object:
                out.append(e.ref)
            else:
                stack.extend(self.tree.children(e, tag="collect"))
        return out


def _key(entry: Entry) -> SourceKey:
    return (entry.ref, entry.is_object)
