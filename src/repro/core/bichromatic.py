"""Bichromatic reverse spatial-textual kNN.

Two sets share a dataspace and vocabulary: *users* ``U`` and *objects*
``O`` (facilities).  ``BRSTkNN(q, k)`` returns every user ``u`` such that
the query object ``q`` ranks among the top-k objects of ``u`` — i.e.
strictly fewer than ``k`` objects of ``O`` are strictly more similar to
``u`` than ``q`` is (tie-inclusive, like the monochromatic searcher).

The group-level algorithm mirrors the monochromatic one, with two
independent partitions:

* the **user partition** (over the user tree) carries the decision state
  — each user entry is pruned, accepted, or expanded;
* the **object partition** (over the object tree) supplies every user
  entry's contribution list.  It is refined on demand: when a single
  user cannot be decided, its loosest object-side contributor is
  expanded, tightening ``kNNL``/``kNNU`` for every queued user at once.

Users never contribute to each other's neighbor lists (their neighbors
are objects), so there is no self-contribution term, and exactness is
guaranteed: once a user's contributors are all concrete objects,
``kNNL == kNNU`` equals the true k-th neighbor score and one of the two
decision rules must fire.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import SimilarityConfig
from ..errors import QueryError
from ..index.entry import Entry
from ..index.iurtree import IURTree
from ..model.objects import STObject
from ..model.scorer import STScorer
from ..text import make_measure
from .bounds import BoundComputer
from .contributions import Contribution, ContributionList, SourceKey
from .topk import TopKSearcher


@dataclass
class BichromaticResult:
    """Sorted user ids plus search statistics."""

    user_ids: List[int]
    user_expansions: int = 0
    object_expansions: int = 0
    pruned_user_entries: int = 0
    accepted_user_entries: int = 0
    elapsed_seconds: float = 0.0
    io: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.user_ids)


class BichromaticRSTkNN:
    """Group-level BRSTkNN over a user tree and an object tree.

    Both trees must share the spatial normalization and vocabulary —
    build the user dataset with :meth:`STDataset.derive` from the object
    dataset to guarantee it.
    """

    def __init__(
        self,
        user_tree: IURTree,
        object_tree: IURTree,
        config: Optional[SimilarityConfig] = None,
    ) -> None:
        self.user_tree = user_tree
        self.object_tree = object_tree
        cfg = config if config is not None else object_tree.dataset.config
        self.config = cfg
        self.measure = make_measure(cfg.text_measure)
        self.alpha = cfg.alpha

    # ------------------------------------------------------------------
    # Group-level search
    # ------------------------------------------------------------------

    def search(self, query: STObject, k: int) -> BichromaticResult:
        """All users with the query among their top-k objects."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        started = time.perf_counter()
        result = BichromaticResult(user_ids=[])
        # User and object trees have colliding id namespaces, so the
        # bound computer must not memoize by entry id (see BoundComputer).
        bounds = BoundComputer(
            self.object_tree.dataset.proximity,
            self.measure,
            self.alpha,
            enable_cache=False,
        )
        q_entry = Entry.for_object(-1, query.mbr(), query.vector)

        # Object-side partition, shared by every queued user entry.
        obj_live: Dict[SourceKey, Entry] = {
            _key(e): e for e in self._initials(self.object_tree)
        }

        # User-side frontier: entries queued for a decision.
        user_live: Dict[SourceKey, Entry] = {}
        lists: Dict[SourceKey, ContributionList] = {}
        qbounds: Dict[SourceKey, Tuple[float, float]] = {}
        counter = itertools.count()
        heap: List[Tuple[float, int, SourceKey]] = []

        def add_user(entry: Entry) -> None:
            ukey = _key(entry)
            user_live[ukey] = entry
            clist = ContributionList()
            for okey, other in obj_live.items():
                lo, hi = bounds.st_bounds(entry, other)
                clist.set(Contribution(okey, other, lo, hi, other.count), tight=True)
            lists[ukey] = clist
            qb = bounds.st_bounds(q_entry, entry)
            qbounds[ukey] = qb
            heapq.heappush(heap, (-qb[1], next(counter), ukey))

        for entry in self._initials(self.user_tree):
            add_user(entry)

        accepted: List[Entry] = []

        while heap:
            _, _, ukey = heapq.heappop(heap)
            uentry = user_live.get(ukey)
            if uentry is None:
                continue
            clist = lists[ukey]
            q_lo, q_hi = qbounds[ukey]
            while True:
                knnl = clist.knn_lower(k)
                if q_hi < knnl:
                    result.pruned_user_entries += 1
                    self._drop_user(ukey, user_live, lists, qbounds)
                    break
                knnu = clist.knn_upper(k)
                if q_lo >= knnu:
                    result.accepted_user_entries += 1
                    accepted.append(uentry)
                    self._drop_user(ukey, user_live, lists, qbounds)
                    break
                if not uentry.is_object:
                    result.user_expansions += 1
                    children = self.user_tree.children(uentry, tag="user")
                    self._drop_user(ukey, user_live, lists, qbounds)
                    for child in children:
                        add_user(child)
                    break
                # A single undecided user: tighten the object side.  Once
                # every contributor is a concrete object the bounds are
                # exact and one of the rules above must fire.
                okey = self._loosest_node_contribution(clist, obj_live)
                if okey is None:
                    raise QueryError(
                        "internal error: exact contributions failed to decide "
                        f"user {ukey[0]}"
                    )
                self._expand_object(
                    okey, obj_live, user_live, lists, bounds, result
                )

        ids: List[int] = []
        for entry in accepted:
            ids.extend(self._collect_users(entry))
        ids.sort()
        result.user_ids = ids
        result.elapsed_seconds = time.perf_counter() - started
        io = dict(self.object_tree.io.snapshot())
        for key, val in self.user_tree.io.snapshot().items():
            io[f"user.{key}"] = val
        result.io = io
        return result

    # ------------------------------------------------------------------
    # Per-user baseline
    # ------------------------------------------------------------------

    def search_per_user(self, query: STObject, k: int) -> List[int]:
        """Baseline: one object-tree top-k probe per user."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        topk = TopKSearcher(self.object_tree, self.config)
        scorer = STScorer(
            self.object_tree.dataset.proximity, self.measure, self.alpha
        )
        out: List[int] = []
        for user in self.user_tree.dataset.objects:
            q_sim = scorer.score(query, user)
            threshold = topk.kth_score(user, k)
            if q_sim >= threshold:
                out.append(user.oid)
        return sorted(out)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _initials(tree: IURTree) -> List[Entry]:
        root = tree.root_entry()
        return ([root] if root is not None else []) + tree.outlier_entries()

    @staticmethod
    def _drop_user(
        ukey: SourceKey,
        user_live: Dict[SourceKey, Entry],
        lists: Dict[SourceKey, ContributionList],
        qbounds: Dict[SourceKey, Tuple[float, float]],
    ) -> None:
        del user_live[ukey]
        del lists[ukey]
        del qbounds[ukey]

    @staticmethod
    def _loosest_node_contribution(
        clist: ContributionList, obj_live: Dict[SourceKey, Entry]
    ) -> Optional[SourceKey]:
        """The directory contributor with the widest weighted bound gap."""
        best: Optional[SourceKey] = None
        best_gap = -1.0
        for contribution in clist.contributions():
            entry = obj_live.get(contribution.source)
            if entry is None or entry.is_object:
                continue
            gap = (contribution.max_st - contribution.min_st) * contribution.count
            if gap > best_gap:
                best_gap = gap
                best = contribution.source
        return best

    def _expand_object(
        self,
        okey: SourceKey,
        obj_live: Dict[SourceKey, Entry],
        user_live: Dict[SourceKey, Entry],
        lists: Dict[SourceKey, ContributionList],
        bounds: BoundComputer,
        result: BichromaticResult,
    ) -> None:
        """Replace one object-side entry by its children, in every list."""
        entry = obj_live.pop(okey)
        result.object_expansions += 1
        children = self.object_tree.children(entry, tag="object")
        child_items = [(_key(c), c) for c in children]
        for ckey, child in child_items:
            obj_live[ckey] = child
        for ukey, ulist in lists.items():
            if okey not in ulist:
                continue
            ulist.remove(okey)
            uentry = user_live[ukey]
            for ckey, child in child_items:
                lo, hi = bounds.st_bounds(uentry, child)
                ulist.set(Contribution(ckey, child, lo, hi, child.count), tight=True)

    def _collect_users(self, entry: Entry) -> List[int]:
        if entry.is_object:
            return [entry.ref]
        out: List[int] = []
        stack = [entry]
        while stack:
            e = stack.pop()
            if e.is_object:
                out.append(e.ref)
            else:
                stack.extend(self.user_tree.children(e, tag="user-collect"))
        return out


def _key(entry: Entry) -> SourceKey:
    return (entry.ref, entry.is_object)
