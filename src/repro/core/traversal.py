"""Snapshot-based RSTkNN traversal: the ``engine="snapshot"`` hot path.

A :class:`SnapshotEngine` runs the exact branch-and-bound algorithm of
:class:`~repro.core.rstknn.RSTkNNSearcher` over an
:class:`~repro.perf.snapshot.IndexSnapshot` instead of the live tree
objects.  The algorithm is a line-faithful port — same decision rules,
same lazy effect-list tightening, same heap discipline (stale entries
are skipped by a status check, never re-keyed), same verification probe,
and the same buffer-pool charges in the same order — so its result sets
and decision counters are identical to the seed engine *by
construction*, not by tolerance.  What changes is the representation:

* entries are integer *slots* into flat coordinate arrays, so the
  similarity bounds read four floats instead of chasing
  ``Entry -> Rect`` attribute pairs;
* when a node is expanded, the spatial parts of the query bounds for
  all of its children come from one vectorized array pass (numpy when
  available) over the snapshot's coordinate columns, finished with
  scalar ``math.hypot`` so every value is bit-identical to the seed's;
* textual bounds are evaluated from the snapshot's pre-frozen kernel
  forms, with the Extended Jaccard formulas inlined over precomputed
  squared norms (the production default measure);
* the verification probe orders its work so text bounds are evaluated
  lazily: children whose purely spatial optimistic bounds already
  decide them (group-pruned or group-counted) never pay for a text
  bound at all — provably the same decision the full bound reaches;
* pair bounds are memoized in a snapshot-resident symmetric table, so
  later queries reuse earlier queries' work (the cross-query analogue
  of PR 1's shared :class:`~repro.perf.cache.BoundCache`, with the same
  staleness story: snapshots are generation-tagged and rebuilt on
  index mutation).

Floating-point parity notes: every arithmetic expression (clamps,
blends, hypot finishes, kernel reductions) is copied from the seed call
sites with the same operand order, so values match bit-for-bit within a
query.  Like the PR 1 shared bound cache, the persistent pair memo may
serve a value first computed by an *earlier* query; all bound kernels
are symmetric to the last ulp except frozen-set intersection iteration
ties, which the parity tests cover.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.trace import TraceSink

from ..model.objects import STObject
from ..perf import kernels
from ..text.interval import IntervalVector
from ..text.similarity import ExtendedJaccard
from ..errors import DeadlineExceeded
from .cancel import cancel_message
from .contributions import _kth_largest
from .rstknn import SearchResult, SearchStats

_UNDECIDED = "undecided"
_PRUNED = "pruned"
_ACCEPTED = "accepted"
_EXPANDED = "expanded"
_RESULT = "result"
_NONRESULT = "nonresult"

#: Contributions are ``slot -> (min_st, max_st, count)`` tuples; the
#: per-entry list is a plain dict (insertion-ordered like the seed's
#: ContributionList) plus the set of directly-computed sources.
_Contrib = Tuple[float, float, int]

#: Snapshot-resident pair-memo size cap; beyond it new pairs are simply
#: recomputed (the memo never evicts, so no churn).
_PAIR_MEMO_CAP = 1 << 21

#: Vectorize the query-vs-children spatial pass only above this fanout;
#: tiny nodes are faster scalar.
_VECTOR_MIN_CHILDREN = 4

#: Default frontier lookahead: when a node is expanded, the spatial
#: components of up to this many frontier nodes' children (the expanded
#: node plus the best undecided directory entries peeked from the heap)
#: are evaluated in ONE kernel call; peeked nodes find their components
#: precomputed if and when they expand.  Purely a batching knob — the
#: heap pop order, every bound value, and every decision are unchanged
#: (the components are elementwise, so a gathered batch is bit-identical
#: to per-node slices).  Overridable via ``REPRO_FRONTIER_BATCH``.
DEFAULT_FRONTIER_LOOKAHEAD = 4

#: Environment variable overriding :data:`DEFAULT_FRONTIER_LOOKAHEAD`.
FRONTIER_ENV_VAR = "REPRO_FRONTIER_BATCH"


def _frontier_lookahead_from_env() -> int:
    import os

    raw = os.environ.get(FRONTIER_ENV_VAR)
    if raw is None:
        return DEFAULT_FRONTIER_LOOKAHEAD
    try:
        return max(1, int(raw))
    except ValueError:
        import warnings

        warnings.warn(
            f"{FRONTIER_ENV_VAR}={raw!r} is not an integer; using the "
            f"default lookahead {DEFAULT_FRONTIER_LOOKAHEAD}",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_FRONTIER_LOOKAHEAD


def tighten_width_for(k: int) -> int:
    """Candidate width of one lazy-tightening pass.

    Shared with :class:`repro.core.fused.FusedBatchEngine` — both
    engines must refine the same candidate prefix per pass for the
    fused walk to stay decision-for-decision identical to this one.
    """
    return max(16, 4 * k)


class _CList:
    """Slot-keyed contribution list (dict + tight set), seed-ordered."""

    __slots__ = ("d", "tight")

    def __init__(self, d: Dict[int, _Contrib], tight: Set[int]) -> None:
        self.d = d
        self.tight = tight


class SnapshotEngine:
    """Branch-and-bound RSTkNN search over one :class:`IndexSnapshot`.

    One engine exists per ``(measure, alpha, te_weight)`` setting of a
    snapshot (see :meth:`IndexSnapshot.engine_for`); it owns the
    persistent pair-bound memo for that setting.
    """

    def __init__(
        self,
        tree,
        snap,
        measure,
        alpha: float,
        te_weight: float,
        floors=None,
    ) -> None:
        self.tree = tree
        self.snap = snap
        self.measure = measure
        self.alpha = alpha
        self.te_weight = te_weight
        #: Optional frozen :class:`~repro.approx.sketch.KnnlSketch`: when
        #: set, slots whose query upper bound falls below the sketch's
        #: conservative kNNL floor are pruned *before* any contribution
        #: list is built.  Result ids are unchanged (a floored slot
        #: provably holds no result); decision counters differ, so
        #: floored engines are memoized separately from the parity
        #: engine (:meth:`IndexSnapshot.warm_engine_for`).
        self.floors = floors
        self._ej = isinstance(measure, ExtendedJaccard)
        #: Symmetric tree-pair memo: canonical key ``min*n + max`` over
        #: slots -> blended ``(MinST, MaxST)`` (exact pairs store
        #: ``(s, s)``).  Persistent across queries.
        self._memo: Dict[int, Tuple[float, float]] = {}
        self.hits = 0
        self.misses = 0
        #: Frontier nodes whose children share one spatial kernel call
        #: (see :data:`DEFAULT_FRONTIER_LOOKAHEAD`); engine-local so the
        #: knob can never perturb :class:`SearchStats` parity.
        self.frontier_lookahead = _frontier_lookahead_from_env()
        #: batch size -> kernel calls; published to the observability
        #: layer as the frontier batch-size histogram.
        self.frontier_hist: Dict[int, int] = {}

    def frontier_histogram(self) -> Dict[int, int]:
        """``batch size -> spatial kernel calls`` since engine creation.

        Kept outside :class:`SearchStats` so the lookahead knob can never
        perturb the engines' decision-counter parity contract; the
        metrics layer publishes it as ``engine.frontier.batch_size``.
        """
        return dict(self.frontier_hist)

    # ------------------------------------------------------------------
    # Pair bounds
    # ------------------------------------------------------------------

    def _st(self, a: int, b: int) -> Tuple[float, float]:
        """Memoized ``(MinST, MaxST)`` between two slots (seed call order
        preserved by every caller: ``a`` is the owning entry)."""
        n = self.snap.n_slots
        key = a * n + b if a <= b else b * n + a
        memo = self._memo
        cached = memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self._compute_st(a, b)
        if len(memo) < _PAIR_MEMO_CAP:
            memo[key] = result
        return result

    def _compute_st(self, a: int, b: int) -> Tuple[float, float]:
        snap = self.snap
        if snap.is_obj[a] and snap.is_obj[b]:
            score = self._exact(a, b)
            return score, score
        alpha = self.alpha
        if alpha == 0.0:
            return self._text(a, b)
        xlo, ylo, xhi, yhi = snap.xlo, snap.ylo, snap.xhi, snap.yhi
        dx = max(xlo[a] - xhi[b], 0.0, xlo[b] - xhi[a])
        dy = max(ylo[a] - yhi[b], 0.0, ylo[b] - yhi[a])
        min_dist = math.hypot(dx, dy)
        dx = max(abs(xhi[a] - xlo[b]), abs(xhi[b] - xlo[a]))
        dy = max(abs(yhi[a] - ylo[b]), abs(yhi[b] - ylo[a]))
        max_dist = math.hypot(dx, dy)
        s_lo = self._fd(max_dist)
        s_hi = self._fd(min_dist)
        if alpha == 1.0:
            return alpha * s_lo, alpha * s_hi
        t_lo, t_hi = self._text(a, b)
        return (
            alpha * s_lo + (1.0 - alpha) * t_lo,
            alpha * s_hi + (1.0 - alpha) * t_hi,
        )

    def _fd(self, distance: float) -> float:
        """``SpatialProximity.from_distance`` inlined (clamped 1 - d/maxD)."""
        score = 1.0 - distance / self.snap.maxD
        if score < 0.0:
            return 0.0
        if score > 1.0:
            return 1.0
        return score

    def _exact(self, a: int, b: int) -> float:
        """Exact SimST of two object slots (seed ``exact_score`` inlined)."""
        snap = self.snap
        alpha = self.alpha
        score = 0.0
        if alpha > 0.0:
            dist = math.hypot(
                snap.xlo[a] - snap.xlo[b], snap.ylo[a] - snap.ylo[b]
            )
            score += alpha * self._fd(dist)
        if alpha < 1.0:
            if self._ej:
                sim = snap.obj_frozen[a].ext_jaccard(snap.obj_frozen[b])
            else:
                sim = self.measure.similarity(snap.obj_vec[a], snap.obj_vec[b])
            score += (1.0 - alpha) * sim
        return score

    def _text(self, a: int, b: int) -> Tuple[float, float]:
        """``(MinSimT, MaxSimT)`` over the cluster pairs of two slots."""
        ca = self.snap.clusters[a]
        cb = self.snap.clusters[b]
        lo: Optional[float] = None
        hi = 0.0
        if self._ej:
            # Extended Jaccard bounds inlined over the pre-frozen forms
            # and precomputed squared norms (same formulas and operand
            # order as ExtendedJaccard.min/max_similarity).
            for _iva, int_a, uni_a, insq_a, unsq_a in ca:
                for _ivb, int_b, uni_b, insq_b, unsq_b in cb:
                    d_min = int_a.dot(int_b)
                    if d_min == 0.0:
                        pair_lo = 0.0
                    else:
                        s_max = unsq_a + unsq_b
                        pair_lo = d_min / (s_max - d_min)
                    d_max = uni_a.dot(uni_b)
                    if d_max == 0.0:
                        pair_hi = 0.0
                    elif 2.0 * d_max >= insq_a + insq_b:
                        pair_hi = 1.0
                    else:
                        s_min = insq_a + insq_b
                        pair_hi = d_max / (s_min - d_max)
                    lo = pair_lo if lo is None else min(lo, pair_lo)
                    hi = max(hi, pair_hi)
        else:
            min_sim = self.measure.min_similarity
            max_sim = self.measure.max_similarity
            for iva, *_ in ca:
                for ivb, *_ in cb:
                    pair_lo = min_sim(iva, ivb)
                    pair_hi = max_sim(iva, ivb)
                    lo = pair_lo if lo is None else min(lo, pair_lo)
                    hi = max(hi, pair_hi)
        return (lo if lo is not None else 0.0, hi)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self,
        query: STObject,
        k: int,
        trace: Optional["TraceSink"] = None,
        cancel: Optional[object] = None,
    ) -> SearchResult:
        """Seed-identical RSTkNN search (see module docstring).

        ``trace`` is any :class:`repro.obs.TraceSink`; the engine emits
        the same decision events (action, ref, bounds) the seed walk
        does — the multiset of events per query is identical across
        engines, which ``tests/test_obs.py`` asserts.

        ``cancel`` is polled once at start and once per node expansion
        (same protocol as :meth:`RSTkNNSearcher.search
        <repro.core.rstknn.RSTkNNSearcher.search>`); expiry raises
        :class:`~repro.errors.DeadlineExceeded` with partial stats.
        """
        started = time.perf_counter()
        stats = SearchStats()
        if cancel is not None and cancel.expired():
            raise DeadlineExceeded(cancel_message(cancel), stats=stats)
        hits0, misses0 = self.hits, self.misses
        snap = self.snap
        tree = self.tree
        alpha = self.alpha
        te = self.te_weight
        st = self._st
        fd = self._fd
        is_obj = snap.is_obj
        cnt = snap.cnt
        xlo, ylo, xhi, yhi = snap.xlo, snap.ylo, snap.xhi, snap.yhi

        roots = snap.root_slots
        if not roots:
            stats.elapsed_seconds = time.perf_counter() - started
            return SearchResult([], stats, tree.io.snapshot())

        # Query-side data (the seed's synthetic ref -1 entry, unpacked).
        qm = query.mbr()
        qxlo, qylo, qxhi, qyhi = qm.xlo, qm.ylo, qm.xhi, qm.yhi
        qvec = query.vector
        q_frozen = qvec.frozen()
        q_nsq = qvec.norm_squared
        q_iv = IntervalVector.from_document(qvec) if not self._ej else None
        measure = self.measure
        ej = self._ej

        def q_text(slot: int) -> Tuple[float, float]:
            # text_bounds(q_entry, slot): the query contributes a single
            # degenerate cluster (int == uni == qvec).
            lo: Optional[float] = None
            hi = 0.0
            if ej:
                for _iv, int_b, uni_b, insq_b, unsq_b in snap.clusters[slot]:
                    d_min = q_frozen.dot(int_b)
                    if d_min == 0.0:
                        pair_lo = 0.0
                    else:
                        s_max = q_nsq + unsq_b
                        pair_lo = d_min / (s_max - d_min)
                    d_max = q_frozen.dot(uni_b)
                    if d_max == 0.0:
                        pair_hi = 0.0
                    elif 2.0 * d_max >= q_nsq + insq_b:
                        pair_hi = 1.0
                    else:
                        s_min = q_nsq + insq_b
                        pair_hi = d_max / (s_min - d_max)
                    lo = pair_lo if lo is None else min(lo, pair_lo)
                    hi = max(hi, pair_hi)
            else:
                for ivb, *_ in snap.clusters[slot]:
                    pair_lo = measure.min_similarity(q_iv, ivb)
                    pair_hi = measure.max_similarity(q_iv, ivb)
                    lo = pair_lo if lo is None else min(lo, pair_lo)
                    hi = max(hi, pair_hi)
            return (lo if lo is not None else 0.0, hi)

        def q_exact(slot: int) -> float:
            # exact_score(q_entry, slot) for an object slot.
            score = 0.0
            if alpha > 0.0:
                dist = math.hypot(qxlo - xlo[slot], qylo - ylo[slot])
                score += alpha * fd(dist)
            if alpha < 1.0:
                if ej:
                    sim = q_frozen.ext_jaccard(snap.obj_frozen[slot])
                else:
                    sim = measure.similarity(qvec, snap.obj_vec[slot])
                score += (1.0 - alpha) * sim
            return score

        def q_st(slot: int) -> Tuple[float, float]:
            # st_bounds(q_entry, slot), scalar form.
            if is_obj[slot]:
                score = q_exact(slot)
                return score, score
            if alpha == 0.0:
                return q_text(slot)
            dx = max(qxlo - xhi[slot], 0.0, xlo[slot] - qxhi)
            dy = max(qylo - yhi[slot], 0.0, ylo[slot] - qyhi)
            s_hi = fd(math.hypot(dx, dy))
            dx = max(abs(qxhi - xlo[slot]), abs(xhi[slot] - qxlo))
            dy = max(abs(qyhi - ylo[slot]), abs(yhi[slot] - qylo))
            s_lo = fd(math.hypot(dx, dy))
            if alpha == 1.0:
                return alpha * s_lo, alpha * s_hi
            t_lo, t_hi = q_text(slot)
            return (
                alpha * s_lo + (1.0 - alpha) * t_lo,
                alpha * s_hi + (1.0 - alpha) * t_hi,
            )

        lists: Dict[int, _CList] = {}
        status: Dict[int, str] = {}
        qbounds: Dict[int, Tuple[float, float]] = {}
        expanded: Dict[int, Tuple[int, int]] = {}
        counter = itertools.count()
        heap: List[Tuple[float, int, int]] = []

        # Warm-start floors: a slot whose optimistic query bound cannot
        # reach the frozen kNNL floor of its subtree holds no result
        # (>= k competitors strictly beat the query for every object
        # there), so it is pruned before any contribution-list work.
        # ``q_st`` never touches the pair memo, so evaluating it ahead
        # of the list build leaves all cached-bound accounting intact.
        floors = self.floors
        use_floors = floors is not None and k <= floors.kmax
        if use_floors:
            f_idx = floors.floor_idx
            f_tbl = floors.floor_table
            f_kmax = floors.kmax
            f_koff = k - 1
            f_curve_c = floors.curve_c
            f_curve_b = floors.curve_b
            f_prof = floors.obj_profile

            def floor_of(slot: int) -> float:
                fl = f_tbl[f_idx[slot] * f_kmax + f_koff]
                if is_obj[slot]:
                    if f_prof:
                        # Sampled k-distance profile: dominates the
                        # fitted curve pointwise wherever both exist.
                        y = f_prof[slot * f_kmax + f_koff]
                        if y > fl:
                            return y
                        return fl
                    c = f_curve_c[slot]
                    if c > 0.0:
                        curve = c * k ** -f_curve_b[slot]
                        if curve > fl:
                            return curve
                return fl

        for r in roots:
            status[r] = _UNDECIDED
        for r in roots:
            qb = q_st(r)
            if use_floors and qb[1] < floor_of(r):
                status[r] = _PRUNED
                stats.pruned_entries += 1
                stats.pruned_objects += cnt[r]
                continue
            d: Dict[int, _Contrib] = {}
            tight: Set[int] = set()
            for o in roots:
                if o == r:
                    continue
                lo, hi = st(r, o)
                d[o] = (lo, hi, cnt[o])
                tight.add(o)
            if cnt[r] >= 2:
                lo, hi = st(r, r)
                d[r] = (lo, hi, cnt[r] - 1)
                tight.add(r)
            lists[r] = _CList(d, tight)
            qbounds[r] = qb
            # Root-site priority: the seed's default num_clusters=1 makes
            # the entropy divisor 2 (ent_root); objects get no boost.
            if te == 0.0 or is_obj[r]:
                prio = qb[1]
            else:
                prio = qb[1] + te * snap.ent_root[r]
            heapq.heappush(heap, (-prio, next(counter), r))

        tighten_width = tighten_width_for(k)
        np_cols = snap.np_xlo
        np = kernels._numpy() if np_cols is not None else None

        # Frontier batching state (query-local): components computed for
        # heap-peeked nodes wait here until those nodes expand.
        lookahead = self.frontier_lookahead
        sp_cache: Dict[int, Tuple] = {}
        frontier_hist = self.frontier_hist
        first_child = snap.first_child
        last_child = snap.last_child

        ref_col = snap.ref

        def t_record(action: str, key: int, q_lo: float, q_hi: float) -> None:
            # Mirrors the seed's RSTkNNSearcher._record: same fields,
            # same kNN-band expressions (the slot-dict analogue of
            # ContributionList.knn_lower/knn_upper).
            d = lists[key].d
            trace.record(
                action,
                int(ref_col[key]),
                bool(is_obj[key]),
                int(cnt[key]),
                q_lo,
                q_hi,
                _kth_largest([(c[0], c[2]) for c in d.values()], k),
                _kth_largest([(c[1], c[2]) for c in d.values()], k),
            )

        while heap:
            _, _, key = heapq.heappop(heap)
            if status.get(key) != _UNDECIDED:
                continue
            q_lo, q_hi = qbounds[key]
            clist = lists[key]
            decision = self._decide(clist.d, q_lo, q_hi, k)
            while decision == 0 and self._tighten(
                key, clist, expanded, tighten_width
            ):
                decision = self._decide(clist.d, q_lo, q_hi, k)
            if decision < 0:
                status[key] = _PRUNED
                stats.pruned_entries += 1
                stats.pruned_objects += cnt[key]
                if trace is not None:
                    t_record("prune", key, q_lo, q_hi)
                del lists[key]
                continue
            if decision > 0:
                status[key] = _ACCEPTED
                stats.accepted_entries += 1
                stats.accepted_objects += cnt[key]
                if trace is not None:
                    t_record("accept", key, q_lo, q_hi)
                del lists[key]
                continue
            if is_obj[key]:
                member = self._verify(key, q_hi, k, stats)
                status[key] = _RESULT if member else _NONRESULT
                stats.verified_objects += 1
                if trace is not None:
                    t_record(
                        "verify-in" if member else "verify-out", key, q_lo, q_hi
                    )
                del lists[key]
                continue

            # Expand: children inherit the parent's list; sibling/self
            # terms are computed fresh (same order as the seed).
            if cancel is not None and cancel.expired():
                stats.elapsed_seconds = time.perf_counter() - started
                raise DeadlineExceeded(cancel_message(cancel), stats=stats)
            if trace is not None:
                t_record("expand", key, q_lo, q_hi)
            fc, lc = snap.first_child[key], snap.last_child[key]
            tree.buffer.get(snap.record_id[key], "node")
            stats.expansions += 1
            status[key] = _EXPANDED
            expanded[key] = (fc, lc)
            parent = lists.pop(key)
            parent.d.pop(key, None)
            children = range(fc, lc)
            for c in children:
                status[c] = _UNDECIDED

            # One array pass derives the spatial components of every
            # child's query bound; hypot/clamp/blend finish per child in
            # scalar float so values match the seed bit-for-bit.  With
            # lookahead > 1 the pass also covers the children of the
            # best undecided directory nodes still on the heap — they
            # find their components waiting in ``sp_cache`` if they
            # expand (and the components are elementwise, so batching
            # changes nothing but the number of kernel launches).
            sp = None
            if np is not None and alpha > 0.0:
                sp = sp_cache.pop(key, None)
                if sp is None and lc - fc >= _VECTOR_MIN_CHILDREN:
                    batch = [(key, fc, lc)]
                    if lookahead > 1 and heap:
                        for _p, _c, cand in heapq.nsmallest(lookahead, heap):
                            if len(batch) >= lookahead:
                                break
                            if (
                                status.get(cand) == _UNDECIDED
                                and not is_obj[cand]
                                and cand not in sp_cache
                                and last_child[cand] > first_child[cand]
                            ):
                                batch.append(
                                    (cand, first_child[cand], last_child[cand])
                                )
                    frontier_hist[len(batch)] = (
                        frontier_hist.get(len(batch), 0) + 1
                    )
                    if len(batch) == 1:
                        sp = kernels.frontier_spatial_components(
                            qxlo, qylo, qxhi, qyhi,
                            np_cols[fc:lc], snap.np_ylo[fc:lc],
                            snap.np_xhi[fc:lc], snap.np_yhi[fc:lc], np,
                        )
                    else:
                        idx = np.concatenate(
                            [np.arange(f, l) for _, f, l in batch]
                        )
                        comps = kernels.frontier_spatial_components(
                            qxlo, qylo, qxhi, qyhi,
                            np_cols[idx], snap.np_ylo[idx],
                            snap.np_xhi[idx], snap.np_yhi[idx], np,
                        )
                        off = 0
                        for slot_b, f, l in batch:
                            span = l - f
                            entry = tuple(
                                col[off : off + span] for col in comps
                            )
                            if slot_b == key:
                                sp = entry
                            else:
                                sp_cache[slot_b] = entry
                            off += span

            parent_d = parent.d
            for i, c in enumerate(children):
                # Query bound first: the floor gate can then skip the
                # whole sibling contribution pass for floored children.
                # (``q_st``/the sp finishes never touch the pair memo,
                # so the reorder is value- and counter-invisible.)
                if sp is None:
                    qb = q_st(c)
                elif is_obj[c]:
                    score = 0.0
                    if alpha > 0.0:
                        score += alpha * fd(math.hypot(sp[4][i], sp[5][i]))
                    if alpha < 1.0:
                        if ej:
                            sim = q_frozen.ext_jaccard(snap.obj_frozen[c])
                        else:
                            sim = measure.similarity(qvec, snap.obj_vec[c])
                        score += (1.0 - alpha) * sim
                    qb = (score, score)
                else:
                    s_hi = fd(math.hypot(sp[0][i], sp[1][i]))
                    s_lo = fd(math.hypot(sp[2][i], sp[3][i]))
                    if alpha == 1.0:
                        qb = (alpha * s_lo, alpha * s_hi)
                    else:
                        t_lo, t_hi = q_text(c)
                        qb = (
                            alpha * s_lo + (1.0 - alpha) * t_lo,
                            alpha * s_hi + (1.0 - alpha) * t_hi,
                        )
                if use_floors and qb[1] < floor_of(c):
                    # Floored child: no list, no heap entry — but it
                    # stays a *contributor* in its siblings' lists (each
                    # surviving sibling's pass covers the full range).
                    status[c] = _PRUNED
                    stats.pruned_entries += 1
                    stats.pruned_objects += cnt[c]
                    continue
                d = dict(parent_d)
                tight = set()
                for sib in children:
                    if sib == c:
                        continue
                    lo, hi = st(c, sib)
                    d[sib] = (lo, hi, cnt[sib])
                    tight.add(sib)
                cc = cnt[c]
                if cc >= 2:
                    lo, hi = st(c, c)
                    d[c] = (lo, hi, cc - 1)
                    tight.add(c)
                lists[c] = _CList(d, tight)
                qbounds[c] = qb
                # Child-site priority uses the tree-wide cluster divisor.
                if te == 0.0 or is_obj[c]:
                    prio = qb[1]
                else:
                    prio = qb[1] + te * snap.ent_child[c]
                heapq.heappush(heap, (-prio, next(counter), c))

        ids: List[int] = []
        for key, state in status.items():
            if state == _ACCEPTED:
                charges, sub_ids = snap.collect_plan(key)
                for rid in charges:
                    tree.buffer.get(rid, "collect")
                ids.extend(sub_ids)
            elif state == _RESULT:
                ids.append(snap.ref[key])
        ids.sort()
        stats.result_count = len(ids)
        stats.cache_hits = self.hits - hits0
        stats.cache_misses = self.misses - misses0
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(ids, stats, tree.io.snapshot())

    # ------------------------------------------------------------------
    # Decision pieces
    # ------------------------------------------------------------------

    @staticmethod
    def _decide(d: Dict[int, _Contrib], q_lo: float, q_hi: float, k: int) -> int:
        """Seed decision rules over the slot contribution dict."""
        if q_hi < _kth_largest([(c[0], c[2]) for c in d.values()], k):
            return -1
        if q_lo >= _kth_largest([(c[1], c[2]) for c in d.values()], k):
            return 1
        return 0

    def _tighten(
        self,
        key: int,
        clist: _CList,
        expanded: Dict[int, Tuple[int, int]],
        width: int,
    ) -> bool:
        """Lazy effect-list refinement (seed ``_tighten`` over slots)."""
        d = clist.d
        tight = clist.tight
        items = list(d.items())
        candidates = heapq.nlargest(
            width, items, key=_cand_min
        ) + heapq.nlargest(width, items, key=_cand_max)
        changed = False
        seen: Set[int] = set()
        st = self._st
        cnt = self.snap.cnt
        for slot, contrib in candidates:
            if slot in seen or slot not in d:
                continue
            seen.add(slot)
            span = expanded.get(slot)
            if span is not None and slot != key:
                del d[slot]
                tight.discard(slot)
                for child in range(span[0], span[1]):
                    lo, hi = st(key, child)
                    d[child] = (lo, hi, cnt[child])
                    tight.add(child)
                changed = True
            elif slot not in tight:
                lo, hi = st(key, slot)
                d[slot] = (lo, hi, contrib[2])
                tight.add(slot)
                changed = True
        return changed

    def _verify(self, s: int, q_sim: float, k: int, stats: SearchStats) -> bool:
        """Exact membership probe with lazy text evaluation.

        Children whose *optimistic* spatial-only bounds already decide
        them are handled without computing a text bound: an upper bound
        built with text similarity 1 failing the "can beat the query"
        test, or a lower bound built with text 0 already beating it,
        forces the same branch the full bound takes (the full upper
        bound is <= the optimistic one; the full lower bound is >= the
        pessimistic one).  Undecided children fall back to the full
        blended bounds, which are memoized for later queries.
        """
        snap = self.snap
        tree = self.tree
        alpha = self.alpha
        st = self._st
        fd = self._fd
        is_obj = snap.is_obj
        ref = snap.ref
        cnt = snap.cnt
        xlo, ylo, xhi, yhi = snap.xlo, snap.ylo, snap.xhi, snap.yhi
        memo = self._memo
        n = snap.n_slots
        px = (xlo[s] + xhi[s]) / 2.0
        py = (ylo[s] + yhi[s]) / 2.0
        ref_s = ref[s]
        count = 0
        stack = [r for r in snap.root_slots if r != s]
        while stack and count < k:
            e = stack.pop()
            if is_obj[e]:
                if ref[e] == ref_s:
                    continue
                if st(s, e)[1] > q_sim:
                    count += 1
                continue
            pair_key = s * n + e if s <= e else e * n + s
            cached = memo.get(pair_key)
            if cached is not None:
                self.hits += 1
                lo, hi = cached
            elif alpha > 0.0:
                self.misses += 1
                dx = max(xlo[s] - xhi[e], 0.0, xlo[e] - xhi[s])
                dy = max(ylo[s] - yhi[e], 0.0, ylo[e] - yhi[s])
                s_hi = fd(math.hypot(dx, dy))
                dx = max(abs(xhi[s] - xlo[e]), abs(xhi[e] - xlo[s]))
                dy = max(abs(yhi[s] - ylo[e]), abs(yhi[e] - ylo[s]))
                s_lo = fd(math.hypot(dx, dy))
                opt_hi = alpha * s_hi + (1.0 - alpha)
                if opt_hi <= q_sim:
                    # Even with text similarity 1 nothing here can beat
                    # the query; the full bound prunes this subtree too.
                    continue
                if (
                    alpha * s_lo > q_sim
                    and not (xlo[e] <= px <= xhi[e] and ylo[e] <= py <= yhi[e])
                ):
                    # Already beats the query on space alone, and the
                    # target object lies elsewhere: group-count it, as
                    # the full lower bound (>= alpha * s_lo) would.
                    count += cnt[e]
                    continue
                if alpha == 1.0:
                    lo, hi = alpha * s_lo, alpha * s_hi
                else:
                    t_lo, t_hi = self._text(s, e)
                    lo = alpha * s_lo + (1.0 - alpha) * t_lo
                    hi = alpha * s_hi + (1.0 - alpha) * t_hi
                if len(memo) < _PAIR_MEMO_CAP:
                    memo[pair_key] = (lo, hi)
            else:
                self.misses += 1
                lo, hi = self._text(s, e)
                if len(memo) < _PAIR_MEMO_CAP:
                    memo[pair_key] = (lo, hi)
            if hi <= q_sim:
                continue
            if lo > q_sim and not (
                xlo[e] <= px <= xhi[e] and ylo[e] <= py <= yhi[e]
            ):
                count += cnt[e]
                continue
            stats.verify_node_reads += 1
            tree.buffer.get(snap.record_id[e], "verify")
            stack.extend(range(snap.first_child[e], snap.last_child[e]))
        return count <= k - 1


def _cand_min(item: Tuple[int, _Contrib]) -> float:
    return item[1][0]


def _cand_max(item: Tuple[int, _Contrib]) -> float:
    return item[1][1]
