"""Contribution lists: group-level kNN bounds for frontier entries.

For a frontier entry ``E``, every other entry ``F`` of some (possibly
historical) partition of the dataset *contributes* ``F.count`` objects
whose similarity to any ``o ∈ E`` lies within ``[MinST(E,F), MaxST(E,F)]``;
``E`` itself contributes ``E.count - 1`` objects within its self-bounds.
From the multiset of contributions:

* ``kNNL(E)`` — the k-th largest value counting every contribution at its
  **lower** bound.  Every object in ``E`` is guaranteed at least ``k``
  neighbors at similarity >= ``kNNL(E)``, so its true k-th NN similarity
  is >= ``kNNL(E)``.
* ``kNNU(E)`` — the k-th largest value counting **upper** bounds.
  Provided the contributions cover the *entire* dataset (an invariant the
  searchers maintain: lists start from a full partition and every edit
  replaces a contribution by an equal-coverage refinement), at most
  ``k - 1`` objects can beat ``kNNU(E)``, so every object's true k-th NN
  similarity is <= ``kNNU(E)``.

The bounds drive the two decision rules: prune ``E`` when
``MaxST(q,E) < kNNL(E)``; accept all of ``E`` when ``MinST(q,E) >= kNNU(E)``.

Lists support the paper's *lazy effect-list refinement*: a contribution
records the entry that produced it, so an inherited (loose but valid)
contribution can later be tightened in place — either by recomputing the
bounds directly against its entry, or by substituting the entry's
recorded children.  Only the few contributions that actually gate a
decision ever get tightened.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..index.entry import Entry

#: A live-entry key: (ref, is_object).
SourceKey = Tuple[int, bool]


@dataclass(frozen=True)
class Contribution:
    """``count`` objects with pairwise SimST within [min_st, max_st].

    ``entry`` is the summarizing tree entry the bounds were derived from
    (possibly via a looser ancestor of the list's owner); it is kept so
    the bounds can be tightened lazily.
    """

    source: SourceKey
    entry: "Entry"
    min_st: float
    max_st: float
    count: int


class ContributionList:
    """The mutable contribution set of one frontier entry.

    Tracks which sources are *tight* (bounds computed directly between
    the owner and ``contribution.entry``); inherited copies reset the
    tight set because the inherited bounds were computed for an ancestor.
    """

    __slots__ = ("_by_source", "_tight")

    def __init__(self) -> None:
        self._by_source: Dict[SourceKey, Contribution] = {}
        self._tight: Set[SourceKey] = set()

    def copy(self) -> "ContributionList":
        """Copy for an heir: same contributions, nothing tight."""
        out = ContributionList()
        out._by_source = dict(self._by_source)
        return out

    def set(self, contribution: Contribution, tight: bool = False) -> None:
        """Insert or replace the contribution from one source."""
        if contribution.count <= 0:
            self.remove(contribution.source)
            return
        self._by_source[contribution.source] = contribution
        if tight:
            self._tight.add(contribution.source)
        else:
            self._tight.discard(contribution.source)

    def remove(self, source: SourceKey) -> None:
        """Drop a source (expanded into children, or self on expansion)."""
        self._by_source.pop(source, None)
        self._tight.discard(source)

    def is_tight(self, source: SourceKey) -> bool:
        """Whether this source's bounds were computed directly."""
        return source in self._tight

    def __len__(self) -> int:
        return len(self._by_source)

    def __contains__(self, source: SourceKey) -> bool:
        return source in self._by_source

    def contributions(self) -> Iterable[Contribution]:
        """Iterate over the stored contributions."""
        return self._by_source.values()

    def total_count(self) -> int:
        """Objects covered by the list (coverage invariant)."""
        return sum(c.count for c in self._by_source.values())

    def top_by_min(self, m: int) -> List[Contribution]:
        """The ``m`` contributions with the largest lower bounds."""
        return heapq.nlargest(m, self._by_source.values(), key=_by_min)

    def top_by_max(self, m: int) -> List[Contribution]:
        """The ``m`` contributions with the largest upper bounds."""
        return heapq.nlargest(m, self._by_source.values(), key=_by_max)

    # ------------------------------------------------------------------
    # kNN bounds
    # ------------------------------------------------------------------

    def knn_lower(self, k: int) -> float:
        """k-th largest guaranteed similarity (0 when < k objects)."""
        return _kth_largest(
            [(c.min_st, c.count) for c in self._by_source.values()], k
        )

    def knn_upper(self, k: int) -> float:
        """k-th largest possible similarity (0 when < k objects).

        Only an upper bound on the true k-th NN similarity when the list
        covers the whole dataset; the searchers maintain that invariant.
        """
        return _kth_largest(
            [(c.max_st, c.count) for c in self._by_source.values()], k
        )


def _by_min(c: Contribution) -> float:
    return c.min_st


def _by_max(c: Contribution) -> float:
    return c.max_st


def _kth_largest(weighted: List[Tuple[float, int]], k: int) -> float:
    """The k-th largest value of a multiset given as (value, count) pairs.

    Returns 0.0 when the multiset holds fewer than ``k`` values, which
    encodes "the k-th neighbor does not exist": a query is then trivially
    within the top-k, and 0 makes the accept rule fire (every SimST >= 0)
    while keeping the prune rule silent.
    """
    if k <= 0:
        raise ValueError(f"k must be >= 1, got {k}")
    # Every pair carries count >= 1, so the k-th largest element lies
    # within the k largest pairs by value — partial selection suffices.
    remaining = k
    for value, count in heapq.nlargest(k, weighted):
        if count <= 0:
            continue
        remaining -= count
        if remaining <= 0:
            return value
    return 0.0
