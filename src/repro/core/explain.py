"""Query explanation: a structured trace of the searcher's decisions.

:class:`SearchTrace` is the reference implementation of the
:class:`repro.obs.TraceSink` protocol — every traversal engine (the seed
walk, the snapshot engine, and the fused batch engine) emits the same
stream of group-level decision events, so a trace can be attached to any
of them; :meth:`RSTkNNSearcher.search` no longer changes engines when a
trace is passed.  Every decision — prune, accept, expand, verify — is
recorded with the bounds that justified it, and the multiset of events
one query produces is identical across engines (see
``docs/OBSERVABILITY.md``).  ``render()`` produces a human-readable
account, which the docs and the ``explain`` example use to show *why* an
object is (not) a reverse neighbor.  For cheaper sinks (tallies only,
or metrics bridging) see :mod:`repro.obs.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One decision about one entry."""

    action: str  # "prune" | "accept" | "expand" | "verify-in" | "verify-out"
    ref: int
    is_object: bool
    count: int
    q_lo: float
    q_hi: float
    knn_lower: float
    knn_upper: float

    def describe(self) -> str:
        """One human-readable line for this decision."""
        kind = "object" if self.is_object else f"node({self.count} objs)"
        band = f"q∈[{self.q_lo:.3f},{self.q_hi:.3f}] kNN∈[{self.knn_lower:.3f},{self.knn_upper:.3f}]"
        reason = {
            "prune": "MaxST(q,E) < kNNL(E): no object here can rank q in its top-k",
            "accept": "MinST(q,E) >= kNNU(E): every object here ranks q in its top-k",
            "expand": "bounds straddle the decision band; descending",
            "verify-in": "exact probe: fewer than k objects beat q",
            "verify-out": "exact probe: k objects already beat q",
        }[self.action]
        return f"{self.action:<10} {kind:<16} #{self.ref:<6} {band}  — {reason}"


@dataclass
class SearchTrace:
    """Accumulates :class:`TraceEvent` records during one search."""

    events: List[TraceEvent] = field(default_factory=list)
    max_events: Optional[int] = None

    def record(
        self,
        action: str,
        ref: int,
        is_object: bool,
        count: int,
        q_lo: float,
        q_hi: float,
        knn_lower: float,
        knn_upper: float,
    ) -> None:
        """Append one decision event (drops events past max_events)."""
        if self.max_events is not None and len(self.events) >= self.max_events:
            return
        self.events.append(
            TraceEvent(
                action, ref, is_object, count, q_lo, q_hi, knn_lower, knn_upper
            )
        )

    def counts(self) -> Dict[str, int]:
        """Events per action kind."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.action] = out.get(event.action, 0) + 1
        return out

    def events_for(self, ref: int) -> List[TraceEvent]:
        """All decisions touching one entry/object id."""
        return [e for e in self.events if e.ref == ref]

    def render(self, limit: int = 40) -> str:
        """A readable decision log (truncated to ``limit`` lines)."""
        lines = [e.describe() for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        summary = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        lines.append(f"summary: {summary}")
        return "\n".join(lines)
