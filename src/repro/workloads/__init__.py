"""Workloads: synthetic dataset generators and query samplers.

The paper evaluates on proprietary-access corpora (GeographicNames-style
gazetteers, long-document collections, categorized POI sets).  These
generators reproduce the *characteristics* that drive the algorithms'
relative behaviour — spatial clusteredness, document length, vocabulary
skew, topical structure — as documented in DESIGN.md §4.
"""

from .generator import WorkloadSpec, generate_corpus, generate_user_corpus
from .datasets import gn_like, cd_like, shop_like, make_dataset
from .queries import sample_queries

__all__ = [
    "WorkloadSpec",
    "generate_corpus",
    "generate_user_corpus",
    "gn_like",
    "cd_like",
    "shop_like",
    "make_dataset",
    "sample_queries",
]
