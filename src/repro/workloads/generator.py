"""Synthetic spatial-textual corpus generation.

Locations come from a Gaussian-mixture over a square region (gazetteer
data is heavily clustered around populated places); terms come from a
Zipf-skewed vocabulary partitioned into topics, so that text clustering
has real structure to find (the CIUR-tree's reason to exist), plus a
shared slice that all topics draw from (real corpora are never cleanly
separable).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

from ..errors import ConfigError
from ..spatial import Point


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs of the synthetic corpus generator.

    Attributes:
        n_objects: Corpus size.
        region_size: Side length of the square dataspace.
        n_spatial_clusters: Gaussian location clusters (1 = unimodal).
        cluster_std: Standard deviation of each location cluster, as a
            fraction of ``region_size``.
        uniform_fraction: Share of objects placed uniformly (noise).
        vocab_size: Number of distinct terms.
        zipf_s: Zipf skew of term popularity (1.0–1.2 is text-like).
        doc_len_mean: Mean terms per document (geometric-ish spread).
        doc_len_min: Minimum terms per document.
        n_topics: Topical partitions of the vocabulary.
        topic_affinity: Probability a term is drawn from the object's own
            topic slice (the rest comes from the global distribution).
        topic_marker: When True, every document carries its topic's
            marker term (``topicNN``) — modelling category tags such as
            "restaurant" or "hotel" that appear on *every* member of a
            category.  Marker terms are what make subtree *intersection*
            vectors non-empty, so this knob drives the IUR-vs-IR ablation
            (E15).
        seed: RNG seed; everything downstream is deterministic in it.
    """

    n_objects: int = 1000
    region_size: float = 100.0
    n_spatial_clusters: int = 8
    cluster_std: float = 0.05
    uniform_fraction: float = 0.2
    vocab_size: int = 400
    zipf_s: float = 1.1
    doc_len_mean: float = 5.0
    doc_len_min: int = 1
    n_topics: int = 8
    topic_affinity: float = 0.7
    topic_marker: bool = False
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ConfigError(f"n_objects must be >= 1, got {self.n_objects}")
        if self.vocab_size < 1:
            raise ConfigError(f"vocab_size must be >= 1, got {self.vocab_size}")
        if self.doc_len_min < 1:
            raise ConfigError(f"doc_len_min must be >= 1, got {self.doc_len_min}")
        if not 0.0 <= self.uniform_fraction <= 1.0:
            raise ConfigError("uniform_fraction must be in [0, 1]")
        if not 0.0 <= self.topic_affinity <= 1.0:
            raise ConfigError("topic_affinity must be in [0, 1]")
        if self.n_topics < 1:
            raise ConfigError(f"n_topics must be >= 1, got {self.n_topics}")


def generate_corpus(spec: WorkloadSpec) -> List[Tuple[Point, str]]:
    """Generate ``(location, description)`` records per the spec."""
    rng = random.Random(spec.seed)
    centers = _cluster_centers(spec, rng)
    vocab = [f"t{i:04d}" for i in range(spec.vocab_size)]
    global_cum = _zipf_cumulative_cached(spec.vocab_size, spec.zipf_s)
    topic_slices = _topic_slices(spec.vocab_size, spec.n_topics)

    records: List[Tuple[Point, str]] = []
    for _ in range(spec.n_objects):
        point = _sample_point(spec, centers, rng)
        topic = rng.randrange(spec.n_topics)
        length = max(spec.doc_len_min, _sample_length(spec.doc_len_mean, rng))
        terms: List[str] = []
        if spec.topic_marker:
            terms.append(f"topic{topic:02d}")
        lo, hi = topic_slices[topic]
        for _ in range(length):
            if rng.random() < spec.topic_affinity and hi > lo:
                # Zipf-within-slice keeps topical terms skewed too.
                idx = lo + _zipf_index(hi - lo, spec.zipf_s, rng)
            else:
                idx = _sample_cumulative(global_cum, rng)
            terms.append(vocab[idx])
        records.append((point, " ".join(terms)))
    return records


def generate_user_corpus(
    spec: WorkloadSpec, n_users: int, seed_offset: int = 1000
) -> List[Tuple[Point, str]]:
    """A companion user population over the same region and vocabulary."""
    user_spec = WorkloadSpec(
        n_objects=n_users,
        region_size=spec.region_size,
        n_spatial_clusters=spec.n_spatial_clusters,
        cluster_std=spec.cluster_std * 1.5,
        uniform_fraction=min(1.0, spec.uniform_fraction + 0.2),
        vocab_size=spec.vocab_size,
        zipf_s=spec.zipf_s,
        doc_len_mean=max(2.0, spec.doc_len_mean / 2.0),
        doc_len_min=spec.doc_len_min,
        n_topics=spec.n_topics,
        topic_affinity=spec.topic_affinity,
        seed=spec.seed + seed_offset,
    )
    return generate_corpus(user_spec)


# ----------------------------------------------------------------------
# Sampling helpers
# ----------------------------------------------------------------------


def _cluster_centers(spec: WorkloadSpec, rng: random.Random) -> List[Point]:
    return [
        Point(
            rng.uniform(0.0, spec.region_size), rng.uniform(0.0, spec.region_size)
        )
        for _ in range(spec.n_spatial_clusters)
    ]


def _sample_point(
    spec: WorkloadSpec, centers: Sequence[Point], rng: random.Random
) -> Point:
    size = spec.region_size
    if rng.random() < spec.uniform_fraction or not centers:
        return Point(rng.uniform(0.0, size), rng.uniform(0.0, size))
    center = centers[rng.randrange(len(centers))]
    std = spec.cluster_std * size
    x = min(size, max(0.0, rng.gauss(center.x, std)))
    y = min(size, max(0.0, rng.gauss(center.y, std)))
    return Point(x, y)


def _sample_length(mean: float, rng: random.Random) -> int:
    """Geometric-ish document length with the given mean (>= 1)."""
    if mean <= 1.0:
        return 1
    # Geometric distribution on {1, 2, ...} with mean ``mean``.
    p = 1.0 / mean
    u = rng.random()
    return 1 + int(math.log(max(u, 1e-12)) / math.log(1.0 - p))


def _zipf_cumulative(n: int, s: float) -> List[float]:
    """The cumulative Zipf(``s``) distribution over ``n`` ranks.

    The numpy path keeps scalar ``pow`` for the weights (numpy's SIMD
    ``power`` differs from libm by an ulp on some inputs) and vectorizes
    only the running sums, whose ``cumsum`` is sequentially accumulated
    — so both backends yield bitwise-identical tables and a workload
    generated with numpy installed matches one generated without it,
    term for term.
    """
    weights = [1.0 / (rank**s) for rank in range(1, n + 1)]
    try:  # pragma: no cover - exercised on numpy-equipped runs
        import numpy as np  # noqa: PLC0415

        w = np.array(weights)
        cum_w = np.cumsum(w)  # sequential, matches sum(weights)
        return list(np.cumsum(w / cum_w[-1]))
    except ImportError:
        total = sum(weights)
        cum: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cum.append(acc)
        return cum


@lru_cache(maxsize=128)
def _zipf_cumulative_cached(n: int, s: float) -> Sequence[float]:
    """Memoized cumulative table; callers must not mutate the result."""
    return _zipf_cumulative(n, s)


def _sample_cumulative(cum: Sequence[float], rng: random.Random) -> int:
    u = rng.random()
    lo, hi = 0, len(cum) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cum[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _zipf_index(n: int, s: float, rng: random.Random) -> int:
    """A Zipf draw over ``range(n)`` by inversion of the cached CDF.

    Draw-identical to the former per-call harmonic walk: the cumulative
    table holds the same running sums the walk accumulated, exactly one
    ``rng.random()`` is consumed, and the bisection returns the first
    index whose cumulative mass reaches ``u`` — but an O(n) rebuild per
    *term* becomes an O(log n) lookup against a table built once per
    ``(n, s)``, which is what makes 10^5-object corpora generate in
    seconds (see ``benchmarks/bench_scale.py``).
    """
    if n <= 1:
        return 0
    return _sample_cumulative(_zipf_cumulative_cached(n, s), rng)


def _topic_slices(vocab_size: int, n_topics: int) -> List[Tuple[int, int]]:
    """Contiguous vocabulary slices, one per topic (may be empty)."""
    out: List[Tuple[int, int]] = []
    base = vocab_size // n_topics
    start = 0
    for t in range(n_topics):
        end = start + base + (1 if t < vocab_size % n_topics else 0)
        out.append((start, end))
        start = end
    return out
