"""Query workload sampling.

Queries are new objects "about to be placed" in the dataspace: the
sampler perturbs the location of a random dataset object and composes a
description from nearby objects' keywords — giving queries that are
plausible (non-trivial result sets) without being dataset members.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import QueryError
from ..model.dataset import STDataset
from ..model.objects import STObject
from ..spatial import Point


def sample_queries(
    dataset: STDataset,
    count: int,
    seed: int = 7,
    location_jitter: float = 0.02,
    query_terms: int = 4,
) -> List[STObject]:
    """Sample ``count`` query objects for a dataset.

    Args:
        dataset: The corpus queries run against.
        count: Number of queries.
        seed: RNG seed.
        location_jitter: Location noise, as a fraction of the region
            diagonal.
        query_terms: Terms per query description (sampled with
            replacement from anchor objects' keyword pools).
    """
    if count < 1:
        raise QueryError(f"count must be >= 1, got {count}")
    if query_terms < 1:
        raise QueryError(f"query_terms must be >= 1, got {query_terms}")
    rng = random.Random(seed)
    region = dataset.region
    jitter = location_jitter * region.diagonal()
    queries: List[STObject] = []
    for qid in range(count):
        anchor = dataset.objects[rng.randrange(len(dataset.objects))]
        x = min(region.xhi, max(region.xlo, rng.gauss(anchor.point.x, jitter)))
        y = min(region.yhi, max(region.ylo, rng.gauss(anchor.point.y, jitter)))
        pool = list(anchor.keywords)
        # Mix in a second object's vocabulary so queries straddle topics.
        other = dataset.objects[rng.randrange(len(dataset.objects))]
        pool.extend(other.keywords)
        if not pool:
            pool = ["query"]
        terms = [pool[rng.randrange(len(pool))] for _ in range(query_terms)]
        queries.append(
            dataset.make_query(Point(x, y), " ".join(terms), oid=-(qid + 1))
        )
    return queries
