"""Named dataset builders emulating the paper's evaluation corpora.

Sizes default to laptop scale; every builder takes ``n`` so the
scalability experiment can sweep it.  See DESIGN.md §4 for the mapping
from the originals to these analogs.
"""

from __future__ import annotations

from typing import Optional

from ..config import SimilarityConfig
from ..model.dataset import STDataset
from .generator import WorkloadSpec, generate_corpus


def make_dataset(
    spec: WorkloadSpec, config: Optional[SimilarityConfig] = None
) -> STDataset:
    """Generate a corpus from ``spec`` and weight it into a dataset."""
    return STDataset.from_corpus(generate_corpus(spec), config)


def gn_like(
    n: int = 2000, seed: int = 42, config: Optional[SimilarityConfig] = None
) -> STDataset:
    """GeographicNames-style: many location clusters, short documents."""
    spec = WorkloadSpec(
        n_objects=n,
        n_spatial_clusters=max(8, n // 250),
        cluster_std=0.03,
        uniform_fraction=0.15,
        vocab_size=max(200, n // 2),
        zipf_s=1.1,
        doc_len_mean=4.0,
        n_topics=10,
        topic_affinity=0.65,
        seed=seed,
    )
    return make_dataset(spec, config)


def cd_like(
    n: int = 1500, seed: int = 43, config: Optional[SimilarityConfig] = None
) -> STDataset:
    """Document-heavy collection: long texts, larger shared vocabulary."""
    spec = WorkloadSpec(
        n_objects=n,
        n_spatial_clusters=5,
        cluster_std=0.08,
        uniform_fraction=0.3,
        vocab_size=max(400, n),
        zipf_s=1.0,
        doc_len_mean=20.0,
        doc_len_min=5,
        n_topics=6,
        topic_affinity=0.55,
        seed=seed,
    )
    return make_dataset(spec, config)


def shop_like(
    n: int = 800, seed: int = 44, config: Optional[SimilarityConfig] = None
) -> STDataset:
    """Categorized POI set: strong text clusters (shop categories)."""
    spec = WorkloadSpec(
        n_objects=n,
        n_spatial_clusters=12,
        cluster_std=0.04,
        uniform_fraction=0.1,
        vocab_size=240,
        zipf_s=1.05,
        doc_len_mean=6.0,
        doc_len_min=2,
        n_topics=8,
        topic_affinity=0.9,
        seed=seed,
    )
    return make_dataset(spec, config)
