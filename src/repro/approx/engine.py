"""The ``engine="approx"`` tier: sketch-filtered RSTkNN search.

:class:`ApproxEngine` answers reverse spatial–textual k-NN queries by
*filtering* against a frozen :class:`~repro.approx.sketch.KnnlSketch`
instead of maintaining per-entry contribution lists: a depth-first walk
compares the query's optimistic similarity against each subtree's
conservative kNNL floor and descends only where the query could still
be within some object's top-k.  Surviving objects are the candidate
set — provably a *superset* of the exact answer, because a pruned slot
satisfies ``q_hi < floor <= s_k(o)`` for every object ``o`` under it
(at least ``k`` competitors strictly beat the query there).

Two modes:

* ``verify=True`` (default): every candidate runs the snapshot
  engine's exact membership probe
  (:meth:`~repro.core.traversal.SnapshotEngine._verify`), so the result
  ids are byte-identical to the exact engines — the sketch only
  replaces candidate *generation*, never the decision.
* ``verify=False``: the raw filter output is returned.  Because the
  filter is conservative the output contains every exact answer
  (recall 1.0 by construction); precision is whatever the sketch
  earns, and :mod:`benchmarks.bench_approx` measures both against
  exact ground truth.

Node bounds are staged: a spatial-only optimistic bound (text
similarity capped at 1) is tried first and the blended text upper bound
is only computed when the spatial stage cannot already prune — the same
lazy-text trick the exact verification probe uses.

Between the floor DFS and verification sits an optional **LSH
pre-filter stage** (after Arthur & Oudot, arXiv:1011.4955): the
sketch's frozen 64-bit term signatures are banded into eight 8-bit
buckets, and each candidate probes the objects sharing one of its
bands — its likeliest strong competitors — with *exact* pairwise
similarities.  A candidate is dropped only once ``k`` distinct
competitors are proven strictly more similar to it than the query,
the same strict count the exact membership probe uses, so the stage is
conservative by construction (the banding only chooses *which*
competitors to try first; every drop is backed by exact similarities
and recall stays 1.0).  In verified mode the stage cheaply refutes
non-members before the expensive full membership probe; in raw mode it
directly raises precision.

The engine accepts the ``trace`` argument for interface compatibility
but emits no events: its walk makes no accept/prune/verify decisions in
the exact engines' sense, so an event stream would be misleading
rather than comparable.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

from ..core.cancel import cancel_message
from ..core.rstknn import SearchResult, SearchStats
from ..errors import DeadlineExceeded
from ..model.objects import STObject
from ..text.interval import IntervalVector
from ..text.similarity import ExtendedJaccard
from .sketch import KnnlSketch

#: Number of 8-bit bands the 64-bit term signature is split into.
LSH_BANDS = 8

#: Per-candidate cap on exact competitor probes in the LSH stage: the
#: stage must stay far cheaper than the full membership probe it
#: tries to avoid, so it gives up (keeps the candidate) after this
#: many similarity evaluations.
LSH_PROBE_CAP = 64


class ApproxEngine:
    """Sketch-filtered search over one snapshot (see module docstring).

    One engine exists per ``(measure, alpha, te_weight, verify, sketch
    knobs)`` setting of a snapshot (see
    :meth:`~repro.perf.snapshot.IndexSnapshot.approx_engine_for`); it
    shares the exact snapshot engine's memoized pair-bound table
    through :attr:`base`, so verification work warms the exact paths
    and vice versa.
    """

    def __init__(
        self,
        tree,
        snap,
        measure,
        alpha: float,
        te_weight: float,
        sketch: KnnlSketch,
        verify: bool = True,
        lsh: bool = True,
    ) -> None:
        self.tree = tree
        self.snap = snap
        self.measure = measure
        self.alpha = alpha
        self.te_weight = te_weight
        self.sketch = sketch
        self.verify = verify
        self.lsh = lsh and len(sketch.lsh_sig) > 0
        self._lsh_buckets: Optional[Dict[int, List[int]]] = None
        self.base = snap.engine_for(tree, measure, alpha, te_weight)
        self._ej = isinstance(measure, ExtendedJaccard)
        #: Cumulative filter counters since engine creation; published
        #: by :func:`repro.obs.record_approx` as ``approx.*`` metrics
        #: (key semantics documented in ``docs/OBSERVABILITY.md``).
        self.counters: Dict[str, int] = {
            "searches": 0,
            "nodes_pruned": 0,
            "objects_pruned": 0,
            "spatial_shortcuts": 0,
            "lsh_pruned": 0,
            "candidates": 0,
            "verified": 0,
            "answers": 0,
        }
        #: The last query's filter counters (same keys), for reporting.
        self.last_filter: Dict[str, int] = {}

    def _bands(self) -> Dict[int, List[int]]:
        """Lazily built LSH band buckets over the sketch signatures.

        Bucket key ``(band << 8) | byte`` maps to the object slots
        whose signature carries that byte in that band; all-zero bands
        (no term hashed there) are skipped, as they would bucket
        textually unrelated objects together.
        """
        buckets = self._lsh_buckets
        if buckets is None:
            buckets = {}
            sig_arr = self.sketch.lsh_sig
            is_obj = self.snap.is_obj
            for slot in range(len(sig_arr)):
                if not is_obj[slot]:
                    continue
                sig = sig_arr[slot]
                for band in range(LSH_BANDS):
                    byte = (sig >> (band * 8)) & 0xFF
                    if byte:
                        buckets.setdefault((band << 8) | byte, []).append(slot)
            self._lsh_buckets = buckets
        return buckets

    def search(
        self,
        query: STObject,
        k: int,
        trace: Optional[object] = None,
        cancel: Optional[object] = None,
    ) -> SearchResult:
        """One sketch-filtered RSTkNN query (see module docstring).

        ``cancel`` is polled at start and per node expansion, the same
        protocol as the exact engines; ``trace`` is accepted but
        ignored (no comparable event stream exists for this walk).
        """
        started = time.perf_counter()
        stats = SearchStats()
        if cancel is not None and cancel.expired():
            raise DeadlineExceeded(cancel_message(cancel), stats=stats)
        snap = self.snap
        tree = self.tree
        base = self.base
        sketch = self.sketch
        alpha = self.alpha
        hits0, misses0 = base.hits, base.misses
        is_obj = snap.is_obj
        cnt = snap.cnt
        ref = snap.ref
        xlo, ylo, xhi, yhi = snap.xlo, snap.ylo, snap.xhi, snap.yhi
        fd = base._fd
        measure = self.measure
        ej = self._ej

        qm = query.mbr()
        qxlo, qylo, qxhi, qyhi = qm.xlo, qm.ylo, qm.xhi, qm.yhi
        qvec = query.vector
        q_frozen = qvec.frozen()
        q_nsq = qvec.norm_squared
        q_iv = IntervalVector.from_document(qvec) if not ej else None

        def q_text_hi(slot: int) -> float:
            # Upper text bound of the query against a slot's clusters
            # (the optimistic half of the exact engines' q_text).
            hi = 0.0
            if ej:
                for _iv, _int_b, uni_b, insq_b, _unsq_b in snap.clusters[slot]:
                    d_max = q_frozen.dot(uni_b)
                    if d_max == 0.0:
                        pair_hi = 0.0
                    elif 2.0 * d_max >= q_nsq + insq_b:
                        pair_hi = 1.0
                    else:
                        pair_hi = d_max / (q_nsq + insq_b - d_max)
                    if pair_hi > hi:
                        hi = pair_hi
            else:
                for ivb, *_ in snap.clusters[slot]:
                    pair_hi = measure.max_similarity(q_iv, ivb)
                    if pair_hi > hi:
                        hi = pair_hi
            return hi

        def q_exact(slot: int) -> float:
            score = 0.0
            if alpha > 0.0:
                dist = math.hypot(qxlo - xlo[slot], qylo - ylo[slot])
                score += alpha * fd(dist)
            if alpha < 1.0:
                if ej:
                    sim = q_frozen.ext_jaccard(snap.obj_frozen[slot])
                else:
                    sim = measure.similarity(qvec, snap.obj_vec[slot])
                score += (1.0 - alpha) * sim
            return score

        counters = self.counters
        counters["searches"] += 1
        nodes_pruned = objects_pruned = spatial_shortcuts = lsh_pruned = 0
        candidates: List[Tuple[int, float]] = []
        use_floors = k <= sketch.kmax

        stack = list(snap.root_slots)
        while stack:
            slot = stack.pop()
            if is_obj[slot]:
                sim = q_exact(slot)
                if use_floors and sim < sketch.obj_floor(slot, k):
                    objects_pruned += 1
                    stats.pruned_entries += 1
                    stats.pruned_objects += 1
                    continue
                candidates.append((slot, sim))
                continue
            if use_floors:
                floor = sketch.node_floor(slot, k)
                if floor > 0.0:
                    pruned = False
                    spatial_only = False
                    if alpha > 0.0:
                        dx = max(qxlo - xhi[slot], 0.0, xlo[slot] - qxhi)
                        dy = max(qylo - yhi[slot], 0.0, ylo[slot] - qyhi)
                        s_hi = fd(math.hypot(dx, dy))
                        # Stage 1: text capped at 1; dominates the full
                        # upper bound, so failing it prunes exactly.
                        # For alpha == 1.0 this *is* the full bound —
                        # the text term is skipped by construction, so
                        # every prune on that path is also a spatial
                        # shortcut (no text bound was ever computed).
                        if alpha * s_hi + (1.0 - alpha) < floor:
                            pruned = True
                            spatial_only = True
                        elif alpha < 1.0:
                            q_hi = alpha * s_hi + (1.0 - alpha) * q_text_hi(slot)
                            pruned = q_hi < floor
                    else:
                        pruned = q_text_hi(slot) < floor
                    if pruned:
                        nodes_pruned += 1
                        if spatial_only:
                            spatial_shortcuts += 1
                        stats.pruned_entries += 1
                        stats.pruned_objects += cnt[slot]
                        continue
            if cancel is not None and cancel.expired():
                stats.elapsed_seconds = time.perf_counter() - started
                raise DeadlineExceeded(cancel_message(cancel), stats=stats)
            tree.buffer.get(snap.record_id[slot], "node")
            stats.expansions += 1
            stack.extend(range(snap.first_child[slot], snap.last_child[slot]))

        n_candidates = len(candidates)
        if self.lsh and use_floors and candidates:
            # LSH pre-filter: for each candidate, probe the objects
            # sharing one of its signature bands — its likeliest strong
            # competitors — with exact similarities, and drop it once k
            # distinct competitors strictly beat the query (the same
            # strict count the membership probe uses, so drops are
            # provably correct and recall stays 1.0).
            buckets = self._bands()
            sig_arr = sketch.lsh_sig
            exact_pair = base._exact
            kept: List[Tuple[int, float]] = []
            for slot, sim in candidates:
                sig = sig_arr[slot]
                rslot = ref[slot]
                beaten = 0
                probes = 0
                seen = {slot}
                refuted = False
                for band in range(LSH_BANDS):
                    byte = (sig >> (band * 8)) & 0xFF
                    if not byte:
                        continue
                    for other in buckets.get((band << 8) | byte, ()):
                        if other in seen:
                            continue
                        seen.add(other)
                        if ref[other] == rslot:
                            continue
                        probes += 1
                        if exact_pair(slot, other) > sim:
                            beaten += 1
                            if beaten >= k:
                                refuted = True
                                break
                        if probes >= LSH_PROBE_CAP:
                            break
                    if refuted or probes >= LSH_PROBE_CAP:
                        break
                if refuted:
                    lsh_pruned += 1
                    stats.pruned_entries += 1
                    stats.pruned_objects += 1
                else:
                    kept.append((slot, sim))
            candidates = kept

        ids: List[int] = []
        if self.verify:
            for slot, sim in candidates:
                member = base._verify(slot, sim, k, stats)
                stats.verified_objects += 1
                if member:
                    ids.append(ref[slot])
        else:
            ids = [ref[slot] for slot, _sim in candidates]
        ids.sort()

        counters["nodes_pruned"] += nodes_pruned
        counters["objects_pruned"] += objects_pruned
        counters["spatial_shortcuts"] += spatial_shortcuts
        counters["lsh_pruned"] += lsh_pruned
        counters["candidates"] += n_candidates
        counters["verified"] += len(candidates) if self.verify else 0
        counters["answers"] += len(ids)
        self.last_filter = {
            "nodes_pruned": nodes_pruned,
            "objects_pruned": objects_pruned,
            "spatial_shortcuts": spatial_shortcuts,
            "lsh_pruned": lsh_pruned,
            "candidates": n_candidates,
            "verified": len(candidates) if self.verify else 0,
            "answers": len(ids),
        }

        stats.result_count = len(ids)
        stats.cache_hits = base.hits - hits0
        stats.cache_misses = base.misses - misses0
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(ids, stats, tree.io.snapshot())
