"""Frozen kNNL sketches: per-object k-distance floors for pruning.

A :class:`KnnlSketch` is computed once per snapshot and similarity
setting and holds, for every slot of the snapshot, a *provably
conservative* lower bound on the k-th best ``SimST`` of every object
under that slot — the frozen analogue of the competitor floors the
exact branch-and-bound walk tightens lazily per query.  Two components
are combined:

* **node floors** (exact machinery): a frontier of up to
  ``budget`` slots is peeled off the snapshot (largest-count first, a
  complete antichain over the objects), and for each frontier node
  ``f`` the weighted k-th largest of the pairwise ``MinST(f, g)``
  lower bounds (weight ``cnt[g]``; self term ``cnt[f] - 1``) is taken
  through :func:`repro.core.contributions._kth_largest`.  Every object
  under ``f`` has at least ``cnt[g]`` competitors at similarity
  ``>= MinST(f, g)``, so the row lower-bounds its true k-th competitor
  similarity ``s_k``.  The peel is *adaptive*: a node whose expansion
  would overflow the budget is kept as its own row and the peel keeps
  refining smaller nodes that still fit, so the row count approaches
  the budget instead of stopping at the first oversized node.  Slots
  under ``f`` inherit ``f``'s row; slots above the frontier use the
  *global* row (the elementwise minimum over all rows, which is valid
  for every object of the snapshot).

* **object profiles and curves** (nonlinear k-distance fit, after
  Obermeier et al., arXiv:2011.01773): each object's top-``kmax``
  competitor similarities are collected; the sampled profile is stored
  verbatim (``obj_profile``, the per-object floor the consumers
  actually read) and additionally summarised as a monomial
  ``c * k**-b`` least-squares fitted in log space, then *rescaled
  down* so the fitted value never exceeds a collected one.  The
  default sampling pass (``sample_frac`` of the objects, evenly spaced
  in layout order) is a **true-kNN** walk: a best-first descent of the
  snapshot with staged ``MaxST`` upper bounds — seeded by
  layout-neighbour similarities and warm-started by the object's own
  node-floor row — that returns the object's *exact* top-``kmax``
  competitor similarities, so profile and curve describe the real
  k-distance profile.  Objects outside the sample budget fall back to
  a cheap *symmetric* layout-window pass (circular window of ``pool``
  neighbours, so edge objects in layout order collect exactly as many
  samples as interior ones).  Either way the collected similarities
  are a subset of (or equal to) the true competitor multiset, so
  collected ``s_k`` <= true ``s_k``: the stored profile — and the
  rescaled curve, which by construction never exceeds it — is
  conservative at every ``k <= kmax``.  Objects with fewer than
  ``kmax`` collected competitors get a zero-padded profile (the zero
  entries never prune) and no curve (``c = 0``) — the count-aware
  degenerate case, mirroring ``_kth_largest``'s 0.0.

The sketch also freezes each object's 64-bit **term signature** (the
Bloom-style ``1 << (tid % 64)`` mask of the frozen kernels), which the
``engine="approx"`` tier bands into an LSH pre-filter stage (see
:meth:`~repro.approx.engine.ApproxEngine.search`).

The floors feed three consumers: warm-start pruning in the exact
engines (:class:`~repro.core.traversal.SnapshotEngine` /
:class:`~repro.core.fused.FusedBatchEngine`, results bit-identical
because a pruned slot provably holds no result), tightened
:class:`~repro.shard.summaries.ShardSummary` admission floors, and the
``engine="approx"`` filter tier (:class:`~repro.approx.engine.ApproxEngine`).

Soundness rule (used by every consumer): a query with upper bound
``q_hi`` on a slot may skip that slot iff ``q_hi < floor`` — then for
every object ``o`` under the slot, ``SimST(q, o) < floor <= s_k(o)``,
so at least ``k`` competitors are strictly more similar to ``o`` than
the query and ``q`` cannot be in ``o``'s reverse k-NN set.  For
``k > kmax`` every floor reads 0.0 and nothing is ever skipped.
"""

from __future__ import annotations

import heapq
import math
import time
from array import array
from typing import Dict, List, Tuple

from ..core.contributions import _kth_largest
from ..text.interval import IntervalVector
from ..text.similarity import ExtendedJaccard

#: Largest ``k`` the sketch covers; beyond it floors read 0.0 (never
#: prune).  Matches the shard admission default.
DEFAULT_SKETCH_KMAX = 16

#: Target frontier width for the node-floor rows: more nodes mean
#: tighter per-subtree floors at quadratic pair-bound build cost.
DEFAULT_SKETCH_BUDGET = 256

#: Per-object sample-pool size for the fallback k-distance window (each
#: object sees roughly ``pool`` sampled competitors).
DEFAULT_SKETCH_POOL = 32

#: Fraction of objects (evenly spaced in layout order) that get the
#: exact true-kNN sampling pass; the rest use the symmetric layout
#: window.  1.0 fits every curve over the real k-distance profile.
DEFAULT_SKETCH_SAMPLE_FRAC = 1.0

#: Multiplicative safety margin applied to the fitted curve so float
#: re-evaluation of ``c * k**-b`` can never creep above the sampled
#: similarity it was fitted under.
_CURVE_MARGIN = 1.0 - 1e-12

#: Node-pop budget of one true-kNN sampling walk.  The cluster text
#: bounds on wide nodes are loose, so the tail of a best-first descent
#: pops many nodes that contribute nothing; cutting it keeps the build
#: linear in ``n``.  A truncated walk returns a *subset* of the true
#: competitor similarities, so the fitted curve only gets looser,
#: never unsound.  96 pops recovers the exact profile on every
#: workload we measure (the seeded threshold is near-final before the
#: first pop).
_TRUE_WALK_POP_CAP = 96


class KnnlSketch:
    """Frozen per-slot kNNL floors plus per-object k-distance curves.

    Attributes:
        kmax: Largest ``k`` covered; all floors are 0.0 beyond it.
        budget: Frontier budget the sketch was built with.
        pool: Fallback-window sample-pool size the sketch was built with.
        sample_frac: Fraction of objects whose curves were fitted over
            exact true-kNN samples (the rest used the layout window).
        frontier: The peeled antichain slots (row ``i`` of the floor
            table belongs to ``frontier[i]``'s subtree).
        floor_idx: Per-slot row index into :attr:`floor_table`
            (``array('q')``, length ``n_slots``); slots above the
            frontier point at the global row.
        floor_table: Row-major ``(len(frontier) + 1) x kmax`` floors
            (``array('d')``); the last row is the global row.
        curve_c: Per-slot monomial coefficient (``array('d')``; 0.0
            for directory slots and objects without a conservative fit).
        curve_b: Per-slot monomial exponent (``array('d')``).
        obj_profile: Row-major ``n_slots x kmax`` sampled k-distance
            profile (``array('d')``): entry ``[slot][k-1]`` is object
            ``slot``'s sampled k-th largest competitor similarity
            (0.0 for directory slots and beyond the collected
            samples).  Dominates the fitted curve pointwise wherever
            both exist, so :meth:`obj_floor` reads it first.
        row_objects: Objects under each frontier row (``array('q')``,
            length ``len(frontier)``) — the per-row tightness signal:
            wide rows share one floor across many objects and are the
            first to profit from a larger ``budget``.
        lsh_sig: Per-slot 64-bit term signature (``array('Q')``; 0 for
            directory slots), banded by the approx tier's LSH
            pre-filter.
        curves_true: How many fitted curves came from the exact
            true-kNN pass (the rest came from the window fallback).
        build_seconds: Wall-clock cost of the freeze-time build.
    """

    __slots__ = (
        "kmax",
        "budget",
        "pool",
        "sample_frac",
        "frontier",
        "floor_idx",
        "floor_table",
        "curve_c",
        "curve_b",
        "obj_profile",
        "row_objects",
        "lsh_sig",
        "curves_true",
        "build_seconds",
    )

    def __init__(
        self,
        kmax: int,
        budget: int,
        pool: int,
        frontier: Tuple[int, ...],
        floor_idx,
        floor_table,
        curve_c,
        curve_b,
        build_seconds: float,
        sample_frac: float = 0.0,
        obj_profile=None,
        row_objects=None,
        lsh_sig=None,
        curves_true: int = 0,
    ) -> None:
        self.kmax = kmax
        self.budget = budget
        self.pool = pool
        self.sample_frac = sample_frac
        self.frontier = frontier
        self.floor_idx = floor_idx
        self.floor_table = floor_table
        self.curve_c = curve_c
        self.curve_b = curve_b
        self.obj_profile = (
            obj_profile if obj_profile is not None else array("d")
        )
        self.row_objects = row_objects if row_objects is not None else array("q")
        self.lsh_sig = lsh_sig if lsh_sig is not None else array("Q")
        self.curves_true = curves_true
        self.build_seconds = build_seconds

    def node_floor(self, slot: int, k: int) -> float:
        """Conservative lower bound on ``s_k`` of every object under
        ``slot`` (0.0 when ``k > kmax``, which never prunes)."""
        if k > self.kmax:
            return 0.0
        return self.floor_table[self.floor_idx[slot] * self.kmax + (k - 1)]

    def obj_floor(self, slot: int, k: int) -> float:
        """Conservative lower bound on object ``slot``'s own ``s_k``:
        the node floor sharpened by the object's sampled k-distance
        profile (or, absent a profile, its fitted curve — the profile
        dominates the curve pointwise whenever both exist)."""
        if k > self.kmax:
            return 0.0
        floor = self.floor_table[self.floor_idx[slot] * self.kmax + (k - 1)]
        if self.obj_profile:
            y = self.obj_profile[slot * self.kmax + (k - 1)]
            if y > floor:
                return y
            return floor
        c = self.curve_c[slot]
        if c > 0.0:
            curve = c * k ** -self.curve_b[slot]
            if curve > floor:
                return curve
        return floor

    def global_floor(self, k: int) -> float:
        """Lower bound on ``s_k`` valid for *every* object (last row)."""
        if k > self.kmax:
            return 0.0
        return self.floor_table[len(self.frontier) * self.kmax + (k - 1)]

    def nbytes(self) -> int:
        """Resident bytes of the sketch arrays."""
        return (
            self.floor_idx.itemsize * len(self.floor_idx)
            + self.floor_table.itemsize * len(self.floor_table)
            + self.curve_c.itemsize * len(self.curve_c)
            + self.curve_b.itemsize * len(self.curve_b)
            + self.obj_profile.itemsize * len(self.obj_profile)
            + self.row_objects.itemsize * len(self.row_objects)
            + self.lsh_sig.itemsize * len(self.lsh_sig)
        )

    def describe(self) -> Dict[str, object]:
        """Summary counters for logs and benchmark reports."""
        curves = sum(1 for c in self.curve_c if c > 0.0)
        rows = list(self.row_objects)
        return {
            "kmax": self.kmax,
            "budget": self.budget,
            "pool": self.pool,
            "sample_frac": self.sample_frac,
            "frontier_size": len(self.frontier),
            "curves_fitted": curves,
            "curves_true": self.curves_true,
            "row_objects_max": max(rows) if rows else 0,
            "row_objects_mean": (sum(rows) / len(rows)) if rows else 0.0,
            "nbytes": self.nbytes(),
            "build_seconds": self.build_seconds,
        }


def _peel_frontier(snap, budget: int) -> List[int]:
    """Largest-count-first antichain of up to ``budget`` slots.

    Same discipline as the shard admission peel
    (:func:`repro.shard.summaries._peel_frontier`): every object of the
    snapshot lies under exactly one returned slot, which is what makes
    the per-row floors complete.

    Two refusal cases keep the peel *adaptive* instead of aborting: a
    zero-fanout directory slot (a degenerate empty node) becomes its
    own frontier row and the peel continues — it must not dump the
    whole heap and leave the frontier far under budget — and a node
    whose expansion would overflow the budget is likewise kept as a
    row while smaller nodes later in the heap may still be refined.
    """
    frontier: List[int] = []
    heap: List[Tuple[int, int]] = []  # (-cnt, slot) for directory slots
    for r in snap.root_slots:
        if snap.is_obj[r]:
            frontier.append(r)
        else:
            heapq.heappush(heap, (-snap.cnt[r], r))
    while heap:
        _neg_cnt, slot = heapq.heappop(heap)
        children = range(snap.first_child[slot], snap.last_child[slot])
        fanout = len(children)
        if fanout == 0:
            frontier.append(slot)
            continue
        if len(frontier) + len(heap) + fanout > budget:
            frontier.append(slot)
            continue
        for c in children:
            if snap.is_obj[c]:
                frontier.append(c)
            else:
                heapq.heappush(heap, (-snap.cnt[c], c))
    return frontier


def _fit_curve(ys: List[float]) -> Tuple[float, float]:
    """Conservative monomial fit ``c * k**-b`` under sampled ``ys``.

    ``ys[k-1]`` is the sampled k-th largest competitor similarity,
    zero-padded to ``kmax``.  The least-squares fit in log space is
    rescaled so the curve never exceeds a sampled value; any zero in
    ``ys`` (fewer samples than ``kmax``) disables the curve entirely —
    the monomial is positive everywhere, so no positive coefficient
    could stay conservative at the zero point.
    """
    if not ys or min(ys) <= 0.0:
        return 0.0, 0.0
    kmax = len(ys)
    if kmax == 1:
        return ys[0] * _CURVE_MARGIN, 0.0
    xs = [math.log(k) for k in range(1, kmax + 1)]
    zs = [math.log(y) for y in ys]
    mean_x = sum(xs) / kmax
    mean_z = sum(zs) / kmax
    var = sum((x - mean_x) ** 2 for x in xs)
    cov = sum((x - mean_x) * (z - mean_z) for x, z in zip(xs, zs))
    slope = cov / var if var > 0.0 else 0.0
    b = max(0.0, -slope)
    c0 = math.exp(mean_z + b * mean_x)
    if c0 <= 0.0:
        return 0.0, 0.0
    ratio = min(
        ys[k - 1] / (c0 * k ** -b) for k in range(1, kmax + 1)
    )
    c = c0 * ratio * _CURVE_MARGIN
    return (c, b) if c > 0.0 else (0.0, 0.0)


def _make_true_topk(engine, kmax: int):
    """A closure computing one object's exact top-``kmax`` competitor
    similarities by best-first descent of the snapshot.

    The walk uses the same staged upper bound as the approx tier's
    query walk — spatial-only first (text capped at 1), blended text
    bound only when the spatial stage cannot already discard — against
    a threshold that starts at the caller's warm-start ``floor`` (a
    proven lower bound on the object's ``s_kmax``) and rises to the
    running k-th best as real similarities arrive.  Subtrees are
    skipped only when their upper bound is strictly below the floor or
    at most the current k-th best, so the returned value multiset
    equals the true top-``kmax`` exactly (ties may swap which object
    supplied a value, never the value itself) — unless the
    :data:`_TRUE_WALK_POP_CAP` node budget trips first, in which case
    the values are a *subset* of the true multiset and the curve
    fitted over them is merely looser, never unsound.
    """
    snap = engine.snap
    measure = engine.measure
    alpha = engine.alpha
    fd = engine._fd
    exact = engine._exact
    ej = isinstance(measure, ExtendedJaccard)
    is_obj = snap.is_obj
    ref = snap.ref
    xlo, ylo, xhi, yhi = snap.xlo, snap.ylo, snap.xhi, snap.yhi
    first_child, last_child = snap.first_child, snap.last_child
    clusters = snap.clusters
    obj_frozen = snap.obj_frozen
    obj_vec = snap.obj_vec
    root_slots = snap.root_slots

    def topk(a: int, floor: float, seeds=()):
        ax, ay = xlo[a], ylo[a]
        a_frozen = obj_frozen[a]
        a_nsq = a_frozen.norm_sq
        a_iv = None
        if not ej and alpha < 1.0:
            a_iv = IntervalVector.from_document(obj_vec[a])
        ra = ref[a]
        # Min-heap of the running top-kmax ``(sim, supplier)`` pairs —
        # suppliers are returned so the build can seed the *next*
        # object's walk with this object's actual competitors.
        best: List[Tuple[float, int]] = []
        seen = set()  # slots already offered (seeds recur in the walk)

        def offer(b: int) -> None:
            if ref[b] == ra or b in seen:
                return
            seen.add(b)
            s = exact(a, b)
            if s < floor:
                # Provably below s_kmax >= floor: cannot be a top value.
                return
            if len(best) < kmax:
                heapq.heappush(best, (s, b))
            elif s > best[0][0]:
                heapq.heapreplace(best, (s, b))

        def text_hi(slot: int) -> float:
            hi = 0.0
            if ej:
                for _iv, _int_b, uni_b, insq_b, _unsq_b in clusters[slot]:
                    d_max = a_frozen.dot(uni_b)
                    if d_max == 0.0:
                        pair_hi = 0.0
                    elif 2.0 * d_max >= a_nsq + insq_b:
                        pair_hi = 1.0
                    else:
                        pair_hi = d_max / (a_nsq + insq_b - d_max)
                    if pair_hi > hi:
                        hi = pair_hi
            else:
                for ivb, *_ in clusters[slot]:
                    pair_hi = measure.max_similarity(a_iv, ivb)
                    if pair_hi > hi:
                        hi = pair_hi
            return hi

        pq: List[Tuple[float, int]] = []  # (-upper, slot)

        def push(slot: int) -> None:
            if alpha > 0.0:
                dx = max(ax - xhi[slot], 0.0, xlo[slot] - ax)
                dy = max(ay - yhi[slot], 0.0, ylo[slot] - ay)
                s_hi = fd(math.hypot(dx, dy))
                hi = alpha * s_hi + (1.0 - alpha)
                if hi < floor or (
                    len(best) == kmax and hi <= best[0][0]
                ):
                    return
                if alpha < 1.0:
                    hi = alpha * s_hi + (1.0 - alpha) * text_hi(slot)
            else:
                hi = text_hi(slot)
            if hi < floor:
                return
            if len(best) == kmax and hi <= best[0][0]:
                return
            heapq.heappush(pq, (-hi, slot))

        # Seeds (layout neighbours) are offered before the tree walk:
        # their exact similarities raise the running threshold early,
        # so the best-first descent prunes subtrees much sooner.  The
        # ``seen`` set keeps the walk from counting a seed twice —
        # a duplicate value would inflate the returned k-th best.
        for b in seeds:
            offer(b)
        for r in root_slots:
            if is_obj[r]:
                offer(r)
            else:
                push(r)
        pops = 0
        while pq:
            neg_hi, slot = heapq.heappop(pq)
            if len(best) == kmax and -neg_hi <= best[0][0]:
                break
            pops += 1
            if pops > _TRUE_WALK_POP_CAP:
                # Budget trip: the values found so far are a subset of
                # the true top-kmax, so the curve fitted over them can
                # only be looser — conservativeness is unconditional.
                break
            for c in range(first_child[slot], last_child[slot]):
                if is_obj[c]:
                    offer(c)
                else:
                    push(c)
        pairs = sorted(best, reverse=True)
        ys = [s for s, _b in pairs]
        ys.extend([0.0] * (kmax - len(ys)))
        return ys, [b for _s, b in pairs]

    return topk


def build_sketch(
    engine,
    kmax: int = DEFAULT_SKETCH_KMAX,
    budget: int = DEFAULT_SKETCH_BUDGET,
    pool: int = DEFAULT_SKETCH_POOL,
    sample_frac: float = DEFAULT_SKETCH_SAMPLE_FRAC,
) -> KnnlSketch:
    """Compute one snapshot's :class:`KnnlSketch` from its exact engine.

    ``engine`` is the :class:`~repro.core.traversal.SnapshotEngine` of
    the similarity setting being served; its memoized ``_st`` pair table
    supplies every ``MinST`` lower bound (and keeps the values it
    computes warm for the query-time walks to reuse).

    ``sample_frac`` budgets the exact true-kNN sampling pass: that
    fraction of the objects (evenly spaced in layout order) gets curves
    fitted over its real top-``kmax`` competitor similarities; the rest
    fall back to the symmetric layout-window sampling.
    """
    started = time.perf_counter()
    snap = engine.snap
    n_slots = snap.n_slots
    cnt = snap.cnt
    is_obj = snap.is_obj
    ref = snap.ref
    st = engine._st

    frontier = _peel_frontier(snap, budget)
    n_rows = len(frontier)

    # Node-floor rows: one row per frontier slot plus the global row.
    floor_table = array("d", [0.0] * ((n_rows + 1) * kmax))
    for row, f in enumerate(frontier):
        contribs: List[Tuple[float, int]] = []
        for g in frontier:
            if g == f:
                continue
            lo, _hi = st(f, g)
            contribs.append((lo, cnt[g]))
        cf = cnt[f]
        if cf >= 2:
            lo, _hi = st(f, f)
            contribs.append((lo, cf - 1))
        base = row * kmax
        for k in range(1, kmax + 1):
            floor_table[base + k - 1] = _kth_largest(contribs, k)

    # Every slot starts on the global row; frontier subtrees then claim
    # their own rows (the frontier is an antichain, so no overlap).
    # Assigned before the curve pass so the true-kNN walks can
    # warm-start from each object's own row floor.
    floor_idx = array("q", [n_rows] * n_slots)
    first_child = snap.first_child
    last_child = snap.last_child
    for row, f in enumerate(frontier):
        stack = [f]
        while stack:
            s = stack.pop()
            floor_idx[s] = row
            if not is_obj[s]:
                fc, lc = first_child[s], last_child[s]
                if fc >= 0:
                    stack.extend(range(fc, lc))

    # Per-row tightness: objects sharing each row (wide rows dilute the
    # floor across many objects and profit first from a larger budget).
    row_objects = array("q", [cnt[f] for f in frontier])

    # 64-bit term signatures for the approx tier's LSH pre-filter.
    obj_frozen = snap.obj_frozen
    lsh_sig = array("Q", [0] * n_slots)
    objs = [s for s in range(n_slots) if is_obj[s]]
    for s in objs:
        lsh_sig[s] = obj_frozen[s].mask

    # Object curves.  True-kNN pass first: `sample_frac` of the objects
    # (evenly spaced in layout order) get their exact top-kmax
    # competitor similarities via a best-first snapshot walk seeded with
    # layout-neighbour similarities and warm-started by their row floor.
    n_objs = len(objs)
    sample_frac = min(1.0, max(0.0, sample_frac))
    n_sample = int(round(sample_frac * n_objs))
    sampled: set = set()
    if n_sample >= n_objs:
        sampled = set(objs)
    elif n_sample > 0:
        sampled = {
            objs[(i * n_objs) // n_sample] for i in range(n_sample)
        }
    exact = engine._exact
    true_ys: Dict[int, List[float]] = {}
    if sampled:
        topk = _make_true_topk(engine, kmax)
        seed_span = 2 * kmax
        # Consecutive sampled objects are layout (hence spatial)
        # neighbours, so the previous walk's winning suppliers are
        # prime competitor candidates for the next walk too: chaining
        # them as seeds starts each threshold near its final value and
        # collapses the descent to a few node pops.
        prev_suppliers: List[int] = []
        for i, a in enumerate(objs):
            if a not in sampled:
                continue
            floor = floor_table[floor_idx[a] * kmax + (kmax - 1)]
            seeds = prev_suppliers + objs[
                max(0, i - seed_span):i + 1 + seed_span
            ]
            true_ys[a], prev_suppliers = topk(a, floor, seeds)

    # Symmetric circular layout-window fallback for unsampled objects:
    # every object sees `window` neighbours on each side (modulo wrap),
    # so edge objects in layout order collect exactly as many samples
    # as interior ones.  Circular distance is capped at floor(n/2) so
    # no unordered pair is ever collected twice — duplicate samples
    # could overstate a sampled s_k and break conservativeness.
    samples: Dict[int, List[float]] = {}
    rest = [s for s in objs if s not in sampled]
    if rest:
        samples = {s: [] for s in objs}
        window = max(kmax, pool // 2)
        for i, a in enumerate(objs):
            for d in range(1, window + 1):
                if d > n_objs - d:
                    break
                j = (i + d) % n_objs
                if d == n_objs - d and i > j:
                    continue
                b = objs[j]
                if a == b or ref[a] == ref[b]:
                    continue
                if a in sampled and b in sampled:
                    continue
                sim = exact(a, b)
                samples[a].append(sim)
                samples[b].append(sim)

    curve_c = array("d", [0.0] * n_slots)
    curve_b = array("d", [0.0] * n_slots)
    obj_profile = array("d", [0.0] * (n_slots * kmax))
    curves_true = 0
    for s in objs:
        if s in true_ys:
            ys = true_ys[s]
        else:
            ys = heapq.nlargest(kmax, samples.get(s, ()))
            ys.extend([0.0] * (kmax - len(ys)))
        # The sampled profile is itself a conservative per-object floor
        # (sampled s_k <= true s_k), tighter than any curve fitted
        # under it — store it verbatim for obj_floor to read first.
        obj_profile[s * kmax:(s + 1) * kmax] = array("d", ys)
        c, b_exp = _fit_curve(ys)
        curve_c[s] = c
        curve_b[s] = b_exp
        if c > 0.0 and s in true_ys:
            curves_true += 1

    # Global row: elementwise minimum over the frontier rows (valid for
    # every object), sharpened by the minimum sampled profile (which
    # dominates the minimum fitted curve; a single unsampled object
    # zeroes it out, leaving the row minimum).
    gbase = n_rows * kmax
    for k in range(1, kmax + 1):
        row_min = min(
            (floor_table[row * kmax + k - 1] for row in range(n_rows)),
            default=0.0,
        )
        prof_min = 0.0
        if objs:
            prof_min = min(
                obj_profile[s * kmax + (k - 1)] for s in objs
            )
        floor_table[gbase + k - 1] = max(row_min, prof_min)

    return KnnlSketch(
        kmax=kmax,
        budget=budget,
        pool=pool,
        sample_frac=sample_frac,
        frontier=tuple(frontier),
        floor_idx=floor_idx,
        floor_table=floor_table,
        curve_c=curve_c,
        curve_b=curve_b,
        obj_profile=obj_profile,
        row_objects=row_objects,
        lsh_sig=lsh_sig,
        curves_true=curves_true,
        build_seconds=time.perf_counter() - started,
    )
