"""Frozen kNNL sketches: per-object k-distance floors for pruning.

A :class:`KnnlSketch` is computed once per snapshot and similarity
setting and holds, for every slot of the snapshot, a *provably
conservative* lower bound on the k-th best ``SimST`` of every object
under that slot — the frozen analogue of the competitor floors the
exact branch-and-bound walk tightens lazily per query.  Two components
are combined:

* **node floors** (exact machinery): a frontier of up to
  ``budget`` slots is peeled off the snapshot (largest-count first, a
  complete antichain over the objects), and for each frontier node
  ``f`` the weighted k-th largest of the pairwise ``MinST(f, g)``
  lower bounds (weight ``cnt[g]``; self term ``cnt[f] - 1``) is taken
  through :func:`repro.core.contributions._kth_largest`.  Every object
  under ``f`` has at least ``cnt[g]`` competitors at similarity
  ``>= MinST(f, g)``, so the row lower-bounds its true k-th competitor
  similarity ``s_k``.  Slots under ``f`` inherit ``f``'s row; slots
  above the frontier use the *global* row (the elementwise minimum over
  all rows, which is valid for every object of the snapshot).

* **object curves** (nonlinear k-distance fit, after Obermeier et
  al., arXiv:2011.01773): a sampled kNN pass over object slots in
  layout order (window of ``pool`` neighbours per object — layout
  order is spatially clustered, so the window catches strong
  competitors) yields each object's top-``kmax`` sampled competitor
  similarities; a monomial ``c * k**-b`` is least-squares fitted in
  log space and then *rescaled down* so the fitted value never exceeds
  a sampled one.  Sampled similarities are a subset of the true
  competitor multiset, so sampled ``s_k`` <= true ``s_k`` and the
  rescaled curve is conservative at every ``k <= kmax``.  Objects with
  fewer than ``kmax`` sampled competitors get no curve (``c = 0``) —
  the count-aware degenerate case, mirroring ``_kth_largest``'s 0.0.

The floors feed three consumers: warm-start pruning in the exact
engines (:class:`~repro.core.traversal.SnapshotEngine` /
:class:`~repro.core.fused.FusedBatchEngine`, results bit-identical
because a pruned slot provably holds no result), tightened
:class:`~repro.shard.summaries.ShardSummary` admission floors, and the
``engine="approx"`` filter tier (:class:`~repro.approx.engine.ApproxEngine`).

Soundness rule (used by every consumer): a query with upper bound
``q_hi`` on a slot may skip that slot iff ``q_hi < floor`` — then for
every object ``o`` under the slot, ``SimST(q, o) < floor <= s_k(o)``,
so at least ``k`` competitors are strictly more similar to ``o`` than
the query and ``q`` cannot be in ``o``'s reverse k-NN set.  For
``k > kmax`` every floor reads 0.0 and nothing is ever skipped.
"""

from __future__ import annotations

import heapq
import math
import time
from array import array
from typing import Dict, List, Tuple

from ..core.contributions import _kth_largest

#: Largest ``k`` the sketch covers; beyond it floors read 0.0 (never
#: prune).  Matches the shard admission default.
DEFAULT_SKETCH_KMAX = 16

#: Target frontier width for the node-floor rows: more nodes mean
#: tighter per-subtree floors at quadratic pair-bound build cost.
DEFAULT_SKETCH_BUDGET = 256

#: Per-object sample-pool size for the k-distance curve fit (each
#: object sees roughly ``pool`` sampled competitors).
DEFAULT_SKETCH_POOL = 32

#: Multiplicative safety margin applied to the fitted curve so float
#: re-evaluation of ``c * k**-b`` can never creep above the sampled
#: similarity it was fitted under.
_CURVE_MARGIN = 1.0 - 1e-12


class KnnlSketch:
    """Frozen per-slot kNNL floors plus per-object k-distance curves.

    Attributes:
        kmax: Largest ``k`` covered; all floors are 0.0 beyond it.
        budget: Frontier budget the sketch was built with.
        pool: Curve sample-pool size the sketch was built with.
        frontier: The peeled antichain slots (row ``i`` of the floor
            table belongs to ``frontier[i]``'s subtree).
        floor_idx: Per-slot row index into :attr:`floor_table`
            (``array('q')``, length ``n_slots``); slots above the
            frontier point at the global row.
        floor_table: Row-major ``(len(frontier) + 1) x kmax`` floors
            (``array('d')``); the last row is the global row.
        curve_c: Per-slot monomial coefficient (``array('d')``; 0.0
            for directory slots and objects without a conservative fit).
        curve_b: Per-slot monomial exponent (``array('d')``).
        build_seconds: Wall-clock cost of the freeze-time build.
    """

    __slots__ = (
        "kmax",
        "budget",
        "pool",
        "frontier",
        "floor_idx",
        "floor_table",
        "curve_c",
        "curve_b",
        "build_seconds",
    )

    def __init__(
        self,
        kmax: int,
        budget: int,
        pool: int,
        frontier: Tuple[int, ...],
        floor_idx,
        floor_table,
        curve_c,
        curve_b,
        build_seconds: float,
    ) -> None:
        self.kmax = kmax
        self.budget = budget
        self.pool = pool
        self.frontier = frontier
        self.floor_idx = floor_idx
        self.floor_table = floor_table
        self.curve_c = curve_c
        self.curve_b = curve_b
        self.build_seconds = build_seconds

    def node_floor(self, slot: int, k: int) -> float:
        """Conservative lower bound on ``s_k`` of every object under
        ``slot`` (0.0 when ``k > kmax``, which never prunes)."""
        if k > self.kmax:
            return 0.0
        return self.floor_table[self.floor_idx[slot] * self.kmax + (k - 1)]

    def obj_floor(self, slot: int, k: int) -> float:
        """Conservative lower bound on object ``slot``'s own ``s_k``:
        the node floor sharpened by the object's fitted curve."""
        if k > self.kmax:
            return 0.0
        floor = self.floor_table[self.floor_idx[slot] * self.kmax + (k - 1)]
        c = self.curve_c[slot]
        if c > 0.0:
            curve = c * k ** -self.curve_b[slot]
            if curve > floor:
                return curve
        return floor

    def global_floor(self, k: int) -> float:
        """Lower bound on ``s_k`` valid for *every* object (last row)."""
        if k > self.kmax:
            return 0.0
        return self.floor_table[len(self.frontier) * self.kmax + (k - 1)]

    def nbytes(self) -> int:
        """Resident bytes of the sketch arrays."""
        return (
            self.floor_idx.itemsize * len(self.floor_idx)
            + self.floor_table.itemsize * len(self.floor_table)
            + self.curve_c.itemsize * len(self.curve_c)
            + self.curve_b.itemsize * len(self.curve_b)
        )

    def describe(self) -> Dict[str, object]:
        """Summary counters for logs and benchmark reports."""
        curves = sum(1 for c in self.curve_c if c > 0.0)
        return {
            "kmax": self.kmax,
            "budget": self.budget,
            "pool": self.pool,
            "frontier_size": len(self.frontier),
            "curves_fitted": curves,
            "nbytes": self.nbytes(),
            "build_seconds": self.build_seconds,
        }


def _peel_frontier(snap, budget: int) -> List[int]:
    """Largest-count-first antichain of roughly ``budget`` slots.

    Same discipline as the shard admission peel
    (:func:`repro.shard.summaries._peel_frontier`): every object of the
    snapshot lies under exactly one returned slot, which is what makes
    the per-row floors complete.
    """
    frontier: List[int] = []
    heap: List[Tuple[int, int]] = []  # (-cnt, slot) for directory slots
    for r in snap.root_slots:
        if snap.is_obj[r]:
            frontier.append(r)
        else:
            heapq.heappush(heap, (-snap.cnt[r], r))
    while heap:
        _neg_cnt, slot = heapq.heappop(heap)
        children = range(snap.first_child[slot], snap.last_child[slot])
        fanout = len(children)
        if len(frontier) + len(heap) + fanout > budget or fanout == 0:
            frontier.append(slot)
            frontier.extend(s for _, s in heap)
            break
        for c in children:
            if snap.is_obj[c]:
                frontier.append(c)
            else:
                heapq.heappush(heap, (-snap.cnt[c], c))
    return frontier


def _fit_curve(ys: List[float]) -> Tuple[float, float]:
    """Conservative monomial fit ``c * k**-b`` under sampled ``ys``.

    ``ys[k-1]`` is the sampled k-th largest competitor similarity,
    zero-padded to ``kmax``.  The least-squares fit in log space is
    rescaled so the curve never exceeds a sampled value; any zero in
    ``ys`` (fewer samples than ``kmax``) disables the curve entirely —
    the monomial is positive everywhere, so no positive coefficient
    could stay conservative at the zero point.
    """
    if not ys or min(ys) <= 0.0:
        return 0.0, 0.0
    kmax = len(ys)
    if kmax == 1:
        return ys[0] * _CURVE_MARGIN, 0.0
    xs = [math.log(k) for k in range(1, kmax + 1)]
    zs = [math.log(y) for y in ys]
    mean_x = sum(xs) / kmax
    mean_z = sum(zs) / kmax
    var = sum((x - mean_x) ** 2 for x in xs)
    cov = sum((x - mean_x) * (z - mean_z) for x, z in zip(xs, zs))
    slope = cov / var if var > 0.0 else 0.0
    b = max(0.0, -slope)
    c0 = math.exp(mean_z + b * mean_x)
    if c0 <= 0.0:
        return 0.0, 0.0
    ratio = min(
        ys[k - 1] / (c0 * k ** -b) for k in range(1, kmax + 1)
    )
    c = c0 * ratio * _CURVE_MARGIN
    return (c, b) if c > 0.0 else (0.0, 0.0)


def build_sketch(
    engine,
    kmax: int = DEFAULT_SKETCH_KMAX,
    budget: int = DEFAULT_SKETCH_BUDGET,
    pool: int = DEFAULT_SKETCH_POOL,
) -> KnnlSketch:
    """Compute one snapshot's :class:`KnnlSketch` from its exact engine.

    ``engine`` is the :class:`~repro.core.traversal.SnapshotEngine` of
    the similarity setting being served; its memoized ``_st`` pair table
    supplies every ``MinST`` lower bound (and keeps the values it
    computes warm for the query-time walks to reuse).
    """
    started = time.perf_counter()
    snap = engine.snap
    n_slots = snap.n_slots
    cnt = snap.cnt
    is_obj = snap.is_obj
    ref = snap.ref
    st = engine._st

    frontier = _peel_frontier(snap, budget)
    n_rows = len(frontier)

    # Node-floor rows: one row per frontier slot plus the global row.
    floor_table = array("d", [0.0] * ((n_rows + 1) * kmax))
    for row, f in enumerate(frontier):
        contribs: List[Tuple[float, int]] = []
        for g in frontier:
            if g == f:
                continue
            lo, _hi = st(f, g)
            contribs.append((lo, cnt[g]))
        cf = cnt[f]
        if cf >= 2:
            lo, _hi = st(f, f)
            contribs.append((lo, cf - 1))
        base = row * kmax
        for k in range(1, kmax + 1):
            floor_table[base + k - 1] = _kth_largest(contribs, k)

    # Object curves: sampled kNN pass over object slots in layout order.
    objs = [s for s in range(n_slots) if is_obj[s]]
    window = max(kmax, pool // 2)
    samples: Dict[int, List[float]] = {s: [] for s in objs}
    exact = engine._exact
    for i, a in enumerate(objs):
        for j in range(i + 1, min(i + 1 + window, len(objs))):
            b = objs[j]
            if ref[a] == ref[b]:
                continue
            sim = exact(a, b)
            samples[a].append(sim)
            samples[b].append(sim)

    curve_c = array("d", [0.0] * n_slots)
    curve_b = array("d", [0.0] * n_slots)
    for s in objs:
        ys = heapq.nlargest(kmax, samples[s])
        ys.extend([0.0] * (kmax - len(ys)))
        c, b_exp = _fit_curve(ys)
        curve_c[s] = c
        curve_b[s] = b_exp

    # Global row: elementwise minimum over the frontier rows (valid for
    # every object), sharpened by the minimum fitted curve when every
    # object carries one.
    gbase = n_rows * kmax
    all_curves = bool(objs) and all(curve_c[s] > 0.0 for s in objs)
    for k in range(1, kmax + 1):
        row_min = min(
            (floor_table[row * kmax + k - 1] for row in range(n_rows)),
            default=0.0,
        )
        curve_min = 0.0
        if all_curves:
            curve_min = min(
                curve_c[s] * k ** -curve_b[s] for s in objs
            )
        floor_table[gbase + k - 1] = max(row_min, curve_min)

    # Every slot starts on the global row; frontier subtrees then claim
    # their own rows (the frontier is an antichain, so no overlap).
    floor_idx = array("q", [n_rows] * n_slots)
    first_child = snap.first_child
    last_child = snap.last_child
    for row, f in enumerate(frontier):
        stack = [f]
        while stack:
            s = stack.pop()
            floor_idx[s] = row
            if not is_obj[s]:
                fc, lc = first_child[s], last_child[s]
                if fc >= 0:
                    stack.extend(range(fc, lc))

    return KnnlSketch(
        kmax=kmax,
        budget=budget,
        pool=pool,
        frontier=tuple(frontier),
        floor_idx=floor_idx,
        floor_table=floor_table,
        curve_c=curve_c,
        curve_b=curve_b,
        build_seconds=time.perf_counter() - started,
    )
