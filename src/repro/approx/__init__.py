"""Frozen k-distance sketches and the ``engine="approx"`` tier.

See :mod:`repro.approx.sketch` for the freeze-time kNNL floor builder
and :mod:`repro.approx.engine` for the sketch-filtered search engine.
"""

from .engine import ApproxEngine
from .sketch import (
    DEFAULT_SKETCH_BUDGET,
    DEFAULT_SKETCH_KMAX,
    DEFAULT_SKETCH_POOL,
    KnnlSketch,
    build_sketch,
)

__all__ = [
    "ApproxEngine",
    "KnnlSketch",
    "build_sketch",
    "DEFAULT_SKETCH_KMAX",
    "DEFAULT_SKETCH_BUDGET",
    "DEFAULT_SKETCH_POOL",
]
