"""Frozen k-distance sketches and the ``engine="approx"`` tier.

See :mod:`repro.approx.sketch` for the freeze-time kNNL floor builder
and :mod:`repro.approx.engine` for the sketch-filtered search engine
(including its LSH pre-filter stage).
"""

from .engine import ApproxEngine, LSH_BANDS, LSH_PROBE_CAP
from .sketch import (
    DEFAULT_SKETCH_BUDGET,
    DEFAULT_SKETCH_KMAX,
    DEFAULT_SKETCH_POOL,
    DEFAULT_SKETCH_SAMPLE_FRAC,
    KnnlSketch,
    build_sketch,
)

__all__ = [
    "ApproxEngine",
    "KnnlSketch",
    "build_sketch",
    "DEFAULT_SKETCH_KMAX",
    "DEFAULT_SKETCH_BUDGET",
    "DEFAULT_SKETCH_POOL",
    "DEFAULT_SKETCH_SAMPLE_FRAC",
    "LSH_BANDS",
    "LSH_PROBE_CAP",
]
