"""The spatial-textual object: a point location plus a weighted vector."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..spatial import Point, Rect
from ..text import IntervalVector, SparseVector


@dataclass(frozen=True)
class STObject:
    """One object of the dataset (or a query object).

    Attributes:
        oid: Dataset-unique identifier (queries conventionally use -1).
        point: Location.
        vector: Weighted term vector under the dataset's weighting scheme.
        keywords: The raw terms, kept for presentation and for workload
            generators; the algorithms only read ``vector``.
    """

    oid: int
    point: Point
    vector: SparseVector
    keywords: Tuple[str, ...] = field(default=())

    def mbr(self) -> Rect:
        """Degenerate MBR of the object's point."""
        return Rect.from_point(self.point)

    def interval(self) -> IntervalVector:
        """The exact interval summary of this single document."""
        return IntervalVector.from_document(self.vector)

    def __repr__(self) -> str:
        kws = " ".join(self.keywords[:4])
        more = "..." if len(self.keywords) > 4 else ""
        return f"STObject({self.oid} @ ({self.point.x:.3g},{self.point.y:.3g}) '{kws}{more}')"
