"""The blended spatial-textual scorer ``SimST``.

``SimST(o1, o2) = alpha * SimS + (1 - alpha) * SimT`` — the single scoring
function the whole library ranks by.  The scorer binds together a spatial
proximity normalizer and a text measure so callers can't accidentally mix
normalizations.
"""

from __future__ import annotations

from typing import Optional

from ..config import SimilarityConfig
from ..spatial import SpatialProximity
from ..text import TextMeasure, make_measure
from .dataset import STDataset
from .objects import STObject


class STScorer:
    """Exact object-to-object SimST scoring."""

    def __init__(
        self,
        proximity: SpatialProximity,
        measure: TextMeasure,
        alpha: float,
    ) -> None:
        self.proximity = proximity
        self.measure = measure
        self.alpha = alpha

    @staticmethod
    def for_dataset(
        dataset: STDataset, config: Optional[SimilarityConfig] = None
    ) -> "STScorer":
        """Scorer matching a dataset's region and similarity config."""
        cfg = config if config is not None else dataset.config
        return STScorer(dataset.proximity, make_measure(cfg.text_measure), cfg.alpha)

    def spatial(self, a: STObject, b: STObject) -> float:
        """The spatial proximity component of SimST."""
        return self.proximity.between(a.point, b.point)

    def textual(self, a: STObject, b: STObject) -> float:
        """The text similarity component of SimST."""
        return self.measure.similarity(a.vector, b.vector)

    def score(self, a: STObject, b: STObject) -> float:
        """``SimST(a, b)`` in [0, 1]."""
        alpha = self.alpha
        spatial = self.proximity.between(a.point, b.point) if alpha > 0.0 else 0.0
        textual = (
            self.measure.similarity(a.vector, b.vector) if alpha < 1.0 else 0.0
        )
        return alpha * spatial + (1.0 - alpha) * textual
