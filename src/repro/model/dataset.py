"""Dataset construction: raw corpus -> vocabulary, weighted objects, maxD.

An :class:`STDataset` owns everything the indexes and scorers need:
the objects with their weighted vectors, the shared vocabulary, the data
region and its normalization diameter, and the similarity configuration
used to weight terms (so queries are weighted consistently).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import SimilarityConfig
from ..errors import DatasetError
from ..spatial import Point, Rect, SpatialProximity
from ..text import SparseVector, Vocabulary, make_weighting, tokenize
from .objects import STObject


class STDataset:
    """An immutable-after-build collection of spatial-textual objects."""

    def __init__(
        self,
        objects: List[STObject],
        vocabulary: Vocabulary,
        region: Rect,
        config: SimilarityConfig,
    ) -> None:
        if not objects:
            raise DatasetError("STDataset requires at least one object")
        ids = [o.oid for o in objects]
        if len(set(ids)) != len(ids):
            raise DatasetError("duplicate object ids in dataset")
        self.objects = objects
        self.vocabulary = vocabulary
        self.region = region
        self.config = config
        self.proximity = SpatialProximity.for_region(region)
        self._by_id: Dict[int, STObject] = {o.oid: o for o in objects}
        self._weighting = make_weighting(config.weighting, config.lm_lambda)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_corpus(
        records: Sequence[Tuple[Point, str]],
        config: Optional[SimilarityConfig] = None,
        region: Optional[Rect] = None,
    ) -> "STDataset":
        """Build a dataset from ``(location, raw description)`` records.

        Two passes: the first builds the vocabulary statistics (document
        frequencies, collection counts), the second weights each document
        — necessary because IDF and LM backgrounds are corpus-global.
        """
        if not records:
            raise DatasetError("from_corpus requires at least one record")
        cfg = config if config is not None else SimilarityConfig()
        vocab = Vocabulary()
        tf_maps: List[Dict[int, int]] = []
        for _, text in records:
            tf_maps.append(vocab.add_document(tokenize(text)))
        weighting = make_weighting(cfg.weighting, cfg.lm_lambda)
        objects: List[STObject] = []
        for oid, ((point, text), tf) in enumerate(zip(records, tf_maps)):
            vector = weighting.vector(tf, vocab)
            keywords = tuple(sorted({vocab.term_of(t) for t in tf}))
            objects.append(STObject(oid, point, vector, keywords))
        data_region = region if region is not None else Rect.from_points(
            p for p, _ in records
        )
        return STDataset(objects, vocab, data_region, cfg)

    @staticmethod
    def from_keyword_records(
        records: Sequence[Tuple[Point, Sequence[str]]],
        config: Optional[SimilarityConfig] = None,
        region: Optional[Rect] = None,
    ) -> "STDataset":
        """Build from pre-tokenized keyword lists (workload generators)."""
        return STDataset.from_corpus(
            [(p, " ".join(kws)) for p, kws in records], config, region
        )

    # ------------------------------------------------------------------
    # Query weighting
    # ------------------------------------------------------------------

    def make_query(self, point: Point, text: str, oid: int = -1) -> STObject:
        """Weight a query description against this corpus's statistics.

        Query terms unseen in the corpus are interned (df treated as 1 by
        the weighting), matching how a deployed system scores novel query
        keywords.
        """
        tf: Dict[int, int] = {}
        for term in tokenize(text):
            tid = self.vocabulary.intern(term)
            tf[tid] = tf.get(tid, 0) + 1
        vector = self._weighting.vector(tf, self.vocabulary)
        keywords = tuple(sorted({self.vocabulary.term_of(t) for t in tf}))
        return STObject(oid, point, vector, keywords)

    def derive(
        self, records: Sequence[Tuple[Point, str]], id_offset: int = 0
    ) -> "STDataset":
        """Build a companion dataset sharing vocabulary, region and config.

        Used for bichromatic queries: user documents are weighted against
        the *object* corpus statistics (the indexed collection defines
        term importance) and share the spatial normalization, so SimST
        scores between the two sets are well defined.
        """
        if not records:
            raise DatasetError("derive requires at least one record")
        objects = [
            self.make_query(point, text, oid=i + id_offset)
            for i, (point, text) in enumerate(records)
        ]
        return STDataset(objects, self.vocabulary, self.region, self.config)

    def make_query_from_object(self, obj: STObject, oid: int = -1) -> STObject:
        """Use an existing object's location/vector as a query object."""
        return STObject(oid, obj.point, obj.vector, obj.keywords)

    # ------------------------------------------------------------------
    # Mutation (dynamic corpora)
    # ------------------------------------------------------------------

    def append_record(self, point: Point, text: str) -> STObject:
        """Add a new object, weighted against the *current* statistics.

        Corpus-global statistics (IDF, collection counts) are not
        retroactively recomputed for existing vectors — the standard
        approximation for dynamic collections; rebuild the dataset when
        drift matters.
        """
        oid = max(self._by_id) + 1 if self._by_id else 0
        obj = self.make_query(point, text, oid=oid)
        self.objects.append(obj)
        self._by_id[oid] = obj
        return obj

    def remove_object(self, oid: int) -> STObject:
        """Remove and return an object (raises on unknown id)."""
        obj = self.get(oid)
        del self._by_id[oid]
        self.objects.remove(obj)
        return obj

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterable[STObject]:
        return iter(self.objects)

    def get(self, oid: int) -> STObject:
        """Fetch an object by id (raises DatasetError when unknown)."""
        try:
            return self._by_id[oid]
        except KeyError:
            raise DatasetError(f"unknown object id {oid}") from None

    def vectors(self) -> List[SparseVector]:
        """Every object's weighted vector, in dataset order."""
        return [o.vector for o in self.objects]

    def stats(self) -> Dict[str, float]:
        """Corpus statistics for experiment logs and DESIGN tables."""
        lens = [len(o.vector) for o in self.objects]
        return {
            "objects": float(len(self.objects)),
            "vocabulary": float(len(self.vocabulary)),
            "avg_terms_per_object": sum(lens) / len(lens),
            "max_terms_per_object": float(max(lens)),
            "region_diagonal": self.region.diagonal(),
        }
