"""Data model: spatial-textual objects, datasets, and the SimST scorer."""

from .objects import STObject
from .dataset import STDataset
from .scorer import STScorer

__all__ = ["STObject", "STDataset", "STScorer"]
