"""LSM-style live updates: a delta overlay + tombstones over a frozen tree.

Every structural write to a plain :class:`~repro.index.iurtree.IURTree`
bumps its generation and invalidates the whole frozen stack — snapshot,
text matrix, kNNL sketch, shm segments — so a write-heavy tenant never
keeps a warm snapshot.  :class:`LiveIndex` is the standard LSM answer:

* **inserts** land in a small in-memory :class:`DeltaOverlay` IUR-tree;
* **deletes** of frozen objects become :class:`Tombstones` that mask the
  frozen entries (the frozen structure is never touched);
* **queries** run the unmodified branch-and-bound walk over the *union*
  of both sources through an :class:`EpochView` that implements the tree
  traversal protocol; and
* a **freezer** (:meth:`LiveIndex.freeze_step`, or the background thread
  started by :meth:`LiveIndex.start_freezer`) folds the overlay into a
  freshly built frozen generation and atomically swaps it behind a
  read-side epoch pin, retiring the old generation's shm segments only
  once the last pinned reader drains.

Why pruning stays sound against the union
-----------------------------------------

The searcher's group bounds (``kNNL``/``kNNU``) combine two ingredients
per live entry: similarity *bounds* (from MBRs and interval vectors) and
object *counts*.  Bounds may be loose in either direction without
breaking correctness — but counts must be **exact**: an overstated count
inflates ``kNNL`` (wrongful prunes, missing results), an understated
count deflates ``kNNU`` (wrongful accepts, false positives).  The view
therefore

* serves frozen directory entries with their per-cluster ``doc_count``
  *exactly decremented* along every tombstoned object's root-to-leaf
  path (:func:`adjust_entry`) while keeping the frozen MBR and interval
  vectors — those only summarize a superset, which keeps the similarity
  bounds loose-but-sound;
* drops tombstoned object entries at the leaf level and fully-dead
  subtrees outright; and
* exposes the overlay as one extra pre-expanded root entry whose
  summaries are built from the live overlay R-tree, so overlay objects
  participate in every contribution list with exact counts.

Frozen-side *floors* (warm kNNL floors, the approx sketch tier, shard
admission summaries) are derived from the pre-write snapshot and are
**not** re-derived per write; while the overlay is dirty the searcher
resolves to the seed walk (see ``RSTkNNSearcher._resolve_engine``),
which uses none of them.  After a freeze the view is clean again and the
frozen fast paths (snapshot / warm / approx / fused / shm) all re-apply.

See ``docs/UPDATES.md`` for the end-to-end lifecycle.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..errors import (
    ConfigError,
    DatasetError,
    IndexError_,
    OverlayPendingError,
)
from ..index.entry import Entry
from ..index.rtree import RTree
from ..model.objects import STObject
from ..obs.metrics import registry_or_null
from ..service.faults import check_freeze, current_plan
from ..text import IntervalVector

#: Overlay directory refs are remapped into this range so they can never
#: collide with frozen node ids or object ids — the searcher keys live
#: entries by ``(ref, is_object)``, so both sources must stay disjoint.
OVERLAY_REF_BASE = 1 << 40

#: Environment override that turns live-update wrapping on for the CLI
#: and ``from_perf_config`` construction paths (``1``/``true``/``yes``/
#: ``on`` arm it; anything else, or unset, leaves it off).
LIVE_UPDATES_ENV_VAR = "REPRO_LIVE_UPDATES"

#: Buckets for the ``lsm.freeze.seconds`` histogram: freezes run
#: 0.07-0.09 s at n=400 and superlinearly above, so the range spans
#: milliseconds (tests) to tens of seconds (n=10^6 folds).
FREEZE_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: Default overlay size (objects + tombstones) at which the background
#: freezer folds; explicit :meth:`LiveIndex.freeze_step` ignores it.
DEFAULT_FREEZE_THRESHOLD = 256


def default_live_updates() -> bool:
    """Live-update default from ``REPRO_LIVE_UPDATES`` (off when unset)."""
    raw = os.environ.get(LIVE_UPDATES_ENV_VAR)
    if raw is None:
        return False
    return raw.strip().lower() in ("1", "true", "yes", "on")


def adjust_entry(entry: Entry, decrements: Dict[int, int]) -> Optional[Entry]:
    """A frozen directory entry with tombstoned doc counts removed.

    ``decrements`` maps cluster id to the number of tombstoned objects
    under this node with that label.  The MBR and interval vectors are
    kept as-is (they summarize a superset — loose but sound); only the
    per-cluster ``doc_count`` values change, which is exactly what the
    searcher's group-bound counts consume.  Returns ``None`` when every
    object beneath the entry is tombstoned (the subtree is dead).
    """
    if not decrements:
        return entry
    clusters: Dict[int, IntervalVector] = {}
    for cid, iv in entry.clusters.items():
        removed = decrements.get(cid, 0)
        remaining = iv.doc_count - removed
        if remaining < 0:  # pragma: no cover - defensive
            raise IndexError_(
                f"node {entry.ref} cluster {cid}: {removed} tombstones "
                f"exceed doc_count {iv.doc_count}"
            )
        if remaining > 0:
            clusters[cid] = (
                IntervalVector(iv.intersection, iv.union, remaining)
                if removed
                else iv
            )
    if not clusters:
        return None
    return Entry(
        ref=entry.ref, mbr=entry.mbr, is_object=False, clusters=clusters
    )


def frozen_path(rtree: RTree, oid: int, location) -> Optional[List[int]]:
    """Node ids from the root to the leaf holding ``oid``, else ``None``.

    Mirrors ``RTree._find_leaf``'s descent (``contains_rect``) but keeps
    the whole path — tombstoning decrements every node on it.
    """
    if rtree.root_id is None:
        return None
    path: List[int] = []

    def descend(node) -> bool:
        path.append(node.node_id)
        if node.is_leaf:
            if any(e.ref == oid for e in node.entries):
                return True
            path.pop()
            return False
        for entry in node.entries:
            if entry.mbr.contains_rect(location):
                if descend(rtree.node(entry.ref)):
                    return True
        path.pop()
        return False

    return path if descend(rtree.root) else None


class DeltaOverlay:
    """Small in-memory mutable IUR-tree absorbing inserts.

    Structurally a plain :class:`~repro.index.rtree.RTree` of object
    entries; it is never persisted (no page I/O is charged for overlay
    node visits — the overlay is bounded by the freeze threshold and
    lives in memory by design).  Directory refs are remapped by
    :data:`OVERLAY_REF_BASE` on the way out so frozen and overlay entry
    keys stay disjoint in one search.
    """

    def __init__(self, max_entries: int, min_entries: int) -> None:
        self._rtree = RTree(max_entries, min_entries)
        self._labels: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, oid: int) -> bool:
        return oid in self._labels

    def oids(self) -> List[int]:
        """Object ids currently absorbed by the overlay."""
        return sorted(self._labels)

    def max_label(self) -> int:
        """Largest cluster label present (``-1`` when empty)."""
        return max(self._labels.values(), default=-1)

    def insert(self, obj: STObject, label: int) -> None:
        """Absorb a new dataset object under cluster ``label``."""
        self._labels[obj.oid] = label
        self._rtree.insert(
            Entry.for_object(obj.oid, obj.mbr(), obj.vector, label)
        )

    def delete(self, obj: STObject) -> bool:
        """Remove an overlay-resident object (no tombstone needed)."""
        if obj.oid not in self._labels:
            return False
        removed = self._rtree.delete(obj.oid, obj.mbr())
        if removed:
            del self._labels[obj.oid]
        return removed

    def root_entry(self) -> Optional[Entry]:
        """Directory entry covering the whole overlay (ref remapped)."""
        if self._rtree.root_id is None:
            return None
        root = self._rtree.root
        base = Entry.for_subtree(root.node_id, root.mbr(), root.entries)
        return Entry(
            ref=OVERLAY_REF_BASE + base.ref,
            mbr=base.mbr,
            is_object=False,
            clusters=base.clusters,
        )

    def children(self, ref: int) -> List[Entry]:
        """Children of a remapped overlay directory entry."""
        node = self._rtree.node(ref - OVERLAY_REF_BASE)
        out: List[Entry] = []
        for entry in node.entries:
            if entry.is_object:
                out.append(entry)
            else:
                out.append(
                    Entry(
                        ref=OVERLAY_REF_BASE + entry.ref,
                        mbr=entry.mbr,
                        is_object=False,
                        clusters=entry.clusters,
                    )
                )
        return out


class Tombstones:
    """Deleted frozen oids plus exact per-node per-cluster decrements.

    Each tombstone records the deleted object's root-to-leaf path at
    delete time; serving a frozen directory entry subtracts the node's
    accumulated decrements (:func:`adjust_entry`), which keeps every
    group-bound count exact without touching the frozen structure.
    """

    def __init__(self) -> None:
        self.oids: Set[int] = set()
        self.node_decrements: Dict[int, Dict[int, int]] = {}

    def __len__(self) -> int:
        return len(self.oids)

    def __contains__(self, oid: int) -> bool:
        return oid in self.oids

    def add(self, oid: int, label: int, path: List[int]) -> None:
        """Mask ``oid`` (cluster ``label``) along its frozen path."""
        self.oids.add(oid)
        for node_id in path:
            per_cluster = self.node_decrements.setdefault(node_id, {})
            per_cluster[label] = per_cluster.get(label, 0) + 1

    def add_outlier(self, oid: int) -> None:
        """Mask a frozen outlier (side list — no tree path to adjust)."""
        self.oids.add(oid)


class EpochView:
    """One immutable epoch: frozen tree + overlay + tombstones.

    Implements the tree traversal protocol (``root_entry`` /
    ``outlier_entries`` / ``children`` / ``object`` / ``num_clusters`` /
    ``snapshot`` / ...) so the unmodified seed walk — and every consumer
    that duck-types a tree — runs over the union of both sources.
    Readers obtain a view via :meth:`LiveIndex.pin`, which keeps the
    freezer from retiring the epoch (and its shm segments) mid-walk.
    """

    def __init__(self, owner: "LiveIndex", frozen) -> None:
        self._owner = owner
        self.frozen = frozen
        self.overlay = DeltaOverlay(
            frozen.config.max_entries, frozen.config.min_entries
        )
        self.tombstones = Tombstones()
        #: Memoized tombstone-adjusted directory entries, keyed by frozen
        #: node id; cleared by every delete (decrements change).
        self._adjust_memo: Dict[int, Optional[Entry]] = {}
        self._pins = 0
        self._segments: Dict[Tuple[str, float], object] = {}

    # -- traversal protocol (delegating reads) -------------------------

    @property
    def dataset(self):
        """The live dataset shared with the owning :class:`LiveIndex`."""
        return self._owner.dataset

    @property
    def config(self):
        """The frozen tree's :class:`~repro.config.IndexConfig`."""
        return self.frozen.config

    @property
    def io(self):
        """Frozen-side I/O counters (overlay visits charge nothing)."""
        return self.frozen.io

    @property
    def buffer(self):
        """The frozen tree's buffer pool."""
        return self.frozen.buffer

    @property
    def kind(self) -> str:
        """The frozen tree's kind tag (``"iur"`` / ``"ciur"``)."""
        return self.frozen.kind

    @property
    def generation(self) -> int:
        """The owner's write generation (salts shared bound caches)."""
        return self._owner.generation

    @property
    def overlay_dirty(self) -> bool:
        """True while any overlay object or tombstone is pending."""
        return bool(self.overlay._labels) or bool(self.tombstones.oids)

    def root_entry(self) -> Optional[Entry]:
        """The frozen root entry with tombstoned counts removed."""
        base = self.frozen.root_entry()
        if base is None:
            return None
        return self._adjusted(base)

    def outlier_entries(self) -> List[Entry]:
        """Unmasked frozen outliers plus the overlay root entry.

        The overlay root rides along here because the searcher seeds its
        live set from ``root_entry() + outlier_entries()`` and handles
        directory entries anywhere in that set.
        """
        dead = self.tombstones.oids
        out = [
            e for e in self.frozen.outlier_entries() if e.ref not in dead
        ]
        overlay_root = self.overlay.root_entry()
        if overlay_root is not None:
            out.append(overlay_root)
        return out

    def children(self, entry: Entry, tag: str = "node") -> List[Entry]:
        """Expand either source; frozen children are tombstone-masked."""
        if entry.is_object:
            raise IndexError_(f"cannot expand object entry {entry.ref}")
        if entry.ref >= OVERLAY_REF_BASE:
            return self.overlay.children(entry.ref)
        dead = self.tombstones.oids
        out: List[Entry] = []
        for child in self.frozen.children(entry, tag):
            if child.is_object:
                if child.ref not in dead:
                    out.append(child)
            else:
                adjusted = self._adjusted(child)
                if adjusted is not None:
                    out.append(adjusted)
        return out

    def object(self, oid: int) -> STObject:
        """Fetch the concrete object from the shared dataset."""
        return self.dataset.get(oid)

    def num_clusters(self) -> int:
        """Cluster count across both sources."""
        return max(self.frozen.num_clusters(), self.overlay.max_label() + 1)

    def warm_kernels(self) -> int:
        """Pre-freeze kernel forms on both sources; returns the count."""
        frozen = self.frozen.warm_kernels()
        for oid in self.overlay.oids():
            self.dataset.get(oid).vector.frozen()
            frozen += 1
        return frozen

    def snapshot(self):
        """The frozen snapshot — only legal while the view is clean.

        Raises :class:`~repro.errors.OverlayPendingError` while overlay
        objects or tombstones are pending: the columnar snapshot cannot
        represent the union, and silently serving the stale frozen one
        would drop live writes.  ``QueryService`` catches this and
        degrades the fused/snapshot hops to the merged seed walk.
        """
        if self.overlay_dirty:
            raise OverlayPendingError(
                f"live overlay has {len(self.overlay)} objects and "
                f"{len(self.tombstones)} tombstones pending; run "
                "freeze_step() (or let the background freezer fold) "
                "before taking a frozen snapshot"
            )
        return self.frozen.snapshot()

    def reset_io(self, cold: bool = True) -> None:
        """Zero the frozen tree's I/O counters."""
        self.frozen.reset_io(cold)

    # -- internal ------------------------------------------------------

    def _adjusted(self, entry: Entry) -> Optional[Entry]:
        decrements = self.tombstones.node_decrements.get(entry.ref)
        if not decrements:
            return entry
        memo = self._adjust_memo
        if entry.ref in memo:
            return memo[entry.ref]
        adjusted = adjust_entry(entry, decrements)
        memo[entry.ref] = adjusted
        return adjusted

    def _release_segments(self) -> None:
        segments, self._segments = self._segments, {}
        for segment in segments.values():
            segment.release()


class LiveIndex:
    """A frozen (C)IUR-tree behind an LSM-style live-update front.

    Wrap any built tree::

        live = LiveIndex(IURTree.build(dataset))
        obj = live.insert(Point(1.0, 2.0), "coffee wifi")
        live.delete_object(victim_oid)
        searcher = RSTkNNSearcher(live)       # merged walk while dirty
        live.freeze_step()                    # fold -> clean fast paths

    Concurrency model: **one writer** (inserts/deletes, possibly the
    application thread) plus the **background freezer** plus any number
    of **readers**.  Readers never take the writer lock — :meth:`pin`
    touches only a small pin lock, so queries stay off the freeze path;
    writers and the freezer serialize on the writer lock (a writer
    blocks for the duration of a fold, which is the LSM trade).
    Concurrent writers, or a reader mutating the dataset mid-walk, are
    not supported — the same contract as the underlying tree.
    """

    #: Duck-typing marker consumed by the serving layers.
    is_live = True

    def __init__(
        self,
        tree,
        *,
        metrics=None,
        freeze_threshold: int = DEFAULT_FREEZE_THRESHOLD,
        build_method: str = "str",
    ) -> None:
        """``tree`` is a built :class:`~repro.index.iurtree.IURTree` (or
        CIURTree); ``freeze_threshold`` is the overlay size (objects +
        tombstones) at which the background freezer folds;
        ``build_method`` is handed to ``type(tree).build`` on every
        fold.  ``metrics`` attaches the ``lsm.*`` instruments (see
        ``docs/OBSERVABILITY.md``)."""
        if getattr(tree, "is_live", False):
            raise ConfigError("tree is already a LiveIndex")
        if freeze_threshold < 1:
            raise ConfigError(
                f"freeze_threshold must be >= 1, got {freeze_threshold}"
            )
        self.dataset = tree.dataset
        self.freeze_threshold = int(freeze_threshold)
        self._build_method = build_method
        self._lock = threading.RLock()  # writers + freezer
        self._pin_lock = threading.Lock()  # readers (epoch pin/retire)
        self.generation = getattr(tree, "generation", 0)
        self.epoch = 0
        self._view = EpochView(self, tree)
        self._retired: List[EpochView] = []
        self._freezer: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.metrics = registry_or_null(metrics)
        self._gauge_overlay = self.metrics.gauge("lsm.overlay.objects")
        self._gauge_tombstones = self.metrics.gauge("lsm.tombstones")
        self._hist_freeze = self.metrics.histogram(
            "lsm.freeze.seconds", FREEZE_BUCKETS
        )
        self._ctr_swaps = self.metrics.counter("lsm.swaps")
        self._ctr_failures = self.metrics.counter("lsm.freeze.failures")
        self._ctr_merged = self.metrics.counter("lsm.reads.merged")

    # -- traversal protocol (delegated to the current epoch) -----------

    @property
    def config(self):
        """The frozen tree's :class:`~repro.config.IndexConfig`."""
        return self._view.config

    @property
    def io(self):
        """Frozen-side I/O counters of the current epoch."""
        return self._view.io

    @property
    def buffer(self):
        """The current epoch's buffer pool."""
        return self._view.buffer

    @property
    def kind(self) -> str:
        """The frozen tree's kind tag."""
        return self._view.kind

    @property
    def frozen_tree(self):
        """The current epoch's frozen tree (shm/pickle transports)."""
        return self._view.frozen

    @property
    def overlay_dirty(self) -> bool:
        """True while overlay objects or tombstones are pending."""
        return self._view.overlay_dirty

    def root_entry(self) -> Optional[Entry]:
        """Current epoch's (tombstone-adjusted) root entry."""
        return self._view.root_entry()

    def outlier_entries(self) -> List[Entry]:
        """Current epoch's outliers + overlay root."""
        return self._view.outlier_entries()

    def children(self, entry: Entry, tag: str = "node") -> List[Entry]:
        """Expand through the current epoch."""
        return self._view.children(entry, tag)

    def object(self, oid: int) -> STObject:
        """Fetch the concrete object."""
        return self.dataset.get(oid)

    def num_clusters(self) -> int:
        """Cluster count across both sources of the current epoch."""
        return self._view.num_clusters()

    def warm_kernels(self) -> int:
        """Warm both sources of the current epoch."""
        return self._view.warm_kernels()

    def snapshot(self):
        """Frozen snapshot of the current epoch (clean epochs only)."""
        return self._view.snapshot()

    def reset_io(self, cold: bool = True) -> None:
        """Zero the current epoch's I/O counters."""
        self._view.reset_io(cold)

    # -- reads ---------------------------------------------------------

    @contextlib.contextmanager
    def pin(self) -> Iterator[EpochView]:
        """Pin the current epoch for one read and yield its view.

        While pinned, :meth:`freeze_step` may swap in a new epoch but
        will not retire this one (its shm segments stay mapped); the
        last unpin releases retired epochs.  The yielded view has no
        ``pin`` of its own, so searchers recurse through it exactly
        once.
        """
        with self._pin_lock:
            view = self._view
            view._pins += 1
            if view.overlay_dirty:
                self._ctr_merged.inc()
        try:
            yield view
        finally:
            with self._pin_lock:
                view._pins -= 1
                self._drain_retired()

    # -- writes --------------------------------------------------------

    def insert(self, point, text: str) -> STObject:
        """Append a new record to the dataset and absorb it; returns it."""
        with self._lock:
            obj = self.dataset.append_record(point, text)
            self.insert_object(obj)
            return obj

    def insert_object(self, obj: STObject) -> None:
        """Absorb a dataset object into the overlay (no re-freeze).

        The object must already be part of :attr:`dataset` (use
        :meth:`insert` or ``STDataset.append_record``).  Its cluster
        label comes from the frozen tree's assignment
        (``IURTree.assign_cluster``); outlier extraction is deferred to
        the next fold — the overlay is bounded by the freeze threshold,
        so holding a few low-cohesion objects in-tree is harmless.
        """
        with self._lock:
            if self.dataset.get(obj.oid) is not obj:
                raise IndexError_(
                    f"object {obj.oid} is not the dataset's instance; "
                    "append it to the dataset first"
                )
            view = self._view
            label, _ = view.frozen.assign_cluster(obj)
            view.overlay.insert(obj, label)
            self.generation += 1
            self._publish_sizes(view)

    def delete_object(self, oid: int) -> bool:
        """Delete from overlay or tombstone the frozen object.

        Overlay-resident objects are removed directly; frozen objects
        (tree or outlier side list) are masked by a tombstone whose
        root-to-leaf path decrements keep every group-bound count exact.
        Returns False when the object is unknown.
        """
        with self._lock:
            try:
                obj = self.dataset.get(oid)
            except DatasetError:
                return False
            view = self._view
            if oid in view.overlay:
                if not view.overlay.delete(obj):  # pragma: no cover
                    return False
                self.dataset.remove_object(oid)
                self.generation += 1
                self._publish_sizes(view)
                return True
            if any(o.oid == oid for o in view.frozen.outliers):
                view.tombstones.add_outlier(oid)
            else:
                path = frozen_path(view.frozen.rtree, oid, obj.mbr())
                if path is None:
                    return False
                view.tombstones.add(
                    oid, view.frozen.cluster_label(oid), path
                )
                view._adjust_memo.clear()
            self.dataset.remove_object(oid)
            self.generation += 1
            self._publish_sizes(view)
            return True

    # -- freezing ------------------------------------------------------

    def freeze_step(self) -> bool:
        """Fold the overlay into a fresh frozen generation and swap.

        Deterministic single-step freezer for tests and explicit control
        (the background thread calls the same method).  Builds a brand
        new tree over the current logical dataset — the parity anchor:
        post-fold trees *are* freshly built — warms it, then atomically
        swaps the epoch.  Readers pinned to the old epoch keep serving
        it; its shm segments are released when the last pin drains.

        The ``REPRO_FAULTS`` ``freeze_fail`` fault point sits after the
        rebuild and **before** any visible state change, so an injected
        mid-swap failure leaves the old generation serving (overlay,
        tombstones, and epoch untouched) and the fold retries later.
        Returns True when a swap happened, False when already clean.
        """
        with self._lock:
            view = self._view
            if not view.overlay_dirty:
                return False
            started = time.perf_counter()
            frozen = view.frozen
            try:
                rebuilt = type(frozen).build(
                    self.dataset, frozen.config, method=self._build_method
                )
                rebuilt.warm_kernels()
                check_freeze(current_plan())
            except Exception:
                self._ctr_failures.inc()
                raise
            new_view = EpochView(self, rebuilt)
            with self._pin_lock:
                self._view = new_view
                self.epoch += 1
                self.generation += 1
                self._retired.append(view)
                self._drain_retired()
            self._hist_freeze.observe(time.perf_counter() - started)
            self._ctr_swaps.inc()
            self._publish_sizes(new_view)
            return True

    def start_freezer(self, interval: float = 0.25) -> None:
        """Start the background freezer (daemon thread).

        Every ``interval`` seconds it folds iff the overlay size
        (objects + tombstones) has reached :attr:`freeze_threshold`.
        Injected freeze failures are counted (``lsm.freeze.failures``)
        and retried on the next tick; the old generation keeps serving
        throughout.  Idempotent.
        """
        with self._lock:
            if self._freezer is not None:
                return
            self._stop.clear()
            thread = threading.Thread(
                target=self._freeze_loop,
                args=(interval,),
                name="repro-lsm-freezer",
                daemon=True,
            )
            self._freezer = thread
            thread.start()

    def stop_freezer(self) -> None:
        """Stop the background freezer and join it. Idempotent."""
        thread = self._freezer
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._freezer = None

    def close(self) -> None:
        """Stop the freezer and release every epoch's shm segments."""
        self.stop_freezer()
        with self._pin_lock:
            retired, self._retired = self._retired, []
            current = self._view
        for view in retired:
            view._release_segments()
        current._release_segments()

    def pending(self) -> int:
        """Overlay objects + tombstones awaiting the next fold."""
        view = self._view
        return len(view.overlay) + len(view.tombstones)

    # -- transports ----------------------------------------------------

    def export_segment(self, config=None, te_weight: float = 0.05):
        """Epoch-owned shm segment over the frozen snapshot (memoized).

        Reused across batch runs of the same epoch and released by the
        refcounted epoch retirement instead of per-run — callers must
        *not* call ``release()`` themselves.  Raises
        :class:`~repro.errors.OverlayPendingError` while dirty.
        """
        with self._lock:
            view = self._view
            if view.overlay_dirty:
                raise OverlayPendingError(
                    "cannot export a shared segment while the overlay "
                    "is dirty; freeze first"
                )
            key = (repr(config), te_weight)
            segment = view._segments.get(key)
            if segment is None:
                from ..perf.shm import SharedSnapshotSegment

                segment = SharedSnapshotSegment.create(
                    view.frozen, config=config, te_weight=te_weight
                )
                view._segments[key] = segment
            return segment

    # -- internal ------------------------------------------------------

    def _freeze_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                if self.pending() >= self.freeze_threshold:
                    self.freeze_step()
            except Exception:
                # Counted via lsm.freeze.failures inside freeze_step;
                # the old generation keeps serving and the next tick
                # retries the fold.
                continue

    def _drain_retired(self) -> None:
        # Caller holds _pin_lock.
        keep: List[EpochView] = []
        for view in self._retired:
            if view._pins > 0:
                keep.append(view)
            else:
                view._release_segments()
        self._retired = keep

    def _publish_sizes(self, view: EpochView) -> None:
        self._gauge_overlay.set(float(len(view.overlay)))
        self._gauge_tombstones.set(float(len(view.tombstones)))


def maybe_wrap_live(tree, perf=None, metrics=None):
    """Wrap ``tree`` in a :class:`LiveIndex` when live updates are on.

    ``perf.live_updates`` arms it explicitly; otherwise the
    ``REPRO_LIVE_UPDATES`` environment default applies (mirroring the
    warm-floor knob).  Already-live trees pass through unchanged.
    """
    if getattr(tree, "is_live", False):
        return tree
    armed = bool(perf is not None and perf.live_updates)
    if not armed and (perf is None or not perf.live_updates):
        armed = default_live_updates()
    if not armed:
        return tree
    threshold = (
        perf.lsm_freeze_threshold
        if perf is not None
        else DEFAULT_FREEZE_THRESHOLD
    )
    return LiveIndex(tree, metrics=metrics, freeze_threshold=threshold)
