"""Live updates in front of the sharded scatter–gather searcher.

Shard admission (:mod:`repro.shard.summaries`) prunes whole shards with
freeze-time upper bounds; after a delete those bounds describe objects
that no longer exist, and after an insert they miss objects that do —
both directions are unsound for admission against the live union.
:class:`LiveScatterGather` therefore serves two regimes:

* **clean epoch** — an inner :class:`~repro.shard.ScatterGatherSearcher`
  over a sharded index built from the epoch's dataset, rebuilt lazily
  whenever the frozen epoch advances (the shard build is freeze-time
  work, not query-time work);
* **dirty epoch** — the merged seed walk over the epoch view
  (overlay + tombstone-masked frozen tree), bypassing shard admission
  entirely; counted by ``lsm.scatter.merged``.

Both regimes return :class:`~repro.shard.ShardSearchResult`, so callers
keep one result shape across folds.
"""

from __future__ import annotations

import time
from typing import Optional

from ..core.rstknn import RSTkNNSearcher
from ..obs.metrics import registry_or_null
from ..shard import (
    ScatterGatherSearcher,
    ShardQueryStats,
    ShardSearchResult,
    build_sharded_index,
)
from .live import LiveIndex


class LiveScatterGather:
    """Scatter–gather serving over a :class:`~repro.lsm.LiveIndex`."""

    def __init__(
        self,
        live: LiveIndex,
        shard_count: int,
        *,
        index_config=None,
        config=None,
        te_weight: float = 0.05,
        workers: int = 0,
        share: str = "auto",
        metrics=None,
    ) -> None:
        """``live`` absorbs the writes; ``shard_count`` and the remaining
        knobs configure the inner sharded searcher built per clean
        epoch (see :class:`~repro.shard.ScatterGatherSearcher`)."""
        self.live = live
        self.shard_count = int(shard_count)
        self._index_config = index_config
        self._config = config
        self._te_weight = te_weight
        self._workers = workers
        self._share = share
        self.metrics = registry_or_null(metrics)
        self._ctr_merged = self.metrics.counter("lsm.scatter.merged")
        self._ctr_rebuilds = self.metrics.counter("lsm.scatter.rebuilds")
        self._inner: Optional[ScatterGatherSearcher] = None
        self._inner_epoch = -1

    # -- writes (delegated) --------------------------------------------

    def insert(self, point, text: str):
        """Absorb an insert through the live index; returns the object."""
        return self.live.insert(point, text)

    def delete_object(self, oid: int) -> bool:
        """Delete through the live index (tombstone or overlay)."""
        return self.live.delete_object(oid)

    def freeze_step(self) -> bool:
        """Fold the overlay; the next search re-shards the new epoch."""
        return self.live.freeze_step()

    # -- reads ---------------------------------------------------------

    def search(self, query, k: int) -> ShardSearchResult:
        """Scatter–gather when the epoch is clean, merged walk when not.

        The dirty-path result reports ``shards_searched = 0`` — no shard
        admission ran, because freeze-time admission bounds are unsound
        against the live union.
        """
        with self.live.pin() as view:
            if view.overlay_dirty:
                self._ctr_merged.inc()
                started = time.perf_counter()
                seed = RSTkNNSearcher(
                    view,
                    config=self._config,
                    te_weight=self._te_weight,
                    engine="seed",
                )
                result = seed.search(query, k)
                stats = ShardQueryStats(
                    shards_total=self.shard_count,
                    shards_searched=0,
                    shards_pruned=0,
                    candidates=len(result.ids),
                    merge_probes=0,
                    elapsed_seconds=time.perf_counter() - started,
                    search=result.stats,
                )
                return ShardSearchResult(ids=result.ids, stats=stats)
        return self._inner_for_epoch().search(query, k)

    def close(self) -> None:
        """Shut down the inner searcher's worker pool, if any."""
        if self._inner is not None:
            self._inner.close()
            self._inner = None
            self._inner_epoch = -1

    # -- internal ------------------------------------------------------

    def _inner_for_epoch(self) -> ScatterGatherSearcher:
        epoch = self.live.epoch
        if self._inner is None or self._inner_epoch != epoch:
            if self._inner is not None:
                self._inner.close()
            sharded = build_sharded_index(
                self.live.dataset,
                self.shard_count,
                index_config=self._index_config,
                tree_cls=type(self.live.frozen_tree),
            )
            self._inner = ScatterGatherSearcher(
                sharded,
                self._config,
                self._te_weight,
                workers=self._workers,
                share=self._share,
                metrics=self.metrics,
            )
            self._inner_epoch = epoch
            self._ctr_rebuilds.inc()
        return self._inner
