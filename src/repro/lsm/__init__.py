"""LSM-style live updates: delta overlay, tombstones, epoch freezes.

Public surface of the live-update path (see ``docs/UPDATES.md``):
:class:`LiveIndex` wraps a built (C)IUR-tree, absorbs inserts into a
:class:`DeltaOverlay` and deletes into :class:`Tombstones`, serves
queries over the union through pinned :class:`EpochView` epochs, and
folds the overlay into fresh frozen generations via
:meth:`LiveIndex.freeze_step` or the background freezer.
:class:`LiveScatterGather` fronts the sharded searcher with the same
lifecycle.
"""

from .live import (
    DEFAULT_FREEZE_THRESHOLD,
    FREEZE_BUCKETS,
    LIVE_UPDATES_ENV_VAR,
    OVERLAY_REF_BASE,
    DeltaOverlay,
    EpochView,
    LiveIndex,
    Tombstones,
    adjust_entry,
    default_live_updates,
    frozen_path,
    maybe_wrap_live,
)
from .scatter import LiveScatterGather

__all__ = [
    "DEFAULT_FREEZE_THRESHOLD",
    "FREEZE_BUCKETS",
    "LIVE_UPDATES_ENV_VAR",
    "OVERLAY_REF_BASE",
    "DeltaOverlay",
    "EpochView",
    "LiveIndex",
    "LiveScatterGather",
    "Tombstones",
    "adjust_entry",
    "default_live_updates",
    "frozen_path",
    "maybe_wrap_live",
]
