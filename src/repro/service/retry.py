"""Retry policy: exponential backoff with deterministic jitter.

Transient failures — a crashed pool worker, an injected fault — are
retried under a :class:`RetryPolicy`.  Delays grow exponentially and
are de-synchronized with *deterministic* jitter: instead of
``random.random()`` (process-global state, unseeded in workers) the
jitter fraction comes from a tiny integer hash of ``(attempt, salt)``,
so a retry schedule is reproducible run-to-run — which is what lets
the fault-injection tests assert byte-identical batch results after a
worker crash — while distinct salts (e.g. distinct failed slices)
still spread out their wake-ups.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Knuth's multiplicative-hash constant; any odd 32-bit multiplier
#: works, this one mixes small consecutive integers well.
_MIX = 2654435761


def _jitter_fraction(attempt: int, salt: int) -> float:
    """Deterministic pseudo-random fraction in ``[0, 1)``."""
    mixed = (attempt * _MIX + salt * 40503) & 0xFFFFFFFF
    mixed = (mixed ^ (mixed >> 16)) * _MIX & 0xFFFFFFFF
    return (mixed % 10000) / 10000.0


@dataclass(frozen=True)
class RetryPolicy:
    """How transient failures are retried.

    Attributes:
        max_attempts: Total tries including the first (``1`` disables
            retries entirely).
        base_delay: Backoff before the first retry, in seconds.
        multiplier: Exponential growth factor between retries.
        max_delay: Cap on any single backoff, in seconds.
        jitter: Fraction of the delay randomized away (``0.1`` means the
            actual sleep lands in ``[0.9 * d, d]``).  Deterministic per
            ``(attempt, salt)`` — see module docstring.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0.0:
            raise ConfigError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise ConfigError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay < self.base_delay:
            raise ConfigError(
                f"max_delay {self.max_delay} < base_delay {self.base_delay}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, salt: int = 0) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``salt`` de-synchronizes independent retry streams (e.g. one per
        failed batch slice) without sacrificing determinism.
        """
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        base = self.base_delay * self.multiplier ** (attempt - 1)
        if base > self.max_delay:
            base = self.max_delay
        return base * (1.0 - self.jitter * _jitter_fraction(attempt, salt))

    def with_no_delay(self) -> "RetryPolicy":
        """Copy with zero backoff (tests retry instantly)."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=0.0,
            multiplier=1.0,
            max_delay=0.0,
            jitter=0.0,
        )


#: Library default: three attempts, 50ms -> 100ms backoff, 10% jitter.
DEFAULT_RETRY_POLICY = RetryPolicy()
