"""The fault-tolerant query service facade (:class:`QueryService`).

:class:`QueryService` fronts the three engines with the reliability
behaviours a long-running index server needs:

* **Per-query deadlines.**  ``serve(..., deadline_seconds=...)`` builds
  a :class:`~repro.service.deadline.Deadline` and threads it through
  whichever engine runs; expiry surfaces as
  :class:`~repro.errors.DeadlineExceeded` within one node expansion,
  carrying the partial stats.
* **Graceful degradation.**  Each query walks
  :data:`DEGRADATION_CHAIN` — ``fused -> snapshot -> seed`` — falling
  back when an engine fails transiently (snapshot freeze failure,
  numpy kernel trouble, injected faults).  The three engines return
  identical ids by construction, so a degraded answer is *correct*,
  just slower; the hops taken are recorded in
  :attr:`ServiceResult.degraded_path`.  Deadlines and invalid-query
  errors are never degraded away: a ``DeadlineExceeded`` or
  ``QueryError`` re-raises immediately.
* **Bounded admission.**  ``submit``/``drain`` route requests through an
  :class:`~repro.service.queue.AdmissionQueue`; beyond ``max_pending``
  the service sheds with :class:`~repro.errors.QueueFull` instead of
  queueing toward certain deadline expiry.

Every outcome is observable through :mod:`repro.obs`:
``service.served``, ``service.degraded``, ``service.deadline_exceeded``,
``service.failed``, ``service.shed`` counters, the
``service.queue_depth`` gauge, and the ``service.latency_seconds``
end-to-end histogram (engine-level ``search.*`` metrics keep flowing
underneath).  Deterministic failures for exercising all of this come
from :mod:`repro.service.faults` (``REPRO_FAULTS``).

Layering note: this module imports the engines; the engines never
import it.  Queries with deadlines run the fused engine as singleton
groups, so one query's deadline can never cancel another's work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.rstknn import RSTkNNSearcher, SearchResult
from ..errors import ConfigError, DeadlineExceeded, QueryError, ServiceError
from ..model.objects import STObject
from ..obs import MetricsRegistry, registry_or_null
from .deadline import CancelToken, token_for
from .faults import FaultPlan, check_freeze, current_plan, wrap_token
from .queue import AdmissionQueue

#: Engine fallback order: fastest first, most robust last.  The seed
#: walk needs neither a snapshot freeze nor numpy, so it terminates the
#: chain as the always-available engine of last resort.
DEGRADATION_CHAIN: Tuple[str, ...] = ("fused", "snapshot", "seed")

#: Every engine a custom ``chain=`` may name.  ``approx`` is opt-in
#: (never in the default chain): with ``approx_verify=True`` it returns
#: exact ids like the others; with ``approx_verify=False`` it serves
#: the raw conservative candidate set, which is a *superset* of the
#: exact answer — only build such a chain when callers tolerate that.
CHAIN_ENGINE_CHOICES: Tuple[str, ...] = ("approx",) + DEGRADATION_CHAIN

#: Metric names this module emits (see ``docs/OBSERVABILITY.md``).
SERVED_COUNTER = "service.served"
DEGRADED_COUNTER = "service.degraded"
DEADLINE_COUNTER = "service.deadline_exceeded"
FAILED_COUNTER = "service.failed"
LATENCY_HISTOGRAM = "service.latency_seconds"


@dataclass(frozen=True)
class ServiceResult:
    """One served query: the engine answer plus its reliability story.

    Attributes:
        result: The engine's :class:`~repro.core.rstknn.SearchResult`
            (identical ids whichever engine produced it).
        engine: Name of the engine that answered.
        degraded_path: Engines that failed before ``engine`` answered,
            in attempt order — empty on the happy path, ``("fused",)``
            after one hop, ``("fused", "snapshot")`` when the seed walk
            had to answer.
        failures: ``(engine, reason)`` per failed hop, for diagnostics.
        elapsed_seconds: End-to-end service latency, including failed
            hops (the engine's own ``stats.elapsed_seconds`` covers only
            the winning walk).
    """

    result: SearchResult
    engine: str
    degraded_path: Tuple[str, ...] = ()
    failures: Tuple[Tuple[str, str], ...] = ()
    elapsed_seconds: float = 0.0

    @property
    def ids(self) -> List[int]:
        """The reverse k-NN object ids (delegates to ``result``)."""
        return self.result.ids

    @property
    def degraded(self) -> bool:
        """Whether any fallback hop was taken."""
        return bool(self.degraded_path)


@dataclass(frozen=True)
class ServiceBatchResult:
    """Results of draining the admission queue (input order)."""

    results: Tuple[ServiceResult, ...] = ()

    @property
    def id_lists(self) -> List[List[int]]:
        """Per-query result ids, aligned with the drained order."""
        return [r.ids for r in self.results]

    @property
    def degraded_count(self) -> int:
        """How many of the served queries took at least one fallback."""
        return sum(1 for r in self.results if r.degraded)

    @property
    def latency_percentiles(self) -> Dict[str, float]:
        """Service-level latency percentiles in seconds (``p50``/``p95``/
        ``p99``, nearest-rank over each query's ``elapsed_seconds``,
        failed hops included) — empty on an empty drain."""
        from ..obs.metrics import latency_percentiles  # noqa: PLC0415

        return latency_percentiles([r.elapsed_seconds for r in self.results])


class QueryService:
    """Deadline-aware, degrading, load-shedding front end to the engines.

    Args:
        tree: The (C)IUR-tree to serve.
        config: Similarity configuration (defaults to the dataset's).
        te_weight: Entropy-priority weight (as in
            :class:`~repro.core.rstknn.RSTkNNSearcher`).
        chain: Engine fallback order; a subset/reordering of
            :data:`DEGRADATION_CHAIN` (must be non-empty, names from
            that chain).
        deadline_seconds: Default per-query deadline (``None`` = no
            deadline unless ``serve`` passes one).
        max_pending: Admission-queue capacity for ``submit``.
        metrics: Shared :class:`repro.obs.MetricsRegistry` (``None`` =
            no-op instruments).
        clock: Monotonic time source for deadlines — injectable for
            deterministic tests.
        warm_floors: Arm the frozen kNNL floor sketch
            (:mod:`repro.approx`) on the exact snapshot/fused hops —
            ids stay bit-identical, pruning happens earlier.
        approx_verify: Applies to an ``approx`` hop in a custom chain:
            ``True`` verifies candidates exactly (ids identical to the
            other engines), ``False`` serves the raw conservative
            candidate superset.
    """

    def __init__(
        self,
        tree,
        config=None,
        te_weight: float = 0.05,
        *,
        chain: Sequence[str] = DEGRADATION_CHAIN,
        deadline_seconds: Optional[float] = None,
        max_pending: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        warm_floors: bool = False,
        approx_verify: bool = True,
    ) -> None:
        chain = tuple(chain)
        if not chain:
            raise ConfigError("degradation chain must name at least one engine")
        for name in chain:
            if name not in CHAIN_ENGINE_CHOICES:
                raise ConfigError(
                    f"unknown engine {name!r} in chain; expected names "
                    f"from {CHAIN_ENGINE_CHOICES}"
                )
        if deadline_seconds is not None and not deadline_seconds > 0.0:
            raise ConfigError(
                f"deadline_seconds must be > 0, got {deadline_seconds}"
            )
        self.tree = tree
        self.chain = chain
        self.deadline_seconds = deadline_seconds
        self.warm_floors = bool(warm_floors)
        self.approx_verify = bool(approx_verify)
        self.metrics = registry_or_null(metrics)
        self._clock = clock
        # The seed searcher doubles as the resolved similarity setting
        # (measure/alpha/te_weight) shared by every hop of the chain.
        self._seed = RSTkNNSearcher(
            tree, config, te_weight, engine="seed", metrics=metrics
        )
        self.queue = AdmissionQueue(max_pending, metrics=self.metrics)
        self._served = self.metrics.counter(SERVED_COUNTER)
        self._degraded = self.metrics.counter(DEGRADED_COUNTER)
        self._deadline_hit = self.metrics.counter(DEADLINE_COUNTER)
        self._failed = self.metrics.counter(FAILED_COUNTER)
        self._latency = self.metrics.histogram(LATENCY_HISTOGRAM)

    @classmethod
    def from_perf_config(
        cls,
        tree,
        perf,
        config=None,
        te_weight: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "QueryService":
        """Build a service from a :class:`repro.config.PerfConfig`.

        Honors ``perf.service_max_pending``,
        ``perf.service_deadline_seconds``, ``perf.warm_floors``, and
        ``perf.approx_verify``.  When ``perf.live_updates`` is true (or
        ``REPRO_LIVE_UPDATES`` arms it), the tree is wrapped in a
        :class:`repro.lsm.LiveIndex` first: while its overlay is dirty,
        the fused/snapshot hops raise
        :class:`~repro.errors.OverlayPendingError` and the chain
        degrades to the merged seed walk — honest
        ``service.degraded.*`` counters included — until the next fold.
        """
        from ..lsm import maybe_wrap_live  # noqa: PLC0415 — avoid cycle

        tree = maybe_wrap_live(tree, perf, metrics=metrics)
        return cls(
            tree,
            config,
            te_weight,
            deadline_seconds=perf.service_deadline_seconds,
            max_pending=perf.service_max_pending,
            metrics=metrics,
            warm_floors=perf.warm_floors,
            approx_verify=perf.approx_verify,
        )

    # ------------------------------------------------------------------
    # Engine hops
    # ------------------------------------------------------------------

    def _attempt(
        self,
        engine: str,
        query: STObject,
        k: int,
        token: Optional[CancelToken],
        plan: Optional[FaultPlan],
    ) -> SearchResult:
        """Run one engine of the chain (fault hooks live here, not in
        the engines: freezes are the service's to request and fail)."""
        seed = self._seed
        if engine == "seed":
            return seed.search(query, k, cancel=token)
        check_freeze(plan)
        snap = self.tree.snapshot()
        if engine == "fused":
            if self.warm_floors:
                runner = snap.warm_fused_engine_for(
                    self.tree, seed.measure, seed.alpha, seed.te_weight
                )
            else:
                runner = snap.fused_engine_for(
                    self.tree, seed.measure, seed.alpha, seed.te_weight
                )
            # Singleton group: per-query deadlines stay per-query.
            return runner.run_group([query], k, cancel=token)[0]
        if engine == "approx":
            runner = snap.approx_engine_for(
                self.tree,
                seed.measure,
                seed.alpha,
                seed.te_weight,
                verify=self.approx_verify,
            )
            return runner.search(query, k, cancel=token)
        if self.warm_floors:
            runner = snap.warm_engine_for(
                self.tree, seed.measure, seed.alpha, seed.te_weight
            )
        else:
            runner = snap.engine_for(
                self.tree, seed.measure, seed.alpha, seed.te_weight
            )
        return runner.search(query, k, cancel=token)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def serve(
        self,
        query: STObject,
        k: int,
        *,
        deadline_seconds: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
    ) -> ServiceResult:
        """Serve one query through the degradation chain.

        ``deadline_seconds`` overrides the service default for this
        query; ``cancel`` attaches a caller-held token instead.  The
        deadline spans the *whole* chain — fallback hops spend the same
        budget, so a degraded query is likelier to hit its deadline,
        which is the honest accounting.

        Raises:
            DeadlineExceeded: the deadline expired (never degraded away;
                carries partial stats from the interrupted walk).
            QueryError: invalid ``k`` (never degraded away).
            QueueFull: not from here — only ``submit`` sheds.
            ServiceError: every engine in the chain failed; the last
                failure is chained as ``__cause__``.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        started = time.perf_counter()
        plan = current_plan()
        if deadline_seconds is None:
            deadline_seconds = self.deadline_seconds
        token = wrap_token(plan, token_for(deadline_seconds, cancel, self._clock))

        attempted: List[str] = []
        failures: List[Tuple[str, str]] = []
        last_exc: Optional[Exception] = None
        for engine in self.chain:
            try:
                result = self._attempt(engine, query, k, token, plan)
            except DeadlineExceeded:
                self._deadline_hit.inc()
                self._latency.observe(time.perf_counter() - started)
                raise
            except (QueryError, ConfigError):
                raise
            except Exception as exc:  # transient: degrade to the next hop
                attempted.append(engine)
                failures.append((engine, f"{type(exc).__name__}: {exc}"))
                self._degraded.inc()
                self.metrics.counter(f"service.degraded.{engine}").inc()
                last_exc = exc
                continue
            elapsed = time.perf_counter() - started
            self._served.inc()
            self._latency.observe(elapsed)
            return ServiceResult(
                result=result,
                engine=engine,
                degraded_path=tuple(attempted),
                failures=tuple(failures),
                elapsed_seconds=elapsed,
            )
        self._failed.inc()
        self._latency.observe(time.perf_counter() - started)
        raise ServiceError(
            f"every engine failed for this query (chain={self.chain}): "
            + "; ".join(f"{e}: {r}" for e, r in failures)
        ) from last_exc

    # ------------------------------------------------------------------
    # Admission queue
    # ------------------------------------------------------------------

    def submit(
        self,
        query: STObject,
        k: int,
        *,
        deadline_seconds: Optional[float] = None,
    ) -> int:
        """Admit a query for the next :meth:`drain`.

        Returns the queue depth after admission; raises
        :class:`~repro.errors.QueueFull` (and bumps ``service.shed``)
        when ``max_pending`` requests are already waiting.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        return self.queue.offer((query, k, deadline_seconds))

    def drain(self) -> ServiceBatchResult:
        """Serve every pending request in admission order.

        Per-request failures are *not* raised — a drained batch must not
        lose later requests to an earlier one's deadline.  Failed
        requests are omitted from ``results`` and show up in the
        ``service.failed`` / ``service.deadline_exceeded`` counters;
        callers needing per-request errors should ``serve`` directly.
        """
        results: List[ServiceResult] = []
        for query, k, deadline_seconds in self.queue.drain():
            try:
                results.append(
                    self.serve(query, k, deadline_seconds=deadline_seconds)
                )
            except (DeadlineExceeded, ServiceError):
                continue
        return ServiceBatchResult(tuple(results))

    def serve_batch(
        self, queries: Sequence[STObject], k: int
    ) -> ServiceBatchResult:
        """Submit then drain a whole batch (sheds with ``QueueFull``)."""
        for query in queries:
            self.submit(query, k)
        return self.drain()
