"""Per-query deadlines and cooperative cancellation tokens.

A :class:`CancelToken` is the cooperative-cancellation handle every
engine understands: :meth:`RSTkNNSearcher.search
<repro.core.rstknn.RSTkNNSearcher.search>`,
:meth:`SnapshotEngine.search <repro.core.traversal.SnapshotEngine.search>`
and :meth:`FusedBatchEngine.run_group
<repro.core.fused.FusedBatchEngine.run_group>` all accept one as
``cancel`` and poll :meth:`CancelToken.expired` once per **node
expansion** — the unit of work that dominates query cost — so an
expired token stops the walk within one expansion, raising
:class:`repro.errors.DeadlineExceeded` with the partial
:class:`~repro.core.rstknn.SearchStats` accumulated so far.

:class:`Deadline` is the wall-clock specialization.  Its clock is
injectable, which is what makes the "within one node-expansion of the
limit" guarantee *testable*: a fake clock that advances one tick per
poll turns the deadline into an exact expansion budget
(``tests/test_service.py`` pins this).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import ConfigError


class CancelToken:
    """Manually triggered cooperative cancellation.

    Engines never act on a token other than polling :meth:`expired`;
    cancelling a token therefore stops an in-flight search at its next
    node expansion, not instantly.  Tokens are single-use: once
    cancelled they stay cancelled.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def expired(self) -> bool:
        """Polled by engines once per node expansion."""
        return self._cancelled

    def describe(self) -> str:
        """Human-readable reason used in ``DeadlineExceeded`` messages."""
        return "query cancelled"


class Deadline(CancelToken):
    """A cancellation token that also expires after a wall-clock budget.

    Args:
        seconds: Time budget from construction; must be positive.
        clock: Monotonic time source (seconds).  Injectable so tests can
            drive expiry deterministically; defaults to
            :func:`time.monotonic`.
    """

    __slots__ = ("_clock", "_seconds", "_at")

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not seconds > 0.0:
            raise ConfigError(f"deadline seconds must be > 0, got {seconds}")
        super().__init__()
        self._clock = clock
        self._seconds = float(seconds)
        self._at = clock() + float(seconds)

    @property
    def seconds(self) -> float:
        """The time budget the deadline was created with."""
        return self._seconds

    def remaining(self) -> float:
        """Seconds left before expiry (negative once past it)."""
        return self._at - self._clock()

    def expired(self) -> bool:
        """True once cancelled or past the wall-clock budget."""
        return self._cancelled or self._clock() >= self._at

    def describe(self) -> str:
        """Reason string: distinguishes cancellation from expiry."""
        if self._cancelled:
            return "query cancelled"
        return f"deadline of {self._seconds:g}s exceeded"


def token_for(
    deadline_seconds: Optional[float],
    cancel: Optional[CancelToken] = None,
    clock: Callable[[], float] = time.monotonic,
) -> Optional[CancelToken]:
    """Normalize (deadline, token) service arguments into one token.

    ``deadline_seconds`` wins when both are given (the explicit token is
    then unused — the service API treats them as alternatives); ``None``
    for both means no cancellation is threaded through the engines at
    all, keeping the hot path free of polls.
    """
    if deadline_seconds is not None:
        return Deadline(deadline_seconds, clock=clock)
    return cancel
