"""Bounded admission queue with load shedding.

An overloaded service that accepts every request fails all of them
slowly; one that sheds early fails a few of them fast.
:class:`AdmissionQueue` is the front door of
:class:`~repro.service.service.QueryService`: requests are admitted up
to ``max_pending`` and refused beyond it with
:class:`repro.errors.QueueFull` — the caller sees the rejection
immediately instead of a deadline expiry later.

Shedding and occupancy are observable through :mod:`repro.obs`: every
refusal bumps the ``service.shed`` counter and every admit/take updates
the ``service.queue_depth`` gauge, so a dashboard shows saturation as
a flat-topped depth curve plus a rising shed count.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Optional

from ..errors import ConfigError, QueueFull
from ..obs import MetricsRegistry, registry_or_null

#: Metric names this module emits.
SHED_COUNTER = "service.shed"
DEPTH_GAUGE = "service.queue_depth"


class AdmissionQueue:
    """A thread-safe FIFO that refuses work beyond ``max_pending``.

    Args:
        max_pending: Capacity; ``offer`` raises
            :class:`~repro.errors.QueueFull` once this many items are
            pending.  Must be positive.
        metrics: Registry for the shed counter and depth gauge
            (``None`` -> no-op instruments).
    """

    def __init__(
        self,
        max_pending: int,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = int(max_pending)
        self.metrics = registry_or_null(metrics)
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._shed = self.metrics.counter(SHED_COUNTER)
        self._depth = self.metrics.gauge(DEPTH_GAUGE)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Number of pending items."""
        return len(self._items)

    def offer(self, item: Any) -> int:
        """Admit ``item``, or shed it with :class:`QueueFull` when at capacity.

        Returns the queue depth after admission.
        """
        with self._lock:
            if len(self._items) >= self.max_pending:
                self._shed.inc()
                raise QueueFull(
                    f"admission queue full ({self.max_pending} pending); "
                    "request shed"
                )
            self._items.append(item)
            depth = len(self._items)
            self._depth.set(depth)
        return depth

    def take(self) -> Any:
        """Pop the oldest pending item (raises ``LookupError`` if empty)."""
        with self._lock:
            if not self._items:
                raise LookupError("admission queue is empty")
            item = self._items.popleft()
            self._depth.set(len(self._items))
        return item

    def drain(self) -> list:
        """Pop every pending item at once (FIFO order)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._depth.set(0)
        return items
