"""Fault-tolerant query serving in front of the three RSTkNN engines.

The engines of :mod:`repro.core` answer queries fast but assume a
perfect world: no slow nodes, no crashed workers, no snapshot-freeze
failures, no overload.  This package adds the reliability layer a
production index service needs, without touching the engines' parity
contracts:

* :mod:`repro.service.deadline` — per-query **deadlines** and
  cooperative :class:`CancelToken`\\ s, checked by every engine at
  node-expansion granularity (an expired deadline raises
  :class:`repro.errors.DeadlineExceeded` carrying partial stats).
* :mod:`repro.service.retry` — **exponential backoff with
  deterministic jitter** (:class:`RetryPolicy`), used by
  :class:`repro.perf.BatchSearcher` to re-enqueue only the query
  slices a crashed pool worker lost.
* :mod:`repro.service.service` — the :class:`QueryService` facade with
  its **graceful-degradation chain** ``fused -> snapshot -> seed``
  (recorded per query in :attr:`ServiceResult.degraded_path`) and the
  bounded **admission queue** (:class:`repro.service.queue.AdmissionQueue`,
  shedding with :class:`repro.errors.QueueFull`).
* :mod:`repro.service.faults` — a deterministic **fault-injection
  harness** (environment variable ``REPRO_FAULTS``) so every retry and
  degradation path is testable on demand.

Everything emits through :mod:`repro.obs` (``service.*`` counters,
queue-depth gauge, end-to-end latency histogram); see
``docs/RELIABILITY.md`` for the semantics and knobs.
"""

from __future__ import annotations

from ..errors import DeadlineExceeded, FaultInjected, QueueFull, ServiceError
from .deadline import CancelToken, Deadline
from .faults import FaultPlan, current_plan, set_plan
from .queue import AdmissionQueue
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .service import (
    CHAIN_ENGINE_CHOICES,
    DEGRADATION_CHAIN,
    QueryService,
    ServiceBatchResult,
    ServiceResult,
)

__all__ = [
    "AdmissionQueue",
    "CancelToken",
    "Deadline",
    "DeadlineExceeded",
    "CHAIN_ENGINE_CHOICES",
    "DEFAULT_RETRY_POLICY",
    "DEGRADATION_CHAIN",
    "FaultInjected",
    "FaultPlan",
    "QueryService",
    "QueueFull",
    "RetryPolicy",
    "ServiceBatchResult",
    "ServiceError",
    "ServiceResult",
    "current_plan",
    "set_plan",
]
