"""Deterministic fault injection for the query service (``REPRO_FAULTS``).

Reliability code that only runs when something breaks is untested code.
This module arms *deterministic* failures so the retry, degradation,
and deadline paths of :mod:`repro.service` and
:class:`repro.perf.BatchSearcher` are exercised on demand:

``REPRO_FAULTS`` is a comma-separated list of ``fault=value`` terms:

=========================  =================================================
``worker_crash=I[+J...]``  Pool workers hard-exit (``os._exit``) while
                           running batch task index ``I`` (and ``J``...) on
                           the **first** attempt — the retried slice runs
                           clean, so results must match the fault-free run.
``worker_error=I[+J...]``  Same indices, but the worker raises
                           :class:`repro.errors.FaultInjected` instead of
                           dying (the soft-failure retry path; the pool
                           survives).
``freeze_fail=N``          The next ``N`` snapshot freezes requested by the
                           service raise, forcing the degradation chain
                           ``fused -> snapshot -> seed`` (``N=1`` degrades
                           one hop, ``N=2`` lands on the seed walk).
``slow_node=SECONDS``      Every cancellation poll — one per node expansion
                           — sleeps ``SECONDS`` first, simulating slow node
                           reads for wall-clock deadline tests.
=========================  =================================================

Example: ``REPRO_FAULTS="worker_crash=2,freeze_fail=2,slow_node=0.002"``.

Faults only exist where the serving layer consults this module (batch
workers, the service's freeze step, tokens built by the service); the
engines themselves stay fault-free, so parity tests and benchmarks are
unaffected even with the variable set.  Parsing is memoized against the
raw environment string and can be overridden in-process with
:func:`set_plan` (tests) — both the parent process and forked pool
workers resolve the same plan.
"""

from __future__ import annotations

import os
import time
from typing import FrozenSet, Optional, Tuple

from ..errors import ConfigError, FaultInjected
from .deadline import CancelToken

#: Environment variable holding the fault specification.
FAULTS_ENV_VAR = "REPRO_FAULTS"

_KNOWN_FAULTS = ("worker_crash", "worker_error", "freeze_fail", "slow_node")

#: Exit status of hard-crashed workers (recognizable in pool tracebacks).
WORKER_CRASH_EXIT_CODE = 23


class FaultPlan:
    """One parsed ``REPRO_FAULTS`` specification.

    The plan is immutable except for the freeze-failure budget, which
    counts down as :meth:`take_freeze_failure` consumes injections —
    that is what makes ``freeze_fail=N`` mean "the next N freezes",
    giving tests exact control over how far the degradation chain runs.
    """

    __slots__ = ("worker_crash", "worker_error", "slow_node", "_freeze_left")

    def __init__(
        self,
        worker_crash: FrozenSet[int] = frozenset(),
        worker_error: FrozenSet[int] = frozenset(),
        freeze_fail: int = 0,
        slow_node: float = 0.0,
    ) -> None:
        self.worker_crash = frozenset(worker_crash)
        self.worker_error = frozenset(worker_error)
        self.slow_node = float(slow_node)
        self._freeze_left = int(freeze_fail)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` string (raises ``ConfigError``)."""
        worker_crash: set = set()
        worker_error: set = set()
        freeze_fail = 0
        slow_node = 0.0
        for term in spec.split(","):
            term = term.strip()
            if not term:
                continue
            name, sep, value = term.partition("=")
            name = name.strip()
            if not sep or name not in _KNOWN_FAULTS:
                raise ConfigError(
                    f"bad {FAULTS_ENV_VAR} term {term!r}; expected "
                    f"name=value with name in {_KNOWN_FAULTS}"
                )
            try:
                if name == "worker_crash":
                    worker_crash.update(int(i) for i in value.split("+"))
                elif name == "worker_error":
                    worker_error.update(int(i) for i in value.split("+"))
                elif name == "freeze_fail":
                    freeze_fail = int(value)
                else:
                    slow_node = float(value)
            except ValueError as exc:
                raise ConfigError(
                    f"bad {FAULTS_ENV_VAR} value in {term!r}: {exc}"
                ) from exc
        if freeze_fail < 0:
            raise ConfigError(f"freeze_fail must be >= 0, got {freeze_fail}")
        if slow_node < 0.0:
            raise ConfigError(f"slow_node must be >= 0, got {slow_node}")
        return cls(
            frozenset(worker_crash),
            frozenset(worker_error),
            freeze_fail,
            slow_node,
        )

    @property
    def freeze_failures_left(self) -> int:
        """Remaining snapshot-freeze injections."""
        return self._freeze_left

    def take_freeze_failure(self) -> bool:
        """Consume one freeze-failure injection if any remain."""
        if self._freeze_left > 0:
            self._freeze_left -= 1
            return True
        return False

    def describe(self) -> dict:
        """Flat dict of the armed faults (logging / CLI output)."""
        return {
            "worker_crash": sorted(self.worker_crash),
            "worker_error": sorted(self.worker_error),
            "freeze_fail": self._freeze_left,
            "slow_node": self.slow_node,
        }


#: Memoized (raw env string, parsed plan); ``set_plan`` overrides it.
_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)
_override: Optional[FaultPlan] = None
_override_set = False


def current_plan() -> Optional[FaultPlan]:
    """The active fault plan, or ``None`` when no faults are armed.

    Resolution order: an explicit :func:`set_plan` override, then the
    ``REPRO_FAULTS`` environment variable (re-parsed only when the raw
    string changes, so polling this per search is cheap).
    """
    global _cache
    if _override_set:
        return _override
    spec = os.environ.get(FAULTS_ENV_VAR)
    if spec is None or not spec.strip():
        return None
    cached_spec, cached_plan = _cache
    if spec == cached_spec:
        return cached_plan
    plan = FaultPlan.parse(spec)
    _cache = (spec, plan)
    return plan


def set_plan(plan: Optional[FaultPlan], *, clear: bool = False) -> None:
    """Override (or with ``clear=True`` un-override) the active plan.

    Tests use this to arm faults without touching the environment;
    ``set_plan(None)`` forces "no faults" even when ``REPRO_FAULTS`` is
    set, while ``set_plan(None, clear=True)`` restores env resolution.
    """
    global _override, _override_set, _cache
    if clear:
        _override, _override_set = None, False
        _cache = (None, None)
    else:
        _override, _override_set = plan, True


def maybe_fail_worker(index: int, attempt: int) -> None:
    """Batch-worker fault point, called per task ``(index, attempt)``.

    First-attempt tasks whose index is armed either hard-exit the
    worker process (``worker_crash`` — the pool breaks and the parent
    retries the slice) or raise :class:`FaultInjected`
    (``worker_error`` — the pool survives, the slice is retried).
    Retried tasks (``attempt > 0``) always run clean, which is what
    makes the injected outcome deterministic.
    """
    if attempt > 0:
        return
    plan = current_plan()
    if plan is None:
        return
    if index in plan.worker_crash:
        os._exit(WORKER_CRASH_EXIT_CODE)
    if index in plan.worker_error:
        raise FaultInjected(
            f"injected worker error for batch task {index} (attempt 0)"
        )


def check_freeze(plan: Optional[FaultPlan]) -> None:
    """Service-side freeze fault point: raise if an injection is armed."""
    if plan is not None and plan.take_freeze_failure():
        raise FaultInjected("injected snapshot-freeze failure")


class SlowToken(CancelToken):
    """Wraps a cancellation token, sleeping on every poll.

    Engines poll ``cancel.expired()`` once per node expansion, so a
    ``slow_node=SECONDS`` fault materializes as exactly one sleep per
    expansion — a faithful stand-in for slow node reads that lets
    wall-clock deadline behaviour be tested with real time.
    """

    __slots__ = ("seconds", "inner", "polls")

    def __init__(self, seconds: float, inner: Optional[CancelToken] = None) -> None:
        super().__init__()
        self.seconds = float(seconds)
        self.inner = inner
        self.polls = 0

    def cancel(self) -> None:
        """Cancel the wrapped token (or this one when standalone)."""
        if self.inner is not None:
            self.inner.cancel()
        super().cancel()

    def expired(self) -> bool:
        """Sleep the injected latency, then delegate."""
        self.polls += 1
        if self.seconds > 0.0:
            time.sleep(self.seconds)
        if self.inner is not None:
            return self.inner.expired()
        return self._cancelled

    def describe(self) -> str:
        """Delegates to the wrapped token's reason."""
        if self.inner is not None:
            return self.inner.describe()
        return super().describe()


def wrap_token(
    plan: Optional[FaultPlan], token: Optional[CancelToken]
) -> Optional[CancelToken]:
    """Apply a ``slow_node`` fault to a service token (no-op otherwise)."""
    if plan is not None and plan.slow_node > 0.0:
        return SlowToken(plan.slow_node, token)
    return token
