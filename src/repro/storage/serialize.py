"""Binary (de)serialization of tree nodes.

The codec is layering-neutral: it encodes a :class:`SerializedNode` made of
plain tuples/dicts, and the index layer converts its in-memory node
structures to and from this form.  Serialization exists for two reasons:

* it makes the *page-size model honest* — a node's simulated footprint is
  the byte length of exactly what an on-disk system would store (MBRs,
  child refs, per-cluster posting entries with min/max weights); and
* round-trip tests pin the format, so index size numbers are reproducible.

Format (little-endian)::

    node    := u8 is_leaf | u16 n_entries | entry*
    entry   := i64 ref | 4×f64 mbr | u32 doc_count | u16 n_clusters | cluster*
    cluster := u16 cluster_id | u32 count | vec intersection | vec union
    vec     := u32 n | (u32 term_id, f32 weight)*

Weights are stored as f32 like a production inverted file would; the codec
therefore quantizes, and the index keeps its authoritative float64 vectors
in memory while using the codec only for page accounting and persistence
tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import PageFormatError

_HEADER = struct.Struct("<BH")
_ENTRY_FIXED = struct.Struct("<q4dIH")
_CLUSTER_FIXED = struct.Struct("<HI")
_VEC_LEN = struct.Struct("<I")
_VEC_ITEM = struct.Struct("<If")


@dataclass
class SerializedCluster:
    """Per-cluster textual summary of one entry."""

    cluster_id: int
    count: int
    intersection: Dict[int, float]
    union: Dict[int, float]


@dataclass
class SerializedEntry:
    """One directory or leaf entry in neutral form.

    ``ref`` is a child record id for directory entries and an object id
    for leaf entries; the ``is_leaf`` flag of the node disambiguates.
    """

    ref: int
    mbr: Tuple[float, float, float, float]
    doc_count: int
    clusters: List[SerializedCluster] = field(default_factory=list)


@dataclass
class SerializedNode:
    is_leaf: bool
    entries: List[SerializedEntry] = field(default_factory=list)


class NodeCodec:
    """Encoder/decoder for :class:`SerializedNode`."""

    @staticmethod
    def encode(node: SerializedNode) -> bytes:
        """Serialize a node to its binary record form."""
        parts = [_HEADER.pack(1 if node.is_leaf else 0, len(node.entries))]
        for entry in node.entries:
            parts.append(
                _ENTRY_FIXED.pack(
                    entry.ref, *entry.mbr, entry.doc_count, len(entry.clusters)
                )
            )
            for cluster in entry.clusters:
                parts.append(_CLUSTER_FIXED.pack(cluster.cluster_id, cluster.count))
                parts.append(NodeCodec._encode_vec(cluster.intersection))
                parts.append(NodeCodec._encode_vec(cluster.union))
        return b"".join(parts)

    @staticmethod
    def decode(data: bytes) -> SerializedNode:
        """Parse a binary record back into a SerializedNode."""
        try:
            return NodeCodec._decode(data)
        except struct.error as exc:
            raise PageFormatError(f"truncated node record: {exc}") from exc

    @staticmethod
    def _decode(data: bytes) -> SerializedNode:
        offset = 0
        is_leaf, n_entries = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        entries: List[SerializedEntry] = []
        for _ in range(n_entries):
            ref, xlo, ylo, xhi, yhi, doc_count, n_clusters = _ENTRY_FIXED.unpack_from(
                data, offset
            )
            offset += _ENTRY_FIXED.size
            clusters: List[SerializedCluster] = []
            for _ in range(n_clusters):
                cid, count = _CLUSTER_FIXED.unpack_from(data, offset)
                offset += _CLUSTER_FIXED.size
                inter, offset = NodeCodec._decode_vec(data, offset)
                union, offset = NodeCodec._decode_vec(data, offset)
                clusters.append(SerializedCluster(cid, count, inter, union))
            entries.append(
                SerializedEntry(ref, (xlo, ylo, xhi, yhi), doc_count, clusters)
            )
        if offset != len(data):
            raise PageFormatError(
                f"trailing bytes in node record: {len(data) - offset}"
            )
        return SerializedNode(bool(is_leaf), entries)

    # ------------------------------------------------------------------
    # Vectors
    # ------------------------------------------------------------------

    @staticmethod
    def _encode_vec(weights: Dict[int, float]) -> bytes:
        parts = [_VEC_LEN.pack(len(weights))]
        for tid in sorted(weights):
            parts.append(_VEC_ITEM.pack(tid, weights[tid]))
        return b"".join(parts)

    @staticmethod
    def _decode_vec(data: bytes, offset: int) -> Tuple[Dict[int, float], int]:
        (n,) = _VEC_LEN.unpack_from(data, offset)
        offset += _VEC_LEN.size
        out: Dict[int, float] = {}
        for _ in range(n):
            tid, w = _VEC_ITEM.unpack_from(data, offset)
            offset += _VEC_ITEM.size
            out[tid] = w
        return out, offset
