"""The page: fixed-capacity byte container addressed by page id."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import StorageError

#: Default simulated page size, matching the 4 kB pages of the evaluation.
DEFAULT_PAGE_SIZE = 4096


@dataclass
class Page:
    """A single fixed-size page.

    The payload may be shorter than ``capacity`` (slack is implicit); it
    may never be longer — multi-page records are handled above this layer
    by the disk manager's record abstraction.
    """

    page_id: int
    capacity: int = DEFAULT_PAGE_SIZE
    data: bytes = b""
    dirty: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.page_id < 0:
            raise StorageError(f"page_id must be >= 0, got {self.page_id}")
        if self.capacity < 1:
            raise StorageError(f"capacity must be >= 1, got {self.capacity}")
        if len(self.data) > self.capacity:
            raise StorageError(
                f"payload of {len(self.data)} bytes exceeds page capacity "
                f"{self.capacity}"
            )

    def write(self, data: bytes) -> None:
        """Replace the payload, marking the page dirty."""
        if len(data) > self.capacity:
            raise StorageError(
                f"payload of {len(data)} bytes exceeds page capacity {self.capacity}"
            )
        self.data = data
        self.dirty = True

    @property
    def free_space(self) -> int:
        """Unused bytes remaining in the page."""
        return self.capacity - len(self.data)
