"""Storage substrate: pages, a simulated disk, and an LRU buffer pool.

The paper evaluates index methods by *simulated* page I/O (a counter that
increments on every page fetched past the buffer, with multi-page reads
charged per page), because real disk I/O hides behind OS and runtime
caches.  This package provides exactly that substrate: a page-addressed
in-memory store with strict I/O accounting and an LRU pool with pinning.
"""

from .iostats import IOStats
from .page import Page
from .disk import DiskManager
from .buffer import BufferPool
from .serialize import NodeCodec

__all__ = ["IOStats", "Page", "DiskManager", "BufferPool", "NodeCodec"]
