"""LRU buffer pool over the simulated disk.

The pool caches whole records (a record is one serialized tree node) and
accounts capacity in *pages*, so a fat node with a three-page posting
block occupies three page slots.  Pinned records are never evicted;
over-committing the pool with pins raises :class:`BufferPoolError`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from ..errors import BufferPoolError
from .disk import DiskManager


class BufferPool:
    """Page-budgeted LRU cache of disk records."""

    def __init__(self, disk: DiskManager, capacity_pages: int = 128) -> None:
        if capacity_pages < 1:
            raise BufferPoolError(
                f"capacity_pages must be >= 1, got {capacity_pages}"
            )
        self.disk = disk
        self.capacity_pages = capacity_pages
        self._cache: "OrderedDict[int, bytes]" = OrderedDict()
        self._pages_used = 0
        self._pins: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, record_id: int, tag: str = "") -> bytes:
        """Fetch a record, through the cache.

        A hit refreshes recency and charges no I/O; a miss reads from the
        disk manager (charging its page span) and inserts the record,
        evicting LRU unpinned records as needed.
        """
        cached = self._cache.get(record_id)
        if cached is not None:
            self._cache.move_to_end(record_id)
            self.disk.stats.record_hit(self.disk.record_pages(record_id))
            return cached
        data = self.disk.read(record_id, tag)
        self._insert(record_id, data)
        return data

    def contains(self, record_id: int) -> bool:
        """True when the record is resident in the pool."""
        return record_id in self._cache

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------

    def pin(self, record_id: int, tag: str = "") -> bytes:
        """Fetch and pin a record (it will not be evicted until unpinned)."""
        data = self.get(record_id, tag)
        self._pins[record_id] = self._pins.get(record_id, 0) + 1
        return data

    def unpin(self, record_id: int) -> None:
        """Release one pin on a record."""
        count = self._pins.get(record_id, 0)
        if count <= 0:
            raise BufferPoolError(f"record {record_id} is not pinned")
        if count == 1:
            del self._pins[record_id]
        else:
            self._pins[record_id] = count - 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def invalidate(self, record_id: int) -> None:
        """Drop a record from the cache (after a rewrite)."""
        if record_id in self._pins:
            raise BufferPoolError(f"cannot invalidate pinned record {record_id}")
        data = self._cache.pop(record_id, None)
        if data is not None:
            self._pages_used -= self.disk.record_pages(record_id)

    def clear(self) -> None:
        """Empty the pool (used to force cold-cache measurements)."""
        if self._pins:
            raise BufferPoolError("cannot clear a pool with pinned records")
        self._cache.clear()
        self._pages_used = 0

    @property
    def pages_used(self) -> int:
        """Pages currently occupied by resident records."""
        return self._pages_used

    @property
    def resident_records(self) -> int:
        """Number of records currently cached."""
        return len(self._cache)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _insert(self, record_id: int, data: bytes) -> None:
        pages = self.disk.record_pages(record_id)
        if pages > self.capacity_pages:
            # Record larger than the whole pool: serve it uncached, like a
            # real buffer manager streaming an oversized object.
            return
        self._evict_until(self.capacity_pages - pages)
        self._cache[record_id] = data
        self._pages_used += pages

    def _evict_until(self, target_pages: int) -> None:
        if target_pages < 0:
            raise BufferPoolError("eviction target below zero")
        for victim in list(self._cache):
            if self._pages_used <= target_pages:
                return
            if victim in self._pins:
                continue
            del self._cache[victim]
            self._pages_used -= self.disk.record_pages(victim)
        if self._pages_used > target_pages:
            raise BufferPoolError(
                "buffer pool over-committed: pinned records exceed capacity"
            )
